//! `ppet` — pipelined pseudo-exhaustive testing with retiming.
//!
//! Facade crate re-exporting the whole workspace: a reproduction of
//! *"Area Efficient Pipelined Pseudo-Exhaustive Testing with Retiming"*
//! (Liou, Lin & Cheng, DAC 1996) and every substrate it depends on.
//!
//! Each subsystem is its own crate; this facade gives applications a single
//! dependency and a stable module layout:
//!
//! * [`netlist`] — circuit model, ISCAS89 `.bench` parser/writer, area
//!   model, synthetic benchmark generator;
//! * [`graph`] — multi-pin circuit graph, SCC, shortest paths,
//!   Leiserson–Saxe retiming;
//! * [`flow`] — probabilistic multicommodity-flow congestion
//!   (`Saturate_Network`);
//! * [`partition`] — input-constrained clustering (`Make_Group`) and CBIT
//!   merging (`Assign_CBIT`), plus the simulated-annealing baseline;
//! * [`cbit`] — LFSR/MISR test hardware, primitive polynomials, A_CELL and
//!   CBIT cost models, test-pipe scheduling;
//! * [`exec`] — deterministic parallel execution: a scoped thread pool
//!   whose results are bit-identical to sequential at any worker count;
//! * [`sim`] — gate-level logic and stuck-at fault simulation,
//!   pseudo-exhaustive coverage measurement;
//! * [`trace`] — structured pipeline tracing: spans, counters, and the
//!   JSON run manifest (`merced --trace-json`);
//! * [`audit`] — independent verification: re-derives every paper
//!   invariant from the netlist and partition alone (`merced audit`);
//! * [`dedup`] — similarity detection: Gear-hash super-feature sketches
//!   and the replay-deterministic incremental clusterer the store's
//!   delta-base selection runs on;
//! * [`store`] — persistent content-addressed artifact store: append-only
//!   segment log, similarity-clustered delta encoding with bounded-depth
//!   chains, byte-budget LRU eviction with pinning, crash-safe recovery
//!   (`merced store`);
//! * [`serve`] — the long-running compile service: HTTP front end,
//!   content-addressed result cache, bounded-queue backpressure
//!   (`merced serve`);
//! * [`cluster`] — the consistent-hash shard router in front of N
//!   compile services: hedged reads, result replication, aggregated
//!   metrics (`merced cluster`);
//! * [`core`] — **Merced**, the end-to-end BIST compiler.
//!
//! # Quick start
//!
//! ```
//! use ppet::core::{Merced, MercedConfig};
//! use ppet::netlist::data;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let circuit = data::s27();
//! let report = Merced::new(MercedConfig::default().with_cbit_length(4)).compile(&circuit)?;
//! println!("{report}");
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]

pub use ppet_audit as audit;
pub use ppet_cbit as cbit;
pub use ppet_cluster as cluster;
pub use ppet_core as core;
pub use ppet_dedup as dedup;
pub use ppet_exec as exec;
pub use ppet_flow as flow;
pub use ppet_graph as graph;
pub use ppet_netlist as netlist;
pub use ppet_partition as partition;
pub use ppet_prng as prng;
pub use ppet_serve as serve;
pub use ppet_sim as sim;
pub use ppet_store as store;
pub use ppet_trace as trace;
