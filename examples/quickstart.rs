//! Quickstart: compile a circuit for pipelined pseudo-exhaustive testing.
//!
//! ```sh
//! cargo run --example quickstart [path/to/circuit.bench] [l_k]
//! ```
//!
//! Without arguments, runs on the built-in ISCAS89 `s27` at `l_k = 4`.

use std::error::Error;

use ppet::core::{Merced, MercedConfig};
use ppet::netlist::{bench_format, data};

fn main() -> Result<(), Box<dyn Error>> {
    let args: Vec<String> = std::env::args().collect();
    let circuit = match args.get(1) {
        Some(path) => {
            let text = std::fs::read_to_string(path)?;
            let name = std::path::Path::new(path)
                .file_stem()
                .and_then(|s| s.to_str())
                .unwrap_or("circuit");
            bench_format::parse(name, &text)?
        }
        None => data::s27(),
    };
    let lk: usize = args.get(2).map_or(Ok(4), |v| v.parse())?;

    println!("Compiling {} for PPET at l_k = {lk} ...\n", circuit.name());
    let report = Merced::new(MercedConfig::default().with_cbit_length(lk)).compile(&circuit)?;
    println!("{report}\n");

    println!("Partitions:");
    for (i, p) in report.partitions.iter().enumerate() {
        println!(
            "  CUT {i}: {} cells, {} inputs -> {}-bit CBIT",
            p.cells, p.inputs, p.cbit_length
        );
    }
    Ok(())
}
