//! The premise of pseudo-exhaustive testing, measured: partition a
//! circuit, test every segment with all `2^k` patterns of its inputs, and
//! compare stuck-at coverage against random testing.
//!
//! Exhaustive application *defines* the detectable fault set of a
//! combinational segment, so its coverage is the ceiling; the question is
//! how many random patterns are needed to approach it. Segment inputs
//! include the outputs of registers interior to the partition (they are
//! scan/CBIT-controllable state), so a segment can be wider than the
//! partition's ι.
//!
//! ```sh
//! cargo run --release --example fault_coverage
//! ```

use std::error::Error;

use ppet::netlist::{data, SynthSpec, Synthesizer};
use ppet::sim::pet::{exhaustive_coverage, extract_segment, random_coverage};

fn main() -> Result<(), Box<dyn Error>> {
    let circuits = vec![
        (data::s27(), 4usize),
        (
            Synthesizer::new(
                SynthSpec::new("synth240")
                    .primary_inputs(8)
                    .flip_flops(12)
                    .dffs_on_scc(8)
                    .gates(160)
                    .inverters(40)
                    .seed(7),
            )
            .build(),
            6,
        ),
    ];

    for (circuit, lk) in circuits {
        println!("=== {} (l_k = {lk}) ===", circuit.name());
        use ppet::core::{Merced, MercedConfig};
        let compilation =
            Merced::new(MercedConfig::default().with_cbit_length(lk)).compile_detailed(&circuit)?;
        let assigned = &compilation.assignment;
        println!(
            "  {} partitions, {} cut nets",
            assigned.partitions.len(),
            assigned.cut_nets.len()
        );

        let mut detectable = 0usize;
        let mut random_hits = 0usize;
        let mut exhaustive_patterns = 0u64;
        let mut random_patterns = 0u64;
        for (i, p) in assigned.partitions.iter().enumerate() {
            let seg = extract_segment(&circuit, &p.members);
            let k = seg.circuit.num_inputs();
            if k == 0 || seg.circuit.outputs().is_empty() || k > 22 {
                continue;
            }
            // Exhaustive = the detectable set (by definition).
            let ex = exhaustive_coverage(&seg.circuit)?;
            // Random with a 16x smaller budget.
            let budget = (ex.patterns / 16).max(1);
            let rnd = random_coverage(&seg.circuit, budget, 42 + i as u64)?;
            println!(
                "  segment {i}: {k:>2} inputs | detectable {:>3}/{:<3} | exhaustive 100% of detectable \
                 ({} pats) | random {:>5.1}% ({} pats)",
                ex.detected,
                ex.total,
                ex.patterns,
                100.0 * rnd.detected as f64 / ex.detected.max(1) as f64,
                budget,
            );
            detectable += ex.detected;
            random_hits += rnd.detected;
            exhaustive_patterns += ex.patterns;
            random_patterns += budget;
        }
        println!(
            "  TOTAL: exhaustive finds all {} detectable faults in {} patterns;\n\
             \x20        random finds {:.1}% of them with {} patterns (1/16 budget)\n",
            detectable,
            exhaustive_patterns,
            100.0 * random_hits as f64 / detectable.max(1) as f64,
            random_patterns,
        );
    }
    Ok(())
}
