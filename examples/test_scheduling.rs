//! Test-pipe scheduling and the dual-mode CBIT in action (paper Fig. 1):
//! builds the schedule for a partitioned circuit, then actually *runs* a
//! CBIT chain in simulation — one register bank generating patterns for the
//! next segment while compacting the previous segment's responses.
//!
//! ```sh
//! cargo run --example test_scheduling
//! ```

use std::error::Error;

use ppet::cbit::misr::Cbit;
use ppet::cbit::poly::primitive_poly;
use ppet::cbit::scan::ScanChain;
use ppet::core::{Merced, MercedConfig};
use ppet::netlist::synth::iscas89_like;

fn main() -> Result<(), Box<dyn Error>> {
    // 1. Schedule for a real-sized circuit.
    let circuit = iscas89_like("s1423").ok_or("calibrated circuit available")?;
    let report = Merced::new(MercedConfig::default().with_cbit_length(16)).compile(&circuit)?;
    println!("{} at l_k = 16:", circuit.name());
    println!(
        "  {} CUTs in {} test pipes; pipelined {} cycles vs sequential {} cycles ({:.1}x)",
        report.partitions.len(),
        report.schedule.pipes,
        report.schedule.total_cycles,
        report.schedule.sequential_cycles,
        report.schedule.sequential_cycles as f64 / report.schedule.total_cycles.max(1) as f64,
    );
    let chain = ScanChain::new(
        report
            .partitions
            .iter()
            .filter(|p| p.cbit_length > 0)
            .map(|p| p.cbit_length)
            .collect(),
    );
    println!(
        "  scan chain: {} CBITs, {} bits, {} shift cycles per session ({:.4}% overhead)",
        chain.num_cbits(),
        chain.length(),
        chain.session_overhead_cycles(),
        100.0 * chain.overhead_fraction(report.schedule.total_cycles),
    );

    // 2. A CBIT pair doing dual-mode TPG/PSA on a toy segment.
    println!("\nDual-mode CBIT demo (8-bit pair, toy segment y = a XOR rotate(a)):");
    let p = primitive_poly(8).expect("degree in range");
    let mut generator = Cbit::new(p);
    let mut analyzer = Cbit::new(p);
    generator.load(0x01);
    analyzer.load(0x00);
    for cycle in 0..8 {
        let pattern = generator.pattern();
        // The "segment" under test: a tiny combinational function.
        let response = pattern ^ pattern.rotate_left(3) & 0xFF;
        analyzer.clock(response); // PSA of this segment...
        generator.clock_tpg(); // ...while the generator advances.
        println!(
            "  cycle {cycle}: pattern {:#04x} -> response {:#04x} | signature {:#04x}",
            pattern,
            response & 0xFF,
            analyzer.signature()
        );
    }
    let clean = analyzer.signature();

    // Replay with a stuck-at fault in the segment: the signature diverges.
    let mut generator = Cbit::new(p);
    let mut analyzer = Cbit::new(p);
    generator.load(0x01);
    analyzer.load(0x00);
    for _ in 0..8 {
        let pattern = generator.pattern();
        let response = (pattern ^ pattern.rotate_left(3) & 0xFF) | 0x10; // bit 4 s-a-1
        analyzer.clock(response);
        generator.clock_tpg();
    }
    println!(
        "  clean signature {:#04x} vs faulty {:#04x} -> fault {}",
        clean,
        analyzer.signature(),
        if clean == analyzer.signature() {
            "MISSED"
        } else {
            "caught"
        }
    );
    Ok(())
}
