//! Trade-off exploration: CBIT length `l_k` and retiming budget `β` versus
//! test-hardware area and testing time (the design space of the paper's
//! §4.1/§4.2 discussion).
//!
//! ```sh
//! cargo run --release --example area_tradeoff [circuit-name]
//! ```
//!
//! The circuit name is one of the paper's Table 9 entries (default `s641`).

use std::error::Error;

use ppet::cbit::timing::testing_cycles;
use ppet::core::{Merced, MercedConfig};
use ppet::netlist::synth::iscas89_like;

fn main() -> Result<(), Box<dyn Error>> {
    let name = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "s641".to_string());
    let circuit =
        iscas89_like(&name).ok_or_else(|| format!("unknown benchmark circuit `{name}`"))?;
    println!(
        "Circuit: {} ({} cells)\n",
        circuit.name(),
        circuit.num_cells()
    );

    println!("l_k sweep (beta = 50):");
    println!(
        "{:>5} {:>10} {:>10} {:>12} {:>12} {:>16}",
        "l_k", "nets cut", "CBITs", "ovh w/ (%)", "ovh w/o (%)", "test cycles"
    );
    for lk in [4usize, 8, 12, 16, 24] {
        let r = Merced::new(MercedConfig::default().with_cbit_length(lk)).compile(&circuit)?;
        println!(
            "{:>5} {:>10} {:>10} {:>12.1} {:>12.1} {:>16}",
            lk,
            r.nets_cut,
            r.partitions.len(),
            r.area.pct_with(),
            r.area.pct_without(),
            testing_cycles(lk as u32),
        );
    }

    println!("\nbeta sweep (l_k = 16):");
    println!(
        "{:>5} {:>10} {:>10} {:>10} {:>12}",
        "beta", "nets cut", "cuts/SCC", "forced", "ovh w/ (%)"
    );
    for beta in [1usize, 2, 5, 10, 50] {
        let r = Merced::new(MercedConfig::default().with_cbit_length(16).with_beta(beta))
            .compile(&circuit)?;
        println!(
            "{:>5} {:>10} {:>10} {:>10} {:>12.1}",
            beta,
            r.nets_cut,
            r.cut_nets_on_scc,
            r.forced_internal,
            r.area.pct_with(),
        );
    }

    println!(
        "\nReading: larger CBITs absorb more nets (fewer cuts, less hardware)\n\
         at exponentially growing testing time; a tight beta avoids multiplexed\n\
         registers inside loops at the price of coarser clusters."
    );
    Ok(())
}
