//! The complete PPET story on one circuit:
//!
//! 1. compile it with Merced (partition + retiming-aware costing);
//! 2. physically insert the test hardware (retiming applied, A_CELLs and
//!    CBIT cascades wired in);
//! 3. run a self-test session in simulation, observing only the CBIT
//!    signatures;
//! 4. report the stuck-at coverage of the functional logic that the
//!    signatures alone achieve.
//!
//! ```sh
//! cargo run --release --example self_test_session
//! ```

use std::error::Error;

use ppet::core::instrument::insert_test_hardware;
use ppet::core::{Merced, MercedConfig};
use ppet::netlist::{data, SynthSpec, Synthesizer};
use ppet::prng::{Rng, Xoshiro256PlusPlus};
use ppet::sim::fault::{all_faults, FaultSite};
use ppet::sim::logic::Simulator;
use ppet::sim::seqsim::{Observe, SequentialFaultSim};

fn main() -> Result<(), Box<dyn Error>> {
    let circuits = vec![
        (data::s27(), 3usize),
        (
            Synthesizer::new(
                SynthSpec::new("soc_block")
                    .primary_inputs(8)
                    .flip_flops(14)
                    .dffs_on_scc(9)
                    .gates(120)
                    .inverters(30)
                    .seed(11),
            )
            .build(),
            4,
        ),
    ];

    for (circuit, lk) in circuits {
        println!("=== {} (l_k = {lk}) ===", circuit.name());

        // 1. Compile.
        let compilation =
            Merced::new(MercedConfig::default().with_cbit_length(lk)).compile_detailed(&circuit)?;
        println!(
            "  compiled: {} partitions, {} cut nets, {:.1}% overhead w/ retiming \
             ({:.1}% without)",
            compilation.assignment.partitions.len(),
            compilation.report.nets_cut,
            compilation.report.area.pct_with(),
            compilation.report.area.pct_without(),
        );

        // 2. Insert the hardware.
        let groups: Vec<Vec<_>> = compilation
            .cut_groups
            .iter()
            .filter(|g| !g.is_empty())
            .cloned()
            .collect();
        if groups.is_empty() {
            println!("  no internal cuts at this l_k: the whole circuit is one CUT\n");
            continue;
        }
        let inst = insert_test_hardware(&circuit, &groups)?;
        println!(
            "  instrumented: {} CBIT bits ({} converted FFs, {} multiplexed), \
             {} cells total",
            inst.converted_cuts.len() + inst.mux_cuts.len(),
            inst.converted_cuts.len(),
            inst.mux_cuts.len(),
            inst.circuit.num_cells(),
        );

        // 3. Self-test session against the functional stuck-at faults.
        let functional_faults: Vec<_> = all_faults(&inst.circuit)
            .into_iter()
            .filter(|f| {
                let cell = match f.site {
                    FaultSite::Output(c) => c,
                    FaultSite::Input { cell, .. } => cell,
                };
                !inst.circuit.cell(cell).name().starts_with("ppet_")
            })
            .collect();
        let signature_regs: Vec<_> = inst.cbits.iter().flatten().map(|b| b.register).collect();
        let mut session = SequentialFaultSim::new(
            &inst.circuit,
            functional_faults,
            Observe::RegistersAtEnd(signature_regs),
        )?;

        let sim = Simulator::new(&inst.circuit)?;
        let n = sim.inputs().len();
        let mut rng = Xoshiro256PlusPlus::seed_from(1996);
        let cycles = 256u32;
        for _ in 0..cycles {
            let mut pis: Vec<u64> = (0..n).map(|_| rng.next_u64()).collect();
            pis[n - 2] = u64::MAX; // B1 = 1
            pis[n - 1] = 0; // B2 = 0: self-test mode
            session.clock(&pis);
        }
        session.finish();

        // 4. Report.
        let report = session.report();
        println!(
            "  self-test: {cycles} cycles, signatures alone detect {}/{} functional \
             stuck-at faults ({:.1}%)\n",
            report.detected,
            report.total,
            100.0 * report.coverage(),
        );
    }
    Ok(())
}
