//! The paper's worked example, end to end on the real `s27` circuit:
//!
//! * Fig. 2 — schematic to multi-pin graph;
//! * Fig. 5 — net congestion after `Saturate_Network`;
//! * Fig. 6 — clusters after `Make_Group` at `l_k = 3`;
//! * Fig. 7 — final partitions after `Assign_CBIT`.
//!
//! ```sh
//! cargo run --example s27_walkthrough
//! ```

use std::error::Error;

use ppet::flow::{saturate_network, FlowParams};
use ppet::graph::{scc::Scc, CircuitGraph};
use ppet::netlist::data;
use ppet::partition::{assign_cbit, inputs, make_group, MakeGroupParams};

fn main() -> Result<(), Box<dyn Error>> {
    let circuit = data::s27();
    let graph = CircuitGraph::from_circuit(&circuit);

    // --- Figure 2: the multi-pin graph --------------------------------
    println!("== Figure 2: multi-pin graph of s27 ==");
    println!(
        "{} nodes, {} nets, {} branches",
        graph.num_nodes(),
        graph.num_nets(),
        graph.num_branches()
    );
    for (net, n) in graph.nets() {
        let sinks: Vec<&str> = n.sinks().iter().map(|&s| graph.node_name(s)).collect();
        println!("  {} -> {}", graph.node_name(net), sinks.join(", "));
    }

    // --- strongly connected components ---------------------------------
    let scc = Scc::of(&graph);
    println!("\n== Strongly connected components ==");
    for (i, comp) in scc.components().iter().enumerate() {
        if comp.len() > 1 {
            let names: Vec<&str> = comp.iter().map(|&v| graph.node_name(v)).collect();
            println!(
                "  SCC {i} (f = {}): {}",
                scc.registers_in(ppet::graph::scc::SccId(i as u32)),
                names.join(", ")
            );
        }
    }

    // --- Figure 5: Saturate_Network ------------------------------------
    let profile = saturate_network(&graph, &FlowParams::paper(), 1996);
    println!("\n== Figure 5: congestion after Saturate_Network ==");
    println!("  ({} shortest-path trees injected)", profile.num_trees());
    let mut ranked: Vec<_> = graph.nets().map(|(net, _)| net).collect();
    ranked.sort_by(|&a, &b| {
        profile
            .flow(b)
            .partial_cmp(&profile.flow(a))
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    println!("  most congested nets (flow / distance):");
    for &net in ranked.iter().take(6) {
        println!(
            "    {:<4} flow {:>6.3}  d(e) {:>10.3}",
            graph.node_name(net),
            profile.flow(net),
            profile.distance(net)
        );
    }

    // --- Figure 6: Make_Group at l_k = 3 --------------------------------
    let grouped = make_group(&graph, &scc, &profile, &MakeGroupParams::new(3));
    println!("\n== Figure 6: clusters after Make_Group (l_k = 3) ==");
    for (id, members) in grouped.clustering.iter() {
        let names: Vec<&str> = members.iter().map(|&v| graph.node_name(v)).collect();
        println!(
            "  cluster {:>2} (inputs = {}): {}",
            id.index(),
            inputs::input_count(&graph, &grouped.clustering, id),
            names.join(", ")
        );
    }
    println!("  cut nets: {}", grouped.cut_nets.len());

    // --- Figure 7: Assign_CBIT ------------------------------------------
    let assigned = assign_cbit(&graph, grouped.clustering, 3);
    println!("\n== Figure 7: partitions after Assign_CBIT (l_k = 3) ==");
    for (i, p) in assigned.partitions.iter().enumerate() {
        let names: Vec<&str> = p.members.iter().map(|&v| graph.node_name(v)).collect();
        let ins: Vec<&str> = p.input_nets.iter().map(|&v| graph.node_name(v)).collect();
        println!(
            "  partition {i} (inputs: {}): {{ {} }}",
            ins.join(", "),
            names.join(", ")
        );
    }
    println!(
        "  {} partitions, {} cut nets after merging (paper's Fig. 7 shows 4 partitions\n   on its 13-node drawing; the full 17-cell s27 netlist yields a comparable split)",
        assigned.partitions.len(),
        assigned.cut_nets.len()
    );
    Ok(())
}
