//! Property tests for the consistent-hash ring: load uniformity with
//! virtual nodes, and the bounded-remap invariant that justifies
//! consistent hashing in the first place.

use ppet_cluster::{Ring, DEFAULT_VNODES};
use proptest::prelude::*;

/// Spreads one drawn seed into a deterministic stream of 128-bit keys
/// (SplitMix64 on both halves) — cheap stand-ins for cache keys, which
/// are themselves uniform FNV-1a-128 hashes.
fn keys(seed: u64, count: usize) -> Vec<u128> {
    let mix = |mut z: u64| {
        z ^= z >> 30;
        z = z.wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z ^= z >> 27;
        z = z.wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    };
    (0..count as u64)
        .map(|i| {
            let lo = mix(seed.wrapping_add(i.wrapping_mul(0x9e37_79b9_7f4a_7c15)));
            let hi = mix(lo ^ i);
            (u128::from(hi) << 64) | u128::from(lo)
        })
        .collect()
}

const KEYS: usize = 10_000;

proptest! {
    /// With ≥64 vnodes, every backend's share of keys stays within 15%
    /// (relative) of the uniform share `1/N`.
    #[test]
    fn load_is_within_15_percent_of_uniform(
        backends in 2usize..=8,
        seed in any::<u64>(),
    ) {
        let ring = Ring::new(backends, DEFAULT_VNODES);
        let mut counts = vec![0usize; backends];
        for key in keys(seed, KEYS) {
            let primary = ring.primary(key, |_| true).unwrap();
            counts[primary] += 1;
        }
        let uniform = KEYS as f64 / backends as f64;
        for (backend, &count) in counts.iter().enumerate() {
            let deviation = (count as f64 - uniform).abs() / uniform;
            prop_assert!(
                deviation <= 0.15,
                "backend {backend} of {backends} holds {count}/{KEYS} keys \
                 ({:.1}% off uniform {uniform:.0})",
                deviation * 100.0
            );
        }
    }

    /// Bounded remap, exact form: marking one backend down remaps a key
    /// if and only if that backend was the key's primary — every other
    /// key keeps its primary untouched.
    #[test]
    fn removal_remaps_exactly_the_removed_backends_keys(
        backends in 2usize..=8,
        removed_pick in any::<u64>(),
        seed in any::<u64>(),
    ) {
        let ring = Ring::new(backends, DEFAULT_VNODES);
        let removed = (removed_pick % backends as u64) as usize;
        let mut remapped = 0usize;
        for key in keys(seed, KEYS) {
            let before = ring.primary(key, |_| true).unwrap();
            let after = ring.primary(key, |b| b != removed).unwrap();
            if before == removed {
                prop_assert_ne!(after, removed);
                remapped += 1;
            } else {
                prop_assert_eq!(
                    after, before,
                    "key {:032x} moved although backend {} was not its primary",
                    key, removed
                );
            }
        }
        // The remapped fraction is the removed backend's share: ~1/N,
        // bounded by the uniformity guarantee above.
        let share = remapped as f64 / KEYS as f64;
        let uniform = 1.0 / backends as f64;
        prop_assert!(
            share <= uniform * 1.15,
            "removal remapped {:.1}% of keys; uniform share is {:.1}%",
            share * 100.0,
            uniform * 100.0
        );
    }

    /// The failover order is stable under unrelated failures: the
    /// preference list with one non-member down is the original list
    /// with that backend deleted.
    #[test]
    fn preference_order_is_stable_under_unrelated_failures(
        backends in 3usize..=8,
        down_pick in any::<u64>(),
        seed in any::<u64>(),
    ) {
        let ring = Ring::new(backends, DEFAULT_VNODES);
        let down = (down_pick % backends as u64) as usize;
        for key in keys(seed, 300) {
            let full = ring.route(key, backends, |_| true);
            let survivors = ring.route(key, backends, |b| b != down);
            let expected: Vec<usize> =
                full.iter().copied().filter(|&b| b != down).collect();
            prop_assert_eq!(
                &survivors, &expected,
                "key {:032x}: down={} full={:?}",
                key, down, &full
            );
        }
    }
}
