//! Outbound HTTP/1.1 client plumbing: one request per connection,
//! `Connection: close` framing, and cooperative cancellation.
//!
//! Cancellation is the primitive hedged reads are built on: every
//! attempt registers its socket in a [`CancelHandle`] before reading,
//! and the losing attempt's socket is shut down the moment a winner
//! responds, so the loser's thread fails out of its blocking read
//! immediately instead of draining a response nobody wants.

use std::io::{Read as _, Write as _};
use std::net::{Shutdown, SocketAddr, TcpStream, ToSocketAddrs};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Bound on TCP connect; unreachable backends fail fast into failover.
pub const CONNECT_TIMEOUT: Duration = Duration::from_secs(2);

/// A parsed upstream response: status code plus body. Headers are not
/// surfaced — the router mints its own `X-Ppet-Request-Id` and forwards
/// it downstream, so the echo comes back from the router itself.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// Response body (close-delimited).
    pub body: String,
}

#[derive(Debug, Default)]
struct CancelState {
    stream: Option<TcpStream>,
    cancelled: bool,
}

/// Cancels one in-flight [`request`] from another thread by shutting
/// its socket down. Cancelling before the connect wins too: the attempt
/// observes the flag at registration and aborts.
#[derive(Debug, Clone, Default)]
pub struct CancelHandle(Arc<Mutex<CancelState>>);

impl CancelHandle {
    /// Cancels the attempt: any blocked read fails out promptly.
    pub fn cancel(&self) {
        let mut state = self.0.lock().unwrap();
        state.cancelled = true;
        if let Some(stream) = state.stream.take() {
            let _ = stream.shutdown(Shutdown::Both);
        }
    }

    /// Whether [`CancelHandle::cancel`] has been called.
    #[must_use]
    pub fn is_cancelled(&self) -> bool {
        self.0.lock().unwrap().cancelled
    }

    /// Registers the attempt's socket; fails if already cancelled.
    fn register(&self, stream: &TcpStream) -> std::io::Result<()> {
        let clone = stream.try_clone()?;
        let mut state = self.0.lock().unwrap();
        if state.cancelled {
            return Err(std::io::Error::new(
                std::io::ErrorKind::Interrupted,
                "attempt cancelled",
            ));
        }
        state.stream = Some(clone);
        Ok(())
    }
}

fn resolve(addr: &str) -> std::io::Result<SocketAddr> {
    addr.to_socket_addrs()?.next().ok_or_else(|| {
        std::io::Error::new(
            std::io::ErrorKind::AddrNotAvailable,
            format!("{addr} resolves to nothing"),
        )
    })
}

/// Sends one request and reads the close-delimited response.
///
/// `timeout` bounds each blocking read/write; `cancel`, when given,
/// allows another thread to abort the attempt mid-read.
///
/// # Errors
///
/// Any transport failure: resolve, connect, write, read, cancellation,
/// or an unparseable status line. Protocol-level failures (4xx/5xx) are
/// *not* errors — they come back as a [`Response`] for the caller to
/// interpret.
pub fn request(
    addr: &str,
    method: &str,
    path: &str,
    headers: &[(&str, &str)],
    body: &str,
    timeout: Duration,
    cancel: Option<&CancelHandle>,
) -> std::io::Result<Response> {
    let stream = TcpStream::connect_timeout(&resolve(addr)?, CONNECT_TIMEOUT)?;
    stream.set_read_timeout(Some(timeout))?;
    stream.set_write_timeout(Some(timeout))?;
    if let Some(cancel) = cancel {
        cancel.register(&stream)?;
    }
    let mut head = format!("{method} {path} HTTP/1.1\r\nHost: {addr}\r\n");
    for (name, value) in headers {
        head.push_str(name);
        head.push_str(": ");
        head.push_str(value);
        head.push_str("\r\n");
    }
    head.push_str(&format!("Content-Length: {}\r\n\r\n", body.len()));
    let mut stream = stream;
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()?;

    let mut raw = String::new();
    stream.read_to_string(&mut raw)?;
    parse_response(&raw)
}

/// Splits a raw close-delimited HTTP/1.x response into status and body.
fn parse_response(raw: &str) -> std::io::Result<Response> {
    let bad = |what: &str| {
        std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("malformed upstream response: {what}"),
        )
    };
    let status = raw
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse::<u16>().ok())
        .ok_or_else(|| bad("no status line"))?;
    let body = raw
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_owned())
        .ok_or_else(|| bad("no header/body separator"))?;
    Ok(Response { status, body })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    #[test]
    fn parses_status_and_body() {
        let resp =
            parse_response("HTTP/1.1 429 Too Many Requests\r\nX: y\r\n\r\n{\"a\":1}").unwrap();
        assert_eq!(resp.status, 429);
        assert_eq!(resp.body, "{\"a\":1}");
        assert!(parse_response("garbage").is_err());
    }

    #[test]
    fn requests_round_trip_against_a_raw_socket() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let (mut stream, _) = listener.accept().unwrap();
            let mut buf = [0u8; 4096];
            let mut got = String::new();
            // One read can return before the body arrives; read until
            // the full request (headers + 4-byte body) is in.
            while !got.contains("\r\n\r\nping") {
                let n = stream.read(&mut buf).unwrap();
                assert!(n > 0, "client closed early: {got}");
                got.push_str(&String::from_utf8_lossy(&buf[..n]));
            }
            stream
                .write_all(b"HTTP/1.1 200 OK\r\nConnection: close\r\n\r\npong")
                .unwrap();
            got
        });
        let resp = request(
            &addr.to_string(),
            "POST",
            "/ping",
            &[("X-Ppet-Request-Id", "rid-1")],
            "ping",
            Duration::from_secs(5),
            None,
        )
        .unwrap();
        assert_eq!(
            resp,
            Response {
                status: 200,
                body: "pong".into()
            }
        );
        let got = server.join().unwrap();
        assert!(got.starts_with("POST /ping HTTP/1.1\r\n"), "{got}");
        assert!(got.contains("X-Ppet-Request-Id: rid-1\r\n"), "{got}");
        assert!(got.ends_with("\r\n\r\nping"), "{got}");
    }

    #[test]
    fn cancel_aborts_a_blocked_read() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        // The "server" accepts and then never answers.
        let hold = std::thread::spawn(move || listener.accept().map(|(s, _)| s));
        let cancel = CancelHandle::default();
        let canceller = {
            let cancel = cancel.clone();
            std::thread::spawn(move || {
                std::thread::sleep(Duration::from_millis(50));
                cancel.cancel();
            })
        };
        let started = std::time::Instant::now();
        let result = request(
            &addr,
            "GET",
            "/never",
            &[],
            "",
            Duration::from_secs(30),
            Some(&cancel),
        );
        assert!(result.is_err(), "cancelled attempt must not succeed");
        assert!(
            started.elapsed() < Duration::from_secs(10),
            "cancel must beat the read timeout"
        );
        canceller.join().unwrap();
        drop(hold);
    }

    #[test]
    fn cancelling_before_the_attempt_registers_aborts_it() {
        let cancel = CancelHandle::default();
        cancel.cancel();
        assert!(cancel.is_cancelled());
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let result = request(
            &addr,
            "GET",
            "/x",
            &[],
            "",
            Duration::from_secs(5),
            Some(&cancel),
        );
        assert!(result.is_err());
    }
}
