//! The router proper: accept loop, routing, hedging, replication,
//! failure handling, and metric aggregation.
//!
//! One [`Router`] fronts N independent `ppet-serve` backends. Its
//! `POST /compile` path derives the same content key a backend would
//! (same normalize, same FNV-1a-128 derivation), walks the consistent
//! [`Ring`] for the key's backend preference list, coalesces in-flight
//! duplicates onto one proxied request, hedges a slow attempt to the
//! next replica after [`ClusterConfig::hedge`], fails over on transport
//! errors (marking the backend down), and replicates fresh results to
//! [`ClusterConfig::replication`] ring replicas via `PUT /cache/<key>`
//! so no single shard's death forces a recompile.

use std::collections::{HashMap, HashSet};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{channel, RecvTimeoutError, Sender};
use std::sync::{Arc, Condvar, Mutex};
use std::thread;
use std::time::{Duration, Instant};

use ppet_serve::http::{self, HttpError, Request};
use ppet_serve::signal;
use ppet_serve::{CacheKey, CompileBackend, CompileRequest, RequestIds, REQUEST_ID_HEADER};
use ppet_trace::{expo, Counter, Metrics};

use crate::proxy::{self, CancelHandle, Response};
use crate::ring::{Ring, DEFAULT_VNODES};

/// How often the accept loop polls the shutdown flag.
const ACCEPT_POLL: Duration = Duration::from_millis(15);

/// Read/write timeout on accepted client connections.
const STREAM_TIMEOUT: Duration = Duration::from_secs(10);

/// Timeout for one backend `/metrics` scrape during aggregation.
const SCRAPE_TIMEOUT: Duration = Duration::from_secs(2);

/// Timeout for one `/healthz` probe of a down backend.
const PROBE_TIMEOUT: Duration = Duration::from_secs(1);

/// Bound on the replicated-keys dedup set; reaching it clears the set
/// (worst case: a key is re-pushed once, which the idempotent
/// `PUT /cache` absorbs).
const REPLICATED_KEYS_BOUND: usize = 65_536;

/// Router tunables.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Number of ring replicas each key's result is kept on (primary
    /// included). 1 disables replication.
    pub replication: usize,
    /// Virtual nodes per backend on the consistent-hash ring.
    pub vnodes: usize,
    /// How long the primary attempt may stay silent before the router
    /// hedges the request to the next ring replica.
    pub hedge: Duration,
    /// Pause between `/healthz` probes of down backends.
    pub probe: Duration,
    /// End-to-end deadline for one proxied compile (also the coalesced
    /// waiter deadline).
    pub timeout: Duration,
    /// Largest accepted request body in bytes.
    pub max_body_bytes: usize,
    /// Seed of the deterministic request-ID generator.
    pub id_seed: u64,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        Self {
            replication: 2,
            vnodes: DEFAULT_VNODES,
            hedge: Duration::from_millis(250),
            probe: Duration::from_millis(500),
            timeout: Duration::from_secs(60),
            max_body_bytes: 4 << 20,
            id_seed: 0,
        }
    }
}

/// One member backend: address, liveness, per-backend counters.
struct Member {
    addr: String,
    up: AtomicBool,
    /// Requests answered by this backend (as hedge/failover winner).
    proxied: Counter,
    /// Transport failures observed against this backend.
    errors: Counter,
}

impl Member {
    fn new(addr: String, metrics: &Metrics) -> Self {
        // Metric names are `&'static str` by registry design; the
        // per-backend series names are minted once per member at startup
        // (bounded by the --backend list), so leaking them is a one-time,
        // fixed-size cost.
        let leaked = |name: String| -> &'static str { Box::leak(name.into_boxed_str()) };
        let proxied = metrics.counter(leaked(format!("cluster.proxied{{backend=\"{addr}\"}}")));
        let errors = metrics.counter(leaked(format!(
            "cluster.backend_errors{{backend=\"{addr}\"}}"
        )));
        Self {
            addr,
            up: AtomicBool::new(true),
            proxied,
            errors,
        }
    }

    fn is_up(&self) -> bool {
        self.up.load(Ordering::SeqCst)
    }
}

/// A one-shot broadcast cell for router-side coalescing: the owning
/// request proxies and fills `(status, body)`; coalesced duplicates wait
/// on it. Mirrors `ppet_serve::Gate`, but carries the proxied HTTP
/// outcome verbatim so waiters answer byte-identically to the owner.
#[derive(Debug, Default)]
struct ReplyGate {
    slot: Mutex<Option<(u16, Arc<String>)>>,
    ready: Condvar,
}

impl ReplyGate {
    fn fill(&self, status: u16, body: Arc<String>) {
        let mut slot = self.slot.lock().unwrap();
        if slot.is_none() {
            *slot = Some((status, body));
        }
        drop(slot);
        self.ready.notify_all();
    }

    fn wait(&self, timeout: Duration) -> Option<(u16, Arc<String>)> {
        let mut slot = self.slot.lock().unwrap();
        let deadline = Instant::now() + timeout;
        loop {
            if let Some(result) = slot.as_ref() {
                return Some(result.clone());
            }
            let now = Instant::now();
            if now >= deadline {
                return None;
            }
            let (guard, wait) = self.ready.wait_timeout(slot, deadline - now).unwrap();
            slot = guard;
            if wait.timed_out() && slot.is_none() {
                return None;
            }
        }
    }
}

struct ClusterService<B> {
    /// Used solely to normalize requests for keying — the router never
    /// compiles anything itself.
    backend: Arc<B>,
    members: Vec<Member>,
    ring: Ring,
    /// In-flight coalescing: key → gate of the owning proxy attempt.
    /// Entries live exactly as long as the owner is proxying.
    gates: Mutex<HashMap<u128, Arc<ReplyGate>>>,
    /// Keys already pushed to their replicas (bounded dedup, see
    /// [`REPLICATED_KEYS_BOUND`]).
    replicated: Mutex<HashSet<u128>>,
    metrics: Metrics,
    ids: RequestIds,
    config: ClusterConfig,
    shutdown: AtomicBool,
}

/// A clonable handle that can stop a running router from another thread.
#[derive(Clone)]
pub struct RouterHandle {
    shutdown: Arc<dyn Fn() + Send + Sync>,
}

impl std::fmt::Debug for RouterHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RouterHandle").finish_non_exhaustive()
    }
}

impl RouterHandle {
    /// Requests shutdown; [`Router::run`] drains and returns.
    pub fn shutdown(&self) {
        (self.shutdown)();
    }
}

/// The shard router bound to a socket.
pub struct Router<B: CompileBackend> {
    listener: TcpListener,
    addr: SocketAddr,
    service: Arc<ClusterService<B>>,
}

impl<B: CompileBackend> std::fmt::Debug for Router<B> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Router")
            .field("addr", &self.addr)
            .finish_non_exhaustive()
    }
}

impl<B: CompileBackend> Router<B> {
    /// Binds to `addr` fronting `backends` (ring order = list order).
    ///
    /// # Errors
    ///
    /// Socket errors from bind/configure, or an empty backend list.
    pub fn bind(
        addr: impl ToSocketAddrs,
        backend: B,
        backends: Vec<String>,
        config: ClusterConfig,
    ) -> std::io::Result<Self> {
        if backends.is_empty() {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                "cluster needs at least one --backend",
            ));
        }
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let metrics = Metrics::new();
        let members: Vec<Member> = backends
            .into_iter()
            .map(|a| Member::new(a, &metrics))
            .collect();
        let ring = Ring::new(members.len(), config.vnodes.max(1));
        let service = Arc::new(ClusterService {
            backend: Arc::new(backend),
            members,
            ring,
            gates: Mutex::new(HashMap::new()),
            replicated: Mutex::new(HashSet::new()),
            metrics,
            ids: RequestIds::new(config.id_seed),
            config,
            shutdown: AtomicBool::new(false),
        });
        Ok(Self {
            listener,
            addr,
            service,
        })
    }

    /// The actually-bound address (resolves ephemeral ports).
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// A handle that can stop [`Router::run`] from another thread.
    #[must_use]
    pub fn handle(&self) -> RouterHandle {
        let service = Arc::clone(&self.service);
        RouterHandle {
            shutdown: Arc::new(move || service.shutdown.store(true, Ordering::SeqCst)),
        }
    }

    /// The router's aggregated `/metrics` exposition (handy in tests).
    #[must_use]
    pub fn metrics_text(&self) -> String {
        self.service.render_metrics()
    }

    /// Serves until shutdown (handle, `POST /shutdown`, or a Unix
    /// termination signal), then drains: no new connections, all
    /// accepted requests answered, the prober joined.
    pub fn run(self) {
        let prober = {
            let service = Arc::clone(&self.service);
            thread::spawn(move || service.probe_loop())
        };
        let mut handlers: Vec<thread::JoinHandle<()>> = Vec::new();
        loop {
            if self.service.shutting_down() {
                break;
            }
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    let service = Arc::clone(&self.service);
                    handlers.push(thread::spawn(move || service.handle_connection(stream)));
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    thread::sleep(ACCEPT_POLL);
                }
                Err(_) => thread::sleep(ACCEPT_POLL),
            }
            if handlers.len() >= 32 {
                handlers.retain(|h| !h.is_finished());
            }
        }
        for h in handlers {
            let _ = h.join();
        }
        let _ = prober.join();
    }
}

impl<B: CompileBackend> ClusterService<B> {
    fn shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst) || signal::signaled()
    }

    fn up_count(&self) -> usize {
        self.members.iter().filter(|m| m.is_up()).count()
    }

    /// Periodically probes down backends and restores the ones that
    /// answer `/healthz` again. Only their own ring arcs come back —
    /// everything else kept routing around them the whole time.
    fn probe_loop(&self) {
        while !self.shutting_down() {
            for member in &self.members {
                if !member.is_up()
                    && proxy::request(
                        &member.addr,
                        "GET",
                        "/healthz",
                        &[],
                        "",
                        PROBE_TIMEOUT,
                        None,
                    )
                    .map(|r| r.status == 200)
                    .unwrap_or(false)
                {
                    member.up.store(true, Ordering::SeqCst);
                    self.metrics.counter("cluster.backend_recovered").inc();
                }
            }
            // Sleep in short slices so shutdown stays prompt.
            let deadline = Instant::now() + self.config.probe;
            while Instant::now() < deadline && !self.shutting_down() {
                thread::sleep(ACCEPT_POLL.min(self.config.probe));
            }
        }
    }

    fn mark_down(&self, index: usize) {
        let member = &self.members[index];
        member.errors.inc();
        if member.up.swap(false, Ordering::SeqCst) {
            self.metrics.counter("cluster.backend_down").inc();
        }
    }

    fn handle_connection(&self, stream: TcpStream) {
        let _ = stream.set_read_timeout(Some(STREAM_TIMEOUT));
        let _ = stream.set_write_timeout(Some(STREAM_TIMEOUT));
        let request = match http::read_request(&stream, self.config.max_body_bytes) {
            Ok(request) => request,
            Err(HttpError::BodyTooLarge { declared, limit }) => {
                let body = http::error_body(
                    "payload",
                    &format!("body of {declared} bytes exceeds limit of {limit}"),
                );
                let _ = http::write_response(&stream, 413, "application/json", &body);
                return;
            }
            Err(e) => {
                let body = http::error_body("parse", &e.to_string());
                let _ = http::write_response(&stream, 400, "application/json", &body);
                return;
            }
        };
        // Same ID discipline as the backends: mint or sanitize on
        // compile requests, echo in the response, forward downstream so
        // one ID correlates router and shard traces.
        let request_id = (request.method == "POST" && request.path == "/compile")
            .then(|| self.ids.resolve(request.request_id.as_deref()));
        let (status, content_type, body) = self.route(&request, request_id.as_deref());
        let mut headers: Vec<(&str, &str)> = Vec::new();
        if let Some(id) = &request_id {
            headers.push((REQUEST_ID_HEADER, id));
        }
        let _ = http::write_response_with(&stream, status, content_type, &headers, &body);
    }

    fn route(&self, request: &Request, request_id: Option<&str>) -> (u16, &'static str, String) {
        match (request.method.as_str(), request.path.as_str()) {
            ("GET", "/healthz") => self.healthz(),
            ("GET", "/metrics") => (200, "text/plain", self.render_metrics()),
            ("POST", "/shutdown") => {
                self.shutdown.store(true, Ordering::SeqCst);
                (202, "text/plain", "draining\n".to_owned())
            }
            ("POST", "/compile") => self.compile(&request.body, request_id.unwrap_or_default()),
            (_, "/healthz" | "/metrics" | "/shutdown" | "/compile") => (
                405,
                "application/json",
                http::error_body("usage", &format!("{} not allowed here", request.method)),
            ),
            (_, path) => (
                404,
                "application/json",
                http::error_body("usage", &format!("no route {path}")),
            ),
        }
    }

    /// `/healthz` reflects quorum: a strict majority of backends must be
    /// up for the router to call itself healthy.
    fn healthz(&self) -> (u16, &'static str, String) {
        let up = self.up_count();
        let total = self.members.len();
        if up * 2 > total {
            (200, "text/plain", "ok\n".to_owned())
        } else {
            (
                503,
                "application/json",
                http::error_body(
                    "unavailable",
                    &format!("quorum lost: {up}/{total} backends up"),
                ),
            )
        }
    }

    /// `POST /compile`: wraps the routing state machine with per-outcome
    /// latency accounting.
    fn compile(&self, body: &str, request_id: &str) -> (u16, &'static str, String) {
        self.metrics.counter("cluster.requests").inc();
        let started = Instant::now();
        let (status, outcome, response) = self.compile_inner(body, request_id);
        let name = match outcome {
            "proxied" => "cluster.latency_us{outcome=\"proxied\"}",
            "coalesced" => "cluster.latency_us{outcome=\"coalesced\"}",
            "timeout" => "cluster.latency_us{outcome=\"timeout\"}",
            "shed" => "cluster.latency_us{outcome=\"shed\"}",
            _ => "cluster.latency_us{outcome=\"error\"}",
        };
        self.metrics
            .histogram(name)
            .record(started.elapsed().as_micros().try_into().unwrap_or(u64::MAX));
        (status, "application/json", response)
    }

    fn compile_inner(&self, body: &str, request_id: &str) -> (u16, &'static str, String) {
        if self.shutting_down() {
            return (
                503,
                "shed",
                http::error_body("shutdown", "router is draining"),
            );
        }
        // Key derivation mirrors the backends exactly (same parser, same
        // normalize, same FNV-1a-128 frames), so router-side coalescing
        // and ring placement agree with every shard's own cache keys —
        // and malformed requests are rejected here with the same bytes a
        // backend would send, without burning a proxy attempt.
        let request = match CompileRequest::from_json(body) {
            Ok(request) => request,
            Err(e) => return (400, "error", http::error_body("parse", &e)),
        };
        let normalized = match self.backend.normalize(&request) {
            Ok(normalized) => normalized,
            Err(e) => return (400, "error", http::error_body(e.kind, &e.message)),
        };
        let key = CacheKey::of(&normalized);

        // In-flight coalescing, composing with each shard's per-process
        // coalescing: N duplicate clients at the router become one
        // proxied request, which the shard may further coalesce with its
        // own direct traffic.
        let owned = {
            let mut gates = self.gates.lock().unwrap();
            match gates.get(&key.0) {
                Some(gate) => {
                    self.metrics.counter("cluster.coalesced").inc();
                    Err(Arc::clone(gate))
                }
                None => {
                    let gate = Arc::new(ReplyGate::default());
                    gates.insert(key.0, Arc::clone(&gate));
                    Ok(gate)
                }
            }
        };
        match owned {
            Err(gate) => match gate.wait(self.config.timeout) {
                Some((200, body)) => (200, "coalesced", body.as_ref().clone()),
                Some((status, body)) => (status, status_outcome(status), body.as_ref().clone()),
                None => (
                    408,
                    "timeout",
                    http::error_body(
                        "timeout",
                        &format!(
                            "coalesced compile exceeded {} ms; retry to pick up the cached result",
                            self.config.timeout.as_millis()
                        ),
                    ),
                ),
            },
            Ok(gate) => {
                let (status, response, winner) = self.proxy_compile(key, body, request_id);
                // Un-register before filling: requests arriving after the
                // fill start a fresh proxy (and hit the shard's cache)
                // instead of coalescing onto a settled gate.
                self.gates.lock().unwrap().remove(&key.0);
                let shared = Arc::new(response);
                gate.fill(status, Arc::clone(&shared));
                if status == 200 {
                    if let Some(winner) = winner {
                        self.replicate(key, &shared, winner);
                    }
                    (200, "proxied", shared.as_ref().clone())
                } else {
                    (status, status_outcome(status), shared.as_ref().clone())
                }
            }
        }
    }

    /// Proxies one compile along the key's ring preference list with
    /// hedging and failover. Returns `(status, body, winning backend)`.
    ///
    /// - A transport error marks the backend down and advances to the
    ///   next candidate immediately.
    /// - Silence past [`ClusterConfig::hedge`] *hedges*: the next
    ///   candidate is raced without giving up on the slow one. First
    ///   response wins; every other in-flight attempt is cancelled.
    /// - Any HTTP response is a win — 4xx/5xx are deterministic protocol
    ///   outcomes the backend chose, and pass through verbatim.
    ///
    /// The gate is filled only after this returns, so a cancelled
    /// loser's transport error can never poison coalesced waiters with
    /// a failure while the winner carries the real result.
    fn proxy_compile(
        &self,
        key: CacheKey,
        body: &str,
        request_id: &str,
    ) -> (u16, String, Option<usize>) {
        let candidates = self
            .ring
            .route(key.0, self.members.len(), |b| self.members[b].is_up());
        if candidates.is_empty() {
            return (
                503,
                http::error_body("unavailable", "no live backends"),
                None,
            );
        }
        let deadline = Instant::now() + self.config.timeout;
        let body: Arc<str> = Arc::from(body);
        let request_id: Arc<str> = Arc::from(request_id);
        let (tx, rx) = channel::<(usize, std::io::Result<Response>)>();
        let mut attempts: Vec<(usize, CancelHandle)> = Vec::new();
        let mut next = 0usize;
        let mut in_flight = 0usize;
        let launch = |next: &mut usize,
                      in_flight: &mut usize,
                      attempts: &mut Vec<(usize, CancelHandle)>,
                      tx: &Sender<(usize, std::io::Result<Response>)>| {
            let index = candidates[*next];
            *next += 1;
            *in_flight += 1;
            let cancel = CancelHandle::default();
            attempts.push((index, cancel.clone()));
            let addr = self.members[index].addr.clone();
            let body = Arc::clone(&body);
            let request_id = Arc::clone(&request_id);
            let timeout = self.config.timeout;
            let tx = tx.clone();
            thread::spawn(move || {
                let result = proxy::request(
                    &addr,
                    "POST",
                    "/compile",
                    &[(REQUEST_ID_HEADER, &request_id)],
                    &body,
                    timeout,
                    Some(&cancel),
                );
                // The receiver may be long gone (a winner was chosen);
                // a failed send is the expected fate of a cancelled loser.
                let _ = tx.send((index, result));
            });
        };
        launch(&mut next, &mut in_flight, &mut attempts, &tx);

        loop {
            let now = Instant::now();
            if now >= deadline {
                break;
            }
            // While unlaunched candidates remain, wake at the hedge
            // threshold; afterwards just wait out the deadline.
            let wait = if next < candidates.len() {
                self.config.hedge.min(deadline - now)
            } else {
                deadline - now
            };
            match rx.recv_timeout(wait) {
                Ok((index, Ok(response))) => {
                    for (other, cancel) in &attempts {
                        if *other != index {
                            cancel.cancel();
                        }
                    }
                    self.members[index].proxied.inc();
                    return (response.status, response.body, Some(index));
                }
                Ok((index, Err(e))) => {
                    in_flight -= 1;
                    self.mark_down(index);
                    if next < candidates.len() {
                        launch(&mut next, &mut in_flight, &mut attempts, &tx);
                    } else if in_flight == 0 {
                        return (
                            502,
                            http::error_body(
                                "upstream",
                                &format!(
                                    "all {} candidate backends failed; last: {}: {e}",
                                    candidates.len(),
                                    self.members[index].addr
                                ),
                            ),
                            None,
                        );
                    }
                }
                Err(RecvTimeoutError::Timeout) => {
                    if next < candidates.len() {
                        self.metrics.counter("cluster.hedged").inc();
                        launch(&mut next, &mut in_flight, &mut attempts, &tx);
                    }
                }
                Err(RecvTimeoutError::Disconnected) => break,
            }
        }
        for (_, cancel) in &attempts {
            cancel.cancel();
        }
        (
            502,
            http::error_body(
                "upstream",
                &format!(
                    "no backend answered within {} ms",
                    self.config.timeout.as_millis()
                ),
            ),
            None,
        )
    }

    /// Pushes a fresh result to the key's other ring replicas (verified
    /// `PUT /cache/<key>`), best-effort and off the request path. The
    /// dedup set bounds this to roughly one push per key per router
    /// lifetime, so cache hits don't re-replicate on every read.
    fn replicate(&self, key: CacheKey, manifest: &Arc<String>, winner: usize) {
        if self.config.replication <= 1 {
            return;
        }
        {
            let mut seen = self.replicated.lock().unwrap();
            if seen.len() >= REPLICATED_KEYS_BOUND {
                seen.clear();
            }
            if !seen.insert(key.0) {
                return;
            }
        }
        let targets: Vec<usize> = self
            .ring
            .route(key.0, self.config.replication, |b| self.members[b].is_up())
            .into_iter()
            .filter(|&b| b != winner)
            .collect();
        let path = format!("/cache/{key}");
        let replicated = self.metrics.counter("cluster.replicated");
        let failed = self.metrics.counter("cluster.replication_errors");
        let timeout = self.config.timeout;
        for index in targets {
            let addr = self.members[index].addr.clone();
            let manifest = Arc::clone(manifest);
            let path = path.clone();
            let replicated = replicated.clone();
            let failed = failed.clone();
            thread::spawn(move || {
                match proxy::request(&addr, "PUT", &path, &[], &manifest, timeout, None) {
                    Ok(response) if response.status == 200 => replicated.inc(),
                    _ => failed.inc(),
                }
            });
        }
    }

    /// Aggregated `/metrics`: every up backend's exposition relabelled
    /// with `backend="addr"`, plus unlabelled cluster-level rollups
    /// (counters summed, histograms merged across backends), plus the
    /// router's own `cluster.*` series — all rendered as one exposition
    /// so each family keeps a single `# HELP`/`# TYPE` header.
    fn render_metrics(&self) -> String {
        let scrapes: Vec<(String, Option<String>)> = thread::scope(|scope| {
            let handles: Vec<_> = self
                .members
                .iter()
                .filter(|m| m.is_up())
                .map(|m| {
                    scope.spawn(|| {
                        let text = proxy::request(
                            &m.addr,
                            "GET",
                            "/metrics",
                            &[],
                            "",
                            SCRAPE_TIMEOUT,
                            None,
                        )
                        .ok()
                        .filter(|r| r.status == 200)
                        .map(|r| r.body);
                        (m.addr.clone(), text)
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });

        let mut rollup = expo::Exposition::default();
        let mut labelled = expo::Exposition::default();
        for (addr, text) in scrapes {
            let parsed = text.as_deref().and_then(|t| expo::parse(t).ok());
            match parsed {
                Some(parsed) => {
                    labelled.merge(&parsed.relabel("backend", &addr));
                    rollup.merge(&parsed);
                }
                None => self.metrics.counter("cluster.scrape_errors").inc(),
            }
        }

        self.metrics
            .gauge("cluster.backends_up")
            .set(self.up_count() as f64);
        self.metrics
            .gauge("cluster.backends")
            .set(self.members.len() as f64);
        let mut all = expo::parse(&self.metrics.render_prometheus()).unwrap_or_default();
        all.merge(&labelled);
        all.merge(&rollup);
        all.render_prometheus()
    }
}

/// The latency-histogram outcome label for a non-200 proxied status.
fn status_outcome(status: u16) -> &'static str {
    match status {
        408 => "timeout",
        429 | 503 => "shed",
        _ => "error",
    }
}
