//! The consistent-hash ring: content keys → backend preference order.
//!
//! Each backend owns `vnodes` arcs on a `u64` circle; a key routes to
//! the first ring point clockwise from its own hash. The points are
//! *stratified*, not fully random: the circle is cut into
//! `backends × vnodes` equal slots and a deterministic balanced shuffle
//! assigns each backend exactly `vnodes` of them. Fully random vnode
//! points leave per-backend shares with relative spread `~1/sqrt(vnodes)`
//! (over 30% worst-case at 64 vnodes — measured, not hypothetical);
//! equal slots make every share exactly `1/N`, so observed load differs
//! from uniform only by key-sampling noise.
//!
//! Consistent hashing bounds the blast radius of membership changes:
//! marking one backend down moves *only* the keys that routed to it —
//! every other key keeps its backend, because the down backend's points
//! are skipped during the walk rather than the ring being rebuilt.
//!
//! The walk yields a *preference list*: the first entry is the primary,
//! subsequent entries are the replicas the router replicates to and
//! hedges/fails over to, in the order any router with the same member
//! list would pick them.

use ppet_netlist::canonical::Fnv128;

/// Default virtual nodes per backend — enough arcs per backend that the
/// failover successor of any one arc is close to uniform over the other
/// backends (see the ring proptests).
pub const DEFAULT_VNODES: usize = 64;

/// SplitMix64 finalizer: the avalanche stage shared by key folding and
/// the shuffle stream.
fn mix64(mut z: u64) -> u64 {
    z ^= z >> 30;
    z = z.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z ^= z >> 27;
    z = z.wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Folds a 128-bit hash onto the `u64` circle. FNV-1a is only weakly
/// avalanching on short inputs, so the fold is finished with the
/// SplitMix64 mixer.
fn mix(x: u128) -> u64 {
    mix64((x as u64) ^ ((x >> 64) as u64))
}

/// A fixed-membership consistent-hash ring over backend indices
/// `0..backends`. Liveness is external: every lookup takes an `is_up`
/// predicate, so down-marking never mutates (or re-sorts) the ring.
#[derive(Debug, Clone)]
pub struct Ring {
    /// `(point, backend)` sorted by point.
    points: Vec<(u64, u32)>,
    backends: usize,
}

impl Ring {
    /// A ring of `backends` members with `vnodes` equal-size arcs each
    /// (both clamped to at least 1). The arc→backend assignment is a
    /// balanced Fisher–Yates shuffle seeded from `(backends, vnodes)`,
    /// so every router built with the same member count derives the
    /// same ring.
    #[must_use]
    pub fn new(backends: usize, vnodes: usize) -> Self {
        let backends = backends.max(1);
        let vnodes = vnodes.max(1);
        let total = backends * vnodes;
        let mut owners: Vec<u32> = (0..total).map(|slot| (slot % backends) as u32).collect();
        let mut seed = {
            let mut hasher = Fnv128::new();
            hasher.write_frame(&(backends as u64).to_le_bytes());
            hasher.write_frame(&(vnodes as u64).to_le_bytes());
            mix(hasher.finish())
        };
        for i in (1..total).rev() {
            seed = seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let j = (mix64(seed) % (i as u64 + 1)) as usize;
            owners.swap(i, j);
        }
        let points = owners
            .into_iter()
            .enumerate()
            .map(|(slot, owner)| ((((slot as u128) << 64) / total as u128) as u64, owner))
            .collect();
        Ring { points, backends }
    }

    /// Number of member backends (up or down).
    #[must_use]
    pub fn backends(&self) -> usize {
        self.backends
    }

    /// The preference list for `key`: up to `want` distinct up backends,
    /// in clockwise walk order from the key's point. Element 0 is the
    /// primary; the rest are the replica/failover order. Down backends'
    /// points are skipped, which is exactly what bounds remapping: a key
    /// whose walk never met a down backend routes identically.
    #[must_use]
    pub fn route(
        &self,
        key: u128,
        want: usize,
        mut is_up: impl FnMut(usize) -> bool,
    ) -> Vec<usize> {
        let mut out = Vec::with_capacity(want.min(self.backends));
        if want == 0 {
            return out;
        }
        let point = mix(key);
        let start = self.points.partition_point(|&(p, _)| p < point);
        for i in 0..self.points.len() {
            let (_, backend) = self.points[(start + i) % self.points.len()];
            let backend = backend as usize;
            if !out.contains(&backend) && is_up(backend) {
                out.push(backend);
                if out.len() == want {
                    break;
                }
            }
        }
        out
    }

    /// The primary up backend for `key`, if any backend is up.
    #[must_use]
    pub fn primary(&self, key: u128, is_up: impl FnMut(usize) -> bool) -> Option<usize> {
        self.route(key, 1, is_up).first().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preference_lists_are_distinct_and_ordered_prefixes() {
        let ring = Ring::new(5, DEFAULT_VNODES);
        for key in 0..200u128 {
            let key = key.wrapping_mul(0x9e37_79b9_7f4a_7c15_f39c_c060_5ced_c835);
            let one = ring.route(key, 1, |_| true);
            let three = ring.route(key, 3, |_| true);
            let all = ring.route(key, 5, |_| true);
            assert_eq!(one, all[..1].to_vec());
            assert_eq!(three, all[..3].to_vec());
            let mut sorted = all.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), 5, "all distinct: {all:?}");
        }
    }

    #[test]
    fn down_backends_are_skipped_not_remapped_around() {
        let ring = Ring::new(4, DEFAULT_VNODES);
        for key in 0..500u128 {
            let key = key.wrapping_mul(0xa076_1d64_78bd_642f_e703_7ed1_a0b4_28db);
            let primary = ring.primary(key, |_| true).unwrap();
            let down = (primary + 1) % 4; // some *other* backend dies
            assert_eq!(
                ring.primary(key, |b| b != down),
                Some(primary),
                "key {key:x} must keep its primary when an unrelated backend dies"
            );
        }
    }

    #[test]
    fn every_backend_owns_exactly_vnodes_arcs() {
        for backends in 1..=9 {
            let ring = Ring::new(backends, DEFAULT_VNODES);
            let mut owned = vec![0usize; backends];
            for &(_, owner) in &ring.points {
                owned[owner as usize] += 1;
            }
            assert!(owned.iter().all(|&n| n == DEFAULT_VNODES), "{owned:?}");
        }
    }

    #[test]
    fn want_zero_and_all_down_yield_empty() {
        let ring = Ring::new(3, 8);
        assert!(ring.route(42, 0, |_| true).is_empty());
        assert!(ring.route(42, 2, |_| false).is_empty());
        assert_eq!(ring.primary(42, |_| false), None);
    }
}
