//! `ppet-cluster`: a consistent-hash shard router in front of N
//! `ppet-serve` compile services.
//!
//! One `merced serve` process caches and coalesces perfectly — for one
//! process. This crate is the horizontal-scale step: a router that
//! speaks the same HTTP/1.1 + `ppet-error/v1` contract as the backends
//! and places every compile on a shard by its *content* key (the same
//! FNV-1a-128 over canonical netlist bytes + effective config + seed
//! that keys each backend's own cache), so identical requests land on
//! the same shard's cache no matter which client sent them.
//!
//! The moving parts, each its own module:
//!
//! - [`ring`] — the consistent-hash [`Ring`] with virtual nodes. Keys
//!   map to a *preference list* of backends; membership changes remap
//!   only the affected arcs.
//! - [`proxy`] — outbound HTTP/1.1 with cooperative cancellation
//!   ([`CancelHandle`]), the primitive under hedged reads.
//! - [`router`] — the [`Router`]: accept loop, router-side in-flight
//!   coalescing (composing with each shard's per-process coalescing),
//!   hedging to the next replica after [`ClusterConfig::hedge`],
//!   failover with down-marking and probe-based recovery, replication
//!   of fresh results to [`ClusterConfig::replication`] ring replicas
//!   (verified `PUT /cache/<key>` — so killing any single shard never
//!   forces a recompile), and aggregated Prometheus `/metrics`
//!   (per-backend labels + cluster rollups via [`ppet_trace::expo`]).
//!
//! # Endpoints
//!
//! | Route | Meaning |
//! |---|---|
//! | `POST /compile` | route, hedge, and proxy a compile to its shard |
//! | `GET /healthz` | quorum health: 200 iff a strict majority of backends is up |
//! | `GET /metrics` | aggregated exposition: `backend="addr"`-labelled series + rollups + `cluster.*` |
//! | `POST /shutdown` | begin graceful drain |
//!
//! Shard failures surface as structured `ppet-error/v1` bodies: `502
//! upstream` when every candidate transport fails, `503 unavailable`
//! when no backend is up (or quorum is lost on `/healthz`). Requests
//! carry `X-Ppet-Request-Id` end to end — minted or sanitized at the
//! router, forwarded to the shard — so one ID correlates both tiers'
//! traces.
//!
//! The crate depends on `ppet-serve` for the shared HTTP/contract layer
//! and the [`CompileBackend`] used for keying, but *not* on `ppet-core`;
//! `ppet-core` mounts it as `merced cluster --addr <host:port>
//! --backend <addr>...`.

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod proxy;
pub mod ring;
pub mod router;

pub use proxy::{CancelHandle, Response};
pub use ring::{Ring, DEFAULT_VNODES};
pub use router::{ClusterConfig, Router, RouterHandle};

// Re-exported so router embedders name the keying contract without
// depending on `ppet-serve` directly.
pub use ppet_serve::{CacheKey, CompileBackend, CompileRequest};
