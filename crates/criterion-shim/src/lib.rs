//! Offline drop-in replacement for the subset of the `criterion` API the
//! ppet micro-benchmarks use.
//!
//! The build environment has no network access, so the real `criterion`
//! cannot be fetched; the workspace aliases
//! `criterion = { package = "ppet-criterion-shim", ... }` and the bench
//! files compile unchanged. This shim is a simple wall-clock harness: per
//! benchmark it calibrates an iteration count, takes `sample_size` timed
//! samples, and prints min/median/mean ns-per-iteration (plus throughput
//! when configured). It has no statistical analysis, baselines, or HTML
//! reports — enough to rank hot paths and catch large regressions, not a
//! substitute for the real criterion when network access exists.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::time::{Duration, Instant};

/// Opaque value barrier (re-exported for bench code that imports it from
/// `criterion` rather than `std::hint`).
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Units for reporting per-second rates alongside per-iteration times.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// `n` logical elements processed per iteration.
    Elements(u64),
    /// `n` bytes processed per iteration.
    Bytes(u64),
}

/// Identifies one benchmark within a group.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter`, criterion's two-part id.
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{parameter}", function_name.into()),
        }
    }

    /// An id that is just the parameter value.
    #[must_use]
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(id: &str) -> Self {
        BenchmarkId { id: id.to_owned() }
    }
}

impl From<String> for BenchmarkId {
    fn from(id: String) -> Self {
        BenchmarkId { id }
    }
}

/// Times one benchmark body. Passed to the closure given to
/// [`BenchmarkGroup::bench_function`] / [`BenchmarkGroup::bench_with_input`].
pub struct Bencher {
    iterations: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Runs `body` for the harness-chosen number of iterations and records
    /// the elapsed wall-clock time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut body: F) {
        let start = Instant::now();
        for _ in 0..self.iterations {
            black_box(body());
        }
        self.elapsed = start.elapsed();
    }
}

/// The benchmark harness entry point (a stand-in for criterion's).
pub struct Criterion {
    filter: Option<String>,
}

impl Default for Criterion {
    /// Reads an optional substring filter from the command line (cargo
    /// passes flags like `--bench`; the first non-flag argument, if any,
    /// selects which benchmarks run).
    fn default() -> Self {
        let filter = std::env::args().skip(1).find(|arg| !arg.starts_with('-'));
        Criterion { filter }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 10,
            throughput: None,
        }
    }

    /// Runs one stand-alone benchmark (an implicit single-entry group).
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: F,
    ) -> &mut Self {
        let mut group = self.benchmark_group("");
        group.bench_function(id, f);
        group.finish();
        self
    }

    fn matches(&self, full_name: &str) -> bool {
        match self.filter.as_deref() {
            Some(needle) => full_name.contains(needle),
            None => true,
        }
    }
}

/// A group of benchmarks sharing a name prefix, sample size, and
/// throughput annotation.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

/// Total time budget per benchmark; sampling stops early past this.
const TIME_BUDGET: Duration = Duration::from_secs(3);

/// Target wall-clock per timed sample when calibrating iteration counts.
const TARGET_SAMPLE: Duration = Duration::from_millis(5);

impl BenchmarkGroup<'_> {
    /// Sets how many timed samples to take (criterion's `sample_size`).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Annotates iterations with a throughput so a rate is reported.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Benchmarks `f` with a reference to `input`.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let id = id.into();
        self.run(&id, |bencher| f(bencher, input));
        self
    }

    /// Benchmarks `f` with no input.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: F,
    ) -> &mut Self {
        let id = id.into();
        self.run(&id, |bencher| f(bencher));
        self
    }

    /// Ends the group (retained for API compatibility; prints nothing).
    pub fn finish(self) {}

    fn run(&mut self, id: &BenchmarkId, mut body: impl FnMut(&mut Bencher)) {
        let full_name = if self.name.is_empty() {
            id.id.clone()
        } else {
            format!("{}/{}", self.name, id.id)
        };
        if !self.criterion.matches(&full_name) {
            return;
        }

        // Calibrate: grow the per-sample iteration count until one sample
        // costs at least TARGET_SAMPLE (or the budget says stop).
        let started = Instant::now();
        let mut iterations = 1u64;
        let mut bencher = Bencher {
            iterations,
            elapsed: Duration::ZERO,
        };
        loop {
            bencher.iterations = iterations;
            body(&mut bencher);
            if bencher.elapsed >= TARGET_SAMPLE
                || started.elapsed() >= TIME_BUDGET / 2
                || iterations >= 1 << 40
            {
                break;
            }
            iterations = iterations.saturating_mul(2);
        }

        let mut per_iter_ns: Vec<f64> = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            bencher.iterations = iterations;
            body(&mut bencher);
            per_iter_ns.push(bencher.elapsed.as_nanos() as f64 / iterations as f64);
            if started.elapsed() >= TIME_BUDGET {
                break;
            }
        }
        per_iter_ns.sort_by(|a, b| a.total_cmp(b));
        let min = per_iter_ns.first().copied().unwrap_or(0.0);
        let median = per_iter_ns[per_iter_ns.len() / 2];
        let mean = per_iter_ns.iter().sum::<f64>() / per_iter_ns.len() as f64;

        let rate = match self.throughput {
            Some(Throughput::Elements(n)) if median > 0.0 => {
                format!("  {:>12.0} elem/s", n as f64 * 1e9 / median)
            }
            Some(Throughput::Bytes(n)) if median > 0.0 => {
                format!("  {:>12.0} B/s", n as f64 * 1e9 / median)
            }
            _ => String::new(),
        };
        println!(
            "bench {full_name:<48} {median:>14.1} ns/iter (min {min:.1}, mean {mean:.1}, \
             {} samples x {iterations} iters){rate}",
            per_iter_ns.len(),
        );
    }
}

/// Bundles benchmark functions into a runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generates `main` for a `harness = false` bench target.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("shim");
        group.sample_size(3);
        group.throughput(Throughput::Elements(64));
        group.bench_with_input(BenchmarkId::new("sum", 64), &64u64, |b, &n| {
            b.iter(|| (0..n).map(black_box).sum::<u64>())
        });
        group.bench_function("plain", |b| b.iter(|| black_box(1u64) + 1));
        group.finish();
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn harness_runs_and_times() {
        benches();
    }

    #[test]
    fn ids_format_like_criterion() {
        assert_eq!(BenchmarkId::new("lfsr_step", 16).id, "lfsr_step/16");
        assert_eq!(BenchmarkId::from_parameter("s27").id, "s27");
    }
}
