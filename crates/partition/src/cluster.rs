//! Cluster bookkeeping.

use ppet_netlist::CellId;

/// Identifier of a cluster within a [`Clustering`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ClusterId(pub u32);

impl ClusterId {
    /// Dense index.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A disjoint clustering of all graph nodes.
///
/// Maintains both directions of the mapping: per-node cluster id and
/// per-cluster sorted member lists.
///
/// # Examples
///
/// ```
/// use ppet_netlist::CellId;
/// use ppet_partition::Clustering;
///
/// let ids = [0u32, 0, 1, 1, 0];
/// let c = Clustering::from_assignment(ids.iter().map(|&x| x).collect());
/// assert_eq!(c.num_clusters(), 2);
/// assert_eq!(c.members(ppet_partition::ClusterId(0)).len(), 3);
/// assert_eq!(c.cluster_of(CellId::from_index(2)), ppet_partition::ClusterId(1));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Clustering {
    assignment: Vec<u32>,
    clusters: Vec<Vec<CellId>>,
}

impl Clustering {
    /// Builds a clustering from a per-node assignment vector. Cluster ids
    /// are renumbered densely in order of first appearance.
    #[must_use]
    pub fn from_assignment(raw: Vec<u32>) -> Self {
        let mut remap: std::collections::HashMap<u32, u32> = std::collections::HashMap::new();
        let mut assignment = Vec::with_capacity(raw.len());
        let mut clusters: Vec<Vec<CellId>> = Vec::new();
        for (i, &c) in raw.iter().enumerate() {
            let dense = *remap.entry(c).or_insert_with(|| {
                clusters.push(Vec::new());
                (clusters.len() - 1) as u32
            });
            assignment.push(dense);
            clusters[dense as usize].push(CellId::from_index(i));
        }
        Self {
            assignment,
            clusters,
        }
    }

    /// Builds a clustering whose cluster indices are exactly the assignment
    /// values (which must be dense, `0..num_clusters`). Unlike
    /// [`Clustering::from_assignment`], the given numbering is preserved —
    /// used when the caller has already ordered clusters (e.g. by
    /// descending input count, paper Table 4 STEP 6).
    ///
    /// # Panics
    ///
    /// Panics if any assignment value is `≥ num_clusters`.
    #[must_use]
    pub fn from_dense(raw: Vec<u32>, num_clusters: usize) -> Self {
        let mut clusters: Vec<Vec<CellId>> = vec![Vec::new(); num_clusters];
        for (i, &c) in raw.iter().enumerate() {
            assert!(
                (c as usize) < num_clusters,
                "assignment value {c} out of range"
            );
            clusters[c as usize].push(CellId::from_index(i));
        }
        Self {
            assignment: raw,
            clusters,
        }
    }

    /// A single cluster holding every node (`n` nodes).
    #[must_use]
    pub fn single(n: usize) -> Self {
        Self::from_assignment(vec![0; n])
    }

    /// Number of nodes.
    #[must_use]
    pub fn num_nodes(&self) -> usize {
        self.assignment.len()
    }

    /// Number of clusters.
    #[must_use]
    pub fn num_clusters(&self) -> usize {
        self.clusters.len()
    }

    /// The cluster containing `node`.
    #[must_use]
    pub fn cluster_of(&self, node: CellId) -> ClusterId {
        ClusterId(self.assignment[node.index()])
    }

    /// Members of a cluster, ascending by node id.
    #[must_use]
    pub fn members(&self, cluster: ClusterId) -> &[CellId] {
        &self.clusters[cluster.index()]
    }

    /// All clusters.
    pub fn iter(&self) -> impl Iterator<Item = (ClusterId, &[CellId])> {
        self.clusters
            .iter()
            .enumerate()
            .map(|(i, m)| (ClusterId(i as u32), m.as_slice()))
    }

    /// Moves `node` into `target`, keeping member lists sorted. Empty
    /// clusters are retained (ids stay stable); use
    /// [`Clustering::compact`] to drop them.
    pub fn reassign(&mut self, node: CellId, target: ClusterId) {
        let from = self.assignment[node.index()];
        if from == target.0 {
            return;
        }
        let members = &mut self.clusters[from as usize];
        if let Ok(pos) = members.binary_search(&node) {
            members.remove(pos);
        }
        self.assignment[node.index()] = target.0;
        let t = &mut self.clusters[target.index()];
        if let Err(pos) = t.binary_search(&node) {
            t.insert(pos, node);
        }
    }

    /// Renumbers clusters densely, dropping empty ones.
    #[must_use]
    pub fn compact(&self) -> Self {
        Self::from_assignment(self.assignment.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_assignment_renumbers_densely() {
        let c = Clustering::from_assignment(vec![7, 7, 3, 7, 3]);
        assert_eq!(c.num_clusters(), 2);
        assert_eq!(c.members(ClusterId(0)).len(), 3); // the "7" group
        assert_eq!(c.members(ClusterId(1)).len(), 2);
    }

    #[test]
    fn members_are_sorted() {
        let c = Clustering::from_assignment(vec![0, 1, 0, 1, 0]);
        let m: Vec<usize> = c.members(ClusterId(0)).iter().map(|x| x.index()).collect();
        assert_eq!(m, vec![0, 2, 4]);
    }

    #[test]
    fn reassign_moves_and_keeps_invariants() {
        let mut c = Clustering::from_assignment(vec![0, 0, 1]);
        c.reassign(CellId::from_index(0), ClusterId(1));
        assert_eq!(c.cluster_of(CellId::from_index(0)), ClusterId(1));
        assert_eq!(c.members(ClusterId(0)).len(), 1);
        let m: Vec<usize> = c.members(ClusterId(1)).iter().map(|x| x.index()).collect();
        assert_eq!(m, vec![0, 2]);
        // Reassigning to the same cluster is a no-op.
        c.reassign(CellId::from_index(0), ClusterId(1));
        assert_eq!(c.members(ClusterId(1)).len(), 2);
    }

    #[test]
    fn compact_drops_empty_clusters() {
        let mut c = Clustering::from_assignment(vec![0, 1]);
        c.reassign(CellId::from_index(0), ClusterId(1));
        assert_eq!(c.num_clusters(), 2);
        let compacted = c.compact();
        assert_eq!(compacted.num_clusters(), 1);
        assert_eq!(compacted.num_nodes(), 2);
    }

    #[test]
    fn single_covers_everything() {
        let c = Clustering::single(5);
        assert_eq!(c.num_clusters(), 1);
        assert_eq!(c.members(ClusterId(0)).len(), 5);
    }
}
