//! Partition validity checks.

use ppet_graph::CircuitGraph;

use crate::cluster::Clustering;
use crate::inputs;

/// A violation found by [`check`].
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum PartitionIssue {
    /// A cluster's input count exceeds the constraint.
    InputConstraint {
        /// Cluster index.
        cluster: usize,
        /// Its ι.
        inputs: usize,
        /// The limit `l_k`.
        lk: usize,
    },
    /// The clustering does not cover every node exactly once (impossible
    /// with [`Clustering`] unless constructed inconsistently with the
    /// graph).
    Coverage {
        /// Nodes in the graph.
        graph_nodes: usize,
        /// Nodes in the clustering.
        clustering_nodes: usize,
    },
}

impl std::fmt::Display for PartitionIssue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::InputConstraint {
                cluster,
                inputs,
                lk,
            } => {
                write!(f, "cluster {cluster} has {inputs} inputs > l_k = {lk}")
            }
            Self::Coverage {
                graph_nodes,
                clustering_nodes,
            } => write!(
                f,
                "clustering covers {clustering_nodes} nodes but the graph has {graph_nodes}"
            ),
        }
    }
}

/// Checks a clustering against the PIC constraints (paper Eq. (5)).
///
/// # Examples
///
/// ```
/// use ppet_graph::CircuitGraph;
/// use ppet_netlist::data;
/// use ppet_partition::{validate::check, Clustering};
///
/// let g = CircuitGraph::from_circuit(&data::s27());
/// let whole = Clustering::single(g.num_nodes());
/// // One cluster with 4 inputs: fine at l_k = 4, violated at l_k = 3.
/// assert!(check(&g, &whole, 4).is_empty());
/// assert_eq!(check(&g, &whole, 3).len(), 1);
/// ```
#[must_use]
pub fn check(graph: &CircuitGraph, clustering: &Clustering, lk: usize) -> Vec<PartitionIssue> {
    let mut issues = Vec::new();
    if clustering.num_nodes() != graph.num_nodes() {
        issues.push(PartitionIssue::Coverage {
            graph_nodes: graph.num_nodes(),
            clustering_nodes: clustering.num_nodes(),
        });
        return issues;
    }
    for (id, _) in clustering.iter() {
        let inputs = inputs::input_count(graph, clustering, id);
        if inputs > lk {
            issues.push(PartitionIssue::InputConstraint {
                cluster: id.index(),
                inputs,
                lk,
            });
        }
    }
    issues
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppet_netlist::data;

    #[test]
    fn coverage_mismatch_detected() {
        let g = CircuitGraph::from_circuit(&data::s27());
        let short = Clustering::single(3);
        let issues = check(&g, &short, 16);
        assert!(matches!(issues[0], PartitionIssue::Coverage { .. }));
        assert!(issues[0].to_string().contains("covers 3 nodes"));
    }

    #[test]
    fn input_violation_message() {
        let g = CircuitGraph::from_circuit(&data::s27());
        let whole = Clustering::single(g.num_nodes());
        let issues = check(&g, &whole, 2);
        assert_eq!(issues.len(), 1);
        assert!(issues[0].to_string().contains("l_k = 2"));
    }
}
