//! Input counting ι (paper Eq. (5)) and cut-net accounting.

use ppet_graph::{scc::Scc, CircuitGraph, NetId};

use crate::cluster::{ClusterId, Clustering};

/// The distinct input nets of a cluster — the paper's ι(π) with
/// "including primary inputs" (Eq. (5)):
///
/// * nets driven outside the cluster with a sink inside, plus
/// * primary-input nets whose PI cell sits *inside* the cluster (the CBIT
///   must still supply those bits, the chip boundary is outside every
///   cluster).
///
/// # Examples
///
/// ```
/// use ppet_graph::CircuitGraph;
/// use ppet_netlist::data;
/// use ppet_partition::{inputs::input_nets, ClusterId, Clustering};
///
/// let g = CircuitGraph::from_circuit(&data::s27());
/// let all_in_one = Clustering::single(g.num_nodes());
/// // One big cluster: its only inputs are the four PIs.
/// assert_eq!(input_nets(&g, &all_in_one, ClusterId(0)).len(), 4);
/// ```
#[must_use]
pub fn input_nets(graph: &CircuitGraph, clustering: &Clustering, cluster: ClusterId) -> Vec<NetId> {
    let mut nets = Vec::new();
    for &member in clustering.members(cluster) {
        for &driver in graph.fanin(member) {
            if clustering.cluster_of(driver) != cluster || graph.is_input(driver) {
                nets.push(driver);
            }
        }
        if graph.is_input(member) {
            nets.push(member);
        }
    }
    nets.sort_unstable();
    nets.dedup();
    nets
}

/// ι(π): the input count of a cluster.
#[must_use]
pub fn input_count(graph: &CircuitGraph, clustering: &Clustering, cluster: ClusterId) -> usize {
    input_nets(graph, clustering, cluster).len()
}

/// All cut nets of a clustering: nets with the driver in one cluster and at
/// least one sink in another. Sorted ascending.
#[must_use]
pub fn cut_nets(graph: &CircuitGraph, clustering: &Clustering) -> Vec<NetId> {
    let mut out = Vec::new();
    for (net, n) in graph.nets() {
        let home = clustering.cluster_of(n.src());
        if n.sinks().iter().any(|&s| clustering.cluster_of(s) != home) {
            out.push(net);
        }
    }
    out
}

/// The subset of `cuts` lying inside cyclic strongly connected components —
/// the paper's "cut nets on SCC" column (Tables 10–11): a cut there
/// competes for the SCC's retiming register budget.
#[must_use]
pub fn cuts_on_scc(graph: &CircuitGraph, scc: &Scc, cuts: &[NetId]) -> Vec<NetId> {
    cuts.iter()
        .copied()
        .filter(|&n| scc.net_in_cyclic_component(graph, n))
        .collect()
}

/// Number of cut nets a merge of two clusters would absorb: nets running
/// from one cluster into the other (in either direction). This is the tie
/// break of the paper's Table 8 STEP 3.2.1.
#[must_use]
pub fn cut_nets_between(
    graph: &CircuitGraph,
    clustering: &Clustering,
    a: ClusterId,
    b: ClusterId,
) -> usize {
    let mut count = 0;
    for &(from, to) in &[(a, b), (b, a)] {
        for &member in clustering.members(from) {
            let net = graph.net(member);
            if !net.sinks().is_empty()
                && net.sinks().iter().any(|&s| clustering.cluster_of(s) == to)
            {
                count += 1;
            }
        }
    }
    count
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppet_netlist::data;

    fn s27() -> CircuitGraph {
        CircuitGraph::from_circuit(&data::s27())
    }

    /// Clusters s27 by hand: PIs+front half vs back half.
    fn two_way(g: &CircuitGraph) -> Clustering {
        let group_b = ["G9", "G11", "G15", "G16", "G17", "G5", "G6"];
        let raw: Vec<u32> = g
            .nodes()
            .map(|v| u32::from(group_b.contains(&g.node_name(v))))
            .collect();
        Clustering::from_assignment(raw)
    }

    #[test]
    fn whole_circuit_inputs_are_the_pis() {
        let g = s27();
        let c = Clustering::single(g.num_nodes());
        let nets = input_nets(&g, &c, ClusterId(0));
        let names: Vec<&str> = nets.iter().map(|&n| g.node_name(n)).collect();
        assert_eq!(names, vec!["G0", "G1", "G2", "G3"]);
        assert!(cut_nets(&g, &c).is_empty());
    }

    #[test]
    fn two_way_cut_accounting() {
        let g = s27();
        let c = two_way(&g);
        let cuts = cut_nets(&g, &c);
        assert!(!cuts.is_empty());
        // Every cut net's driver and some sink are in different clusters.
        for &n in &cuts {
            let home = c.cluster_of(g.net(n).src());
            assert!(g.net(n).sinks().iter().any(|&s| c.cluster_of(s) != home));
        }
        // Cluster 1 contains no PIs, so its inputs all come from outside.
        let in1 = input_nets(&g, &c, ClusterId(1));
        for &n in &in1 {
            assert_ne!(c.cluster_of(n), ClusterId(1));
        }
    }

    #[test]
    fn pi_inside_cluster_still_counts() {
        let g = s27();
        // Put G0 alone with its inverter G14.
        let raw: Vec<u32> = g
            .nodes()
            .map(|v| u32::from(matches!(g.node_name(v), "G0" | "G14")))
            .collect();
        let c = Clustering::from_assignment(raw);
        let g0 = g.find("G0").unwrap();
        let own = c.cluster_of(g0);
        let inputs = input_nets(&g, &c, own);
        // G0's net is an input of its own cluster (PI rule).
        assert!(inputs.contains(&g0));
    }

    #[test]
    fn cuts_on_scc_subset_of_cuts() {
        let g = s27();
        let scc = ppet_graph::scc::Scc::of(&g);
        let c = two_way(&g);
        let cuts = cut_nets(&g, &c);
        let on_scc = cuts_on_scc(&g, &scc, &cuts);
        assert!(on_scc.len() <= cuts.len());
        for n in &on_scc {
            assert!(cuts.contains(n));
        }
    }

    #[test]
    fn cut_nets_between_counts_both_directions() {
        let g = s27();
        let c = two_way(&g);
        let between = cut_nets_between(&g, &c, ClusterId(0), ClusterId(1));
        // Merging the two clusters absorbs every cut net.
        assert_eq!(between, cut_nets(&g, &c).len());
    }
}
