//! Boundary refinement of a finished partition.
//!
//! The paper's pipeline stops at `Assign_CBIT`; this module adds the
//! natural post-pass the authors leave on the table: Fiduccia–Mattheyses
//! style boundary moves. A cell sitting on a cut boundary is moved to a
//! neighbouring partition when that strictly reduces the number of cut
//! nets while keeping both partitions within the input constraint — the
//! classic gain-driven refinement, here in its simple greedy-pass form
//! (no bucket structure; partitions are small enough that recomputing
//! local gains is cheap). Used by the ablation harness to quantify how
//! much slack the congestion-guided clustering leaves behind.

use ppet_graph::{CircuitGraph, NetId};
use ppet_netlist::CellId;

use crate::cluster::{ClusterId, Clustering};
use crate::inputs;

/// Refinement outcome.
#[derive(Debug, Clone)]
pub struct RefineResult {
    /// The refined clustering.
    pub clustering: Clustering,
    /// Cut nets after refinement.
    pub cut_nets: Vec<NetId>,
    /// Number of accepted moves.
    pub moves: usize,
    /// Number of full passes performed.
    pub passes: usize,
}

/// Greedily refines `clustering` under input constraint `lk`: repeatedly
/// move boundary cells to adjacent partitions while each move strictly
/// reduces the cut count and respects `ι ≤ l_k` on both sides, until a
/// full pass makes no move (or `max_passes` is reached).
///
/// Never moves a partition's last cell (partition count is preserved).
///
/// # Examples
///
/// ```
/// use ppet_flow::{saturate_network, FlowParams};
/// use ppet_graph::{scc::Scc, CircuitGraph};
/// use ppet_netlist::data;
/// use ppet_partition::{assign_cbit, make_group, refine, MakeGroupParams};
///
/// let g = CircuitGraph::from_circuit(&data::s27());
/// let scc = Scc::of(&g);
/// let profile = saturate_network(&g, &FlowParams::quick(), 1);
/// let grouped = make_group(&g, &scc, &profile, &MakeGroupParams::new(4));
/// let assigned = assign_cbit(&g, grouped.clustering, 4);
/// let before = assigned.cut_nets.len();
/// let refined = refine::greedy_refine(&g, assigned.clustering, 4, 8);
/// assert!(refined.cut_nets.len() <= before);
/// ```
#[must_use]
pub fn greedy_refine(
    graph: &CircuitGraph,
    clustering: Clustering,
    lk: usize,
    max_passes: usize,
) -> RefineResult {
    let mut clustering = clustering;
    let mut moves = 0usize;
    let mut passes = 0usize;
    let mut current_cuts = inputs::cut_nets(graph, &clustering).len();

    while passes < max_passes {
        passes += 1;
        let mut changed = false;
        for cell in graph.nodes() {
            let home = clustering.cluster_of(cell);
            if clustering.members(home).len() <= 1 {
                continue; // never empty a partition
            }
            // Candidate targets: partitions of the cell's neighbours.
            let mut targets: Vec<ClusterId> = graph
                .undirected_neighbors(cell)
                .iter()
                .map(|&w| clustering.cluster_of(w))
                .filter(|&t| t != home)
                .collect();
            targets.sort_unstable();
            targets.dedup();
            if targets.is_empty() {
                continue; // interior cell
            }
            // Try each target; accept the best strictly improving move.
            let mut best: Option<(usize, ClusterId)> = None;
            for &target in &targets {
                clustering.reassign(cell, target);
                let ok = inputs::input_count(graph, &clustering, target) <= lk
                    && inputs::input_count(graph, &clustering, home) <= lk;
                if ok {
                    let cuts = local_cut_count(graph, &clustering, cell, current_cuts);
                    if cuts < current_cuts && best.map_or(true, |(b, _)| cuts < b) {
                        best = Some((cuts, target));
                    }
                }
                clustering.reassign(cell, home);
            }
            if let Some((cuts, target)) = best {
                clustering.reassign(cell, target);
                current_cuts = cuts;
                moves += 1;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }

    let cut_nets = inputs::cut_nets(graph, &clustering);
    debug_assert_eq!(cut_nets.len(), current_cuts);
    RefineResult {
        clustering,
        cut_nets,
        moves,
        passes,
    }
}

/// Cut count after a tentative move of `cell`, computed incrementally:
/// only the nets touching `cell` (its own and its fan-ins) can change
/// state, so adjust `baseline` by the delta over those nets re-evaluated
/// against the *pre-move* clustering. Callers pass the clustering already
/// containing the tentative move, so this recomputes the affected nets
/// from scratch against it and reconciles with a full recount of the
/// untouched remainder implied by `baseline`.
fn local_cut_count(
    graph: &CircuitGraph,
    clustering: &Clustering,
    cell: CellId,
    _baseline: usize,
) -> usize {
    // The affected-net delta bookkeeping is easy to get subtly wrong when
    // `cell`'s fan-in nets overlap its own net; partitions here are small,
    // so a full recount keeps the refinement trustworthy. (The function
    // boundary stays: swapping in a true incremental count later touches
    // only this body.)
    let _ = cell;
    inputs::cut_nets(graph, clustering).len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assign_cbit_impl::assign_cbit;
    use crate::make_group::{make_group, MakeGroupParams};
    use ppet_flow::{saturate_network, FlowParams};
    use ppet_graph::scc::Scc;
    use ppet_netlist::{data, SynthSpec, Synthesizer};

    fn partitioned(circuit: &ppet_netlist::Circuit, lk: usize) -> (CircuitGraph, Clustering) {
        let g = CircuitGraph::from_circuit(circuit);
        let scc = Scc::of(&g);
        let profile = saturate_network(&g, &FlowParams::quick(), 1996);
        let grouped = make_group(&g, &scc, &profile, &MakeGroupParams::new(lk));
        let assigned = assign_cbit(&g, grouped.clustering, lk);
        (g, assigned.clustering)
    }

    #[test]
    fn never_increases_cuts_and_respects_lk() {
        let circuit = Synthesizer::new(
            SynthSpec::new("refine")
                .primary_inputs(6)
                .flip_flops(8)
                .dffs_on_scc(5)
                .gates(90)
                .inverters(20)
                .seed(4),
        )
        .build();
        let lk = 6;
        let (g, clustering) = partitioned(&circuit, lk);
        let before = inputs::cut_nets(&g, &clustering).len();
        let n_parts = clustering.num_clusters();
        let refined = greedy_refine(&g, clustering, lk, 10);
        assert!(refined.cut_nets.len() <= before);
        for (id, members) in refined.clustering.iter() {
            assert!(!members.is_empty());
            assert!(inputs::input_count(&g, &refined.clustering, id) <= lk);
        }
        assert_eq!(refined.clustering.num_clusters(), n_parts);
    }

    #[test]
    fn converges_before_max_passes_on_small_circuits() {
        let (g, clustering) = partitioned(&data::s27(), 4);
        let refined = greedy_refine(&g, clustering, 4, 50);
        assert!(refined.passes < 50, "did not converge: {}", refined.passes);
        // Re-running on the result changes nothing.
        let again = greedy_refine(&g, refined.clustering.clone(), 4, 50);
        assert_eq!(again.moves, 0);
        assert_eq!(again.cut_nets, refined.cut_nets);
    }

    #[test]
    fn zero_passes_is_identity() {
        let (g, clustering) = partitioned(&data::s27(), 4);
        let before = inputs::cut_nets(&g, &clustering);
        let refined = greedy_refine(&g, clustering, 4, 0);
        assert_eq!(refined.cut_nets, before);
        assert_eq!(refined.moves, 0);
    }
}
