//! Input-constrained circuit partitioning for PPET (paper §2.3 and §3).
//!
//! The *partition with input constraint* (PIC) problem: dissect the circuit
//! into disjoint clusters, each with at most `l_k` inputs, cutting as few
//! nets as possible — every cut net becomes one CBIT test-register bit.
//! PIC is NP-complete (the paper's reference \[4\]), so Merced uses the
//! congestion-guided heuristic of §3:
//!
//! * [`make_group`] — the clustering driver (paper Table 4): pop congestion
//!   boundaries from the sorted distance stack and re-split oversized
//!   clusters (`Make_Set`, Table 5) until every cluster satisfies the
//!   input constraint, honouring the per-SCC retiming budget
//!   `χ(SCC) ≤ β · f(SCC)` (Eq. (6), [`budget`]);
//! * [`assign_cbit`] — the greedy merge pass (Table 8) that packs small
//!   clusters into full CBIT widths using the gain function
//!   `γ = l_k − ι(ω₁+ω₂)` (Eq. (7));
//! * [`refine`] — a Fiduccia–Mattheyses-style boundary refinement
//!   post-pass (an extension beyond the paper, used by the ablations);
//! * [`sa`] — a simulated-annealing PIC partitioner, reimplementing the
//!   authors' earlier comparison point (\[4\], CICC 1994) as the baseline for
//!   the ablation experiments;
//! * [`inputs`] — the input-counting function ι (Eq. (5)) and cut-net
//!   accounting shared by all of the above.
//!
//! # Examples
//!
//! Reproduce the paper's s27 walkthrough (Figs. 5–7) at `l_k = 3`:
//!
//! ```
//! use ppet_flow::{saturate_network, FlowParams};
//! use ppet_graph::{scc::Scc, CircuitGraph};
//! use ppet_netlist::data;
//! use ppet_partition::{assign_cbit, make_group, MakeGroupParams};
//!
//! let g = CircuitGraph::from_circuit(&data::s27());
//! let scc = Scc::of(&g);
//! let profile = saturate_network(&g, &FlowParams::paper(), 1996);
//! let grouped = make_group(&g, &scc, &profile, &MakeGroupParams::new(3));
//! let assigned = assign_cbit(&g, grouped.clustering.clone(), 3);
//! assert!(assigned.partitions.iter().all(|p| p.input_nets.len() <= 3));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod budget;
mod cluster;
pub mod inputs;
mod make_group;
pub mod refine;
pub mod sa;
pub mod validate;

mod assign_cbit_impl;

pub use assign_cbit_impl::{assign_cbit, assign_cbit_traced, CbitAssignment, Partition};
pub use cluster::{ClusterId, Clustering};
pub use make_group::{make_group, make_group_traced, MakeGroupParams, MakeGroupResult};
