//! `Assign_CBIT` — greedy cluster merging into full CBIT widths
//! (paper Table 8).

use std::collections::{BTreeSet, HashMap};

use ppet_graph::{CircuitGraph, NetId};
use ppet_netlist::CellId;
use ppet_trace::Tracer;

use crate::cluster::Clustering;
use crate::inputs;

/// One final partition (a CUT) with its CBIT input assignment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Partition {
    /// Member cells, ascending.
    pub members: Vec<CellId>,
    /// The distinct input nets ι(π) this partition's pattern generator
    /// must drive.
    pub input_nets: Vec<NetId>,
}

impl Partition {
    /// ι(π), the partition's input width.
    #[must_use]
    pub fn input_count(&self) -> usize {
        self.input_nets.len()
    }
}

/// The result of [`assign_cbit`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CbitAssignment {
    /// Final partitions, in the order the greedy pass closed them.
    pub partitions: Vec<Partition>,
    /// The merged clustering (one cluster per partition).
    pub clustering: Clustering,
    /// All cut nets of the final clustering.
    pub cut_nets: Vec<NetId>,
    /// Number of merges performed.
    pub merges: usize,
    /// Number of merge candidates evaluated across the whole greedy pass
    /// (feasible or not) — a measure of how much work step 3.2.1 did.
    pub merge_attempts: usize,
}

/// One live cluster during merging.
struct Live {
    members: Vec<CellId>,
    inputs: Vec<NetId>,
}

/// Runs the greedy merge pass of the paper's Table 8:
///
/// ```text
/// STEP 3 while clusters remain:
///   3.1  O = cluster with the largest input count
///   3.2  while ι(O) < l_k and unvisited clusters remain:
///     3.2.1  pick the best feasible g: maximal gain γ = l_k − ι(O+g) ≥ 0,
///            ties broken by the number of cut nets the merge removes
///     3.2.2  if feasible, O = O + g
///   3.3  close O as a partition
/// ```
///
/// Merging small clusters into one CBIT exploits Table 1's economy of
/// scale: per-bit CBIT cost σ_k falls as the length grows, so one 16-bit
/// CBIT beats four 4-bit ones.
///
/// The implementation avoids the quadratic candidate scan of the literal
/// pseudo-code: a cluster *unrelated* to `O` (no shared input nets, no
/// nets crossing between them) merges to exactly `ι(O) + ι(g)` inputs with
/// zero cut removal, so the best unrelated candidate is simply the live
/// cluster with the smallest ι — kept in an ordered index — while only the
/// (few) related clusters need exact evaluation. The selected merge is
/// identical to the full scan's.
///
/// # Examples
///
/// See the crate-level example, which reproduces the paper's s27
/// walkthrough.
#[must_use]
pub fn assign_cbit(graph: &CircuitGraph, clustering: Clustering, lk: usize) -> CbitAssignment {
    assign_cbit_traced(graph, clustering, lk, &Tracer::noop())
}

/// [`assign_cbit`] with observability: reports merges performed, merge
/// candidates evaluated, and final partition count as `assign.*` counters.
///
/// The assignment is identical to the untraced call; a disabled tracer
/// records nothing.
#[must_use]
pub fn assign_cbit_traced(
    graph: &CircuitGraph,
    clustering: Clustering,
    lk: usize,
    tracer: &Tracer,
) -> CbitAssignment {
    let mut live: Vec<Option<Live>> = clustering
        .iter()
        .map(|(id, members)| {
            Some(Live {
                members: members.to_vec(),
                inputs: inputs::input_nets(graph, &clustering, id),
            })
        })
        .collect();
    let n_nodes = clustering.num_nodes();
    let mut owner: Vec<u32> = (0..n_nodes)
        .map(|i| clustering.cluster_of(CellId::from_index(i)).0)
        .collect();

    // Ordered index of live clusters by (ι, idx) and per-net input index.
    let mut by_iota: BTreeSet<(usize, usize)> = live
        .iter()
        .enumerate()
        .map(|(i, l)| (l.as_ref().expect("all live").inputs.len(), i))
        .collect();
    let mut input_index: HashMap<NetId, BTreeSet<usize>> = HashMap::new();
    for (i, l) in live.iter().enumerate() {
        for &n in &l.as_ref().expect("all live").inputs {
            input_index.entry(n).or_default().insert(i);
        }
    }

    // Merged ι of O ∪ g: inputs of either side whose driver is not in the
    // other side — except PI nets, which always stay inputs.
    let merged_inputs = |a: &Live, b: &Live, owner: &[u32], ida: u32, idb: u32| -> Vec<NetId> {
        let mut out = Vec::with_capacity(a.inputs.len() + b.inputs.len());
        for &n in &a.inputs {
            if owner[n.index()] != idb || graph.is_input(n) {
                out.push(n);
            }
        }
        for &n in &b.inputs {
            if owner[n.index()] != ida || graph.is_input(n) {
                out.push(n);
            }
        }
        out.sort_unstable();
        out.dedup();
        out
    };
    // Cut nets absorbed by merging a and b (Table 8 tie-break).
    let cuts_between = |a: &Live, b: &Live, owner: &[u32], ida: u32, idb: u32| -> usize {
        let mut count = 0;
        for (members, other) in [(&a.members, idb), (&b.members, ida)] {
            for &m in members.iter() {
                let net = graph.net(m);
                if net.sinks().iter().any(|&s| owner[s.index()] == other) {
                    count += 1;
                }
            }
        }
        count
    };

    let mut partitions: Vec<Partition> = Vec::new();
    let mut merges = 0usize;
    let mut merge_attempts = 0usize;
    // O = remaining cluster with the largest input count (ties: the
    // smallest index, matching the paper's deterministic extraction;
    // `next_back` gives max ι but the LARGEST idx on ties, so scan the tie
    // range for the smallest idx).
    while let Some(&(max_iota, last_idx)) = by_iota.iter().next_back() {
        let seed = by_iota
            .range((max_iota, 0)..=(max_iota, usize::MAX))
            .map(|&(_, i)| i)
            .min()
            .unwrap_or(last_idx);
        let mut o = live[seed].take().expect("seed is live");
        let o_id = seed as u32;
        by_iota.remove(&(o.inputs.len(), seed));
        for &n in &o.inputs {
            if let Some(set) = input_index.get_mut(&n) {
                set.remove(&seed);
            }
        }

        while o.inputs.len() < lk {
            // Related clusters: shared input nets, drivers of O's inputs,
            // clusters reading O's member nets.
            let mut related: BTreeSet<usize> = BTreeSet::new();
            for &n in &o.inputs {
                if let Some(sharers) = input_index.get(&n) {
                    related.extend(sharers.iter().copied());
                }
                let d = owner[n.index()] as usize;
                if d != seed && live[d].is_some() {
                    related.insert(d);
                }
            }
            for &m in &o.members {
                for &s in graph.net(m).sinks() {
                    let c = owner[s.index()] as usize;
                    if c != seed && live[c].is_some() {
                        related.insert(c);
                    }
                }
            }

            // Best related candidate, evaluated exactly.
            let mut best: Option<(usize, usize, usize)> = None; // (merged ι, cuts, idx)
            for &i in &related {
                let Some(g) = live[i].as_ref() else { continue };
                merge_attempts += 1;
                let merged = merged_inputs(&o, g, &owner, o_id, i as u32);
                if merged.len() > lk {
                    continue; // infeasible: γ < 0 (Eq. (7))
                }
                let cuts = cuts_between(&o, g, &owner, o_id, i as u32);
                let better = match best {
                    None => true,
                    Some((bm, bc, bi)) => {
                        (merged.len(), std::cmp::Reverse(cuts), i) < (bm, std::cmp::Reverse(bc), bi)
                    }
                };
                if better {
                    best = Some((merged.len(), cuts, i));
                }
            }
            // Best unrelated candidate: smallest (ι, idx) not in `related`;
            // its merged ι is exactly ι(O) + ι(g) and it removes no cuts.
            for &(iota, i) in &by_iota {
                if related.contains(&i) {
                    continue;
                }
                merge_attempts += 1;
                let merged = o.inputs.len() + iota;
                if merged > lk {
                    break; // ordered ascending: nothing further fits
                }
                let better = match best {
                    None => true,
                    Some((bm, bc, bi)) => {
                        (merged, std::cmp::Reverse(0), i) < (bm, std::cmp::Reverse(bc), bi)
                    }
                };
                if better {
                    best = Some((merged, 0, i));
                }
                break; // the first unrelated entry dominates all later ones
            }

            let Some((_, _, gi)) = best else { break };
            let g = live[gi].take().expect("candidate is live");
            by_iota.remove(&(g.inputs.len(), gi));
            for &n in &g.inputs {
                if let Some(set) = input_index.get_mut(&n) {
                    set.remove(&gi);
                }
            }
            for &m in &g.members {
                owner[m.index()] = o_id;
            }
            o.inputs = merged_inputs(&o, &g, &owner, o_id, o_id);
            o.members.extend_from_slice(&g.members);
            o.members.sort_unstable();
            merges += 1;
        }

        partitions.push(Partition {
            members: o.members,
            input_nets: o.inputs,
        });
    }

    // Final clustering from partition membership.
    let mut raw = vec![0u32; n_nodes];
    for (pi, p) in partitions.iter().enumerate() {
        for &m in &p.members {
            raw[m.index()] = pi as u32;
        }
    }
    let merged_clustering = Clustering::from_dense(raw, partitions.len().max(1));
    let cut_nets = inputs::cut_nets(graph, &merged_clustering);

    let assignment = CbitAssignment {
        partitions,
        clustering: merged_clustering,
        cut_nets,
        merges,
        merge_attempts,
    };
    tracer.add("assign.merges", assignment.merges as u64);
    tracer.add("assign.merge_attempts", assignment.merge_attempts as u64);
    tracer.add("assign.partitions", assignment.partitions.len() as u64);
    assignment
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::make_group::{make_group, MakeGroupParams};
    use ppet_flow::{saturate_network, FlowParams};
    use ppet_graph::scc::Scc;
    use ppet_netlist::data;

    fn grouped(lk: usize) -> (CircuitGraph, Clustering) {
        let g = CircuitGraph::from_circuit(&data::s27());
        let scc = Scc::of(&g);
        let profile = saturate_network(&g, &FlowParams::paper(), 1996);
        let r = make_group(&g, &scc, &profile, &MakeGroupParams::new(lk));
        (g, r.clustering)
    }

    #[test]
    fn partitions_cover_all_nodes_disjointly() {
        let (g, clustering) = grouped(3);
        let a = assign_cbit(&g, clustering, 3);
        let mut seen = vec![false; g.num_nodes()];
        for p in &a.partitions {
            for &m in &p.members {
                assert!(!seen[m.index()], "node {m} in two partitions");
                seen[m.index()] = true;
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn input_constraint_respected() {
        for lk in [3usize, 4, 8] {
            let (g, clustering) = grouped(lk);
            let a = assign_cbit(&g, clustering, lk);
            for p in &a.partitions {
                assert!(p.input_count() <= lk, "lk={lk}: {}", p.input_count());
            }
        }
    }

    #[test]
    fn reported_inputs_match_recomputation() {
        let (g, clustering) = grouped(3);
        let a = assign_cbit(&g, clustering, 3);
        for (i, p) in a.partitions.iter().enumerate() {
            let cid = a.clustering.cluster_of(p.members[0]);
            let recomputed = inputs::input_nets(&g, &a.clustering, cid);
            assert_eq!(p.input_nets, recomputed, "partition {i}");
        }
    }

    #[test]
    fn merging_never_increases_cut_count() {
        let (g, clustering) = grouped(3);
        let before = inputs::cut_nets(&g, &clustering).len();
        let a = assign_cbit(&g, clustering, 3);
        assert!(
            a.cut_nets.len() <= before,
            "{} > {before}",
            a.cut_nets.len()
        );
    }

    #[test]
    fn merging_reduces_partition_count_when_gainful() {
        let (g, clustering) = grouped(3);
        let before = clustering.num_clusters();
        let a = assign_cbit(&g, clustering, 3);
        assert!(a.partitions.len() <= before);
        assert_eq!(a.merges, before - a.partitions.len());
    }

    #[test]
    fn s27_walkthrough_yields_few_partitions() {
        let (g, clustering) = grouped(3);
        let a = assign_cbit(&g, clustering, 3);
        assert!(
            (2..=8).contains(&a.partitions.len()),
            "{} partitions",
            a.partitions.len()
        );
    }

    #[test]
    fn deterministic() {
        let (g, c1) = grouped(3);
        let (_, c2) = grouped(3);
        let a = assign_cbit(&g, c1, 3);
        let b = assign_cbit(&g, c2, 3);
        assert_eq!(a.partitions, b.partitions);
    }

    /// The index-based candidate search must agree with the naive full
    /// scan on every step; cross-check the final outcome on several
    /// circuits and l_k values against a reference implementation.
    #[test]
    fn matches_naive_reference() {
        use ppet_netlist::{SynthSpec, Synthesizer};
        for seed in [1u64, 2, 3] {
            let circuit = Synthesizer::new(
                SynthSpec::new("ref")
                    .primary_inputs(6)
                    .flip_flops(8)
                    .dffs_on_scc(5)
                    .gates(60)
                    .inverters(15)
                    .seed(seed),
            )
            .build();
            let g = CircuitGraph::from_circuit(&circuit);
            let scc = Scc::of(&g);
            let profile = saturate_network(&g, &FlowParams::quick(), seed);
            for lk in [4usize, 8] {
                let grouped = make_group(&g, &scc, &profile, &MakeGroupParams::new(lk));
                let fast = assign_cbit(&g, grouped.clustering.clone(), lk);
                let slow = naive_assign(&g, grouped.clustering, lk);
                assert_eq!(fast.partitions, slow, "seed {seed} lk {lk}");
            }
        }
    }

    /// Reference: the literal O(n²) scan of the paper's Table 8.
    fn naive_assign(graph: &CircuitGraph, clustering: Clustering, lk: usize) -> Vec<Partition> {
        let mut live: Vec<Option<Live>> = clustering
            .iter()
            .map(|(id, members)| {
                Some(Live {
                    members: members.to_vec(),
                    inputs: inputs::input_nets(graph, &clustering, id),
                })
            })
            .collect();
        let mut owner: Vec<u32> = (0..clustering.num_nodes())
            .map(|i| clustering.cluster_of(CellId::from_index(i)).0)
            .collect();
        let merged_inputs = |a: &Live, b: &Live, owner: &[u32], ida: u32, idb: u32| -> Vec<NetId> {
            let mut out = Vec::new();
            for &n in &a.inputs {
                if owner[n.index()] != idb || graph.is_input(n) {
                    out.push(n);
                }
            }
            for &n in &b.inputs {
                if owner[n.index()] != ida || graph.is_input(n) {
                    out.push(n);
                }
            }
            out.sort_unstable();
            out.dedup();
            out
        };
        let cuts_between = |a: &Live, b: &Live, owner: &[u32], ida: u32, idb: u32| -> usize {
            let mut count = 0;
            for (members, other) in [(&a.members, idb), (&b.members, ida)] {
                for &m in members.iter() {
                    if graph
                        .net(m)
                        .sinks()
                        .iter()
                        .any(|&s| owner[s.index()] == other)
                    {
                        count += 1;
                    }
                }
            }
            count
        };
        let mut partitions = Vec::new();
        loop {
            let seed = live
                .iter()
                .enumerate()
                .filter_map(|(i, l)| l.as_ref().map(|l| (i, l.inputs.len())))
                .max_by_key(|&(i, inputs)| (inputs, std::cmp::Reverse(i)))
                .map(|(i, _)| i);
            let Some(seed) = seed else { break };
            let mut o = live[seed].take().unwrap();
            let o_id = seed as u32;
            while o.inputs.len() < lk {
                let mut best: Option<(usize, usize, usize)> = None;
                for (i, slot) in live.iter().enumerate() {
                    let Some(g) = slot.as_ref() else { continue };
                    let merged = merged_inputs(&o, g, &owner, o_id, i as u32);
                    if merged.len() > lk {
                        continue;
                    }
                    let cuts = cuts_between(&o, g, &owner, o_id, i as u32);
                    let better = match best {
                        None => true,
                        Some((bm, bc, bi)) => {
                            (merged.len(), std::cmp::Reverse(cuts), i)
                                < (bm, std::cmp::Reverse(bc), bi)
                        }
                    };
                    if better {
                        best = Some((merged.len(), cuts, i));
                    }
                }
                let Some((_, _, gi)) = best else { break };
                let g = live[gi].take().unwrap();
                for &m in &g.members {
                    owner[m.index()] = o_id;
                }
                o.inputs = merged_inputs(&o, &g, &owner, o_id, o_id);
                o.members.extend_from_slice(&g.members);
                o.members.sort_unstable();
            }
            partitions.push(Partition {
                members: o.members,
                input_nets: o.inputs,
            });
        }
        partitions
    }
}
