//! Simulated-annealing PIC partitioner — the baseline comparator.
//!
//! Before the flow-based heuristic, the authors solved the same
//! partition-with-input-constraint problem with simulated annealing
//! ("Circuit Partitioning for Pipelined Pseudo-Exhaustive Testing Using
//! Simulated Annealing", CICC 1994 — the paper's reference \[4\]). The
//! original is closed-source; this module reimplements the standard
//! move-based formulation so the ablation experiments can compare the two:
//!
//! * **state** — an assignment of every cell to one of `m` clusters;
//! * **move** — reassign a random cell to the cluster of one of its
//!   neighbours (keeps proposals on the cut boundary);
//! * **cost** — `cut_nets + penalty · Σ max(0, ι(g) − l_k)²`, annealed with
//!   geometric cooling and Metropolis acceptance.

use ppet_graph::{CircuitGraph, NetId};
use ppet_netlist::CellId;
use ppet_prng::{Rng, Xoshiro256PlusPlus};

use crate::cluster::Clustering;
use crate::inputs;

/// Annealing schedule and weights.
#[derive(Debug, Clone, PartialEq)]
pub struct SaParams {
    /// The input constraint `l_k`.
    pub lk: usize,
    /// Number of clusters to anneal over (the PIC dual fixes `m` and
    /// minimizes cuts).
    pub num_clusters: usize,
    /// Initial temperature.
    pub t_initial: f64,
    /// Geometric cooling factor per sweep.
    pub cooling: f64,
    /// Moves per temperature step (sweep length multiplier × nodes).
    pub moves_per_node: usize,
    /// Number of temperature steps.
    pub steps: usize,
    /// Weight of the quadratic input-constraint penalty.
    pub penalty: f64,
}

impl SaParams {
    /// A moderate schedule suitable for circuits up to a few thousand
    /// cells.
    #[must_use]
    pub fn new(lk: usize, num_clusters: usize) -> Self {
        Self {
            lk,
            num_clusters: num_clusters.max(1),
            t_initial: 5.0,
            cooling: 0.9,
            moves_per_node: 4,
            steps: 40,
            penalty: 10.0,
        }
    }
}

/// The annealer's outcome.
#[derive(Debug, Clone)]
pub struct SaResult {
    /// Best clustering found (compacted).
    pub clustering: Clustering,
    /// Its cut nets.
    pub cut_nets: Vec<NetId>,
    /// Its cost under the annealing objective.
    pub cost: f64,
    /// Number of accepted moves.
    pub accepted: usize,
    /// Number of proposed moves.
    pub proposed: usize,
}

/// Runs the annealer from a seeded random initial assignment.
///
/// # Examples
///
/// ```
/// use ppet_graph::CircuitGraph;
/// use ppet_netlist::data;
/// use ppet_partition::sa::{anneal, SaParams};
///
/// let g = CircuitGraph::from_circuit(&data::s27());
/// let r = anneal(&g, &SaParams::new(6, 3), 7);
/// assert_eq!(r.clustering.num_nodes(), g.num_nodes());
/// ```
#[must_use]
pub fn anneal(graph: &CircuitGraph, params: &SaParams, seed: u64) -> SaResult {
    let n = graph.num_nodes();
    let m = params.num_clusters.min(n.max(1));
    let mut rng = Xoshiro256PlusPlus::seed_from(seed ^ 0x5341_5f50_4943_0001);
    if n == 0 {
        return SaResult {
            clustering: Clustering::from_assignment(Vec::new()),
            cut_nets: Vec::new(),
            cost: 0.0,
            accepted: 0,
            proposed: 0,
        };
    }

    // Initial state: breadth-first stripes from random seeds, giving
    // connected-ish starting clusters.
    let mut assignment: Vec<u32> = vec![u32::MAX; n];
    let mut seeds: Vec<CellId> = graph.nodes().collect();
    rng.shuffle(&mut seeds);
    let mut queues: Vec<Vec<CellId>> = (0..m).map(|i| vec![seeds[i % n]]).collect();
    let mut remaining = n;
    while remaining > 0 {
        for (c, queue) in queues.iter_mut().enumerate() {
            let Some(v) = queue.pop() else {
                // Restart from any unassigned node.
                if let Some(u) = assignment
                    .iter()
                    .position(|&a| a == u32::MAX)
                    .map(CellId::from_index)
                {
                    queue.push(u);
                }
                continue;
            };
            if assignment[v.index()] != u32::MAX {
                continue;
            }
            assignment[v.index()] = c as u32;
            remaining -= 1;
            for &w in graph.undirected_neighbors(v) {
                if assignment[w.index()] == u32::MAX {
                    queue.push(w);
                }
            }
        }
    }

    let cost_of = |assignment: &[u32]| -> f64 {
        let clustering = Clustering::from_assignment(assignment.to_vec());
        let cuts = inputs::cut_nets(graph, &clustering).len() as f64;
        let mut penalty = 0.0;
        for (id, _) in clustering.iter() {
            let over = inputs::input_count(graph, &clustering, id).saturating_sub(params.lk);
            penalty += (over * over) as f64;
        }
        cuts + params.penalty * penalty
    };

    let nodes: Vec<CellId> = graph.nodes().collect();
    let mut current = assignment;
    let mut current_cost = cost_of(&current);
    let mut best = current.clone();
    let mut best_cost = current_cost;
    let mut t = params.t_initial;
    let mut accepted = 0usize;
    let mut proposed = 0usize;

    for _ in 0..params.steps {
        for _ in 0..params.moves_per_node * n {
            let v = nodes[rng.gen_index(n)];
            let neighbors = graph.undirected_neighbors(v);
            if neighbors.is_empty() {
                continue;
            }
            let target = current[neighbors[rng.gen_index(neighbors.len())].index()];
            if target == current[v.index()] {
                continue;
            }
            proposed += 1;
            let old = current[v.index()];
            current[v.index()] = target;
            let new_cost = cost_of(&current);
            let delta = new_cost - current_cost;
            if delta <= 0.0 || rng.gen_f64() < (-delta / t).exp() {
                accepted += 1;
                current_cost = new_cost;
                if current_cost < best_cost {
                    best_cost = current_cost;
                    best = current.clone();
                }
            } else {
                current[v.index()] = old;
            }
        }
        t *= params.cooling;
    }

    let clustering = Clustering::from_assignment(best).compact();
    let cut_nets = inputs::cut_nets(graph, &clustering);
    SaResult {
        clustering,
        cut_nets,
        cost: best_cost,
        accepted,
        proposed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppet_netlist::data;

    fn s27() -> CircuitGraph {
        CircuitGraph::from_circuit(&data::s27())
    }

    #[test]
    fn result_is_a_valid_partition() {
        let g = s27();
        let r = anneal(&g, &SaParams::new(6, 3), 1);
        let total: usize = r.clustering.iter().map(|(_, m)| m.len()).sum();
        assert_eq!(total, g.num_nodes());
        assert_eq!(r.cut_nets, inputs::cut_nets(&g, &r.clustering));
    }

    #[test]
    fn deterministic_per_seed() {
        let g = s27();
        let a = anneal(&g, &SaParams::new(6, 3), 9);
        let b = anneal(&g, &SaParams::new(6, 3), 9);
        assert_eq!(a.clustering, b.clustering);
        assert_eq!(a.cost, b.cost);
    }

    #[test]
    fn annealing_improves_on_the_initial_state() {
        let g = s27();
        // A frozen annealer (zero steps) returns its initial stripes.
        let frozen = anneal(
            &g,
            &SaParams {
                steps: 0,
                ..SaParams::new(6, 3)
            },
            5,
        );
        let tuned = anneal(&g, &SaParams::new(6, 3), 5);
        assert!(
            tuned.cost <= frozen.cost,
            "{} > {}",
            tuned.cost,
            frozen.cost
        );
    }

    #[test]
    fn satisfies_constraint_when_feasible() {
        // With l_k = 8 and 2 clusters on s27 a feasible solution exists;
        // the penalty drives the annealer into it.
        let g = s27();
        let r = anneal(&g, &SaParams::new(8, 2), 3);
        for (id, _) in r.clustering.iter() {
            assert!(inputs::input_count(&g, &r.clustering, id) <= 8);
        }
    }

    #[test]
    fn single_cluster_degenerate_case() {
        let g = s27();
        let r = anneal(&g, &SaParams::new(16, 1), 2);
        assert_eq!(r.clustering.num_clusters(), 1);
        assert!(r.cut_nets.is_empty());
    }

    #[test]
    fn empty_graph() {
        let c = ppet_netlist::Circuit::new("empty");
        let g = CircuitGraph::from_circuit(&c);
        let r = anneal(&g, &SaParams::new(4, 2), 0);
        assert_eq!(r.clustering.num_nodes(), 0);
    }
}
