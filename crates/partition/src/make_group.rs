//! `Make_Group` — congestion-guided clustering (paper Tables 4–7).

use std::collections::HashMap;

use ppet_flow::CongestionProfile;
use ppet_graph::{scc::Scc, CircuitGraph, NetId};
use ppet_netlist::CellId;
use ppet_trace::Tracer;

use crate::budget::SccBudget;
use crate::cluster::Clustering;

/// Parameters of [`make_group`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MakeGroupParams {
    /// The input constraint `l_k`: every cluster must end up with
    /// `ι(π) ≤ l_k`.
    pub lk: usize,
    /// The SCC cut-budget relaxation `β` of Eq. (6) (the paper's
    /// experiments use 50).
    pub beta: usize,
    /// Cells the user has *locked* (paper Table 5, STEP 2.1): Merced does
    /// not work on them. They form one dedicated cluster that is never
    /// split, never merged with free logic, and exempt from the input
    /// constraint (e.g. a hard macro or pre-tested block).
    pub locked: Vec<CellId>,
}

impl MakeGroupParams {
    /// Parameters with the paper's default `β = 50` and no locked cells.
    #[must_use]
    pub fn new(lk: usize) -> Self {
        Self {
            lk,
            beta: 50,
            locked: Vec::new(),
        }
    }

    /// Overrides `β`.
    #[must_use]
    pub fn with_beta(mut self, beta: usize) -> Self {
        self.beta = beta;
        self
    }

    /// Locks cells out of the partitioner (paper Table 5, STEP 2.1).
    #[must_use]
    pub fn with_locked(mut self, cells: Vec<CellId>) -> Self {
        self.locked = cells;
        self
    }
}

/// The outcome of [`make_group`].
#[derive(Debug, Clone)]
pub struct MakeGroupResult {
    /// The clustering (clusters sorted by descending input count, paper
    /// Table 4 STEP 6).
    pub clustering: Clustering,
    /// All severed (cut) nets.
    pub cut_nets: Vec<NetId>,
    /// Nets the SCC budget forced to stay internal (`d(e) := 0`, paper
    /// Table 7 STEP 2.1.2.1).
    pub forced_internal: Vec<NetId>,
    /// Number of congestion boundaries consumed from the sorted stack.
    pub boundaries_used: usize,
    /// Clusters that still violate the input constraint after the boundary
    /// stack was exhausted (possible when `β` is tight or a cell's fan-in
    /// exceeds `l_k`; empty in the paper's operating regime).
    pub oversized: Vec<usize>,
    /// The cluster holding locked cells, if any were given.
    pub locked_cluster: Option<usize>,
}

/// Sticky per-net severing state: once decided, a net's fate never changes
/// as the boundary descends.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum NetState {
    Undecided,
    Severed,
    ForcedInternal,
}

/// Runs the clustering driver of the paper's Table 4:
///
/// 1. build the sorted stack of congestion distances (descending);
/// 2. form clusters by severing every net at least as congested as the
///    current boundary (`Make_Set`, Table 5; severing honours the SCC
///    budget of Eq. (6) — over-budget nets are forced internal instead);
/// 3. while some cluster has more than `l_k` inputs, pop the next boundary
///    and re-split that cluster;
/// 4. sort clusters by input count, descending.
///
/// # Examples
///
/// ```
/// use ppet_flow::{saturate_network, FlowParams};
/// use ppet_graph::{scc::Scc, CircuitGraph};
/// use ppet_netlist::data;
/// use ppet_partition::{make_group, MakeGroupParams};
///
/// let g = CircuitGraph::from_circuit(&data::s27());
/// let scc = Scc::of(&g);
/// let profile = saturate_network(&g, &FlowParams::paper(), 3);
/// let result = make_group(&g, &scc, &profile, &MakeGroupParams::new(3));
/// assert!(result.oversized.is_empty());
/// ```
#[must_use]
pub fn make_group(
    graph: &CircuitGraph,
    scc: &Scc,
    profile: &CongestionProfile,
    params: &MakeGroupParams,
) -> MakeGroupResult {
    make_group_traced(graph, scc, profile, params, &Tracer::noop())
}

/// [`make_group`] with observability: reports the clustering outcome as
/// `partition.*` counters (nets cut, clusters formed, boundaries used,
/// nets forced internal by the SCC budget, oversized clusters).
///
/// The result is identical to the untraced call; a disabled tracer
/// records nothing.
#[must_use]
pub fn make_group_traced(
    graph: &CircuitGraph,
    scc: &Scc,
    profile: &CongestionProfile,
    params: &MakeGroupParams,
    tracer: &Tracer,
) -> MakeGroupResult {
    let n = graph.num_nodes();
    let mut state = vec![NetState::Undecided; n];
    let mut budget = SccBudget::new(graph, scc, params.beta);
    let boundaries = profile.sorted_boundaries();
    let mut boundary_iter = boundaries.into_iter();
    let mut boundaries_used = 0usize;

    let mut assignment: Vec<u32> = vec![0; n];
    let mut next_id: u32 = 0;
    // Live clusters: id -> (members, input count).
    let mut clusters: HashMap<u32, (Vec<CellId>, usize)> = HashMap::new();

    // Locked cells (paper Table 5, STEP 2.1) are fenced off into their own
    // cluster before clustering begins.
    let mut is_locked = vec![false; n];
    for &c in &params.locked {
        is_locked[c.index()] = true;
    }
    let locked_id: Option<u32> = if params.locked.is_empty() {
        None
    } else {
        let id = next_id;
        next_id += 1;
        let mut members: Vec<CellId> = params.locked.clone();
        members.sort_unstable();
        members.dedup();
        for &m in &members {
            assignment[m.index()] = id;
        }
        let inputs = local_input_count(graph, &members, &assignment, id);
        clusters.insert(id, (members, inputs));
        Some(id)
    };

    let all: Vec<CellId> = graph.nodes().filter(|v| !is_locked[v.index()]).collect();
    let first_boundary = boundary_iter.next().unwrap_or(f64::INFINITY);
    boundaries_used += 1;
    split_subset(
        graph,
        profile,
        &all,
        first_boundary,
        &mut state,
        &mut budget,
        &mut assignment,
        &mut next_id,
        &mut clusters,
    );

    loop {
        // Pick the cluster with the largest input count above l_k
        // (deterministic: smallest id on ties).
        let worst = clusters
            .iter()
            .map(|(&id, &(_, inputs))| (id, inputs))
            .filter(|&(id, inputs)| inputs > params.lk && Some(id) != locked_id)
            .max_by_key(|&(id, inputs)| (inputs, std::cmp::Reverse(id)))
            .map(|(id, _)| id);
        let Some(worst) = worst else { break };
        let Some(boundary) = boundary_iter.next() else {
            break;
        };
        boundaries_used += 1;
        let (members, _) = clusters.remove(&worst).expect("cluster exists");
        split_subset(
            graph,
            profile,
            &members,
            boundary,
            &mut state,
            &mut budget,
            &mut assignment,
            &mut next_id,
            &mut clusters,
        );
    }

    // Assemble the result; sort clusters by descending input count.
    let mut ordered: Vec<(u32, usize)> = clusters
        .iter()
        .map(|(&id, (_, inputs))| (id, *inputs))
        .collect();
    ordered.sort_by_key(|&(id, inputs)| (std::cmp::Reverse(inputs), id));
    let rank: HashMap<u32, u32> = ordered
        .iter()
        .enumerate()
        .map(|(rank, &(id, _))| (id, rank as u32))
        .collect();
    let dense: Vec<u32> = assignment.iter().map(|c| rank[c]).collect();
    let clustering = Clustering::from_dense(dense, ordered.len());

    let cut_nets = crate::inputs::cut_nets(graph, &clustering);
    let forced_internal: Vec<NetId> = graph
        .nodes()
        .filter(|v| state[v.index()] == NetState::ForcedInternal)
        .collect();
    let locked_cluster = locked_id.map(|id| rank[&id] as usize);
    let oversized: Vec<usize> = clustering
        .iter()
        .filter(|&(id, _)| Some(id.index()) != locked_cluster)
        .filter(|&(id, _)| crate::inputs::input_count(graph, &clustering, id) > params.lk)
        .map(|(id, _)| id.index())
        .collect();

    let result = MakeGroupResult {
        clustering,
        cut_nets,
        forced_internal,
        boundaries_used,
        oversized,
        locked_cluster,
    };
    tracer.add("partition.nets_cut", result.cut_nets.len() as u64);
    tracer.add(
        "partition.clusters_formed",
        result.clustering.num_clusters() as u64,
    );
    tracer.add("partition.boundaries_used", result.boundaries_used as u64);
    tracer.add(
        "partition.forced_internal",
        result.forced_internal.len() as u64,
    );
    tracer.add("partition.oversized", result.oversized.len() as u64);
    result
}

/// `Make_Set` (paper Table 5): splits `subset` into weakly connected
/// components over unsevered nets at `boundary`, registering the new
/// clusters with their input counts.
#[allow(clippy::too_many_arguments)]
fn split_subset(
    graph: &CircuitGraph,
    profile: &CongestionProfile,
    subset: &[CellId],
    boundary: f64,
    state: &mut [NetState],
    budget: &mut SccBudget,
    assignment: &mut [u32],
    next_id: &mut u32,
    clusters: &mut HashMap<u32, (Vec<CellId>, usize)>,
) {
    // Union-find over subset positions.
    let index_of: HashMap<CellId, usize> =
        subset.iter().enumerate().map(|(i, &v)| (v, i)).collect();
    let mut parent: Vec<usize> = (0..subset.len()).collect();
    fn find(parent: &mut [usize], mut x: usize) -> usize {
        while parent[x] != x {
            parent[x] = parent[parent[x]];
            x = parent[x];
        }
        x
    }

    // Decide nets driven from inside the subset, in ascending net id order
    // for determinism.
    for &u in subset {
        let severed = match state[u.index()] {
            NetState::Severed => true,
            NetState::ForcedInternal => false,
            NetState::Undecided => {
                if graph.net(u).sinks().is_empty() {
                    continue; // nothing to bind or cut
                }
                if profile.distance(u) >= boundary {
                    if budget.try_charge(u) {
                        state[u.index()] = NetState::Severed;
                        true
                    } else {
                        state[u.index()] = NetState::ForcedInternal;
                        false
                    }
                } else {
                    false
                }
            }
        };
        if severed {
            continue;
        }
        let pu = index_of[&u];
        for &sink in graph.net(u).sinks() {
            if let Some(&ps) = index_of.get(&sink) {
                let (a, b) = (find(&mut parent, pu), find(&mut parent, ps));
                if a != b {
                    parent[a] = b;
                }
            }
        }
    }

    // Collect components and register them.
    let mut groups: HashMap<usize, Vec<CellId>> = HashMap::new();
    for (i, &v) in subset.iter().enumerate() {
        groups.entry(find(&mut parent, i)).or_default().push(v);
    }
    let mut roots: Vec<usize> = groups.keys().copied().collect();
    roots.sort_unstable();
    for root in roots {
        let members = groups.remove(&root).expect("key exists");
        let id = *next_id;
        *next_id += 1;
        for &m in &members {
            assignment[m.index()] = id;
        }
        let inputs = local_input_count(graph, &members, assignment, id);
        clusters.insert(id, (members, inputs));
    }
}

/// ι for a live cluster during construction: distinct external driver nets
/// plus PI nets inside.
fn local_input_count(
    graph: &CircuitGraph,
    members: &[CellId],
    assignment: &[u32],
    id: u32,
) -> usize {
    let mut nets: Vec<CellId> = Vec::new();
    for &m in members {
        for &driver in graph.fanin(m) {
            if assignment[driver.index()] != id || graph.is_input(driver) {
                nets.push(driver);
            }
        }
        if graph.is_input(m) {
            nets.push(m);
        }
    }
    nets.sort_unstable();
    nets.dedup();
    nets.len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inputs;
    use ppet_flow::{saturate_network, FlowParams};
    use ppet_netlist::data;

    fn setup() -> (CircuitGraph, Scc, CongestionProfile) {
        let g = CircuitGraph::from_circuit(&data::s27());
        let scc = Scc::of(&g);
        let profile = saturate_network(&g, &FlowParams::paper(), 1996);
        (g, scc, profile)
    }

    #[test]
    fn satisfies_input_constraint_on_s27() {
        let (g, scc, profile) = setup();
        for lk in [3usize, 4, 6] {
            let r = make_group(&g, &scc, &profile, &MakeGroupParams::new(lk));
            assert!(r.oversized.is_empty(), "lk={lk}");
            for (id, _) in r.clustering.iter() {
                assert!(
                    inputs::input_count(&g, &r.clustering, id) <= lk,
                    "lk={lk} cluster {id:?}"
                );
            }
        }
    }

    #[test]
    fn clusters_partition_the_node_set() {
        let (g, scc, profile) = setup();
        let r = make_group(&g, &scc, &profile, &MakeGroupParams::new(3));
        let total: usize = r.clustering.iter().map(|(_, m)| m.len()).sum();
        assert_eq!(total, g.num_nodes());
    }

    #[test]
    fn clusters_sorted_by_descending_inputs() {
        let (g, scc, profile) = setup();
        let r = make_group(&g, &scc, &profile, &MakeGroupParams::new(3));
        let counts: Vec<usize> = r
            .clustering
            .iter()
            .map(|(id, _)| inputs::input_count(&g, &r.clustering, id))
            .collect();
        for pair in counts.windows(2) {
            assert!(pair[0] >= pair[1], "{counts:?}");
        }
    }

    #[test]
    fn cut_nets_reported_match_clustering() {
        let (g, scc, profile) = setup();
        let r = make_group(&g, &scc, &profile, &MakeGroupParams::new(3));
        assert_eq!(r.cut_nets, inputs::cut_nets(&g, &r.clustering));
        assert!(!r.cut_nets.is_empty());
    }

    #[test]
    fn tight_beta_forces_nets_internal() {
        let (g, scc, profile) = setup();
        let relaxed = make_group(&g, &scc, &profile, &MakeGroupParams::new(3).with_beta(50));
        let tight = make_group(&g, &scc, &profile, &MakeGroupParams::new(3).with_beta(1));
        // β = 1 on s27 limits SCC cuts to f(SCC) = 3.
        let on_scc_tight = inputs::cuts_on_scc(&g, &scc, &tight.cut_nets);
        assert!(on_scc_tight.len() <= 3, "{on_scc_tight:?}");
        // And the relaxed run cuts at least as many SCC nets.
        let on_scc_relaxed = inputs::cuts_on_scc(&g, &scc, &relaxed.cut_nets);
        assert!(on_scc_relaxed.len() >= on_scc_tight.len());
        if on_scc_relaxed.len() > 3 {
            assert!(!tight.forced_internal.is_empty());
        }
    }

    #[test]
    fn deterministic_given_profile() {
        let (g, scc, profile) = setup();
        let a = make_group(&g, &scc, &profile, &MakeGroupParams::new(3));
        let b = make_group(&g, &scc, &profile, &MakeGroupParams::new(3));
        assert_eq!(a.clustering, b.clustering);
        assert_eq!(a.cut_nets, b.cut_nets);
    }

    #[test]
    fn locked_cells_form_their_own_untouched_cluster() {
        let (g, scc, profile) = setup();
        let locked: Vec<_> = ["G12", "G13", "G7"]
            .iter()
            .map(|n| g.find(n).unwrap())
            .collect();
        let r = make_group(
            &g,
            &scc,
            &profile,
            &MakeGroupParams::new(3).with_locked(locked.clone()),
        );
        let lc = r.locked_cluster.expect("locked cluster exists");
        let members = r.clustering.members(crate::ClusterId(lc as u32));
        let mut expected = locked.clone();
        expected.sort_unstable();
        assert_eq!(members, expected.as_slice());
        // Free clusters still satisfy the constraint.
        assert!(r.oversized.is_empty());
        for (id, _) in r.clustering.iter() {
            if id.index() != lc {
                assert!(inputs::input_count(&g, &r.clustering, id) <= 3);
            }
        }
    }

    #[test]
    fn no_locked_cells_means_no_locked_cluster() {
        let (g, scc, profile) = setup();
        let r = make_group(&g, &scc, &profile, &MakeGroupParams::new(3));
        assert!(r.locked_cluster.is_none());
    }

    #[test]
    fn large_lk_keeps_circuit_whole() {
        let (g, scc, profile) = setup();
        // l_k = 16 > 4 PIs: the whole circuit fits in one cluster after the
        // first boundary (only the most congested nets are severed).
        let r = make_group(&g, &scc, &profile, &MakeGroupParams::new(16));
        assert!(r.oversized.is_empty());
        // Far fewer cuts than at l_k = 3.
        let tight = make_group(&g, &scc, &profile, &MakeGroupParams::new(3));
        assert!(r.cut_nets.len() <= tight.cut_nets.len());
    }
}
