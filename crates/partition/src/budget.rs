//! The per-SCC retiming cut budget (paper Eq. (6)).
//!
//! Registers on a cycle cannot be multiplied by retiming (Corollary 2), so
//! a strongly connected component with `f(SCC)` flip-flops can donate at
//! most `f(SCC)` of them to cut nets. The designer relaxes this with the
//! factor `β ≥ 1`: up to `β · f(SCC)` cuts are allowed inside the SCC
//! (cuts beyond `f` pay for multiplexed hardware). Once an SCC's budget is
//! exhausted, `Make_Group` forces the remaining SCC-internal nets to stay
//! uncut by zeroing their congestion distance (paper Table 7, STEP 2.1.2).

use ppet_graph::{
    scc::{Scc, SccId},
    CircuitGraph, NetId,
};

/// Tracks cut charges against each cyclic SCC.
///
/// # Examples
///
/// ```
/// use ppet_graph::{scc::Scc, CircuitGraph};
/// use ppet_netlist::data;
/// use ppet_partition::budget::SccBudget;
///
/// let g = CircuitGraph::from_circuit(&data::s27());
/// let scc = Scc::of(&g);
/// let mut budget = SccBudget::new(&g, &scc, 1);
/// // With β = 1 each SCC may donate only as many cuts as it has
/// // registers; the first charge on an SCC net always succeeds.
/// let g11 = g.find("G11").unwrap();
/// assert!(budget.try_charge(g11));
/// ```
#[derive(Debug, Clone)]
pub struct SccBudget {
    limit: Vec<usize>,
    charged: Vec<usize>,
    /// For each net: the SCC it is internal to, if cyclic.
    scc_of_net: Vec<Option<SccId>>,
}

impl SccBudget {
    /// Creates the budget table for `graph` with relaxation factor `beta`
    /// (the paper uses `β = 50` for the unrestricted experiments, and the
    /// designer shrinks it to trade testing time for multiplexer area).
    #[must_use]
    pub fn new(graph: &CircuitGraph, scc: &Scc, beta: usize) -> Self {
        let limit = (0..scc.len())
            .map(|i| {
                let id = SccId(i as u32);
                if scc.is_cyclic(id) {
                    beta.saturating_mul(scc.registers_in(id))
                } else {
                    usize::MAX // no constraint outside loops
                }
            })
            .collect();
        let scc_of_net = graph
            .nodes()
            .map(|net| {
                if scc.net_in_cyclic_component(graph, net) {
                    Some(scc.component_of(graph.net(net).src()))
                } else {
                    None
                }
            })
            .collect();
        Self {
            limit,
            charged: vec![0; scc.len()],
            scc_of_net,
        }
    }

    /// The cyclic SCC a net is internal to, if any.
    #[must_use]
    pub fn scc_of_net(&self, net: NetId) -> Option<SccId> {
        self.scc_of_net[net.index()]
    }

    /// Attempts to charge a cut on `net` against its SCC's budget.
    ///
    /// Returns `true` (and records the charge) when the net is outside any
    /// cyclic SCC or its SCC still has budget; `false` when the budget is
    /// exhausted — the caller must then force the net internal.
    pub fn try_charge(&mut self, net: NetId) -> bool {
        match self.scc_of_net[net.index()] {
            None => true,
            Some(scc) => {
                if self.charged[scc.index()] < self.limit[scc.index()] {
                    self.charged[scc.index()] += 1;
                    true
                } else {
                    false
                }
            }
        }
    }

    /// Cuts charged so far against an SCC.
    #[must_use]
    pub fn charged(&self, scc: SccId) -> usize {
        self.charged[scc.index()]
    }

    /// The limit `β · f(SCC)` of an SCC (`usize::MAX` for acyclic
    /// components).
    #[must_use]
    pub fn limit(&self, scc: SccId) -> usize {
        self.limit[scc.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppet_netlist::data;

    fn setup() -> (CircuitGraph, Scc) {
        let g = CircuitGraph::from_circuit(&data::s27());
        let scc = Scc::of(&g);
        (g, scc)
    }

    #[test]
    fn acyclic_nets_are_never_limited() {
        let (g, scc) = setup();
        let mut b = SccBudget::new(&g, &scc, 0);
        let g0 = g.find("G0").unwrap();
        for _ in 0..100 {
            assert!(b.try_charge(g0));
        }
    }

    #[test]
    fn budget_exhausts_at_beta_times_f() {
        let (g, scc) = setup();
        let mut b = SccBudget::new(&g, &scc, 1);
        // Find an SCC-internal net and charge it repeatedly: the core SCC
        // has 3 registers, so exactly 3 charges succeed with β = 1.
        let net = g
            .nodes()
            .find(|&n| b.scc_of_net(n).is_some())
            .expect("s27 has SCC nets");
        let scc_id = b.scc_of_net(net).unwrap();
        // s27 has two cyclic SCCs (one holds 2 registers, the other 1);
        // the limit is that component's register count.
        let f = scc.registers_in(scc_id);
        assert_eq!(b.limit(scc_id), f);
        let mut successes = 0;
        for _ in 0..10 {
            if b.try_charge(net) {
                successes += 1;
            }
        }
        assert_eq!(successes, f);
        assert_eq!(b.charged(scc_id), f);
    }

    #[test]
    fn beta_scales_the_limit() {
        let (g, scc) = setup();
        let b = SccBudget::new(&g, &scc, 50);
        let net = g
            .nodes()
            .find(|&n| b.scc_of_net(n).is_some())
            .expect("s27 has SCC nets");
        let id = b.scc_of_net(net).unwrap();
        assert_eq!(b.limit(id), 50 * scc.registers_in(id));
    }
}
