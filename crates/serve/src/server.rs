//! The server proper: TCP accept loop, routing, scheduling, shutdown.
//!
//! One [`Server`] owns a nonblocking `TcpListener`, a bounded
//! [`WorkQueue`] of compile workers, the [`ResultCache`], and a
//! [`Metrics`] registry. Each accepted connection is handled on its own
//! thread (one request per connection); compile work itself runs on the
//! queue, so slow compiles exert backpressure through the bounded queue
//! rather than through unbounded thread growth.
//!
//! Shutdown is cooperative: `POST /shutdown`, a Unix signal (via
//! [`crate::signal`]), or [`ServerHandle::shutdown`] sets a flag; the
//! accept loop stops taking connections, in-flight requests finish,
//! queued compiles drain, and [`Server::run`] returns.

use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use ppet_exec::WorkQueue;
use ppet_store::{Store, StoreConfig};
use ppet_trace::{Metrics, SpanData, Tracer};

use crate::cache::{CacheKey, Claim, Gate, ResultCache, DEFAULT_CACHE_CAPACITY};
use crate::http::{self, HttpError, Request};
use crate::obs::{PhaseRecorder, RequestIds, RequestTrace, TraceRing, REQUEST_ID_HEADER};
use crate::request::{CompileBackend, CompileRequest};
use crate::signal;

/// How often the accept loop polls the shutdown flag.
const ACCEPT_POLL: Duration = Duration::from_millis(15);

/// Read/write timeout on accepted connections, so a stalled client
/// cannot pin a handler thread forever.
const STREAM_TIMEOUT: Duration = Duration::from_secs(10);

/// Tunable service limits.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Compile worker threads.
    pub workers: usize,
    /// Bounded queue capacity; a full queue answers 429.
    pub queue_capacity: usize,
    /// Per-request compile deadline; an expired deadline answers 408
    /// with a structured `timeout` error (the compile itself keeps
    /// running and still populates the cache).
    pub timeout: Duration,
    /// Largest accepted request body in bytes.
    pub max_body_bytes: usize,
    /// Maximum completed entries the in-memory result cache keeps
    /// (least-recently-used eviction beyond it).
    pub cache_capacity: usize,
    /// Directory of the persistent artifact store; `None` runs
    /// memory-only. With a store mounted, the in-memory cache becomes a
    /// bounded hot tier: store hits skip the compiler entirely, and the
    /// cache survives restarts through the store.
    pub store_dir: Option<PathBuf>,
    /// Byte budget for the persistent store's LRU eviction; `None`
    /// means unbounded.
    pub store_budget: Option<u64>,
    /// Maximum delta chain depth in the persistent store (0 stores
    /// everything raw, 1 forbids delta-of-delta chains).
    pub store_delta_depth: u8,
    /// Completed request traces kept for `GET /debug/requests` and
    /// `GET /debug/trace/<id>`; 0 disables per-request tracing entirely
    /// (requests still get IDs, but no phases are recorded).
    pub trace_ring: usize,
    /// Requests at or above this many milliseconds of wall time are
    /// pinned into the trace ring so churn cannot evict them; `None`
    /// pins nothing.
    pub slow_ms: Option<u64>,
    /// Seed of the deterministic request-ID generator.
    pub id_seed: u64,
}

/// Default bound on the request trace ring.
pub const DEFAULT_TRACE_RING: usize = 256;

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            workers: 2,
            queue_capacity: 64,
            timeout: Duration::from_secs(60),
            max_body_bytes: 4 << 20,
            cache_capacity: DEFAULT_CACHE_CAPACITY,
            store_dir: None,
            store_budget: None,
            store_delta_depth: StoreConfig::default().max_chain_depth,
            trace_ring: DEFAULT_TRACE_RING,
            slow_ms: None,
            id_seed: 0,
        }
    }
}

struct Service<B> {
    backend: Arc<B>,
    cache: Arc<ResultCache>,
    store: Option<Arc<Store>>,
    queue: WorkQueue,
    metrics: Metrics,
    config: ServeConfig,
    ids: RequestIds,
    ring: TraceRing,
    shutdown: AtomicBool,
}

/// A clonable handle that can stop a running server from another thread.
#[derive(Clone)]
pub struct ServerHandle {
    shutdown: Arc<dyn Fn() + Send + Sync>,
}

impl std::fmt::Debug for ServerHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServerHandle").finish_non_exhaustive()
    }
}

impl ServerHandle {
    /// Requests shutdown; [`Server::run`] drains and returns.
    pub fn shutdown(&self) {
        (self.shutdown)();
    }
}

/// The compile service bound to a socket.
pub struct Server<B: CompileBackend> {
    listener: TcpListener,
    addr: SocketAddr,
    service: Arc<Service<B>>,
}

impl<B: CompileBackend> std::fmt::Debug for Server<B> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Server")
            .field("addr", &self.addr)
            .finish_non_exhaustive()
    }
}

impl<B: CompileBackend> Server<B> {
    /// Binds to `addr` (use port 0 for an ephemeral port) and starts the
    /// worker pool. The listener runs nonblocking so the accept loop can
    /// poll for shutdown.
    ///
    /// # Errors
    ///
    /// Propagates socket errors from bind/configure.
    pub fn bind(
        addr: impl ToSocketAddrs,
        backend: B,
        config: ServeConfig,
    ) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let queue = WorkQueue::new(config.workers.max(1), config.queue_capacity.max(1));
        let metrics = Metrics::new();
        let store = match &config.store_dir {
            Some(dir) => {
                let store_config = StoreConfig {
                    budget: config.store_budget,
                    max_chain_depth: config.store_delta_depth,
                    ..StoreConfig::default()
                };
                Some(Arc::new(Store::open_with_metrics(
                    dir,
                    store_config,
                    &metrics,
                )?))
            }
            None => None,
        };
        let service = Arc::new(Service {
            backend: Arc::new(backend),
            cache: Arc::new(ResultCache::with_capacity(config.cache_capacity)),
            store,
            queue,
            metrics,
            ids: RequestIds::new(config.id_seed),
            ring: TraceRing::new(config.trace_ring, config.slow_ms),
            config,
            shutdown: AtomicBool::new(false),
        });
        Ok(Self {
            listener,
            addr,
            service,
        })
    }

    /// The actually-bound address (resolves ephemeral ports).
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// A handle that can stop [`Server::run`] from another thread.
    #[must_use]
    pub fn handle(&self) -> ServerHandle {
        let service = Arc::clone(&self.service);
        ServerHandle {
            shutdown: Arc::new(move || service.shutdown.store(true, Ordering::SeqCst)),
        }
    }

    /// The server's metric values, rendered as the `/metrics` endpoint
    /// would (handy for in-process tests).
    #[must_use]
    pub fn metrics_text(&self) -> String {
        self.service.render_metrics()
    }

    /// Serves until shutdown is requested (handle, `POST /shutdown`, or
    /// a Unix termination signal), then drains: no new connections, all
    /// accepted requests answered, all queued compiles completed.
    pub fn run(self) {
        let mut handlers: Vec<thread::JoinHandle<()>> = Vec::new();
        loop {
            if self.service.shutting_down() {
                break;
            }
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    let service = Arc::clone(&self.service);
                    handlers.push(thread::spawn(move || service.handle_connection(stream)));
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    thread::sleep(ACCEPT_POLL);
                }
                Err(_) => thread::sleep(ACCEPT_POLL),
            }
            // Reap finished handler threads so the vec stays small on
            // long runs.
            if handlers.len() >= 32 {
                handlers.retain(|h| !h.is_finished());
            }
        }
        for h in handlers {
            let _ = h.join();
        }
        // All handler threads have answered; finish whatever compiles the
        // queue still holds, then stop the workers. The store is flushed
        // last so a clean shutdown is an fsync point.
        match Arc::try_unwrap(self.service) {
            Ok(service) => {
                service.queue.shutdown();
                if let Some(store) = &service.store {
                    let _ = store.flush();
                }
            }
            Err(service) => {
                service.queue.drain();
                if let Some(store) = &service.store {
                    let _ = store.flush();
                }
            }
        }
    }
}

impl<B: CompileBackend> Service<B> {
    fn shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst) || signal::signaled()
    }

    fn render_metrics(&self) -> String {
        self.metrics
            .gauge("serve.queue_depth")
            .set(self.queue.depth() as f64);
        self.metrics
            .gauge("serve.in_flight")
            .set(self.queue.in_flight() as f64);
        self.metrics
            .gauge("serve.cache_entries")
            .set(self.cache.len() as f64);
        self.metrics
            .gauge("serve.trace_ring_entries")
            .set(self.ring.len() as f64);
        self.metrics.render_prometheus()
    }

    fn handle_connection(&self, stream: TcpStream) {
        let _ = stream.set_read_timeout(Some(STREAM_TIMEOUT));
        let _ = stream.set_write_timeout(Some(STREAM_TIMEOUT));
        let request = match http::read_request(&stream, self.config.max_body_bytes) {
            Ok(request) => request,
            Err(HttpError::BodyTooLarge { declared, limit }) => {
                let body = http::error_body(
                    "payload",
                    &format!("body of {declared} bytes exceeds limit of {limit}"),
                );
                let _ = http::write_response(&stream, 413, "application/json", &body);
                return;
            }
            Err(e) => {
                let body = http::error_body("parse", &e.to_string());
                let _ = http::write_response(&stream, 400, "application/json", &body);
                return;
            }
        };
        // Compile requests carry a request ID: the sanitized client one
        // or a generated one, echoed back in the response header either
        // way.
        let request_id = (request.method == "POST" && request.path == "/compile")
            .then(|| self.ids.resolve(request.request_id.as_deref()));
        let (status, content_type, body) = self.route(&request, request_id.as_deref());
        let mut headers: Vec<(&str, &str)> = Vec::new();
        if let Some(id) = &request_id {
            headers.push((REQUEST_ID_HEADER, id));
        }
        let _ = http::write_response_with(&stream, status, content_type, &headers, &body);
    }

    fn route(&self, request: &Request, request_id: Option<&str>) -> (u16, &'static str, String) {
        match (request.method.as_str(), request.path.as_str()) {
            ("GET", "/healthz") => (200, "text/plain", "ok\n".to_owned()),
            ("GET", "/metrics") => (200, "text/plain", self.render_metrics()),
            ("GET", "/debug/requests") => (200, "application/json", self.ring.summary_json()),
            ("GET", path) if path.strip_prefix("/debug/trace/").is_some() => {
                let id = path.strip_prefix("/debug/trace/").unwrap_or_default();
                match self.ring.find(id) {
                    Some(trace) => (200, "application/json", trace.to_json()),
                    None => (
                        404,
                        "application/json",
                        http::error_body("usage", &format!("no trace for request id {id:?}")),
                    ),
                }
            }
            ("POST", "/shutdown") => {
                self.shutdown.store(true, Ordering::SeqCst);
                (202, "text/plain", "draining\n".to_owned())
            }
            ("POST", "/compile") => self.compile(&request.body, request_id.unwrap_or_default()),
            ("PUT", path) if path.starts_with("/cache/") => {
                let hex = path.strip_prefix("/cache/").unwrap_or_default();
                self.cache_put(hex, &request.body)
            }
            (_, path) if path.starts_with("/cache/") => (
                405,
                "application/json",
                http::error_body("usage", &format!("{} not allowed here", request.method)),
            ),
            (_, "/healthz" | "/metrics" | "/shutdown" | "/compile" | "/debug/requests") => (
                405,
                "application/json",
                http::error_body("usage", &format!("{} not allowed here", request.method)),
            ),
            (_, path) if path.starts_with("/debug/trace/") => (
                405,
                "application/json",
                http::error_body("usage", &format!("{} not allowed here", request.method)),
            ),
            (_, path) => (
                404,
                "application/json",
                http::error_body("usage", &format!("no route {path}")),
            ),
        }
    }

    /// The `POST /compile` entry point: wraps [`Service::compile_inner`]
    /// with per-outcome latency accounting and trace-ring recording.
    fn compile(&self, body: &str, request_id: &str) -> (u16, &'static str, String) {
        self.metrics.counter("serve.requests").inc();
        let started = Instant::now();
        let mut recorder = PhaseRecorder::new(self.ring.enabled());
        let mut ctx = RequestContext::default();
        let (status, outcome, response) = self.compile_inner(body, &mut recorder, &mut ctx);
        let wall = started.elapsed();
        self.record_latency(outcome, &wall);
        if self.ring.enabled() {
            let wall_ns = u64::try_from(wall.as_nanos()).unwrap_or(u64::MAX);
            self.ring.record(RequestTrace {
                id: request_id.to_owned(),
                outcome,
                status,
                circuit: ctx.circuit,
                seed: ctx.seed,
                wall_us: wall_ns / 1000,
                coalesced: ctx.coalesced,
                pinned: false, // the ring decides from wall_us
                root: SpanData {
                    name: "request".to_owned(),
                    wall_ns,
                    closed: true,
                    counter_deltas: Vec::new(),
                    children: recorder.finish(),
                },
            });
        }
        (status, "application/json", response)
    }

    /// The compile state machine. Returns `(status, outcome, body)`
    /// where `outcome` is the latency-histogram label:
    /// `hit` (hot cache), `store_hit` (persistent store), `miss` (waited
    /// on a compile, own or coalesced), `timeout` (408), `error`
    /// (400/500), `shed` (backpressure or drain).
    fn compile_inner(
        &self,
        body: &str,
        recorder: &mut PhaseRecorder,
        ctx: &mut RequestContext,
    ) -> (u16, &'static str, String) {
        if self.shutting_down() {
            return (
                503,
                "shed",
                http::error_body("shutdown", "server is draining"),
            );
        }
        // The request's whole time budget starts here: normalization and
        // queueing spend from the same deadline the compile wait honours,
        // so a slow normalize cannot silently extend the configured
        // timeout. `None` (unrepresentable deadline) waits indefinitely.
        let deadline = Instant::now().checked_add(self.config.timeout);
        recorder.begin("normalize");
        let request = match CompileRequest::from_json(body) {
            Ok(request) => request,
            Err(e) => return (400, "error", http::error_body("parse", &e)),
        };
        // Normalization runs user-supplied backend code on the handler
        // thread; a panic must become a structured error, not a dropped
        // connection.
        let normalized = match catch_unwind(AssertUnwindSafe(|| self.backend.normalize(&request))) {
            Ok(Ok(normalized)) => normalized,
            Ok(Err(e)) => return (400, "error", http::error_body(e.kind, &e.message)),
            Err(_) => {
                return (
                    500,
                    "error",
                    http::error_body(
                        "compile",
                        "request normalization panicked; nothing was cached",
                    ),
                )
            }
        };
        ctx.circuit = normalized.circuit.name().to_owned();
        ctx.seed = normalized.seed;
        let key = CacheKey::of(&normalized);

        recorder.begin("cache_lookup");
        let gate = match self.cache.claim(key) {
            Claim::Hit(manifest) => {
                self.metrics.counter("serve.cache_hits").inc();
                recorder.end();
                return (200, "hit", manifest.as_ref().clone());
            }
            Claim::Wait(gate) => {
                self.metrics.counter("serve.coalesced").inc();
                ctx.coalesced = true;
                gate
            }
            Claim::Compute(gate) => {
                // Second tier: the persistent store. A verified stored
                // manifest is promoted into the hot cache and served
                // without compiling; a corrupt or unverifiable one is
                // quarantined and recompiled.
                recorder.begin("store_fetch");
                if let Some(body) = self.store_fetch(key) {
                    self.cache.complete(key, Arc::clone(&body));
                    gate.fill(Ok(Arc::clone(&body)));
                    recorder.end();
                    return (200, "store_hit", body.as_ref().clone());
                }
                self.metrics.counter("serve.cache_misses").inc();
                let traced = self.ring.enabled();
                let backend = Arc::clone(&self.backend);
                let cache = Arc::clone(&self.cache);
                let store = self.store.clone();
                let job_gate = Arc::clone(&gate);
                let submitted = self.queue.try_submit(move || {
                    // The worker pool survives a panicking job via
                    // catch_unwind, but on its own that would leave this
                    // key's Pending slot and unfilled gate behind: the
                    // owner and every waiter would hang to 408, and all
                    // future requests for the key would coalesce onto the
                    // dead gate forever. The guard converts an unwind
                    // into an abandoned slot plus a structured error.
                    let guard = PanicGuard {
                        cache: Arc::clone(&cache),
                        gate: Arc::clone(&job_gate),
                        key,
                        armed: true,
                    };
                    let (tracer, sink) = if traced {
                        let (tracer, sink) = Tracer::collecting();
                        (tracer, Some(sink))
                    } else {
                        (Tracer::noop(), None)
                    };
                    match backend.compile_traced(&normalized, &tracer) {
                        Ok(manifest) => {
                            let manifest = Arc::new(manifest);
                            if let Some(store) = &store {
                                // Best-effort: a full disk must not fail
                                // the compile the client is waiting on.
                                let _ = store.put(key.0, manifest.as_bytes());
                            }
                            cache.complete(key, Arc::clone(&manifest));
                            // Publish the span tree before the result so
                            // every waiter that sees Ok also sees the
                            // trace.
                            if let Some(sink) = sink {
                                job_gate.set_trace(Arc::new(sink.report().spans));
                            }
                            job_gate.fill(Ok(manifest));
                        }
                        Err(e) => {
                            cache.abandon(key);
                            job_gate.fill(Err(e));
                        }
                    }
                    guard.disarm();
                });
                if let Err(full) = submitted {
                    self.metrics.counter("serve.rejected").inc();
                    self.cache.abandon(key);
                    gate.fill(Err(crate::request::BackendError::new(
                        "backpressure",
                        full.to_string(),
                    )));
                    return (
                        429,
                        "shed",
                        http::error_body("backpressure", &full.to_string()),
                    );
                }
                gate
            }
        };

        recorder.begin("compile");
        match gate.wait_deadline(deadline) {
            Some(Ok(manifest)) => {
                if let Some(spans) = gate.trace() {
                    recorder.graft(&spans);
                }
                recorder.end();
                (200, "miss", manifest.as_ref().clone())
            }
            Some(Err(e)) => {
                let (status, outcome) = if e.kind == "backpressure" {
                    (429, "shed")
                } else {
                    (500, "error")
                };
                (status, outcome, http::error_body(e.kind, &e.message))
            }
            None => {
                self.metrics.counter("serve.timeouts").inc();
                (
                    408,
                    "timeout",
                    http::error_body(
                        "timeout",
                        &format!(
                            "compile exceeded {} ms; retry to pick up the cached result",
                            self.config.timeout.as_millis()
                        ),
                    ),
                )
            }
        }
    }

    /// `PUT /cache/<32-hex-key>`: replication ingest. A cluster router
    /// pushes an already-compiled manifest so this shard can answer the
    /// key without ever compiling it (`serve.cache_misses` stays flat).
    /// The body is verified exactly like a stored manifest before being
    /// trusted; the key↔body binding is the pusher's responsibility —
    /// the router derives the key the same way this server would.
    fn cache_put(&self, hex: &str, body: &str) -> (u16, &'static str, String) {
        if self.shutting_down() {
            return (
                503,
                "application/json",
                http::error_body("shutdown", "server is draining"),
            );
        }
        let key = (hex.len() == 32)
            .then(|| u128::from_str_radix(hex, 16).ok())
            .flatten();
        let Some(key) = key else {
            return (
                400,
                "application/json",
                http::error_body(
                    "usage",
                    &format!("cache key must be 32 hex digits, got {hex:?}"),
                ),
            );
        };
        if let Err(e) = self.verify_stored_guarded(body) {
            return (
                400,
                "application/json",
                http::error_body(e.kind, &e.message),
            );
        }
        let key = CacheKey(key);
        let manifest = Arc::new(body.to_owned());
        if let Some(store) = &self.store {
            // Best-effort, like the compile path: a full disk degrades
            // replication to memory-only, it does not fail the push.
            let _ = store.put(key.0, manifest.as_bytes());
        }
        self.cache.complete(key, manifest);
        self.metrics.counter("serve.replicated").inc();
        (200, "text/plain", "replicated\n".to_owned())
    }

    /// Runs the backend's stored-manifest verification with a panic
    /// boundary. The verifier examines user-supplied (or on-disk) bytes
    /// on the *handler* thread; before this guard a panicking verifier
    /// unwound through `compile_inner` with the key's `Pending` slot
    /// still registered, stranding every current and future request for
    /// that key on a gate nobody would ever fill.
    fn verify_stored_guarded(&self, body: &str) -> Result<(), crate::request::BackendError> {
        catch_unwind(AssertUnwindSafe(|| self.backend.verify_stored(body))).unwrap_or_else(|_| {
            Err(crate::request::BackendError::new(
                "verify",
                "stored-manifest verification panicked; entry treated as unverifiable",
            ))
        })
    }

    /// Looks `key` up in the persistent store and verifies the stored
    /// body (UTF-8, then the backend's semantic check) before trusting
    /// it. Anything that fails verification — including a *panicking*
    /// verifier — is quarantined so the slot recompiles: a corrupt store
    /// degrades to a cold cache, never to a wrong answer or a dead slot.
    fn store_fetch(&self, key: CacheKey) -> Option<Arc<String>> {
        let store = self.store.as_ref()?;
        let bytes = store.get(key.0)?;
        let verified = String::from_utf8(bytes)
            .ok()
            .filter(|body| self.verify_stored_guarded(body).is_ok());
        match verified {
            Some(body) => Some(Arc::new(body)),
            None => {
                store.quarantine(key.0);
                None
            }
        }
    }

    /// Records end-to-end request latency into the per-outcome
    /// histogram. One histogram per outcome (static names with embedded
    /// Prometheus labels) instead of one aggregate, so a cache hit's
    /// microseconds never blur a cold compile's milliseconds.
    fn record_latency(&self, outcome: &'static str, wall: &Duration) {
        let name = match outcome {
            "hit" => "serve.latency_us{outcome=\"hit\"}",
            "store_hit" => "serve.latency_us{outcome=\"store_hit\"}",
            "miss" => "serve.latency_us{outcome=\"miss\"}",
            "timeout" => "serve.latency_us{outcome=\"timeout\"}",
            "shed" => "serve.latency_us{outcome=\"shed\"}",
            _ => "serve.latency_us{outcome=\"error\"}",
        };
        self.metrics
            .histogram(name)
            .record(wall.as_micros().try_into().unwrap_or(u64::MAX));
    }
}

/// Per-request bookkeeping threaded through the compile state machine
/// into the trace ring.
#[derive(Debug, Default)]
struct RequestContext {
    circuit: String,
    seed: u64,
    coalesced: bool,
}

/// Armed across a compile job; dropping it still armed (i.e. during an
/// unwind out of the backend) abandons the pending cache slot and fills
/// the gate with a structured `compile` error, so waiters fail fast and
/// the next request for the key recompiles instead of coalescing onto a
/// gate nobody will ever fill.
struct PanicGuard {
    cache: Arc<ResultCache>,
    gate: Arc<Gate>,
    key: CacheKey,
    armed: bool,
}

impl PanicGuard {
    /// Consumes the guard on the job's normal exit paths, where the
    /// match above has already settled the slot and the gate.
    fn disarm(mut self) {
        self.armed = false;
    }
}

impl Drop for PanicGuard {
    fn drop(&mut self) {
        if self.armed {
            self.cache.abandon(self.key);
            self.gate.fill(Err(crate::request::BackendError::new(
                "compile",
                "compile worker panicked; nothing was cached — retrying recompiles",
            )));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::{BackendError, NormalizedRequest};
    use std::io::{Read as _, Write as _};
    use std::sync::atomic::AtomicU64;

    /// A backend that "compiles" by echoing a deterministic line, with a
    /// configurable delay so tests can exercise timeouts and coalescing.
    struct EchoBackend {
        delay: Duration,
        compiles: AtomicU64,
    }

    impl EchoBackend {
        fn new(delay: Duration) -> Self {
            Self {
                delay,
                compiles: AtomicU64::new(0),
            }
        }
    }

    impl CompileBackend for EchoBackend {
        fn normalize(&self, request: &CompileRequest) -> Result<NormalizedRequest, BackendError> {
            let source = request
                .bench
                .as_deref()
                .ok_or_else(|| BackendError::new("parse", "echo backend wants bench"))?;
            let circuit = ppet_netlist::bench_format::parse("echo", source)
                .map_err(|e| BackendError::new("parse", e.to_string()))?;
            Ok(NormalizedRequest {
                circuit,
                config_entries: request.config.clone(),
                seed: request.seed.unwrap_or(0),
            })
        }

        fn compile(&self, normalized: &NormalizedRequest) -> Result<String, BackendError> {
            self.compiles.fetch_add(1, Ordering::SeqCst);
            if !self.delay.is_zero() {
                thread::sleep(self.delay);
            }
            Ok(format!(
                "{{\"circuit\":\"{}\",\"seed\":{}}}",
                normalized.circuit.name(),
                normalized.seed
            ))
        }
    }

    fn start(
        delay: Duration,
        config: ServeConfig,
    ) -> (SocketAddr, ServerHandle, thread::JoinHandle<()>) {
        let server = Server::bind("127.0.0.1:0", EchoBackend::new(delay), config).unwrap();
        let addr = server.local_addr();
        let handle = server.handle();
        let join = thread::spawn(move || server.run());
        (addr, handle, join)
    }

    fn roundtrip(addr: SocketAddr, method: &str, path: &str, body: &str) -> (u16, String) {
        let mut stream = TcpStream::connect(addr).unwrap();
        write!(
            stream,
            "{method} {path} HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        )
        .unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        let status: u16 = response
            .split_whitespace()
            .nth(1)
            .expect("status line")
            .parse()
            .unwrap();
        let body = response
            .split_once("\r\n\r\n")
            .map(|(_, b)| b.to_owned())
            .unwrap_or_default();
        (status, body)
    }

    /// Like `roundtrip` but returns the raw response (status line,
    /// headers, body) and lets the caller add request headers.
    fn raw_roundtrip(
        addr: SocketAddr,
        method: &str,
        path: &str,
        extra: &str,
        body: &str,
    ) -> String {
        let mut stream = TcpStream::connect(addr).unwrap();
        write!(
            stream,
            "{method} {path} HTTP/1.1\r\nHost: t\r\n{extra}Content-Length: {}\r\n\r\n{body}",
            body.len()
        )
        .unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        response
    }

    fn header_value<'a>(response: &'a str, name: &str) -> Option<&'a str> {
        response.lines().find_map(|l| {
            let (n, v) = l.split_once(':')?;
            n.eq_ignore_ascii_case(name).then(|| v.trim())
        })
    }

    const BENCH: &str = "INPUT(a)\nOUTPUT(y)\ny = NOT(a)\n";

    #[test]
    fn healthz_metrics_and_unknown_routes() {
        let (addr, handle, join) = start(Duration::ZERO, ServeConfig::default());
        let (status, body) = roundtrip(addr, "GET", "/healthz", "");
        assert_eq!((status, body.as_str()), (200, "ok\n"));
        let (status, body) = roundtrip(addr, "GET", "/metrics", "");
        assert_eq!(status, 200);
        assert!(body.contains("serve_queue_depth 0\n"), "{body}");
        let (status, _) = roundtrip(addr, "GET", "/nope", "");
        assert_eq!(status, 404);
        let (status, _) = roundtrip(addr, "GET", "/compile", "");
        assert_eq!(status, 405);
        handle.shutdown();
        join.join().unwrap();
    }

    #[test]
    fn compile_misses_then_hits_the_cache() {
        let (addr, handle, join) = start(Duration::ZERO, ServeConfig::default());
        let req = CompileRequest::bench(BENCH).with_seed(7).to_json();
        let (status, first) = roundtrip(addr, "POST", "/compile", &req);
        assert_eq!(status, 200, "{first}");
        let (status, second) = roundtrip(addr, "POST", "/compile", &req);
        assert_eq!(status, 200);
        assert_eq!(first, second);
        let (_, metrics) = roundtrip(addr, "GET", "/metrics", "");
        assert!(metrics.contains("serve_cache_hits 1\n"), "{metrics}");
        assert!(metrics.contains("serve_cache_misses 1\n"), "{metrics}");
        assert!(metrics.contains("serve_requests 2\n"), "{metrics}");
        handle.shutdown();
        join.join().unwrap();
    }

    #[test]
    fn malformed_requests_get_structured_errors() {
        let (addr, handle, join) = start(Duration::ZERO, ServeConfig::default());
        let (status, body) = roundtrip(addr, "POST", "/compile", "{not json");
        assert_eq!(status, 400);
        assert!(body.contains("\"schema\":\"ppet-error/v1\""), "{body}");
        assert!(body.contains("\"kind\":\"parse\""), "{body}");
        handle.shutdown();
        join.join().unwrap();
    }

    #[test]
    fn slow_compiles_time_out_with_a_structured_error() {
        let config = ServeConfig {
            timeout: Duration::from_millis(30),
            ..ServeConfig::default()
        };
        let (addr, handle, join) = start(Duration::from_millis(400), config);
        let req = CompileRequest::bench(BENCH).to_json();
        let (status, body) = roundtrip(addr, "POST", "/compile", &req);
        assert_eq!(status, 408, "{body}");
        assert!(body.contains("\"kind\":\"timeout\""), "{body}");
        let (_, metrics) = roundtrip(addr, "GET", "/metrics", "");
        assert!(metrics.contains("serve_timeouts 1\n"), "{metrics}");
        handle.shutdown();
        join.join().unwrap();
    }

    #[test]
    fn concurrent_identical_requests_coalesce() {
        let config = ServeConfig {
            workers: 1,
            ..ServeConfig::default()
        };
        let (addr, handle, join) = start(Duration::from_millis(120), config);
        let req = CompileRequest::bench(BENCH).with_seed(3).to_json();
        let clients: Vec<_> = (0..4)
            .map(|_| {
                let req = req.clone();
                thread::spawn(move || roundtrip(addr, "POST", "/compile", &req))
            })
            .collect();
        let mut bodies = Vec::new();
        for c in clients {
            let (status, body) = c.join().unwrap();
            assert_eq!(status, 200, "{body}");
            bodies.push(body);
        }
        bodies.dedup();
        assert_eq!(bodies.len(), 1, "all clients see the same manifest");
        let (_, metrics) = roundtrip(addr, "GET", "/metrics", "");
        assert!(metrics.contains("serve_cache_misses 1\n"), "{metrics}");
        handle.shutdown();
        join.join().unwrap();
    }

    /// A backend whose first `fail_times` compiles error, then succeed —
    /// for exercising the no-poisoning contract.
    struct FlakyBackend {
        inner: EchoBackend,
        fail_times: AtomicU64,
    }

    impl CompileBackend for FlakyBackend {
        fn normalize(&self, request: &CompileRequest) -> Result<NormalizedRequest, BackendError> {
            self.inner.normalize(request)
        }

        fn compile(&self, normalized: &NormalizedRequest) -> Result<String, BackendError> {
            if self.fail_times.fetch_sub(1, Ordering::SeqCst) > 0 {
                return Err(BackendError::new("compile", "transient failure"));
            }
            self.inner.compile(normalized)
        }
    }

    fn temp_store_dir(tag: &str) -> std::path::PathBuf {
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "ppet-serve-store-{tag}-{}-{}",
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    /// Satellite contract: a client that gave up with 408 has not burned
    /// the slot — the compile finishes in the background and the next
    /// identical request is a cache hit.
    #[test]
    fn timed_out_compile_still_lands_in_the_cache() {
        let config = ServeConfig {
            timeout: Duration::from_millis(20),
            ..ServeConfig::default()
        };
        let (addr, handle, join) = start(Duration::from_millis(150), config);
        let req = CompileRequest::bench(BENCH).with_seed(11).to_json();
        let (status, body) = roundtrip(addr, "POST", "/compile", &req);
        assert_eq!(status, 408, "{body}");
        // Let the abandoned compile finish.
        thread::sleep(Duration::from_millis(400));
        let (status, body) = roundtrip(addr, "POST", "/compile", &req);
        assert_eq!(status, 200, "{body}");
        let (_, metrics) = roundtrip(addr, "GET", "/metrics", "");
        assert!(metrics.contains("serve_cache_hits 1\n"), "{metrics}");
        assert!(
            metrics.contains("serve_cache_misses 1\n"),
            "compile must have run exactly once: {metrics}"
        );
        handle.shutdown();
        join.join().unwrap();
    }

    /// Satellite contract: a failed compile never poisons its slot — the
    /// next identical request recompiles and succeeds.
    #[test]
    fn failed_compile_does_not_poison_the_slot() {
        let backend = FlakyBackend {
            inner: EchoBackend::new(Duration::ZERO),
            fail_times: AtomicU64::new(1),
        };
        let server = Server::bind("127.0.0.1:0", backend, ServeConfig::default()).unwrap();
        let addr = server.local_addr();
        let handle = server.handle();
        let join = thread::spawn(move || server.run());
        let req = CompileRequest::bench(BENCH).with_seed(13).to_json();
        let (status, body) = roundtrip(addr, "POST", "/compile", &req);
        assert_eq!(status, 500, "{body}");
        assert!(body.contains("transient failure"), "{body}");
        let (status, body) = roundtrip(addr, "POST", "/compile", &req);
        assert_eq!(
            status, 200,
            "retry must recompile, not replay the error: {body}"
        );
        handle.shutdown();
        join.join().unwrap();
    }

    /// Satellite regression: a *panicking* compile must not poison the
    /// coalescing gate. The worker pool's `catch_unwind` keeps the
    /// worker alive, but before the job-level guard the gate was never
    /// filled — the owner hung to 408 and every later request for the
    /// key coalesced onto the dead gate forever.
    #[test]
    fn panicking_compile_fails_fast_and_does_not_poison_the_slot() {
        struct Grenade {
            inner: EchoBackend,
            blasts: AtomicU64,
        }
        impl CompileBackend for Grenade {
            fn normalize(
                &self,
                request: &CompileRequest,
            ) -> Result<NormalizedRequest, BackendError> {
                self.inner.normalize(request)
            }
            fn compile(&self, normalized: &NormalizedRequest) -> Result<String, BackendError> {
                if self.blasts.fetch_sub(1, Ordering::SeqCst) > 0 {
                    panic!("kaboom");
                }
                self.inner.compile(normalized)
            }
        }

        let backend = Grenade {
            inner: EchoBackend::new(Duration::ZERO),
            blasts: AtomicU64::new(1),
        };
        // Short deadline: pre-fix this test failed by timing out to 408
        // instead of returning the structured 500.
        let config = ServeConfig {
            timeout: Duration::from_millis(500),
            ..ServeConfig::default()
        };
        let server = Server::bind("127.0.0.1:0", backend, config).unwrap();
        let addr = server.local_addr();
        let handle = server.handle();
        let join = thread::spawn(move || server.run());
        let req = CompileRequest::bench(BENCH).with_seed(17).to_json();
        let (status, body) = roundtrip(addr, "POST", "/compile", &req);
        assert_eq!(status, 500, "panic surfaces as a structured error: {body}");
        assert!(body.contains("\"kind\":\"compile\""), "{body}");
        assert!(body.contains("panicked"), "{body}");
        let (status, body) = roundtrip(addr, "POST", "/compile", &req);
        assert_eq!(status, 200, "retry recompiles on a live worker: {body}");
        handle.shutdown();
        join.join().unwrap();
    }

    /// Satellite regression: the request's time budget starts at request
    /// entry, not at the compile wait. A backend whose `normalize` alone
    /// overruns the deadline must answer 408 immediately afterwards —
    /// before the fix the gate wait restarted the full timeout, so this
    /// request rode a fresh budget into a 200.
    #[test]
    fn slow_normalize_spends_the_request_deadline() {
        struct Molasses(EchoBackend);
        impl CompileBackend for Molasses {
            fn normalize(
                &self,
                request: &CompileRequest,
            ) -> Result<NormalizedRequest, BackendError> {
                thread::sleep(Duration::from_millis(150));
                self.0.normalize(request)
            }
            fn compile(&self, normalized: &NormalizedRequest) -> Result<String, BackendError> {
                self.0.compile(normalized)
            }
        }

        let backend = Molasses(EchoBackend::new(Duration::from_millis(60)));
        let config = ServeConfig {
            timeout: Duration::from_millis(100),
            ..ServeConfig::default()
        };
        let server = Server::bind("127.0.0.1:0", backend, config).unwrap();
        let addr = server.local_addr();
        let handle = server.handle();
        let join = thread::spawn(move || server.run());
        let req = CompileRequest::bench(BENCH).with_seed(41).to_json();
        // normalize (150 ms) exceeds the 100 ms budget; the 60 ms compile
        // would fit a *restarted* budget comfortably, so a 200 here means
        // the deadline was restarted after normalize.
        let (status, body) = roundtrip(addr, "POST", "/compile", &req);
        assert_eq!(status, 408, "budget spent during normalize: {body}");
        assert!(body.contains("\"kind\":\"timeout\""), "{body}");
        // The compile still finished into the cache; a retry hits it
        // (after its own slow normalize).
        thread::sleep(Duration::from_millis(300));
        let (status, body) = roundtrip(addr, "POST", "/compile", &req);
        assert_eq!(status, 200, "late fill lands in the cache: {body}");
        handle.shutdown();
        join.join().unwrap();
    }

    /// Satellite regression: a backend whose `normalize` panics gets a
    /// structured error, not a dropped connection.
    #[test]
    fn panicking_normalize_answers_a_structured_error() {
        struct Tantrum;
        impl CompileBackend for Tantrum {
            fn normalize(
                &self,
                _request: &CompileRequest,
            ) -> Result<NormalizedRequest, BackendError> {
                panic!("normalize kaboom");
            }
            fn compile(&self, _normalized: &NormalizedRequest) -> Result<String, BackendError> {
                unreachable!("normalize never succeeds");
            }
        }

        let server = Server::bind("127.0.0.1:0", Tantrum, ServeConfig::default()).unwrap();
        let addr = server.local_addr();
        let handle = server.handle();
        let join = thread::spawn(move || server.run());
        let req = CompileRequest::bench(BENCH).to_json();
        let (status, body) = roundtrip(addr, "POST", "/compile", &req);
        assert_eq!(status, 500, "{body}");
        assert!(body.contains("\"schema\":\"ppet-error/v1\""), "{body}");
        assert!(body.contains("normalization panicked"), "{body}");
        // The server is still healthy.
        let (status, _) = roundtrip(addr, "GET", "/healthz", "");
        assert_eq!(status, 200);
        handle.shutdown();
        join.join().unwrap();
    }

    /// Satellite regression: a *panicking* stored-manifest verifier runs
    /// on the handler thread with the key's Pending slot registered.
    /// Before the panic boundary the unwind dropped the connection and
    /// leaked the slot: this request died mid-air and every retry
    /// coalesced onto a gate nobody would ever fill, timing out to 408
    /// forever. Post-fix the entry is quarantined and recompiled.
    #[test]
    fn panicking_store_verifier_quarantines_and_recompiles() {
        struct Landmine(EchoBackend);
        impl CompileBackend for Landmine {
            fn normalize(
                &self,
                request: &CompileRequest,
            ) -> Result<NormalizedRequest, BackendError> {
                self.0.normalize(request)
            }
            fn compile(&self, normalized: &NormalizedRequest) -> Result<String, BackendError> {
                self.0.compile(normalized)
            }
            fn verify_stored(&self, _stored: &str) -> Result<(), BackendError> {
                panic!("verifier kaboom");
            }
        }

        let dir = temp_store_dir("landmine");
        let config = ServeConfig {
            store_dir: Some(dir.clone()),
            timeout: Duration::from_millis(500),
            ..ServeConfig::default()
        };
        let req = CompileRequest::bench(BENCH).with_seed(29).to_json();

        // Round 1: compile lands in the store (verify runs only on
        // fetch, so nothing detonates yet).
        let backend = Landmine(EchoBackend::new(Duration::ZERO));
        let server = Server::bind("127.0.0.1:0", backend, config.clone()).unwrap();
        let (addr, handle) = (server.local_addr(), server.handle());
        let join = thread::spawn(move || server.run());
        let (status, body) = roundtrip(addr, "POST", "/compile", &req);
        assert_eq!(status, 200, "{body}");
        handle.shutdown();
        join.join().unwrap();

        // Round 2: a fresh server finds the stored entry; the verifier
        // panics during the fetch.
        let backend = Landmine(EchoBackend::new(Duration::ZERO));
        let server = Server::bind("127.0.0.1:0", backend, config).unwrap();
        let (addr, handle) = (server.local_addr(), server.handle());
        let join = thread::spawn(move || server.run());
        let (status, body) = roundtrip(addr, "POST", "/compile", &req);
        assert_eq!(status, 200, "quarantined and recompiled: {body}");
        // The slot was not leaked: the same key keeps answering.
        let (status, body) = roundtrip(addr, "POST", "/compile", &req);
        assert_eq!(status, 200, "slot survives for retries: {body}");
        let (_, metrics) = roundtrip(addr, "GET", "/metrics", "");
        assert!(metrics.contains("store_quarantined 1\n"), "{metrics}");

        // The replication path shares the boundary: a panicking verifier
        // is a structured 400, not a dropped connection.
        let (status, body) = roundtrip(addr, "PUT", &format!("/cache/{:032x}", 7), "pushed");
        assert_eq!(status, 400, "{body}");
        assert!(body.contains("\"kind\":\"verify\""), "{body}");
        assert!(body.contains("verification panicked"), "{body}");
        handle.shutdown();
        join.join().unwrap();
        std::fs::remove_dir_all(&dir).unwrap();
    }

    /// Replication ingest: `PUT /cache/<key>` seeds the hot cache so the
    /// next identical compile request is a hit, with zero compiles.
    #[test]
    fn replication_put_seeds_the_cache_without_compiling() {
        let request = CompileRequest::bench(BENCH).with_seed(31);
        // Derive the key and manifest out of band, exactly as the
        // cluster router would (same normalize, same key derivation).
        let oracle = EchoBackend::new(Duration::ZERO);
        let normalized = oracle.normalize(&request).unwrap();
        let key = CacheKey::of(&normalized);
        let manifest = oracle.compile(&normalized).unwrap();

        let (addr, handle, join) = start(Duration::ZERO, ServeConfig::default());
        let (status, body) = roundtrip(addr, "PUT", &format!("/cache/{key}"), &manifest);
        assert_eq!((status, body.as_str()), (200, "replicated\n"));
        let (status, body) = roundtrip(addr, "POST", "/compile", &request.to_json());
        assert_eq!(status, 200);
        assert_eq!(body, manifest, "served byte-identical from the push");
        let (_, metrics) = roundtrip(addr, "GET", "/metrics", "");
        assert!(metrics.contains("serve_replicated 1\n"), "{metrics}");
        assert!(metrics.contains("serve_cache_hits 1\n"), "{metrics}");
        assert!(
            !metrics.contains("serve_cache_misses"),
            "no compile ever ran: {metrics}"
        );

        let (status, body) = roundtrip(addr, "PUT", "/cache/not-a-key", &manifest);
        assert_eq!(status, 400, "{body}");
        assert!(body.contains("\"kind\":\"usage\""), "{body}");
        let (status, _) = roundtrip(addr, "GET", &format!("/cache/{key}"), "");
        assert_eq!(status, 405);
        handle.shutdown();
        join.join().unwrap();
    }

    /// The persistent tier: a manifest compiled before shutdown is served
    /// from the store after restart, without recompiling.
    #[test]
    fn store_survives_restart_and_answers_without_recompiling() {
        let dir = temp_store_dir("restart");
        let config = ServeConfig {
            store_dir: Some(dir.clone()),
            ..ServeConfig::default()
        };
        let req = CompileRequest::bench(BENCH).with_seed(21).to_json();

        let (addr, handle, join) = start(Duration::ZERO, config.clone());
        let (status, first) = roundtrip(addr, "POST", "/compile", &req);
        assert_eq!(status, 200, "{first}");
        handle.shutdown();
        join.join().unwrap();

        // Fresh server, fresh (empty) hot cache, same store directory.
        let (addr, handle, join) = start(Duration::ZERO, config);
        let (status, second) = roundtrip(addr, "POST", "/compile", &req);
        assert_eq!(status, 200, "{second}");
        assert_eq!(first, second, "stored manifest is byte-identical");
        let (_, metrics) = roundtrip(addr, "GET", "/metrics", "");
        assert!(metrics.contains("store_hits 1\n"), "{metrics}");
        assert!(
            metrics.contains("serve_cache_misses 0\n") || !metrics.contains("serve_cache_misses"),
            "store hit must not count as a compile miss: {metrics}"
        );
        handle.shutdown();
        join.join().unwrap();
        std::fs::remove_dir_all(&dir).unwrap();
    }

    /// A stored body the backend refuses to verify is quarantined and
    /// recompiled instead of served.
    #[test]
    fn unverifiable_store_entries_are_quarantined_and_recompiled() {
        struct Paranoid(EchoBackend);
        impl CompileBackend for Paranoid {
            fn normalize(
                &self,
                request: &CompileRequest,
            ) -> Result<NormalizedRequest, BackendError> {
                self.0.normalize(request)
            }
            fn compile(&self, normalized: &NormalizedRequest) -> Result<String, BackendError> {
                self.0.compile(normalized)
            }
            fn verify_stored(&self, _stored: &str) -> Result<(), BackendError> {
                Err(BackendError::new("audit", "refused on principle"))
            }
        }

        let dir = temp_store_dir("paranoid");
        let config = ServeConfig {
            store_dir: Some(dir.clone()),
            ..ServeConfig::default()
        };
        let req = CompileRequest::bench(BENCH).with_seed(23).to_json();
        for round in 0..2 {
            let backend = Paranoid(EchoBackend::new(Duration::ZERO));
            let server = Server::bind("127.0.0.1:0", backend, config.clone()).unwrap();
            let addr = server.local_addr();
            let handle = server.handle();
            let join = thread::spawn(move || server.run());
            let (status, body) = roundtrip(addr, "POST", "/compile", &req);
            assert_eq!(status, 200, "round {round}: {body}");
            let (_, metrics) = roundtrip(addr, "GET", "/metrics", "");
            if round == 1 {
                // The restart found the stored entry, refused it, and
                // recompiled.
                assert!(metrics.contains("store_quarantined 1\n"), "{metrics}");
                assert!(metrics.contains("serve_cache_misses 1\n"), "{metrics}");
            }
            handle.shutdown();
            join.join().unwrap();
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    /// Satellite regression: latency is accounted per outcome — a cache
    /// hit must never land in the cold-compile (`miss`) histogram.
    #[test]
    fn cache_hits_never_land_in_the_cold_compile_histogram() {
        let (addr, handle, join) = start(Duration::ZERO, ServeConfig::default());
        let req = CompileRequest::bench(BENCH).with_seed(5).to_json();
        let (status, _) = roundtrip(addr, "POST", "/compile", &req);
        assert_eq!(status, 200);
        let (status, _) = roundtrip(addr, "POST", "/compile", &req);
        assert_eq!(status, 200);
        let (_, metrics) = roundtrip(addr, "GET", "/metrics", "");
        assert!(
            metrics.contains("serve_latency_us_count{outcome=\"miss\"} 1\n"),
            "exactly the cold compile: {metrics}"
        );
        assert!(
            metrics.contains("serve_latency_us_count{outcome=\"hit\"} 1\n"),
            "exactly the cache hit: {metrics}"
        );
        handle.shutdown();
        join.join().unwrap();
    }

    #[test]
    fn request_ids_are_generated_and_client_ids_echoed() {
        let (addr, handle, join) = start(Duration::ZERO, ServeConfig::default());
        let req = CompileRequest::bench(BENCH).with_seed(6).to_json();
        let response = raw_roundtrip(addr, "POST", "/compile", "", &req);
        let generated = header_value(&response, "X-Ppet-Request-Id").expect("generated id");
        assert_eq!(generated.len(), 32, "{response}");

        let response = raw_roundtrip(
            addr,
            "POST",
            "/compile",
            "X-Ppet-Request-Id: my-req-1\r\n",
            &req,
        );
        assert_eq!(
            header_value(&response, "X-Ppet-Request-Id"),
            Some("my-req-1"),
            "client id echoed: {response}"
        );
        // An unusable client ID falls back to a generated one.
        let response = raw_roundtrip(
            addr,
            "POST",
            "/compile",
            "X-Ppet-Request-Id: not a valid id!\r\n",
            &req,
        );
        assert_eq!(
            header_value(&response, "X-Ppet-Request-Id").map(str::len),
            Some(32),
            "{response}"
        );
        handle.shutdown();
        join.join().unwrap();
    }

    #[test]
    fn debug_endpoints_expose_recent_request_traces() {
        let (addr, handle, join) = start(Duration::ZERO, ServeConfig::default());
        let req = CompileRequest::bench(BENCH).with_seed(8).to_json();
        let response = raw_roundtrip(
            addr,
            "POST",
            "/compile",
            "X-Ppet-Request-Id: dbg-1\r\n",
            &req,
        );
        assert!(response.starts_with("HTTP/1.1 200"), "{response}");

        let (status, summary) = roundtrip(addr, "GET", "/debug/requests", "");
        assert_eq!(status, 200);
        assert!(summary.contains("\"id\":\"dbg-1\""), "{summary}");
        assert!(summary.contains("\"outcome\":\"miss\""), "{summary}");
        assert!(summary.contains("\"normalize\""), "{summary}");

        let (status, trace) = roundtrip(addr, "GET", "/debug/trace/dbg-1", "");
        assert_eq!(status, 200, "{trace}");
        assert!(trace.contains("\"schema\": \"ppet-trace/v1\""), "{trace}");
        assert!(trace.contains("\"request_id\": \"dbg-1\""), "{trace}");
        assert!(trace.contains("\"spans\""), "{trace}");

        let (status, missing) = roundtrip(addr, "GET", "/debug/trace/nope", "");
        assert_eq!(status, 404, "{missing}");
        assert!(missing.contains("\"ppet-error/v1\""), "{missing}");

        let (status, _) = roundtrip(addr, "POST", "/debug/requests", "");
        assert_eq!(status, 405);
        handle.shutdown();
        join.join().unwrap();
    }

    #[test]
    fn a_disabled_ring_still_answers_the_debug_routes() {
        let config = ServeConfig {
            trace_ring: 0,
            ..ServeConfig::default()
        };
        let (addr, handle, join) = start(Duration::ZERO, config);
        let req = CompileRequest::bench(BENCH).with_seed(9).to_json();
        let (status, _) = roundtrip(addr, "POST", "/compile", &req);
        assert_eq!(status, 200);
        let (status, summary) = roundtrip(addr, "GET", "/debug/requests", "");
        assert_eq!(status, 200);
        assert!(summary.contains("\"requests\":[]"), "{summary}");
        handle.shutdown();
        join.join().unwrap();
    }

    #[test]
    fn shutdown_route_drains_the_server() {
        let (addr, _handle, join) = start(Duration::ZERO, ServeConfig::default());
        let (status, body) = roundtrip(addr, "POST", "/shutdown", "");
        assert_eq!((status, body.as_str()), (202, "draining\n"));
        join.join().unwrap();
        assert!(
            TcpStream::connect(addr).is_err() || {
                // The OS may accept briefly on some platforms; a request
                // must at least fail to be answered.
                let mut s = TcpStream::connect(addr).unwrap();
                let _ = write!(s, "GET /healthz HTTP/1.1\r\n\r\n");
                let mut out = String::new();
                s.read_to_string(&mut out).unwrap_or(0) == 0
            }
        );
    }
}
