//! The content-addressed result cache with in-flight coalescing.
//!
//! The key is a 128-bit FNV-1a hash over the circuit's canonical
//! `.bench` bytes, the effective config entries, and the effective seed —
//! each field length-prefixed so concatenations cannot collide (see
//! [`ppet_netlist::canonical`]). Because the compiler is deterministic,
//! equal keys *must* produce byte-identical manifests (modulo the
//! `wall_ns`/`jobs` entries, which are part of the manifest but not the
//! result), so a hit can return the stored body outright.
//!
//! Identical requests that arrive while the first is still compiling
//! coalesce: the first requester inserts a `Pending` slot holding a
//! [`Gate`]; later requesters wait on the gate instead of submitting a
//! second compile. Failures are never cached — the pending slot is
//! removed so the next request retries.

use std::collections::HashMap;
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};

use ppet_netlist::canonical::{canonical_bytes, Fnv128};
use ppet_netlist::Circuit;
use ppet_trace::SpanData;

use crate::request::{BackendError, NormalizedRequest};

/// Locks `mutex`, entering the critical section even if a previous
/// holder panicked. Every lock in this module guards plain data whose
/// invariants hold at every panic point (each write is a single
/// assignment or a `HashMap` operation that is valid before and after),
/// so the poison flag carries no information here — while honouring it
/// would let one panicking request, or a panicking user-supplied
/// backend, permanently kill a cache slot or strand every waiter on a
/// gate.
fn lock_unpoisoned<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

/// The cache key: a 128-bit content hash of `(circuit, config, seed)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CacheKey(pub u128);

impl CacheKey {
    /// Derives the key for a normalized request.
    #[must_use]
    pub fn of(normalized: &NormalizedRequest) -> Self {
        Self::derive(
            &normalized.circuit,
            &normalized.config_entries,
            normalized.seed,
        )
    }

    /// Derives the key from the constituent parts.
    #[must_use]
    pub fn derive(circuit: &Circuit, config_entries: &[(String, String)], seed: u64) -> Self {
        let mut hasher = Fnv128::new();
        hasher.write_frame(&canonical_bytes(circuit));
        for (k, v) in config_entries {
            hasher.write_frame(k.as_bytes());
            hasher.write_frame(v.as_bytes());
        }
        hasher.write_frame(&seed.to_le_bytes());
        CacheKey(hasher.finish())
    }
}

impl std::fmt::Display for CacheKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:032x}", self.0)
    }
}

/// The outcome a waiter observes for one compile.
pub type CompileResult = Result<Arc<String>, BackendError>;

/// A one-shot broadcast cell: the compiling thread fills it once, any
/// number of coalesced waiters block on it (with a deadline).
#[derive(Debug, Default)]
pub struct Gate {
    slot: Mutex<Option<CompileResult>>,
    ready: Condvar,
    /// The compile's span tree, published by the compiling thread before
    /// it fills the gate so every coalesced waiter can graft the *same*
    /// tree into its own request trace.
    trace: Mutex<Option<Arc<Vec<SpanData>>>>,
}

impl Gate {
    /// Fills the gate and wakes all waiters. Later fills are ignored —
    /// the first result wins, matching "the first requester compiles".
    pub fn fill(&self, result: CompileResult) {
        let mut slot = lock_unpoisoned(&self.slot);
        if slot.is_none() {
            *slot = Some(result);
        }
        drop(slot);
        self.ready.notify_all();
    }

    /// Publishes the compile's span tree. First write wins; call before
    /// [`Gate::fill`] so waiters observe it once the result is visible.
    pub fn set_trace(&self, spans: Arc<Vec<SpanData>>) {
        let mut trace = lock_unpoisoned(&self.trace);
        if trace.is_none() {
            *trace = Some(spans);
        }
    }

    /// The compile's span tree, shared by every waiter on this gate.
    #[must_use]
    pub fn trace(&self) -> Option<Arc<Vec<SpanData>>> {
        lock_unpoisoned(&self.trace).clone()
    }

    /// Waits up to `timeout` for the result, the deadline starting now.
    /// `None` means the deadline passed with the compile still running.
    /// A timeout too large to represent as a deadline waits indefinitely
    /// (the overflow-safe reading of an astronomical timeout) instead of
    /// panicking.
    #[must_use]
    pub fn wait(&self, timeout: Duration) -> Option<CompileResult> {
        self.wait_deadline(Instant::now().checked_add(timeout))
    }

    /// Waits until `deadline` for the result; `None` waits indefinitely.
    ///
    /// The deadline is fixed by the caller — typically at request entry,
    /// so time spent in earlier phases (parsing, normalization, queueing)
    /// counts against the same budget instead of restarting it here. An
    /// already-expired deadline still observes a result that is present,
    /// but otherwise returns `None` immediately: no zero-duration
    /// condvar spin, and a fill that lands later is picked up from the
    /// cache by the client's retry.
    #[must_use]
    pub fn wait_deadline(&self, deadline: Option<Instant>) -> Option<CompileResult> {
        let mut slot = lock_unpoisoned(&self.slot);
        loop {
            if let Some(result) = slot.as_ref() {
                return Some(result.clone());
            }
            slot = match deadline {
                Some(deadline) => {
                    let remaining = deadline
                        .checked_duration_since(Instant::now())
                        .filter(|rem| !rem.is_zero())?;
                    self.ready
                        .wait_timeout(slot, remaining)
                        .unwrap_or_else(PoisonError::into_inner)
                        .0
                }
                None => self
                    .ready
                    .wait(slot)
                    .unwrap_or_else(PoisonError::into_inner),
            };
        }
    }
}

#[derive(Debug, Clone)]
enum Slot {
    /// A compile for this key is in flight; waiters block on the gate.
    Pending(Arc<Gate>),
    /// A finished manifest, returned verbatim on every future hit. The
    /// tick orders completed entries for LRU eviction.
    Done { body: Arc<String>, tick: u64 },
}

/// What [`ResultCache::claim`] tells the caller to do.
#[derive(Debug)]
pub enum Claim {
    /// The manifest is cached; return it.
    Hit(Arc<String>),
    /// An identical compile is in flight; wait on this gate.
    Wait(Arc<Gate>),
    /// The caller owns the compile; fill the gate, then
    /// [`ResultCache::complete`] or [`ResultCache::abandon`] the key.
    Compute(Arc<Gate>),
}

#[derive(Debug, Default)]
struct Slots {
    map: HashMap<u128, Slot>,
    tick: u64,
}

/// The content-addressed manifest cache, bounded to a maximum number of
/// *completed* entries (least-recently-used entries are dropped beyond
/// it). Pending slots are exempt — they represent in-flight work and
/// dropping one would orphan coalesced waiters. With the persistent
/// store mounted this cache is the hot tier: an evicted manifest is one
/// store read away, not a recompile.
#[derive(Debug)]
pub struct ResultCache {
    slots: Mutex<Slots>,
    capacity: usize,
}

/// Default bound on completed entries; generous for manifests (a few KiB
/// each) while keeping a long-running server's memory flat.
pub const DEFAULT_CACHE_CAPACITY: usize = 1024;

impl Default for ResultCache {
    fn default() -> Self {
        Self::new()
    }
}

impl ResultCache {
    /// An empty cache with the default capacity.
    #[must_use]
    pub fn new() -> Self {
        Self::with_capacity(DEFAULT_CACHE_CAPACITY)
    }

    /// An empty cache bounded to `capacity` completed entries (minimum 1).
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            slots: Mutex::new(Slots::default()),
            capacity: capacity.max(1),
        }
    }

    /// Looks up `key`, registering a pending slot when it is absent. A
    /// hit refreshes the entry's LRU position.
    pub fn claim(&self, key: CacheKey) -> Claim {
        let mut slots = lock_unpoisoned(&self.slots);
        slots.tick += 1;
        let now = slots.tick;
        match slots.map.get_mut(&key.0) {
            Some(Slot::Done { body, tick }) => {
                *tick = now;
                Claim::Hit(Arc::clone(body))
            }
            Some(Slot::Pending(gate)) => Claim::Wait(Arc::clone(gate)),
            None => {
                let gate = Arc::new(Gate::default());
                slots.map.insert(key.0, Slot::Pending(Arc::clone(&gate)));
                Claim::Compute(gate)
            }
        }
    }

    /// Promotes `key` to a cached result (after filling the gate),
    /// evicting the least-recently-used completed entries beyond the
    /// capacity.
    pub fn complete(&self, key: CacheKey, body: Arc<String>) {
        let mut slots = lock_unpoisoned(&self.slots);
        slots.tick += 1;
        let tick = slots.tick;
        slots.map.insert(key.0, Slot::Done { body, tick });
        let mut done: Vec<(u64, u128)> = slots
            .map
            .iter()
            .filter_map(|(k, s)| match s {
                Slot::Done { tick, .. } => Some((*tick, *k)),
                Slot::Pending(_) => None,
            })
            .collect();
        if done.len() > self.capacity {
            done.sort_unstable();
            for &(_, k) in &done[..done.len() - self.capacity] {
                slots.map.remove(&k);
            }
        }
    }

    /// Removes the pending slot for a failed compile so the next request
    /// retries instead of hitting a cached error.
    pub fn abandon(&self, key: CacheKey) {
        let mut slots = lock_unpoisoned(&self.slots);
        if matches!(slots.map.get(&key.0), Some(Slot::Pending(_))) {
            slots.map.remove(&key.0);
        }
    }

    /// Number of completed entries.
    #[must_use]
    pub fn len(&self) -> usize {
        let slots = lock_unpoisoned(&self.slots);
        slots
            .map
            .values()
            .filter(|s| matches!(s, Slot::Done { .. }))
            .count()
    }

    /// Whether no completed entries exist.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    fn circuit() -> Circuit {
        ppet_netlist::bench_format::parse("t", "INPUT(a)\nOUTPUT(y)\ny = NOT(a)\n").unwrap()
    }

    fn normalized(seed: u64) -> NormalizedRequest {
        NormalizedRequest {
            circuit: circuit(),
            config_entries: vec![("cbit_length".into(), "4".into())],
            seed,
        }
    }

    #[test]
    fn key_depends_on_all_three_fields() {
        let base = CacheKey::of(&normalized(1));
        assert_eq!(base, CacheKey::of(&normalized(1)));
        assert_ne!(base, CacheKey::of(&normalized(2)));

        let mut other_cfg = normalized(1);
        other_cfg.config_entries[0].1 = "8".into();
        assert_ne!(base, CacheKey::of(&other_cfg));

        let mut other_circuit = normalized(1);
        other_circuit.circuit =
            ppet_netlist::bench_format::parse("t", "INPUT(a)\nOUTPUT(y)\ny = BUFF(a)\n").unwrap();
        assert_ne!(base, CacheKey::of(&other_circuit));
    }

    #[test]
    fn first_claim_computes_then_hits() {
        let cache = ResultCache::new();
        let key = CacheKey::of(&normalized(1));
        let gate = match cache.claim(key) {
            Claim::Compute(gate) => gate,
            other => panic!("expected Compute, got {other:?}"),
        };
        let body = Arc::new("manifest".to_owned());
        gate.fill(Ok(Arc::clone(&body)));
        cache.complete(key, Arc::clone(&body));
        match cache.claim(key) {
            Claim::Hit(got) => assert_eq!(got, body),
            other => panic!("expected Hit, got {other:?}"),
        }
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn concurrent_claims_coalesce_on_the_gate() {
        let cache = Arc::new(ResultCache::new());
        let key = CacheKey::of(&normalized(3));
        let gate = match cache.claim(key) {
            Claim::Compute(gate) => gate,
            other => panic!("expected Compute, got {other:?}"),
        };
        let waiter_gate = match cache.claim(key) {
            Claim::Wait(gate) => gate,
            other => panic!("expected Wait, got {other:?}"),
        };
        let waiter = thread::spawn(move || waiter_gate.wait(Duration::from_secs(5)));
        gate.fill(Ok(Arc::new("body".to_owned())));
        let got = waiter.join().unwrap().expect("gate filled before timeout");
        assert_eq!(*got.unwrap(), "body");
    }

    #[test]
    fn abandoned_failures_are_not_cached() {
        let cache = ResultCache::new();
        let key = CacheKey::of(&normalized(9));
        let gate = match cache.claim(key) {
            Claim::Compute(gate) => gate,
            other => panic!("expected Compute, got {other:?}"),
        };
        gate.fill(Err(BackendError::new("compile", "boom")));
        cache.abandon(key);
        assert!(matches!(cache.claim(key), Claim::Compute(_)));
    }

    #[test]
    fn capacity_bound_evicts_least_recently_used() {
        let cache = ResultCache::with_capacity(2);
        let keys: Vec<CacheKey> = (0..3).map(|s| CacheKey::of(&normalized(s))).collect();
        for (i, &key) in keys.iter().enumerate() {
            assert!(matches!(cache.claim(key), Claim::Compute(_)));
            cache.complete(key, Arc::new(format!("m{i}")));
            // Touch key 0 so it stays hot.
            if i > 0 {
                assert!(matches!(cache.claim(keys[0]), Claim::Hit(_)));
            }
        }
        assert_eq!(cache.len(), 2, "capacity bound holds");
        // Key 1 was the LRU victim; 0 (touched) and 2 (fresh) survive.
        assert!(matches!(cache.claim(keys[0]), Claim::Hit(_)));
        assert!(matches!(cache.claim(keys[2]), Claim::Hit(_)));
        assert!(matches!(cache.claim(keys[1]), Claim::Compute(_)));
    }

    #[test]
    fn pending_slots_are_exempt_from_the_capacity_bound() {
        let cache = ResultCache::with_capacity(1);
        let pending_key = CacheKey::of(&normalized(100));
        let gate = match cache.claim(pending_key) {
            Claim::Compute(gate) => gate,
            other => panic!("expected Compute, got {other:?}"),
        };
        for s in 0..4 {
            let key = CacheKey::of(&normalized(s));
            assert!(matches!(cache.claim(key), Claim::Compute(_)));
            cache.complete(key, Arc::new("m".to_owned()));
        }
        assert_eq!(cache.len(), 1);
        // The pending slot survived the churn: waiters still coalesce.
        assert!(matches!(cache.claim(pending_key), Claim::Wait(_)));
        gate.fill(Ok(Arc::new("late".to_owned())));
    }

    #[test]
    fn gate_wait_times_out_while_pending() {
        let gate = Gate::default();
        assert!(gate.wait(Duration::from_millis(10)).is_none());
        gate.fill(Ok(Arc::new("late".to_owned())));
        let got = gate.wait(Duration::from_millis(10)).unwrap();
        assert_eq!(*got.unwrap(), "late");
    }

    /// Satellite regression: an astronomical timeout must wait, not
    /// panic. `Instant::now() + Duration::MAX` used to overflow-panic on
    /// the waiter's thread before the fill could ever be observed.
    #[test]
    fn gate_wait_survives_an_unrepresentable_timeout() {
        let gate = Arc::new(Gate::default());
        let filler = Arc::clone(&gate);
        let t = thread::spawn(move || {
            thread::sleep(Duration::from_millis(30));
            filler.fill(Ok(Arc::new("eventually".to_owned())));
        });
        let got = gate.wait(Duration::MAX).expect("filled, not panicked");
        assert_eq!(*got.unwrap(), "eventually");
        t.join().unwrap();
    }

    /// Satellite regression: an already-expired deadline answers
    /// immediately — no zero-duration condvar spin, no waiting out a
    /// restarted budget — while a result that is already present is
    /// still observed (the late-fill path a retry would hit via the
    /// cache).
    #[test]
    fn gate_expired_deadline_fails_fast_but_sees_a_present_result() {
        let gate = Gate::default();
        let expired = Instant::now() - Duration::from_secs(1);
        let started = Instant::now();
        assert!(gate.wait_deadline(Some(expired)).is_none());
        assert!(
            started.elapsed() < Duration::from_millis(100),
            "expired deadline must not block: {:?}",
            started.elapsed()
        );
        gate.fill(Ok(Arc::new("late".to_owned())));
        let got = gate.wait_deadline(Some(expired)).expect("present result");
        assert_eq!(*got.unwrap(), "late");
    }

    /// Satellite regression: a waiter whose thread panics while holding
    /// a gate's lock poisons the mutex; the fill side and every later
    /// waiter must shrug that off instead of cascading the panic.
    #[test]
    fn poisoned_gate_locks_are_recovered_not_propagated() {
        let gate = Arc::new(Gate::default());
        let poisoner = Arc::clone(&gate);
        let _ = thread::spawn(move || {
            let _guard = poisoner.slot.lock().unwrap();
            panic!("poison the slot lock");
        })
        .join();
        gate.fill(Ok(Arc::new("fine".to_owned())));
        let got = gate.wait(Duration::from_millis(50)).expect("filled");
        assert_eq!(*got.unwrap(), "fine");

        let cache = Arc::new(ResultCache::new());
        let key = CacheKey::of(&normalized(77));
        let slots_poisoner = Arc::clone(&cache);
        let _ = thread::spawn(move || {
            let _guard = slots_poisoner.slots.lock().unwrap();
            panic!("poison the cache lock");
        })
        .join();
        assert!(matches!(cache.claim(key), Claim::Compute(_)));
        cache.complete(key, Arc::new("body".to_owned()));
        assert!(matches!(cache.claim(key), Claim::Hit(_)));
    }
}
