//! `ppet-serve`: the long-running compile service of the `ppet`
//! workspace.
//!
//! Batch compiles (`merced` CLI, `ppet-exec` batch runner) pay the full
//! pipeline cost on every invocation even when the input has not
//! changed. This crate turns the compiler into a service: a hand-rolled
//! HTTP/1.1 front end over `std::net` (the workspace stays
//! dependency-free), a bounded [`ppet_exec::WorkQueue`] of compile
//! workers, and a **content-addressed result cache** keyed by
//! `hash(canonical netlist bytes, effective config entries, seed)` — the
//! exact inputs the deterministic compiler's output is a function of.
//! Identical requests in flight coalesce onto one compile; repeated
//! requests are answered from the cache byte-for-byte.
//!
//! The crate is deliberately compiler-agnostic: it depends on
//! `ppet-netlist`/`ppet-exec`/`ppet-trace` but *not* on `ppet-core`.
//! The compiler plugs in through the [`CompileBackend`] trait, and
//! `ppet-core` mounts the whole thing as `merced serve --addr
//! <host:port>`.
//!
//! # Endpoints
//!
//! | Route | Meaning |
//! |---|---|
//! | `POST /compile` | compile a [`CompileRequest`]; returns the run manifest |
//! | `PUT /cache/<32-hex-key>` | replication ingest: seed the cache with an already-compiled, verified manifest |
//! | `GET /healthz` | liveness probe |
//! | `GET /metrics` | Prometheus text exposition 0.0.4 ([`ppet_trace::Metrics::render_prometheus`]) |
//! | `GET /debug/requests` | summary of recent request traces, newest first |
//! | `GET /debug/trace/<id>` | full span tree of one request (`ppet-trace/v1`-compatible) |
//! | `POST /shutdown` | begin graceful drain |
//!
//! # Request observability
//!
//! Every `POST /compile` carries a request ID — client-supplied via the
//! `X-Ppet-Request-Id` header or generated from the deterministic PRNG
//! substrate — echoed back in the response header. With the trace ring
//! enabled ([`ServeConfig::trace_ring`], default 256) each completed
//! request leaves a span tree (serve phases plus the backend's compile
//! spans, shared across coalesced requests) in a bounded ring; requests
//! slower than [`ServeConfig::slow_ms`] are pinned so churn cannot evict
//! them. Latency is recorded per outcome
//! (`hit|store_hit|miss|timeout|error|shed`) into separate histograms.
//!
//! Failure surface, all as structured `ppet-error/v1` JSON bodies:
//! `429 backpressure` when the bounded queue is full, `408 timeout` when
//! a compile exceeds the per-request deadline (the compile keeps running
//! and still populates the cache), `400` for malformed or unresolvable
//! requests, `503 shutdown` while draining.
//!
//! # Persistence
//!
//! The in-memory cache is bounded (LRU over completed entries, see
//! [`ServeConfig::cache_capacity`]) and optionally backed by a
//! [`ppet_store::Store`] ([`ServeConfig::store_dir`]): compiled
//! manifests are written through to disk, survive restarts, and are
//! re-verified (CRC by the store, semantically by
//! [`CompileBackend::verify_stored`]) before being served again. The
//! store's `store.*` counters surface on `GET /metrics`.

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod http;
pub mod obs;
mod request;
pub mod server;
pub mod signal;

pub use cache::{CacheKey, Claim, CompileResult, Gate, ResultCache, DEFAULT_CACHE_CAPACITY};
pub use obs::{PhaseRecorder, RequestIds, RequestTrace, TraceRing, REQUEST_ID_HEADER};
pub use request::{
    BackendError, CompileBackend, CompileRequest, NormalizedRequest, REQUEST_SCHEMA,
};
pub use server::{ServeConfig, Server, ServerHandle, DEFAULT_TRACE_RING};
