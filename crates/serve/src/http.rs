//! A minimal HTTP/1.1 reader/writer — just enough protocol for the
//! compile service's four routes, hand-rolled over `std::io` so the
//! workspace stays dependency-free.
//!
//! Supported: request line + headers, `Content-Length` bodies (bounded),
//! `Connection: close` semantics (one request per connection). Not
//! supported, by design: chunked transfer, keep-alive, TLS, HTTP/2.

use std::io::{BufRead, BufReader, Read, Write};

/// A parsed request: method, path, body, and the client-supplied
/// request ID, if any.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Request method (`GET`, `POST`, …), uppercased by the client.
    pub method: String,
    /// Request path (`/compile`, `/healthz`, …), query string ignored.
    pub path: String,
    /// Request body (empty when no `Content-Length` was sent).
    pub body: String,
    /// Raw `X-Ppet-Request-Id` header value, unsanitized.
    pub request_id: Option<String>,
}

/// A protocol-level failure while reading a request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HttpError {
    /// The connection closed before a full request arrived, or an I/O
    /// error (including read timeouts) interrupted it.
    Io(String),
    /// The bytes on the wire were not a well-formed HTTP/1.x request.
    Malformed(String),
    /// The declared `Content-Length` exceeds the server's body limit.
    BodyTooLarge {
        /// Declared length.
        declared: usize,
        /// Server limit.
        limit: usize,
    },
}

impl std::fmt::Display for HttpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HttpError::Io(e) => write!(f, "i/o: {e}"),
            HttpError::Malformed(e) => write!(f, "malformed request: {e}"),
            HttpError::BodyTooLarge { declared, limit } => {
                write!(f, "body of {declared} bytes exceeds limit of {limit}")
            }
        }
    }
}

impl std::error::Error for HttpError {}

/// Reads one HTTP/1.x request from `stream`, bounding the body at
/// `max_body_bytes`.
///
/// # Errors
///
/// [`HttpError`] on connection loss, malformed framing, or an oversized
/// declared body.
pub fn read_request<S: Read>(stream: S, max_body_bytes: usize) -> Result<Request, HttpError> {
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    reader
        .read_line(&mut line)
        .map_err(|e| HttpError::Io(e.to_string()))?;
    if line.is_empty() {
        return Err(HttpError::Io("connection closed before request".into()));
    }
    let mut parts = line.split_whitespace();
    let method = parts
        .next()
        .ok_or_else(|| HttpError::Malformed("empty request line".into()))?
        .to_owned();
    let path = parts
        .next()
        .ok_or_else(|| HttpError::Malformed("request line has no path".into()))?
        .to_owned();
    let version = parts
        .next()
        .ok_or_else(|| HttpError::Malformed("request line has no version".into()))?;
    if !version.starts_with("HTTP/1.") {
        return Err(HttpError::Malformed(format!(
            "unsupported version {version}"
        )));
    }

    let mut content_length = 0usize;
    let mut request_id = None;
    loop {
        let mut header = String::new();
        reader
            .read_line(&mut header)
            .map_err(|e| HttpError::Io(e.to_string()))?;
        let header = header.trim_end_matches(['\r', '\n']);
        if header.is_empty() {
            break;
        }
        let Some((name, value)) = header.split_once(':') else {
            return Err(HttpError::Malformed(format!("header {header:?}")));
        };
        let name = name.trim();
        if name.eq_ignore_ascii_case("content-length") {
            content_length = value
                .trim()
                .parse()
                .map_err(|_| HttpError::Malformed(format!("content-length {value:?}")))?;
        } else if name.eq_ignore_ascii_case("x-ppet-request-id") {
            request_id = Some(value.trim().to_owned());
        }
    }

    if content_length > max_body_bytes {
        return Err(HttpError::BodyTooLarge {
            declared: content_length,
            limit: max_body_bytes,
        });
    }
    let mut body = vec![0u8; content_length];
    reader
        .read_exact(&mut body)
        .map_err(|e| HttpError::Io(e.to_string()))?;
    let body = String::from_utf8(body)
        .map_err(|_| HttpError::Malformed("body is not valid UTF-8".into()))?;

    // Strip any query string: the service routes on the bare path.
    let path = path.split('?').next().unwrap_or(&path).to_owned();
    Ok(Request {
        method,
        path,
        body,
        request_id,
    })
}

/// Writes one response and flushes. `Connection: close` is always sent —
/// the service speaks one request per connection.
///
/// # Errors
///
/// Propagates the underlying I/O error.
pub fn write_response<S: Write>(
    stream: S,
    status: u16,
    content_type: &str,
    body: &str,
) -> std::io::Result<()> {
    write_response_with(stream, status, content_type, &[], body)
}

/// [`write_response`] with extra response headers (name, value) — the
/// compile routes use it to echo `X-Ppet-Request-Id`. Header values must
/// already be header-safe (no CR/LF); the request-ID sanitizer
/// guarantees that for IDs.
///
/// # Errors
///
/// Propagates the underlying I/O error.
pub fn write_response_with<S: Write>(
    mut stream: S,
    status: u16,
    content_type: &str,
    extra_headers: &[(&str, &str)],
    body: &str,
) -> std::io::Result<()> {
    let reason = match status {
        200 => "OK",
        202 => "Accepted",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        502 => "Bad Gateway",
        503 => "Service Unavailable",
        _ => "Unknown",
    };
    let mut head = format!(
        "HTTP/1.1 {status} {reason}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n",
        body.len(),
    );
    for (name, value) in extra_headers {
        head.push_str(name);
        head.push_str(": ");
        head.push_str(value);
        head.push_str("\r\n");
    }
    write!(stream, "{head}\r\n{body}")?;
    stream.flush()
}

/// Formats a `ppet-error/v1` JSON body (the same error envelope the
/// `merced` CLI prints on stderr).
#[must_use]
pub fn error_body(kind: &str, message: &str) -> String {
    format!(
        "{{\"schema\":\"ppet-error/v1\",\"kind\":{},\"message\":{}}}",
        ppet_trace::json::escaped(kind),
        ppet_trace::json::escaped(message),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_post_with_body() {
        let raw = "POST /compile HTTP/1.1\r\nHost: x\r\nContent-Length: 4\r\n\r\nbody";
        let req = read_request(raw.as_bytes(), 1024).unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/compile");
        assert_eq!(req.body, "body");
    }

    #[test]
    fn parses_a_get_without_body_and_strips_query() {
        let raw = "GET /metrics?x=1 HTTP/1.1\r\n\r\n";
        let req = read_request(raw.as_bytes(), 1024).unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/metrics");
        assert_eq!(req.body, "");
    }

    #[test]
    fn rejects_oversized_bodies_before_reading_them() {
        let raw = "POST /compile HTTP/1.1\r\nContent-Length: 999\r\n\r\n";
        let err = read_request(raw.as_bytes(), 16).unwrap_err();
        assert_eq!(
            err,
            HttpError::BodyTooLarge {
                declared: 999,
                limit: 16
            }
        );
    }

    #[test]
    fn rejects_garbage() {
        assert!(matches!(
            read_request("not http at all\r\n\r\n".as_bytes(), 16),
            Err(HttpError::Malformed(_))
        ));
        assert!(matches!(
            read_request("".as_bytes(), 16),
            Err(HttpError::Io(_))
        ));
    }

    #[test]
    fn captures_the_request_id_header() {
        let raw =
            "POST /compile HTTP/1.1\r\nX-Ppet-Request-Id: abc-123\r\nContent-Length: 0\r\n\r\n";
        let req = read_request(raw.as_bytes(), 1024).unwrap();
        assert_eq!(req.request_id.as_deref(), Some("abc-123"));
        // Header names are case-insensitive.
        let raw = "GET /metrics HTTP/1.1\r\nx-ppet-request-id:  zz \r\n\r\n";
        let req = read_request(raw.as_bytes(), 1024).unwrap();
        assert_eq!(req.request_id.as_deref(), Some("zz"));
        let raw = "GET /metrics HTTP/1.1\r\n\r\n";
        assert_eq!(read_request(raw.as_bytes(), 1024).unwrap().request_id, None);
    }

    #[test]
    fn extra_headers_are_emitted() {
        let mut out = Vec::new();
        write_response_with(
            &mut out,
            200,
            "application/json",
            &[("X-Ppet-Request-Id", "deadbeef")],
            "{}",
        )
        .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("X-Ppet-Request-Id: deadbeef\r\n"), "{text}");
        assert!(text.ends_with("\r\n\r\n{}"));
    }

    #[test]
    fn writes_a_well_formed_response() {
        let mut out = Vec::new();
        write_response(&mut out, 200, "application/json", "{}").unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("Content-Length: 2\r\n"));
        assert!(text.contains("Connection: close\r\n"));
        assert!(text.ends_with("\r\n\r\n{}"));
    }

    #[test]
    fn error_bodies_use_the_cli_envelope() {
        let body = error_body("timeout", "compile exceeded 5ms");
        assert_eq!(
            body,
            "{\"schema\":\"ppet-error/v1\",\"kind\":\"timeout\",\"message\":\"compile exceeded 5ms\"}"
        );
    }
}
