//! Process-signal plumbing for graceful shutdown.
//!
//! On Unix the server installs handlers for `SIGINT` and `SIGTERM` that
//! set a process-wide flag; the accept loop polls the flag and drains.
//! The handler does nothing but store into an `AtomicBool` — the only
//! async-signal-safe thing worth doing — so the actual shutdown logic
//! runs on a normal thread.
//!
//! This is the one place in the workspace that needs `unsafe`: the C
//! `signal(2)` entry point itself. Everything else in the crate is
//! `#![deny(unsafe_code)]`.

use std::sync::atomic::{AtomicBool, Ordering};

/// Set once a termination signal has been observed.
static SHUTDOWN_SIGNALED: AtomicBool = AtomicBool::new(false);

/// Whether a `SIGINT`/`SIGTERM` has arrived since [`install`] ran.
#[must_use]
pub fn signaled() -> bool {
    SHUTDOWN_SIGNALED.load(Ordering::SeqCst)
}

/// Sets the shutdown flag as if a signal had arrived (used by tests and
/// the `POST /shutdown` route's CLI wiring).
pub fn raise() {
    SHUTDOWN_SIGNALED.store(true, Ordering::SeqCst);
}

#[cfg(unix)]
mod imp {
    use super::SHUTDOWN_SIGNALED;
    use std::sync::atomic::Ordering;

    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;

    extern "C" fn on_signal(_signum: i32) {
        // Async-signal-safe: a single atomic store.
        SHUTDOWN_SIGNALED.store(true, Ordering::SeqCst);
    }

    #[allow(unsafe_code)]
    pub fn install() {
        // The platform libc is already linked into every Rust binary;
        // declare just the one entry point we need.
        unsafe extern "C" {
            fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
        }
        // SAFETY: `signal` is only handed an `extern "C"` function that
        // performs one atomic store, which is async-signal-safe.
        unsafe {
            signal(SIGINT, on_signal);
            signal(SIGTERM, on_signal);
        }
    }
}

#[cfg(not(unix))]
mod imp {
    pub fn install() {}
}

/// Installs the `SIGINT`/`SIGTERM` handlers (no-op off Unix). Idempotent.
pub fn install() {
    imp::install();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn raise_sets_the_flag() {
        install();
        raise();
        assert!(signaled());
    }
}
