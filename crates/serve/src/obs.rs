//! Per-request observability: request IDs, the phase recorder, and the
//! bounded ring of recent request traces behind `GET /debug/requests`
//! and `GET /debug/trace/<id>`.
//!
//! Every `POST /compile` gets a request ID — client-supplied via the
//! `X-Ppet-Request-Id` header (sanitized) or generated from the
//! deterministic PRNG substrate — and, when the ring is enabled, a
//! [`PhaseRecorder`] that measures the request's serve-side phases
//! (`normalize`, `cache_lookup`, `store_fetch`, `compile`). The compile
//! phase grafts the backend's shared span tree (one tree per physical
//! compile, shared by every coalesced waiter through the gate), so the
//! full document correlates one request across serve, cache, store, and
//! compiler.
//!
//! The ring is bounded: beyond `capacity` entries the oldest *unpinned*
//! entry is evicted first, and a request slower than the `slow_ms`
//! threshold is pinned so churn cannot push it out (only newer pinned
//! entries can, keeping the ring bounded under pathological load).

use std::collections::VecDeque;
use std::sync::{Arc, Mutex};
use std::time::Instant;

use ppet_prng::{Rng, Xoshiro256PlusPlus};
use ppet_trace::json::escaped;
use ppet_trace::{PhaseManifest, RunManifest, SpanData};

/// Response/request header carrying the request ID.
pub const REQUEST_ID_HEADER: &str = "X-Ppet-Request-Id";

/// Longest accepted client-supplied request ID.
const MAX_ID_LEN: usize = 64;

/// Deterministic request-ID generator: a seeded xoshiro stream rendered
/// as 32 hex digits per ID. Seeded generators make service logs
/// reproducible in tests and replay harnesses.
#[derive(Debug)]
pub struct RequestIds {
    rng: Mutex<Xoshiro256PlusPlus>,
}

impl RequestIds {
    /// A generator over the deterministic PRNG substrate.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        Self {
            rng: Mutex::new(Xoshiro256PlusPlus::seed_from(seed)),
        }
    }

    /// The next generated ID: 32 lowercase hex digits.
    #[must_use]
    pub fn fresh(&self) -> String {
        let mut rng = self.rng.lock().unwrap();
        let id = ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128;
        format!("{id:032x}")
    }

    /// Accepts a client-supplied ID when it is non-empty, at most 64
    /// bytes, and uses only `[A-Za-z0-9._:-]` (safe to echo into headers
    /// and JSON verbatim); anything else is discarded in favor of a
    /// generated ID.
    #[must_use]
    pub fn sanitize(client: &str) -> Option<&str> {
        let client = client.trim();
        let ok = !client.is_empty()
            && client.len() <= MAX_ID_LEN
            && client
                .bytes()
                .all(|b| b.is_ascii_alphanumeric() || matches!(b, b'.' | b'_' | b':' | b'-'));
        ok.then_some(client)
    }

    /// The effective request ID: the sanitized client ID or a fresh one.
    #[must_use]
    pub fn resolve(&self, client: Option<&str>) -> String {
        match client.and_then(Self::sanitize) {
            Some(id) => id.to_owned(),
            None => self.fresh(),
        }
    }
}

/// Records the serve-side phases of one request as a flat list of spans.
///
/// Disabled recorders (ring capacity 0) are free: no clock reads, no
/// allocation — the same contract as [`ppet_trace::Tracer::noop`],
/// enforced by `tests/noop_overhead.rs`.
#[derive(Debug)]
pub struct PhaseRecorder {
    enabled: bool,
    phases: Vec<SpanData>,
    current: Option<(&'static str, Instant)>,
}

impl PhaseRecorder {
    /// A recorder; `enabled = false` makes every method a no-op.
    #[must_use]
    pub fn new(enabled: bool) -> Self {
        Self {
            enabled,
            phases: Vec::new(),
            current: None,
        }
    }

    /// Whether the recorder records anything.
    #[must_use]
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Closes the open phase (if any) and opens `name`.
    pub fn begin(&mut self, name: &'static str) {
        if !self.enabled {
            return;
        }
        self.end();
        self.current = Some((name, Instant::now()));
    }

    /// Closes the open phase (if any).
    pub fn end(&mut self) {
        if let Some((name, started)) = self.current.take() {
            self.phases.push(SpanData {
                name: name.to_owned(),
                wall_ns: u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX),
                closed: true,
                counter_deltas: Vec::new(),
                children: Vec::new(),
            });
        }
    }

    /// Attaches `children` (the backend's shared compile span tree) to
    /// the phase that is currently open, which stays open.
    pub fn graft(&mut self, children: &[SpanData]) {
        if !self.enabled || children.is_empty() {
            return;
        }
        // Close the open phase to materialize it, then reopen nothing —
        // instead attach to the just-closed phase.
        self.end();
        if let Some(last) = self.phases.last_mut() {
            last.children = children.to_vec();
        }
    }

    /// Closes everything and returns the recorded phases in order.
    #[must_use]
    pub fn finish(mut self) -> Vec<SpanData> {
        self.end();
        self.phases
    }
}

/// One completed request in the ring.
#[derive(Debug, Clone)]
pub struct RequestTrace {
    /// The request ID (client-supplied or generated).
    pub id: String,
    /// Terminal outcome: `hit|store_hit|miss|timeout|error|shed`.
    pub outcome: &'static str,
    /// HTTP status answered.
    pub status: u16,
    /// Resolved circuit name (empty when normalization failed).
    pub circuit: String,
    /// Effective seed (0 when normalization failed).
    pub seed: u64,
    /// End-to-end request wall time in microseconds.
    pub wall_us: u64,
    /// Whether this request coalesced onto another request's compile.
    pub coalesced: bool,
    /// Whether the slow-request threshold pinned this entry.
    pub pinned: bool,
    /// The request's span tree: one root (`request`) whose children are
    /// the serve-side phases; the compile phase carries the backend's
    /// span tree.
    pub root: SpanData,
}

impl RequestTrace {
    /// The manifest-like phase list for this request: the backend's
    /// compile phases when a compile ran (matching `run_manifest()` of
    /// the same compile), otherwise the serve-side phases.
    fn manifest_phases(&self) -> &[SpanData] {
        for phase in &self.root.children {
            // A grafted compile tree is a single backend root (`merced`)
            // whose children are the pipeline phases; fall back to the
            // root itself if the backend emitted a flat tree.
            if let [root] = phase.children.as_slice() {
                if !root.children.is_empty() {
                    return &root.children;
                }
            }
            if !phase.children.is_empty() {
                return &phase.children;
            }
        }
        &self.root.children
    }

    /// Renders the full `ppet-trace/v1`-compatible trace document: a
    /// [`RunManifest`] (schema, circuit, seed, request metadata as
    /// config entries, the compile's phases with counters, totals)
    /// extended with a `spans` key holding the complete request span
    /// tree. [`RunManifest::from_json`] parses it — unknown keys are
    /// ignored by design.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut manifest = RunManifest::new(&self.circuit, self.seed);
        manifest.config = vec![
            ("request_id".to_owned(), self.id.clone()),
            ("outcome".to_owned(), self.outcome.to_owned()),
            ("status".to_owned(), self.status.to_string()),
            ("coalesced".to_owned(), self.coalesced.to_string()),
            ("pinned".to_owned(), self.pinned.to_string()),
            ("wall_us".to_owned(), self.wall_us.to_string()),
        ];
        for span in self.manifest_phases() {
            manifest.phases.push(PhaseManifest {
                name: span.name.clone(),
                wall_ns: span.wall_ns,
                counters: span.counter_deltas.clone(),
            });
        }
        manifest.compute_totals();
        let json = manifest.to_json();
        // Splice the extra `spans` key in front of the closing brace; the
        // manifest grammar ignores unknown keys, so the document stays
        // schema-compatible.
        let head = json.trim_end().strip_suffix('}').unwrap_or(&json);
        let mut out = String::with_capacity(json.len() + 256);
        out.push_str(head);
        out.push_str(",\n  \"spans\": [");
        span_json(&mut out, &self.root);
        out.push_str("]\n}\n");
        out
    }

    /// One summary line for `GET /debug/requests`.
    fn summary_json(&self, out: &mut String) {
        use std::fmt::Write as _;
        let _ = write!(
            out,
            "{{\"id\":{},\"outcome\":{},\"status\":{},\"circuit\":{},\"seed\":{},\
             \"wall_us\":{},\"coalesced\":{},\"pinned\":{},\"phases\":{{",
            escaped(&self.id),
            escaped(self.outcome),
            self.status,
            escaped(&self.circuit),
            self.seed,
            self.wall_us,
            self.coalesced,
            self.pinned,
        );
        for (i, phase) in self.root.children.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{}:{}", escaped(&phase.name), phase.wall_ns);
        }
        out.push_str("}}");
    }
}

/// Renders one span subtree as compact JSON.
fn span_json(out: &mut String, span: &SpanData) {
    use std::fmt::Write as _;
    let _ = write!(
        out,
        "{{\"name\":{},\"wall_ns\":{},\"closed\":{},\"counters\":{{",
        escaped(&span.name),
        span.wall_ns,
        span.closed
    );
    for (i, (name, delta)) in span.counter_deltas.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{}:{delta}", escaped(name));
    }
    out.push_str("},\"children\":[");
    for (i, child) in span.children.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        span_json(out, child);
    }
    out.push_str("]}");
}

#[derive(Debug, Default)]
struct RingInner {
    entries: VecDeque<Arc<RequestTrace>>,
}

/// The bounded ring of recent completed request traces.
#[derive(Debug)]
pub struct TraceRing {
    capacity: usize,
    slow_us: Option<u64>,
    inner: Mutex<RingInner>,
}

impl TraceRing {
    /// A ring keeping at most `capacity` traces (0 disables tracing
    /// entirely); requests at or above `slow_ms` milliseconds are pinned.
    #[must_use]
    pub fn new(capacity: usize, slow_ms: Option<u64>) -> Self {
        Self {
            capacity,
            slow_us: slow_ms.map(|ms| ms.saturating_mul(1000)),
            inner: Mutex::new(RingInner::default()),
        }
    }

    /// Whether traces are being kept at all.
    #[must_use]
    pub fn enabled(&self) -> bool {
        self.capacity > 0
    }

    /// Number of traces currently held.
    #[must_use]
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap().entries.len()
    }

    /// Whether the ring holds no traces.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Records one completed request. Eviction is oldest-unpinned-first;
    /// when every entry is pinned the oldest pinned entry goes, keeping
    /// the ring bounded.
    pub fn record(&self, mut trace: RequestTrace) {
        if !self.enabled() {
            return;
        }
        trace.pinned = self.slow_us.is_some_and(|slow| trace.wall_us >= slow);
        let mut inner = self.inner.lock().unwrap();
        if inner.entries.len() >= self.capacity {
            match inner.entries.iter().position(|e| !e.pinned) {
                Some(oldest_unpinned) => {
                    inner.entries.remove(oldest_unpinned);
                }
                None => {
                    inner.entries.pop_front();
                }
            }
        }
        inner.entries.push_back(Arc::new(trace));
    }

    /// The trace with request ID `id`, if still in the ring. The newest
    /// entry wins when a client reused an ID.
    #[must_use]
    pub fn find(&self, id: &str) -> Option<Arc<RequestTrace>> {
        let inner = self.inner.lock().unwrap();
        inner.entries.iter().rev().find(|e| e.id == id).cloned()
    }

    /// The `GET /debug/requests` body: a summary of every held trace,
    /// newest first.
    #[must_use]
    pub fn summary_json(&self) -> String {
        let inner = self.inner.lock().unwrap();
        let mut out = String::from("{\"requests\":[");
        for (i, entry) in inner.entries.iter().rev().enumerate() {
            if i > 0 {
                out.push(',');
            }
            entry.summary_json(&mut out);
        }
        out.push_str("]}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trace(id: &str, wall_us: u64) -> RequestTrace {
        RequestTrace {
            id: id.to_owned(),
            outcome: "hit",
            status: 200,
            circuit: "s27".to_owned(),
            seed: 7,
            wall_us,
            coalesced: false,
            pinned: false,
            root: SpanData {
                name: "request".to_owned(),
                wall_ns: wall_us * 1000,
                closed: true,
                counter_deltas: Vec::new(),
                children: Vec::new(),
            },
        }
    }

    #[test]
    fn ids_are_deterministic_per_seed_and_distinct() {
        let a = RequestIds::new(7);
        let b = RequestIds::new(7);
        let first = a.fresh();
        assert_eq!(first, b.fresh(), "same seed, same stream");
        assert_ne!(first, a.fresh(), "stream advances");
        assert_eq!(first.len(), 32);
        assert!(first.bytes().all(|b| b.is_ascii_hexdigit()));
    }

    #[test]
    fn client_ids_are_sanitized() {
        assert_eq!(RequestIds::sanitize(" abc-123 "), Some("abc-123"));
        assert_eq!(RequestIds::sanitize("A.b:c_d"), Some("A.b:c_d"));
        assert_eq!(RequestIds::sanitize(""), None);
        assert_eq!(RequestIds::sanitize("has space"), None);
        assert_eq!(RequestIds::sanitize("quote\"d"), None);
        assert_eq!(RequestIds::sanitize(&"x".repeat(65)), None);
        let ids = RequestIds::new(1);
        assert_eq!(ids.resolve(Some("client-id")), "client-id");
        assert_eq!(ids.resolve(Some("bad id")).len(), 32, "falls back");
    }

    #[test]
    fn recorder_measures_phases_in_order() {
        let mut rec = PhaseRecorder::new(true);
        rec.begin("normalize");
        rec.begin("cache_lookup");
        let phases = rec.finish();
        let names: Vec<&str> = phases.iter().map(|p| p.name.as_str()).collect();
        assert_eq!(names, ["normalize", "cache_lookup"]);
        assert!(phases.iter().all(|p| p.closed));
    }

    #[test]
    fn disabled_recorder_records_nothing() {
        let mut rec = PhaseRecorder::new(false);
        rec.begin("normalize");
        rec.graft(&[SpanData {
            name: "merced".to_owned(),
            wall_ns: 1,
            closed: true,
            counter_deltas: Vec::new(),
            children: Vec::new(),
        }]);
        assert!(rec.finish().is_empty());
    }

    #[test]
    fn graft_attaches_the_compile_tree_to_the_open_phase() {
        let mut rec = PhaseRecorder::new(true);
        rec.begin("compile");
        rec.graft(&[SpanData {
            name: "merced".to_owned(),
            wall_ns: 42,
            closed: true,
            counter_deltas: vec![("flow.trees_built".to_owned(), 3)],
            children: Vec::new(),
        }]);
        let phases = rec.finish();
        assert_eq!(phases.len(), 1);
        assert_eq!(phases[0].children.len(), 1);
        assert_eq!(phases[0].children[0].name, "merced");
    }

    #[test]
    fn ring_evicts_oldest_unpinned_first() {
        let ring = TraceRing::new(3, Some(1));
        ring.record(trace("slow", 5_000)); // 5 ms >= 1 ms: pinned
        ring.record(trace("a", 10));
        ring.record(trace("b", 10));
        ring.record(trace("c", 10)); // evicts `a`, not `slow`
        assert_eq!(ring.len(), 3);
        assert!(ring.find("slow").is_some(), "pinned entry survives churn");
        assert!(ring.find("a").is_none(), "oldest unpinned evicted");
        assert!(ring.find("b").is_some() && ring.find("c").is_some());
    }

    #[test]
    fn all_pinned_ring_stays_bounded() {
        let ring = TraceRing::new(2, Some(0));
        for id in ["a", "b", "c"] {
            ring.record(trace(id, 10));
        }
        assert_eq!(ring.len(), 2, "bounded even when everything is pinned");
        assert!(ring.find("a").is_none(), "oldest pinned goes last-resort");
    }

    #[test]
    fn disabled_ring_keeps_nothing() {
        let ring = TraceRing::new(0, None);
        assert!(!ring.enabled());
        ring.record(trace("x", 10));
        assert!(ring.is_empty());
        assert!(ring.find("x").is_none());
    }

    #[test]
    fn trace_document_parses_as_a_run_manifest() {
        let mut t = trace("req-1", 1234);
        t.root.children = vec![SpanData {
            name: "compile".to_owned(),
            wall_ns: 900,
            closed: true,
            counter_deltas: Vec::new(),
            children: vec![SpanData {
                name: "merced".to_owned(),
                wall_ns: 800,
                closed: true,
                counter_deltas: Vec::new(),
                children: vec![SpanData {
                    name: "scc".to_owned(),
                    wall_ns: 500,
                    closed: true,
                    counter_deltas: vec![("scc.components".to_owned(), 4)],
                    children: Vec::new(),
                }],
            }],
        }];
        let json = t.to_json();
        let manifest = RunManifest::from_json(&json).expect("schema-compatible");
        assert_eq!(manifest.circuit, "s27");
        assert_eq!(manifest.seed, 7);
        assert_eq!(manifest.phases.len(), 1);
        assert_eq!(manifest.phases[0].name, "scc");
        assert_eq!(
            manifest.phases[0].counters,
            vec![("scc.components".to_owned(), 4)]
        );
        let config: std::collections::BTreeMap<_, _> = manifest.config.into_iter().collect();
        assert_eq!(config["request_id"], "req-1");
        assert_eq!(config["outcome"], "hit");
        assert!(json.contains("\"spans\""));
    }

    #[test]
    fn summary_lists_newest_first() {
        let ring = TraceRing::new(8, None);
        ring.record(trace("first", 1));
        ring.record(trace("second", 2));
        let summary = ring.summary_json();
        let first = summary.find("\"first\"").unwrap();
        let second = summary.find("\"second\"").unwrap();
        assert!(second < first, "newest first: {summary}");
        assert!(summary.contains("\"outcome\":\"hit\""));
    }
}
