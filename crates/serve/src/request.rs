//! The compile-request wire format and the backend abstraction.
//!
//! A request is a small JSON object (`schema: "ppet-serve/v1"`) naming a
//! circuit — either an embedded `.bench` source or a `builtin` name the
//! backend resolves — plus optional `config` entries in the
//! `manifest_entries` key/value vocabulary and an optional `seed`. The
//! service never interprets the configuration itself: the
//! [`CompileBackend`] normalizes a request into a circuit, the effective
//! config entries, and the effective seed, and those three (hashed over
//! the circuit's canonical bytes) form the content-addressed cache key.

use ppet_netlist::Circuit;
use ppet_trace::json::{self, Value};
use ppet_trace::Tracer;

/// The request schema identifier.
pub const REQUEST_SCHEMA: &str = "ppet-serve/v1";

/// One compile request, as posted to `POST /compile`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CompileRequest {
    /// Builtin circuit name (`s27`, `counter8`, `synth::…` — whatever the
    /// backend's resolver accepts). Mutually exclusive with `bench`.
    pub builtin: Option<String>,
    /// Embedded ISCAS89 `.bench` source. Mutually exclusive with
    /// `builtin`.
    pub bench: Option<String>,
    /// Circuit name used when parsing `bench` (defaults to `request`).
    pub name: Option<String>,
    /// Configuration overrides in the `MercedConfig::manifest_entries`
    /// key/value vocabulary (`cbit_length`, `beta`, `policy`, …), applied
    /// over the server's base configuration.
    pub config: Vec<(String, String)>,
    /// Flow seed; defaults to the server's base seed.
    pub seed: Option<u64>,
}

impl CompileRequest {
    /// A request for a builtin circuit.
    #[must_use]
    pub fn builtin(name: &str) -> Self {
        Self {
            builtin: Some(name.to_owned()),
            ..Self::default()
        }
    }

    /// A request embedding `.bench` source text.
    #[must_use]
    pub fn bench(source: &str) -> Self {
        Self {
            bench: Some(source.to_owned()),
            ..Self::default()
        }
    }

    /// Adds one configuration entry.
    #[must_use]
    pub fn with_config(mut self, key: &str, value: &str) -> Self {
        self.config.push((key.to_owned(), value.to_owned()));
        self
    }

    /// Sets the seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = Some(seed);
        self
    }

    /// Parses a request body.
    ///
    /// # Errors
    ///
    /// A description of the first problem: malformed JSON, wrong schema,
    /// both or neither circuit source, or ill-typed fields.
    pub fn from_json(body: &str) -> Result<Self, String> {
        let value = json::parse(body).map_err(|e| format!("malformed JSON: {e}"))?;
        let obj = value.as_obj().ok_or("request must be a JSON object")?;
        let field = |key: &str| obj.iter().find(|(k, _)| k == key).map(|(_, v)| v);
        match field("schema").and_then(Value::as_str) {
            Some(REQUEST_SCHEMA) => {}
            Some(other) => return Err(format!("unsupported schema {other:?}")),
            None => return Err(format!("missing schema (expected {REQUEST_SCHEMA:?})")),
        }
        let string_field = |key: &str| -> Result<Option<String>, String> {
            match field(key) {
                None => Ok(None),
                Some(v) => v
                    .as_str()
                    .map(|s| Some(s.to_owned()))
                    .ok_or_else(|| format!("{key} must be a string")),
            }
        };
        let builtin = string_field("builtin")?;
        let bench = string_field("bench")?;
        let name = string_field("name")?;
        match (&builtin, &bench) {
            (None, None) => return Err("request names no circuit: set builtin or bench".into()),
            (Some(_), Some(_)) => return Err("builtin and bench are mutually exclusive".into()),
            _ => {}
        }
        let mut config = Vec::new();
        if let Some(v) = field("config") {
            let entries = v.as_obj().ok_or("config must be an object")?;
            for (k, v) in entries {
                let v = v
                    .as_str()
                    .map(str::to_owned)
                    .or_else(|| v.as_u64().map(|n| n.to_string()))
                    .ok_or_else(|| format!("config.{k} must be a string or integer"))?;
                config.push((k.clone(), v));
            }
        }
        let seed = match field("seed") {
            None => None,
            Some(v) => Some(v.as_u64().ok_or("seed must be an unsigned integer")?),
        };
        Ok(Self {
            builtin,
            bench,
            name,
            config,
            seed,
        })
    }

    /// Serializes the request (what clients, tests, and the bench harness
    /// send). Round-trips through [`CompileRequest::from_json`].
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        out.push_str(&format!("\"schema\":{}", json::escaped(REQUEST_SCHEMA)));
        if let Some(b) = &self.builtin {
            out.push_str(&format!(",\"builtin\":{}", json::escaped(b)));
        }
        if let Some(b) = &self.bench {
            out.push_str(&format!(",\"bench\":{}", json::escaped(b)));
        }
        if let Some(n) = &self.name {
            out.push_str(&format!(",\"name\":{}", json::escaped(n)));
        }
        if !self.config.is_empty() {
            out.push_str(",\"config\":{");
            for (i, (k, v)) in self.config.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(&format!("{}:{}", json::escaped(k), json::escaped(v)));
            }
            out.push('}');
        }
        if let Some(seed) = self.seed {
            out.push_str(&format!(",\"seed\":{seed}"));
        }
        out.push('}');
        out
    }
}

/// A backend failure, reported to the client as a `ppet-error/v1` body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BackendError {
    /// Stable error kind (the `ppet-error/v1` vocabulary: `parse`,
    /// `compile`, …).
    pub kind: &'static str,
    /// Human-readable description.
    pub message: String,
}

impl BackendError {
    /// Convenience constructor.
    #[must_use]
    pub fn new(kind: &'static str, message: impl Into<String>) -> Self {
        Self {
            kind,
            message: message.into(),
        }
    }
}

impl std::fmt::Display for BackendError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.kind, self.message)
    }
}

/// A normalized request: the resolved circuit plus the *effective*
/// compile parameters. The cache key is derived from exactly these three
/// fields, so backends must exclude anything that cannot change the
/// result (worker counts, for instance) from `config_entries`.
#[derive(Debug, Clone)]
pub struct NormalizedRequest {
    /// The resolved circuit.
    pub circuit: Circuit,
    /// The effective configuration as deterministic key/value entries.
    pub config_entries: Vec<(String, String)>,
    /// The effective seed.
    pub seed: u64,
}

/// The compile engine behind the service.
///
/// `ppet-serve` deliberately does not depend on `ppet-core` (the compiler
/// depends on this crate to mount the `merced serve` subcommand, so the
/// dependency points the other way): the server speaks HTTP, caches, and
/// schedules, while the backend resolves and compiles.
pub trait CompileBackend: Send + Sync + 'static {
    /// Resolves a request into the circuit and effective parameters.
    ///
    /// # Errors
    ///
    /// [`BackendError`] for unknown builtins, unparsable `.bench` bodies,
    /// or invalid configuration entries.
    fn normalize(&self, request: &CompileRequest) -> Result<NormalizedRequest, BackendError>;

    /// Compiles a normalized request into a `ppet-trace/v1` run-manifest
    /// JSON string — byte-identical to what the CLI path would produce
    /// for the same circuit, config, and seed.
    ///
    /// # Errors
    ///
    /// [`BackendError`] for compile failures.
    fn compile(&self, normalized: &NormalizedRequest) -> Result<String, BackendError>;

    /// [`CompileBackend::compile`] with observability: the backend wraps
    /// its pipeline phases in spans on `tracer` so the service can
    /// attach the compile's span tree to the request trace. The manifest
    /// must be identical to the untraced call. The default ignores the
    /// tracer, so backends without internal instrumentation still work —
    /// their requests simply trace as a single opaque compile phase.
    ///
    /// # Errors
    ///
    /// Same as [`CompileBackend::compile`].
    fn compile_traced(
        &self,
        normalized: &NormalizedRequest,
        tracer: &Tracer,
    ) -> Result<String, BackendError> {
        let _ = tracer;
        self.compile(normalized)
    }

    /// Re-verifies a body fetched from the persistent store before it is
    /// served. The store already CRC-checks every record; this hook is
    /// for *semantic* verification — the Merced backend overrides it to
    /// re-derive the manifest's totals and audit-cross-check them. A
    /// failure quarantines the stored entry and falls back to a fresh
    /// compile, so returning an error here is safe, never fatal.
    ///
    /// # Errors
    ///
    /// [`BackendError`] when the stored body fails verification.
    fn verify_stored(&self, _stored: &str) -> Result<(), BackendError> {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_builtin_requests() {
        let req = CompileRequest::builtin("s27")
            .with_config("cbit_length", "4")
            .with_seed(7);
        let back = CompileRequest::from_json(&req.to_json()).unwrap();
        assert_eq!(back, req);
    }

    #[test]
    fn round_trips_bench_requests() {
        let req = CompileRequest::bench("INPUT(a)\nOUTPUT(y)\ny = NOT(a)\n");
        let back = CompileRequest::from_json(&req.to_json()).unwrap();
        assert_eq!(back, req);
    }

    #[test]
    fn integer_config_values_accepted() {
        let body = r#"{"schema":"ppet-serve/v1","builtin":"s27","config":{"cbit_length":4}}"#;
        let req = CompileRequest::from_json(body).unwrap();
        assert_eq!(req.config, vec![("cbit_length".to_owned(), "4".to_owned())]);
    }

    #[test]
    fn rejects_bad_requests() {
        for (body, needle) in [
            ("not json", "malformed"),
            ("{}", "schema"),
            (r#"{"schema":"other/v9"}"#, "unsupported schema"),
            (r#"{"schema":"ppet-serve/v1"}"#, "names no circuit"),
            (
                r#"{"schema":"ppet-serve/v1","builtin":"a","bench":"b"}"#,
                "mutually exclusive",
            ),
            (
                r#"{"schema":"ppet-serve/v1","builtin":"s27","seed":"x"}"#,
                "seed",
            ),
        ] {
            let err = CompileRequest::from_json(body).unwrap_err();
            assert!(err.contains(needle), "{body}: {err}");
        }
    }
}
