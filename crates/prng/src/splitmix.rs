//! SplitMix64: a tiny, fast, well-mixed 64-bit generator.
//!
//! Reference: Steele, Lea & Flood, "Fast splittable pseudorandom number
//! generators", OOPSLA 2014. The constants below are the canonical ones from
//! the public-domain reference implementation.

use crate::Rng;

/// A 64-bit-state pseudo-random generator based on the SplitMix64 finalizer.
///
/// SplitMix64 passes BigCrush for its size and, crucially for this workspace,
/// maps *any* seed (including zero) to a usable stream, which makes it the
/// right tool for expanding small user-facing seeds into the 256-bit state of
/// [`Xoshiro256PlusPlus`](crate::Xoshiro256PlusPlus).
///
/// # Examples
///
/// ```
/// use ppet_prng::{Rng, SplitMix64};
///
/// let mut a = SplitMix64::new(1);
/// let mut b = SplitMix64::new(1);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a 64-bit seed. Any seed is valid.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Returns the current internal state (the *next* increment base).
    #[must_use]
    pub fn state(&self) -> u64 {
        self.state
    }
}

impl Default for SplitMix64 {
    fn default() -> Self {
        Self::new(0)
    }
}

impl Rng for SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// First outputs for seed 1234567, from the reference C implementation.
    #[test]
    fn matches_reference_vectors() {
        let mut rng = SplitMix64::new(1234567);
        let expected = [
            6_457_827_717_110_365_317u64,
            3_203_168_211_198_807_973,
            9_817_491_932_198_370_423,
            4_593_380_528_125_082_431,
            16_408_922_859_458_223_821,
        ];
        for &e in &expected {
            assert_eq!(rng.next_u64(), e);
        }
    }

    #[test]
    fn zero_seed_produces_nonzero_stream() {
        let mut rng = SplitMix64::new(0);
        assert_ne!(rng.next_u64(), 0);
    }

    #[test]
    fn distinct_seeds_diverge() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }
}
