//! Deterministic, cross-platform pseudo-random number generation for the
//! `ppet` workspace.
//!
//! Every stochastic piece of the PPET pipeline — the probabilistic
//! multicommodity-flow saturation of `Saturate_Network`, the synthetic
//! benchmark generator, and the simulated-annealing baseline partitioner —
//! draws its randomness from this crate so that a given seed reproduces the
//! exact same experiment on every platform and in every release. General
//! purpose crates such as `rand` explicitly do *not* promise value stability
//! across versions, which would silently invalidate recorded experiment
//! tables.
//!
//! Two generators are provided:
//!
//! * [`SplitMix64`] — a tiny 64-bit state generator, used to seed others and
//!   for light-duty mixing;
//! * [`Xoshiro256PlusPlus`] — the workspace's workhorse generator (256-bit
//!   state, period `2^256 − 1`).
//!
//! Both implement the [`Rng`] trait, which adds the derived sampling helpers
//! used across the workspace (bounded integers, floats in `[0, 1)`, Bernoulli
//! trials, slice choice, Fisher–Yates shuffling).
//!
//! # Examples
//!
//! ```
//! use ppet_prng::{Rng, Xoshiro256PlusPlus};
//!
//! let mut rng = Xoshiro256PlusPlus::seed_from(42);
//! let die = rng.gen_range(1..=6);
//! assert!((1..=6).contains(&die));
//!
//! let mut items = vec![1, 2, 3, 4, 5];
//! rng.shuffle(&mut items);
//! assert_eq!(items.len(), 5);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod splitmix;
mod xoshiro;

pub use splitmix::SplitMix64;
pub use xoshiro::Xoshiro256PlusPlus;

use std::ops::{Bound, RangeBounds};

/// A deterministic source of pseudo-random `u64` values with derived sampling
/// helpers.
///
/// The provided methods cover every sampling pattern the workspace needs so
/// call sites never reimplement (and subtly diverge on) modulo-bias handling
/// or shuffling.
pub trait Rng {
    /// Returns the next raw 64-bit value from the generator.
    fn next_u64(&mut self) -> u64;

    /// Returns a uniformly distributed value in `[0, bound)`.
    ///
    /// Uses Lemire-style rejection to avoid modulo bias.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    fn gen_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "gen_below bound must be positive");
        // Lemire's multiply-shift method with rejection.
        let mut x = self.next_u64();
        let mut m = (x as u128) * (bound as u128);
        let mut low = m as u64;
        if low < bound {
            let threshold = bound.wrapping_neg() % bound;
            while low < threshold {
                x = self.next_u64();
                m = (x as u128) * (bound as u128);
                low = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Returns a uniformly distributed `usize` index in `[0, len)`.
    ///
    /// # Panics
    ///
    /// Panics if `len == 0`.
    fn gen_index(&mut self, len: usize) -> usize {
        self.gen_below(len as u64) as usize
    }

    /// Returns a uniformly distributed value from an integer range.
    ///
    /// Both half-open (`lo..hi`) and inclusive (`lo..=hi`) ranges are
    /// supported.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<R: RangeBounds<i64>>(&mut self, range: R) -> i64
    where
        Self: Sized,
    {
        let lo = match range.start_bound() {
            Bound::Included(&v) => v,
            Bound::Excluded(&v) => v + 1,
            Bound::Unbounded => i64::MIN,
        };
        let hi = match range.end_bound() {
            Bound::Included(&v) => v,
            Bound::Excluded(&v) => v - 1,
            Bound::Unbounded => i64::MAX,
        };
        assert!(lo <= hi, "gen_range called with an empty range");
        let span = (hi as i128 - lo as i128 + 1) as u128;
        if span > u64::MAX as u128 {
            // Span covers (almost) the whole u64 domain; raw value is fine.
            return self.next_u64() as i64;
        }
        lo.wrapping_add(self.gen_below(span as u64) as i64)
    }

    /// Returns a uniformly distributed `f64` in `[0, 1)` with 53 bits of
    /// precision.
    fn gen_f64(&mut self) -> f64 {
        // Take the top 53 bits; 2^-53 scaling yields [0, 1).
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            return false;
        }
        if p >= 1.0 {
            return true;
        }
        self.gen_f64() < p
    }

    /// Returns a reference to a uniformly chosen element of `slice`, or
    /// `None` when the slice is empty.
    fn choose<'a, T>(&mut self, slice: &'a [T]) -> Option<&'a T>
    where
        Self: Sized,
    {
        if slice.is_empty() {
            None
        } else {
            Some(&slice[self.gen_index(slice.len())])
        }
    }

    /// Shuffles `slice` in place with the Fisher–Yates algorithm.
    fn shuffle<T>(&mut self, slice: &mut [T])
    where
        Self: Sized,
    {
        for i in (1..slice.len()).rev() {
            let j = self.gen_index(i + 1);
            slice.swap(i, j);
        }
    }

    /// Forks an independent generator seeded from this one.
    ///
    /// Useful for giving each subsystem (flow saturation, annealing, circuit
    /// synthesis) its own stream so reordering one does not perturb the
    /// others.
    fn fork(&mut self) -> Xoshiro256PlusPlus
    where
        Self: Sized,
    {
        Xoshiro256PlusPlus::seed_from(self.next_u64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gen_below_stays_in_bounds() {
        let mut rng = Xoshiro256PlusPlus::seed_from(7);
        for bound in [1u64, 2, 3, 10, 1000, u64::MAX] {
            for _ in 0..100 {
                assert!(rng.gen_below(bound) < bound);
            }
        }
    }

    #[test]
    fn gen_range_inclusive_hits_endpoints() {
        let mut rng = Xoshiro256PlusPlus::seed_from(3);
        let mut saw_lo = false;
        let mut saw_hi = false;
        for _ in 0..1000 {
            let v = rng.gen_range(-2..=2);
            assert!((-2..=2).contains(&v));
            saw_lo |= v == -2;
            saw_hi |= v == 2;
        }
        assert!(saw_lo && saw_hi);
    }

    #[test]
    fn gen_f64_in_unit_interval() {
        let mut rng = Xoshiro256PlusPlus::seed_from(11);
        for _ in 0..10_000 {
            let x = rng.gen_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = Xoshiro256PlusPlus::seed_from(1);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn choose_empty_is_none() {
        let mut rng = Xoshiro256PlusPlus::seed_from(1);
        let empty: [u8; 0] = [];
        assert!(rng.choose(&empty).is_none());
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = Xoshiro256PlusPlus::seed_from(5);
        let mut v: Vec<u32> = (0..100).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn fork_streams_diverge() {
        let mut rng = Xoshiro256PlusPlus::seed_from(9);
        let mut a = rng.fork();
        let mut b = rng.fork();
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(xs, ys);
    }

    #[test]
    fn gen_bool_probability_roughly_respected() {
        let mut rng = Xoshiro256PlusPlus::seed_from(21);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "hits = {hits}");
    }
}
