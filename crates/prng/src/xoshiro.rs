//! xoshiro256++: the workspace's general-purpose generator.
//!
//! Reference: Blackman & Vigna, "Scrambled linear pseudorandom number
//! generators", ACM TOMS 2021; public-domain reference code at
//! <https://prng.di.unimi.it/xoshiro256plusplus.c>.

use crate::{Rng, SplitMix64};

/// A 256-bit-state pseudo-random generator (xoshiro256++).
///
/// Fast, equidistributed, and with a period of `2^256 − 1`; more than enough
/// for the million-event stochastic flow runs the partitioner performs. State
/// is never all-zero because seeding goes through [`SplitMix64`].
///
/// # Examples
///
/// ```
/// use ppet_prng::{Rng, Xoshiro256PlusPlus};
///
/// let mut rng = Xoshiro256PlusPlus::seed_from(2024);
/// let x = rng.gen_f64();
/// assert!((0.0..1.0).contains(&x));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Xoshiro256PlusPlus {
    s: [u64; 4],
}

impl Xoshiro256PlusPlus {
    /// Creates a generator by expanding `seed` through [`SplitMix64`], as
    /// recommended by the xoshiro authors.
    #[must_use]
    pub fn seed_from(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        let s = [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()];
        Self { s }
    }

    /// Creates a generator from a full 256-bit state.
    ///
    /// # Panics
    ///
    /// Panics if the state is all zero (the one inadmissible state).
    #[must_use]
    pub fn from_state(state: [u64; 4]) -> Self {
        assert!(
            state.iter().any(|&w| w != 0),
            "xoshiro256++ state must not be all zero"
        );
        Self { s: state }
    }

    /// Returns the current 256-bit state.
    #[must_use]
    pub fn state(&self) -> [u64; 4] {
        self.s
    }

    /// The `jump` function: advances the stream by `2^128` steps, producing a
    /// non-overlapping subsequence. Useful for carving independent streams
    /// from one seed when forking with reseeding is undesirable.
    pub fn jump(&mut self) {
        const JUMP: [u64; 4] = [
            0x180E_C6D3_3CFD_0ABA,
            0xD5A6_1266_F0C9_392C,
            0xA958_2618_E03F_C9AA,
            0x39AB_DC45_29B1_661C,
        ];
        let mut s0 = 0u64;
        let mut s1 = 0u64;
        let mut s2 = 0u64;
        let mut s3 = 0u64;
        for &j in &JUMP {
            for b in 0..64 {
                if (j >> b) & 1 == 1 {
                    s0 ^= self.s[0];
                    s1 ^= self.s[1];
                    s2 ^= self.s[2];
                    s3 ^= self.s[3];
                }
                let _ = self.next_u64();
            }
        }
        self.s = [s0, s1, s2, s3];
    }
}

impl Rng for Xoshiro256PlusPlus {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Vectors computed from the reference C implementation with the state
    /// `{1, 2, 3, 4}`.
    #[test]
    fn matches_reference_vectors() {
        let mut rng = Xoshiro256PlusPlus::from_state([1, 2, 3, 4]);
        let expected = [
            41_943_041u64,
            58_720_359,
            3_588_806_011_781_223,
            3_591_011_842_654_386,
            9_228_616_714_210_784_205,
        ];
        for &e in &expected {
            assert_eq!(rng.next_u64(), e);
        }
    }

    #[test]
    #[should_panic(expected = "all zero")]
    fn all_zero_state_rejected() {
        let _ = Xoshiro256PlusPlus::from_state([0; 4]);
    }

    #[test]
    fn seeding_is_deterministic() {
        let mut a = Xoshiro256PlusPlus::seed_from(99);
        let mut b = Xoshiro256PlusPlus::seed_from(99);
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn jump_produces_disjoint_prefix() {
        let mut a = Xoshiro256PlusPlus::seed_from(5);
        let mut b = a.clone();
        b.jump();
        let xs: Vec<u64> = (0..64).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..64).map(|_| b.next_u64()).collect();
        assert!(xs.iter().all(|x| !ys.contains(x)));
    }
}
