//! xoshiro256++: the workspace's general-purpose generator.
//!
//! Reference: Blackman & Vigna, "Scrambled linear pseudorandom number
//! generators", ACM TOMS 2021; public-domain reference code at
//! <https://prng.di.unimi.it/xoshiro256plusplus.c>.

use crate::{Rng, SplitMix64};

/// A 256-bit-state pseudo-random generator (xoshiro256++).
///
/// Fast, equidistributed, and with a period of `2^256 − 1`; more than enough
/// for the million-event stochastic flow runs the partitioner performs. State
/// is never all-zero because seeding goes through [`SplitMix64`].
///
/// # Examples
///
/// ```
/// use ppet_prng::{Rng, Xoshiro256PlusPlus};
///
/// let mut rng = Xoshiro256PlusPlus::seed_from(2024);
/// let x = rng.gen_f64();
/// assert!((0.0..1.0).contains(&x));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Xoshiro256PlusPlus {
    s: [u64; 4],
}

impl Xoshiro256PlusPlus {
    /// Creates a generator by expanding `seed` through [`SplitMix64`], as
    /// recommended by the xoshiro authors.
    #[must_use]
    pub fn seed_from(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        let s = [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()];
        Self { s }
    }

    /// Creates a generator from a full 256-bit state.
    ///
    /// # Panics
    ///
    /// Panics if the state is all zero (the one inadmissible state).
    #[must_use]
    pub fn from_state(state: [u64; 4]) -> Self {
        assert!(
            state.iter().any(|&w| w != 0),
            "xoshiro256++ state must not be all zero"
        );
        Self { s: state }
    }

    /// Returns the current 256-bit state.
    #[must_use]
    pub fn state(&self) -> [u64; 4] {
        self.s
    }

    /// The `jump` function: advances the stream by `2^128` steps, producing a
    /// non-overlapping subsequence. Useful for carving independent streams
    /// from one seed when forking with reseeding is undesirable.
    pub fn jump(&mut self) {
        const JUMP: [u64; 4] = [
            0x180E_C6D3_3CFD_0ABA,
            0xD5A6_1266_F0C9_392C,
            0xA958_2618_E03F_C9AA,
            0x39AB_DC45_29B1_661C,
        ];
        self.apply_jump_poly(&JUMP);
    }

    /// The `long_jump` function: advances the stream by `2^192` steps. One
    /// long-jump yields room for `2^64` plain [`Xoshiro256PlusPlus::jump`]
    /// streams, so a coordinator can long-jump per run and jump per worker
    /// without any stream ever overlapping.
    pub fn long_jump(&mut self) {
        const LONG_JUMP: [u64; 4] = [
            0x76E1_5D3E_FEFD_CBBF,
            0xC500_4E44_1C52_2FB3,
            0x7771_0069_854E_E241,
            0x3910_9BB0_2ACB_E635,
        ];
        self.apply_jump_poly(&LONG_JUMP);
    }

    /// Multiplies the state by the characteristic-polynomial power encoded
    /// in `poly` (the shared core of `jump` / `long_jump`).
    fn apply_jump_poly(&mut self, poly: &[u64; 4]) {
        let mut s0 = 0u64;
        let mut s1 = 0u64;
        let mut s2 = 0u64;
        let mut s3 = 0u64;
        for &j in poly {
            for b in 0..64 {
                if (j >> b) & 1 == 1 {
                    s0 ^= self.s[0];
                    s1 ^= self.s[1];
                    s2 ^= self.s[2];
                    s3 ^= self.s[3];
                }
                let _ = self.next_u64();
            }
        }
        self.s = [s0, s1, s2, s3];
    }

    /// Returns stream `n`: this generator advanced by `n · 2^128` steps.
    ///
    /// Streams are pairwise non-overlapping for at least `2^128` draws, so
    /// `base.stream(0), base.stream(1), …` are independent per-task
    /// generators for deterministic parallel execution: which *worker* runs
    /// a task no longer matters, only the task's stream index does.
    ///
    /// `stream(0)` is the unmodified generator; prefer handing out streams
    /// exclusively (and not drawing from `self` afterwards) so no consumer
    /// shares a subsequence.
    #[must_use]
    pub fn stream(&self, n: u64) -> Self {
        let mut s = self.clone();
        for _ in 0..n {
            s.jump();
        }
        s
    }

    /// Splits this generator into `n` pairwise non-overlapping streams
    /// (`stream(0)` through `stream(n - 1)`), in stream order.
    ///
    /// Cost is `n − 1` jumps total (each stream is derived from the
    /// previous one), not quadratic.
    #[must_use]
    pub fn streams(&self, n: usize) -> Vec<Self> {
        let mut out = Vec::with_capacity(n);
        let mut cur = self.clone();
        for i in 0..n {
            if i + 1 < n {
                let mut next = cur.clone();
                next.jump();
                out.push(cur);
                cur = next;
            } else {
                out.push(cur);
                break;
            }
        }
        out
    }
}

impl Rng for Xoshiro256PlusPlus {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Vectors computed from the reference C implementation with the state
    /// `{1, 2, 3, 4}`.
    #[test]
    fn matches_reference_vectors() {
        let mut rng = Xoshiro256PlusPlus::from_state([1, 2, 3, 4]);
        let expected = [
            41_943_041u64,
            58_720_359,
            3_588_806_011_781_223,
            3_591_011_842_654_386,
            9_228_616_714_210_784_205,
        ];
        for &e in &expected {
            assert_eq!(rng.next_u64(), e);
        }
    }

    #[test]
    #[should_panic(expected = "all zero")]
    fn all_zero_state_rejected() {
        let _ = Xoshiro256PlusPlus::from_state([0; 4]);
    }

    #[test]
    fn seeding_is_deterministic() {
        let mut a = Xoshiro256PlusPlus::seed_from(99);
        let mut b = Xoshiro256PlusPlus::seed_from(99);
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn jump_produces_disjoint_prefix() {
        let mut a = Xoshiro256PlusPlus::seed_from(5);
        let mut b = a.clone();
        b.jump();
        let xs: Vec<u64> = (0..64).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..64).map(|_| b.next_u64()).collect();
        assert!(xs.iter().all(|x| !ys.contains(x)));
    }

    #[test]
    fn long_jump_differs_from_jump_and_base() {
        let base = Xoshiro256PlusPlus::seed_from(5);
        let mut jumped = base.clone();
        jumped.jump();
        let mut long_jumped = base.clone();
        long_jumped.long_jump();
        assert_ne!(long_jumped.state(), base.state());
        assert_ne!(long_jumped.state(), jumped.state());
        // long_jump = 2^192 steps = 2^64 jumps: applying jump to the
        // long-jumped state must not fall back onto an early jump stream.
        let mut x = long_jumped.clone();
        x.jump();
        assert_ne!(x.state(), jumped.state());
    }

    #[test]
    fn stream_is_reproducible_and_matches_jumps() {
        let base = Xoshiro256PlusPlus::seed_from(1234);
        // stream(n) is exactly n applications of jump().
        let mut by_hand = base.clone();
        by_hand.jump();
        by_hand.jump();
        by_hand.jump();
        assert_eq!(base.stream(3).state(), by_hand.state());
        assert_eq!(base.stream(0).state(), base.state());
        // And calling it twice gives the same stream (pure function).
        assert_eq!(base.stream(7).state(), base.stream(7).state());
    }

    #[test]
    fn streams_equal_individual_streams() {
        let base = Xoshiro256PlusPlus::seed_from(99);
        let all = base.streams(5);
        assert_eq!(all.len(), 5);
        for (i, s) in all.iter().enumerate() {
            assert_eq!(s.state(), base.stream(i as u64).state(), "stream {i}");
        }
        assert!(base.streams(0).is_empty());
        assert_eq!(base.streams(1)[0].state(), base.state());
    }

    #[test]
    fn streams_are_pairwise_decorrelated() {
        // Non-overlap is a theorem of the jump polynomial; as an empirical
        // proxy, check that prefixes of sibling streams share no values and
        // are uncorrelated bitwise (≈ half the bits differ pairwise).
        let base = Xoshiro256PlusPlus::seed_from(2024);
        let mut streams = base.streams(4);
        let prefixes: Vec<Vec<u64>> = streams
            .iter_mut()
            .map(|s| (0..256).map(|_| s.next_u64()).collect())
            .collect();
        for i in 0..prefixes.len() {
            for j in (i + 1)..prefixes.len() {
                let a = &prefixes[i];
                let b = &prefixes[j];
                assert!(a.iter().all(|x| !b.contains(x)), "streams {i}/{j} collide");
                let diff_bits: u32 = a
                    .iter()
                    .zip(b.iter())
                    .map(|(x, y)| (x ^ y).count_ones())
                    .sum();
                let total_bits = 64 * a.len() as u32;
                let ratio = f64::from(diff_bits) / f64::from(total_bits);
                assert!(
                    (0.45..0.55).contains(&ratio),
                    "streams {i}/{j} look correlated: {ratio}"
                );
            }
        }
    }
}
