//! The `Saturate_Network` procedure (paper Table 3).

use ppet_graph::{dijkstra, CircuitGraph};
use ppet_netlist::CellId;
use ppet_prng::{Rng, Xoshiro256PlusPlus};
use ppet_trace::Tracer;

use crate::params::FlowParams;
use crate::profile::CongestionProfile;

/// Runs the probabilistic multicommodity-flow saturation on `graph`.
///
/// Follows the paper's Table 3 exactly:
///
/// ```text
/// STEP 1  d(e) = 1, flow(e) = 0, cap(e) = b            for every net
/// STEP 2  visit(v) = 0                                  for every node
/// STEP 3  while ∃v: visit(v) ≤ min_visit:
///   3.1     randomly pick v; visit(v) += 1
///   3.2     T_v = Dijkstra(G, d(E), v)
///   3.3     for each net e ∈ T_v: flow(e) += Δ; d(e) = exp(α·flow/cap)
/// STEP 4  return d(E)
/// ```
///
/// The random source selection uses the workspace PRNG seeded with `seed`,
/// so the whole process is reproducible. Termination is guaranteed: every
/// draw increments one visit counter and draws are uniform over all nodes.
///
/// The inner loop runs over the graph's packed [`Csr`](ppet_graph::Csr)
/// view with a fixed-slot bucket-queue Dijkstra
/// ([`dijkstra::DijkstraScratch::run_fast`]) and an incremental tree
/// cache ([`dijkstra::SsspCache`]); the congestion result is bit-identical
/// to the pre-rewrite implementation, which is retained as
/// [`saturate_network_reference`] and property-tested against.
///
/// # Panics
///
/// Panics if `params` fail [`FlowParams::validate`].
///
/// # Examples
///
/// ```
/// use ppet_flow::{saturate_network, FlowParams};
/// use ppet_graph::CircuitGraph;
/// use ppet_netlist::data;
///
/// let g = CircuitGraph::from_circuit(&data::s27());
/// let a = saturate_network(&g, &FlowParams::quick(), 7);
/// let b = saturate_network(&g, &FlowParams::quick(), 7);
/// assert_eq!(a, b); // deterministic per seed
/// ```
#[must_use]
pub fn saturate_network(graph: &CircuitGraph, params: &FlowParams, seed: u64) -> CongestionProfile {
    saturate_network_traced(graph, params, seed, &Tracer::noop())
}

/// [`saturate_network`] with observability: reports trees built, heap
/// pops, relaxations, settled/reused/requeued nodes and the CSR shape as
/// `flow.*` counters, and each tree's size into the `flow.tree_nodes`
/// histogram.
///
/// The congestion result is bit-identical to the untraced call — tracing
/// never perturbs the PRNG stream or the flow arithmetic — and with a
/// disabled tracer (e.g. [`Tracer::noop`]) the hot loop performs no
/// recording, no formatting, and no allocation beyond the untraced path.
#[must_use]
pub fn saturate_network_traced(
    graph: &CircuitGraph,
    params: &FlowParams,
    seed: u64,
    tracer: &Tracer,
) -> CongestionProfile {
    if let Some(problem) = params.validate() {
        panic!("invalid flow parameters: {problem}");
    }
    let n = graph.num_nodes();
    if n == 0 {
        return CongestionProfile {
            distance: Vec::new(),
            flow: Vec::new(),
            visits: Vec::new(),
            trees: 0,
            search: dijkstra::DijkstraStats::default(),
            saturated: true,
            shortfall: Vec::new(),
        };
    }

    let rng = Xoshiro256PlusPlus::seed_from(seed ^ SATURATE_SALT);
    let enabled = tracer.enabled(); // hoisted: one check, not one per tree
    let outcome = run_replica(
        graph,
        params,
        params.min_visit,
        params.max_trees,
        rng,
        enabled,
    );

    if enabled {
        for &size in &outcome.tree_sizes {
            tracer.record("flow.tree_nodes", size);
        }
        tracer.add("flow.csr.nodes", graph.csr().num_nodes() as u64);
        tracer.add("flow.csr.branches", graph.csr().num_branches() as u64);
        tracer.add("flow.trees_built", outcome.trees as u64);
        tracer.add("flow.heap_pops", outcome.search.heap_pops);
        tracer.add("flow.relaxations", outcome.search.relaxations);
        tracer.add("flow.nodes_settled", outcome.search.settled);
        tracer.add("flow.reused", outcome.search.reused);
        tracer.add("flow.requeue", outcome.search.requeued);
    }

    let saturated = outcome.shortfall.iter().all(|&s| s == 0);
    CongestionProfile {
        distance: outcome.distance,
        flow: outcome.flow,
        visits: outcome.visits,
        trees: outcome.trees,
        search: outcome.search,
        saturated,
        shortfall: outcome.shortfall,
    }
}

/// Seed salt for the saturation PRNG (ASCII "SATURATE"), shared by the
/// sequential loop and every parallel replica stream.
pub(crate) const SATURATE_SALT: u64 = 0x5341_5455_5241_5445;

/// Everything one saturation replica produces: the locally evolved
/// distances, the per-net flow it injected, its visit counts, and its
/// Dijkstra work counters. `tree_sizes` is filled only when the caller
/// wants tracing (one entry per tree, in tree order).
#[derive(Debug, Clone)]
pub(crate) struct ReplicaOutcome {
    pub(crate) distance: Vec<f64>,
    pub(crate) flow: Vec<f64>,
    pub(crate) visits: Vec<u32>,
    pub(crate) trees: usize,
    pub(crate) search: dijkstra::DijkstraStats,
    pub(crate) tree_sizes: Vec<u64>,
    /// Per-node visit shortfall against this replica's quota: how many
    /// visits each node was short of `quota + 1` when the loop stopped
    /// (non-zero only when the tree budget ran out first).
    pub(crate) shortfall: Vec<u32>,
}

/// Memoized congestion-distance ladder for per-net flow accounting.
///
/// In per-net mode (the paper default) a net that has appeared in `k`
/// trees has flow `((0 + Δ) + Δ) + …` — the same left-fold for every net
/// — so `flow_of[k]` and `dist_of[k] = exp(α·flow_of[k]/cap)` can be
/// computed once and shared. This removes essentially every `exp` call
/// from the hot loop and is bit-identical to the incremental
/// `flow[i] += Δ; d = exp(…)` updates it replaces, because the shared
/// fold performs the identical sequence of additions.
struct DistTable {
    flow_of: Vec<f64>,
    dist_of: Vec<f64>,
}

impl DistTable {
    fn new() -> Self {
        // k = 0: zero flow, unit distance — exactly congestion_distance(0).
        Self {
            flow_of: vec![0.0],
            dist_of: vec![1.0],
        }
    }

    /// Extends the ladder to cover `k` tree memberships.
    fn ensure(&mut self, k: usize, params: &FlowParams) {
        while self.flow_of.len() <= k {
            let f = self.flow_of.last().expect("never empty") + params.delta;
            self.flow_of.push(f);
            self.dist_of.push(params.congestion_distance(f));
        }
    }
}

/// One run of the paper's Table 3 loop: `quota` is this replica's
/// `min_visit` share, `tree_cap` its share of `FlowParams::max_trees`, and
/// `rng` its private PRNG stream. The sequential algorithm is exactly one
/// replica carrying the whole quota.
///
/// Determinism: the outcome is a pure function of
/// `(graph, params, quota, tree_cap, rng)` — no shared mutable state — so
/// replicas may execute on any worker in any order. The per-replica
/// [`dijkstra::SsspCache`] preserves this: cache state is private to the
/// replica and only ever changes *work counters*, never results.
pub(crate) fn run_replica(
    graph: &CircuitGraph,
    params: &FlowParams,
    quota: u32,
    tree_cap: Option<u64>,
    mut rng: Xoshiro256PlusPlus,
    collect_tree_sizes: bool,
) -> ReplicaOutcome {
    let n = graph.num_nodes();
    let csr = graph.csr();
    let mut distance = vec![1.0f64; n];
    let mut flow = vec![0.0f64; n];
    let mut visits = vec![0u32; n];
    let mut trees = 0usize;
    let mut tree_sizes = Vec::new();
    let mut scratch = dijkstra::DijkstraScratch::new(n);
    let mut cache = dijkstra::SsspCache::new(n, FlowParams::SSSP_CACHE_NODES);
    let mut table = DistTable::new();
    // Per-net tree-membership count: `flow[i]` is always `flow_of[hits[i]]`
    // in per-net mode.
    let mut hits = vec![0u32; n];
    // STEP 3: continue until every node has been visited more than
    // `quota` times (the paper's loop condition is
    // `∃v: visit(v) <= min_visit`).
    let mut below_count = n; // nodes with visit <= quota
    while below_count > 0 {
        if tree_cap.is_some_and(|cap| trees as u64 >= cap) {
            break; // tree budget exhausted (see FlowParams::max_trees)
        }
        let v = CellId::from_index(rng.gen_index(n));
        visits[v.index()] += 1;
        if visits[v.index()] == quota + 1 {
            below_count -= 1;
        }
        cache.run(&mut scratch, csr, v, &distance);
        trees += 1;
        if collect_tree_sizes {
            tree_sizes.push(scratch.visited_order().len() as u64);
        }
        if params.per_branch {
            for (net, count) in scratch.tree_net_counts() {
                let i = net.index();
                flow[i] += params.delta * f64::from(count);
                let nd = params.congestion_distance(flow[i]);
                if nd.to_bits() != distance[i].to_bits() {
                    distance[i] = nd;
                    cache.note_changed(net);
                }
            }
        } else {
            for (net, _) in scratch.tree_net_counts() {
                let i = net.index();
                hits[i] += 1;
                let k = hits[i] as usize;
                table.ensure(k, params);
                flow[i] = table.flow_of[k];
                let nd = table.dist_of[k];
                if nd.to_bits() != distance[i].to_bits() {
                    distance[i] = nd;
                    cache.note_changed(net);
                }
            }
        }
    }

    let shortfall: Vec<u32> = visits
        .iter()
        .map(|&v| (quota + 1).saturating_sub(v))
        .collect();
    ReplicaOutcome {
        distance,
        flow,
        visits,
        trees,
        search: scratch.stats(),
        tree_sizes,
        shortfall,
    }
}

/// The pre-rewrite `Saturate_Network` implementation: binary-heap Dijkstra
/// over the pointer-rich adjacency, per-tree sorted net lists, one `exp`
/// per touched net, no caching.
///
/// Retained on purpose as the executable baseline: the `saturate` bench
/// bin times it against the production path to measure the rewrite's
/// speedup, and the equivalence tests assert the two agree on every
/// algorithmic output ([`CongestionProfile::result_eq`] — work counters
/// legitimately differ once the cache starts reusing trees).
#[must_use]
pub fn saturate_network_reference(
    graph: &CircuitGraph,
    params: &FlowParams,
    seed: u64,
) -> CongestionProfile {
    if let Some(problem) = params.validate() {
        panic!("invalid flow parameters: {problem}");
    }
    let n = graph.num_nodes();
    if n == 0 {
        return CongestionProfile {
            distance: Vec::new(),
            flow: Vec::new(),
            visits: Vec::new(),
            trees: 0,
            search: dijkstra::DijkstraStats::default(),
            saturated: true,
            shortfall: Vec::new(),
        };
    }
    let mut rng = Xoshiro256PlusPlus::seed_from(seed ^ SATURATE_SALT);
    let quota = params.min_visit;
    let mut distance = vec![1.0f64; n];
    let mut flow = vec![0.0f64; n];
    let mut visits = vec![0u32; n];
    let mut trees = 0usize;
    let nodes: Vec<_> = graph.nodes().collect();
    let mut scratch = dijkstra::DijkstraScratch::new(n);

    let mut below_count = n;
    while below_count > 0 {
        if params.max_trees.is_some_and(|cap| trees as u64 >= cap) {
            break;
        }
        let v = nodes[rng.gen_index(n)];
        visits[v.index()] += 1;
        if visits[v.index()] == quota + 1 {
            below_count -= 1;
        }
        scratch.run(graph, v, &distance);
        trees += 1;
        if params.per_branch {
            for (net, count) in scratch.tree_net_branch_counts() {
                let i = net.index();
                flow[i] += params.delta * count as f64;
                distance[i] = params.congestion_distance(flow[i]);
            }
        } else {
            for net in scratch.tree_nets() {
                let i = net.index();
                flow[i] += params.delta;
                distance[i] = params.congestion_distance(flow[i]);
            }
        }
    }

    let shortfall: Vec<u32> = visits
        .iter()
        .map(|&v| (quota + 1).saturating_sub(v))
        .collect();
    let saturated = shortfall.iter().all(|&s| s == 0);
    CongestionProfile {
        distance,
        flow,
        visits,
        trees,
        search: scratch.stats(),
        saturated,
        shortfall,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppet_graph::scc::Scc;
    use ppet_netlist::data;

    fn s27() -> CircuitGraph {
        CircuitGraph::from_circuit(&data::s27())
    }

    #[test]
    fn every_node_visited_enough() {
        let g = s27();
        let p = FlowParams::quick();
        let prof = saturate_network(&g, &p, 1);
        for (i, &v) in prof.visits().iter().enumerate() {
            assert!(v > p.min_visit, "node {i} visited only {v} times");
        }
        assert!(prof.num_trees() >= g.num_nodes() * p.min_visit as usize);
    }

    #[test]
    fn distances_consistent_with_flow() {
        let g = s27();
        let p = FlowParams::quick();
        let prof = saturate_network(&g, &p, 2);
        for (net, _) in g.nets() {
            let expected = (p.alpha * prof.flow(net) / p.capacity).exp();
            let got = prof.distance(net);
            if prof.flow(net) == 0.0 {
                assert_eq!(got, 1.0);
            } else {
                assert!((got - expected).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn matches_the_reference_implementation_bit_for_bit() {
        // The rewrite contract: CSR + radix heap + SSSP cache + the
        // memoized distance ladder change *work*, never *results*. The
        // distance/flow vectors must agree to the last bit, in both
        // accounting modes, across seeds.
        let g = s27();
        for seed in [0, 1, 7, 42] {
            for per_branch in [false, true] {
                let mut p = FlowParams::quick();
                p.per_branch = per_branch;
                let fast = saturate_network(&g, &p, seed);
                let slow = saturate_network_reference(&g, &p, seed);
                assert!(fast.result_eq(&slow), "seed {seed} per_branch {per_branch}");
                for (net, _) in g.nets() {
                    assert_eq!(
                        fast.distance(net).to_bits(),
                        slow.distance(net).to_bits(),
                        "seed {seed} per_branch {per_branch} net {net}"
                    );
                    assert_eq!(fast.flow(net).to_bits(), slow.flow(net).to_bits());
                }
            }
        }
    }

    #[test]
    fn cache_reuse_shows_up_in_the_work_counters() {
        // Peripheral sources (tiny trees whose parent nets rarely change)
        // recur min_visit+ times; at least some of those recurrences must
        // hit the cache, and the counters must stay internally consistent:
        // every settled node was either reused, requeued, or found by a
        // fresh search.
        let g = s27();
        let prof = saturate_network(&g, &FlowParams::quick(), 1);
        let s = prof.search_stats();
        assert!(s.reused > 0, "cache never reused a tree: {s:?}");
        assert!(s.settled >= s.reused + s.requeued);
        // The reference does strictly more heap work.
        let r = saturate_network_reference(&g, &FlowParams::quick(), 1).search_stats();
        assert!(
            s.heap_pops < r.heap_pops,
            "{} vs {}",
            s.heap_pops,
            r.heap_pops
        );
        assert_eq!(r.reused, 0);
        assert_eq!(r.requeued, 0);
    }

    #[test]
    fn nets_without_sinks_stay_untouched() {
        let g = s27();
        let prof = saturate_network(&g, &FlowParams::quick(), 3);
        let g17 = g.find("G17").unwrap(); // primary output, no sinks
        assert_eq!(prof.flow(g17), 0.0);
        assert_eq!(prof.distance(g17), 1.0);
    }

    #[test]
    fn scc_nets_are_more_congested_than_periphery() {
        // The paper's Fig. 5 observation: equiprobable source selection
        // pushes flow onto strongly-connected nets. Compare the mean flow of
        // nets inside the sequential core to the mean over PI nets.
        let g = s27();
        let prof = saturate_network(&g, &FlowParams::paper(), 4);
        let scc = Scc::of(&g);
        let mut core = Vec::new();
        let mut pi = Vec::new();
        for (net, _) in g.nets() {
            if scc.net_in_cyclic_component(&g, net) {
                core.push(prof.flow(net));
            } else if g.is_input(net) {
                pi.push(prof.flow(net));
            }
        }
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        assert!(
            mean(&core) > mean(&pi),
            "core {:?} vs pi {:?}",
            mean(&core),
            mean(&pi)
        );
    }

    #[test]
    fn per_branch_accumulates_at_least_per_net() {
        let g = s27();
        let mut p = FlowParams::quick();
        let per_net = saturate_network(&g, &p, 5);
        p.per_branch = true;
        let per_branch = saturate_network(&g, &p, 5);
        // Same seed => same visit sequence on the first tree; flows cannot
        // be directly compared net-by-net after divergence, but totals can:
        let tot_net: f64 = (0..g.num_nodes())
            .map(|i| per_net.flow(ppet_netlist::CellId::from_index(i)))
            .sum();
        let tot_branch: f64 = (0..g.num_nodes())
            .map(|i| per_branch.flow(ppet_netlist::CellId::from_index(i)))
            .sum();
        assert!(tot_branch >= tot_net * 0.99);
    }

    #[test]
    fn different_seeds_differ() {
        let g = s27();
        let a = saturate_network(&g, &FlowParams::quick(), 1);
        let b = saturate_network(&g, &FlowParams::quick(), 2);
        assert_ne!(a, b);
    }

    #[test]
    #[should_panic(expected = "invalid flow parameters")]
    fn invalid_parameters_panic() {
        let g = s27();
        let mut p = FlowParams::paper();
        p.alpha = 0.0;
        let _ = saturate_network(&g, &p, 0);
    }

    #[test]
    fn tracing_does_not_perturb_results() {
        let g = s27();
        let p = FlowParams::quick();
        let plain = saturate_network(&g, &p, 9);
        let (tracer, sink) = Tracer::collecting();
        let traced = saturate_network_traced(&g, &p, 9, &tracer);
        assert_eq!(plain, traced);

        let report = sink.report();
        let stats = traced.search_stats();
        assert_eq!(
            report.counters["flow.trees_built"],
            traced.num_trees() as u64
        );
        assert_eq!(report.counters["flow.heap_pops"], stats.heap_pops);
        assert_eq!(report.counters["flow.relaxations"], stats.relaxations);
        assert_eq!(report.counters["flow.nodes_settled"], stats.settled);
        assert_eq!(report.counters["flow.reused"], stats.reused);
        assert_eq!(report.counters["flow.requeue"], stats.requeued);
        assert_eq!(report.counters["flow.csr.nodes"], g.num_nodes() as u64);
        assert_eq!(
            report.counters["flow.csr.branches"],
            g.num_branches() as u64
        );
        let hist = &report.histograms["flow.tree_nodes"];
        assert_eq!(hist.count, traced.num_trees() as u64);
        assert_eq!(hist.sum, stats.settled);
    }

    #[test]
    fn empty_graph_is_fine() {
        let c = ppet_netlist::Circuit::new("empty");
        let g = CircuitGraph::from_circuit(&c);
        let prof = saturate_network(&g, &FlowParams::quick(), 0);
        assert_eq!(prof.num_trees(), 0);
        assert!(prof.is_saturated());
    }

    /// A two-gate chain: the single internal net absorbs every tree, so a
    /// huge `α` drives the raw `exp(α·flow/cap)` past the finite range
    /// within a handful of trees.
    fn tiny() -> CircuitGraph {
        let c = ppet_netlist::bench_format::parse(
            "tiny",
            "INPUT(a)\nOUTPUT(y)\nb = NOT(a)\ny = NOT(b)\n",
        )
        .unwrap();
        CircuitGraph::from_circuit(&c)
    }

    #[test]
    fn extreme_congestion_saturates_instead_of_overflowing() {
        // Regression: with α = 1e6 a single Δ = 0.01 injection makes the
        // raw exponent 10 000 ≫ 709.78, so before the clamp the first
        // touched net's distance became +inf and every later tree saw it
        // as unreachable.
        let g = tiny();
        let mut p = FlowParams::quick();
        p.alpha = 1e6;
        let prof = saturate_network(&g, &p, 1);
        assert!(prof.num_trees() > 0);
        for (net, _) in g.nets() {
            let d = prof.distance(net);
            assert!(d.is_finite(), "net {net}: distance overflowed to {d}");
            assert!(d <= FlowParams::MAX_EXPONENT.exp());
            if prof.flow(net) > 0.0 {
                assert_eq!(d, p.congestion_distance(prof.flow(net)));
            }
        }
    }

    #[test]
    fn extreme_congestion_matches_the_reference_too() {
        // In the clamped region the distance stops changing, which is
        // exactly where the `note_changed` skip keeps cached trees alive —
        // the results must still be bit-identical to the reference.
        let g = tiny();
        let mut p = FlowParams::quick();
        p.alpha = 1e6;
        let fast = saturate_network(&g, &p, 1);
        let slow = saturate_network_reference(&g, &p, 1);
        assert!(fast.result_eq(&slow));
    }

    #[test]
    fn full_run_is_saturated_with_no_shortfall() {
        let g = s27();
        let p = FlowParams::quick();
        let prof = saturate_network(&g, &p, 6);
        assert!(prof.is_saturated());
        assert_eq!(prof.unsaturated_nodes(), 0);
        assert!(prof.shortfall().iter().all(|&s| s == 0));
    }

    #[test]
    fn exhausted_tree_budget_reports_shortfall() {
        // Regression: hitting max_trees used to return silently, with no
        // way to tell the profile was built from too few trees.
        let g = s27();
        let mut p = FlowParams::quick();
        p.max_trees = Some(3); // far below the |V|·min_visit quota
        let prof = saturate_network(&g, &p, 6);
        assert_eq!(prof.num_trees(), 3);
        assert!(!prof.is_saturated());
        assert!(prof.unsaturated_nodes() > 0);
        // Every node with a shortfall really did miss its quota.
        for (i, &s) in prof.shortfall().iter().enumerate() {
            assert_eq!(
                s,
                (p.min_visit + 1).saturating_sub(prof.visits()[i]),
                "node {i}"
            );
        }
    }
}
