//! Parallel `Saturate_Network`: the visit quota split across independent
//! replica streams, executed on a [`ppet_exec::Pool`].
//!
//! The sequential Table 3 loop is inherently serial — every tree routes
//! over the distances left by all earlier trees. The parallel variant
//! changes the *algorithm*, not just the schedule: the `min_visit` quota
//! is partitioned across [`FlowParams::replicas`] independent replicas,
//! each running the full Table 3 loop over its own share with its own
//! jump-derived PRNG stream and locally evolving distances. Per-net flows
//! are then summed in replica order and the distance function is
//! recomputed from the merged flow (`d(e) = exp(α·flow/cap)`, the paper's
//! own definition — identical to what the sequential loop maintains
//! incrementally).
//!
//! **Determinism contract**: the result is a pure function of
//! `(graph, params, seed)` — including `params.replicas` — and never of
//! the pool's worker count. `replicas = 1` is byte-identical to
//! [`saturate_network`](crate::saturate_network).

use ppet_exec::Pool;
use ppet_graph::{dijkstra::DijkstraStats, CircuitGraph};
use ppet_prng::Xoshiro256PlusPlus;
use ppet_trace::Tracer;

use crate::params::FlowParams;
use crate::profile::CongestionProfile;
use crate::saturate::{run_replica, saturate_network_traced, ReplicaOutcome, SATURATE_SALT};

/// Runs the probabilistic saturation with the visit quota split across
/// `params.replicas` independent streams, scheduled on `pool`.
///
/// See the [crate docs](crate) for the algorithm and determinism
/// contract. With `replicas = 1` this is exactly
/// [`saturate_network`](crate::saturate_network).
///
/// # Panics
///
/// Panics if `params` fail [`FlowParams::validate`].
///
/// # Examples
///
/// ```
/// use ppet_exec::Pool;
/// use ppet_flow::{saturate_network_par, FlowParams};
/// use ppet_graph::CircuitGraph;
/// use ppet_netlist::data;
///
/// let g = CircuitGraph::from_circuit(&data::s27());
/// let p = FlowParams::quick().with_replicas(5);
/// let a = saturate_network_par(&g, &p, 7, &Pool::sequential());
/// let b = saturate_network_par(&g, &p, 7, &Pool::new(8));
/// assert_eq!(a, b); // worker count never changes the result
/// ```
#[must_use]
pub fn saturate_network_par(
    graph: &CircuitGraph,
    params: &FlowParams,
    seed: u64,
    pool: &Pool,
) -> CongestionProfile {
    saturate_network_par_traced(graph, params, seed, pool, &Tracer::noop())
}

/// [`saturate_network_par`] with observability.
///
/// Workers never touch the tracer: each replica's counters and tree-size
/// samples are carried back with its result and recorded by the calling
/// thread in replica order, so traced output (including the
/// `flow.tree_nodes` histogram and all `flow.*` counter totals) is as
/// worker-count independent as the congestion profile itself.
#[must_use]
pub fn saturate_network_par_traced(
    graph: &CircuitGraph,
    params: &FlowParams,
    seed: u64,
    pool: &Pool,
    tracer: &Tracer,
) -> CongestionProfile {
    if let Some(problem) = params.validate() {
        panic!("invalid flow parameters: {problem}");
    }
    if params.replicas <= 1 {
        return saturate_network_traced(graph, params, seed, tracer);
    }
    let n = graph.num_nodes();
    if n == 0 {
        return CongestionProfile {
            distance: Vec::new(),
            flow: Vec::new(),
            visits: Vec::new(),
            trees: 0,
            search: DijkstraStats::default(),
            saturated: true,
            shortfall: Vec::new(),
        };
    }

    let replicas = params.replicas as usize;
    let streams = Xoshiro256PlusPlus::seed_from(seed ^ SATURATE_SALT).streams(replicas);
    let quotas = split_u32(params.min_visit, replicas);
    let caps: Vec<Option<u64>> = match params.max_trees {
        Some(total) => split_u64(total, replicas).into_iter().map(Some).collect(),
        None => vec![None; replicas],
    };
    let enabled = tracer.enabled();

    let tasks: Vec<(u32, Option<u64>, Xoshiro256PlusPlus)> = quotas
        .into_iter()
        .zip(caps)
        .zip(streams)
        .map(|((quota, cap), stream)| (quota, cap, stream))
        .collect();
    let outcomes: Vec<ReplicaOutcome> = pool.par_map(&tasks, |_, (quota, cap, stream)| {
        run_replica(graph, params, *quota, *cap, stream.clone(), enabled)
    });

    // Merge in replica order: every accumulation below is a fixed-order
    // fold, so the merged profile is bit-identical at any worker count.
    let mut flow = vec![0.0f64; n];
    let mut visits = vec![0u32; n];
    let mut shortfall = vec![0u32; n];
    let mut trees = 0usize;
    let mut search = DijkstraStats::default();
    for outcome in &outcomes {
        for (slot, &f) in flow.iter_mut().zip(&outcome.flow) {
            *slot += f;
        }
        for (slot, &v) in visits.iter_mut().zip(&outcome.visits) {
            *slot += v;
        }
        for (slot, &s) in shortfall.iter_mut().zip(&outcome.shortfall) {
            *slot += s;
        }
        trees += outcome.trees;
        search.heap_pops += outcome.search.heap_pops;
        search.relaxations += outcome.search.relaxations;
        search.settled += outcome.search.settled;
        search.reused += outcome.search.reused;
        search.requeued += outcome.search.requeued;
    }
    let distance: Vec<f64> = flow
        .iter()
        .map(|&f| {
            if f == 0.0 {
                1.0
            } else {
                params.congestion_distance(f)
            }
        })
        .collect();
    let saturated = shortfall.iter().all(|&s| s == 0);

    if enabled {
        for outcome in &outcomes {
            for &size in &outcome.tree_sizes {
                tracer.record("flow.tree_nodes", size);
            }
        }
        tracer.add("flow.replicas", replicas as u64);
        tracer.add("flow.csr.nodes", graph.csr().num_nodes() as u64);
        tracer.add("flow.csr.branches", graph.csr().num_branches() as u64);
        tracer.add("flow.trees_built", trees as u64);
        tracer.add("flow.heap_pops", search.heap_pops);
        tracer.add("flow.relaxations", search.relaxations);
        tracer.add("flow.nodes_settled", search.settled);
        tracer.add("flow.reused", search.reused);
        tracer.add("flow.requeue", search.requeued);
    }

    CongestionProfile {
        distance,
        flow,
        visits,
        trees,
        search,
        saturated,
        shortfall,
    }
}

/// Splits `total` into `parts` shares differing by at most one, largest
/// shares first (`split_u32(20, 8) = [3,3,3,3,2,2,2,2]`).
fn split_u32(total: u32, parts: usize) -> Vec<u32> {
    let parts_u = parts as u32;
    let base = total / parts_u;
    let rem = total % parts_u;
    (0..parts_u).map(|i| base + u32::from(i < rem)).collect()
}

/// As [`split_u32`], for the `max_trees` budget.
fn split_u64(total: u64, parts: usize) -> Vec<u64> {
    let parts_u = parts as u64;
    let base = total / parts_u;
    let rem = total % parts_u;
    (0..parts_u).map(|i| base + u64::from(i < rem)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::saturate_network;
    use ppet_netlist::data;

    fn s27() -> CircuitGraph {
        CircuitGraph::from_circuit(&data::s27())
    }

    #[test]
    fn quota_splits_cover_the_total() {
        assert_eq!(split_u32(20, 8), vec![3, 3, 3, 3, 2, 2, 2, 2]);
        assert_eq!(split_u32(5, 5), vec![1; 5]);
        assert_eq!(split_u64(7, 3), vec![3, 2, 2]);
        assert_eq!(split_u32(20, 8).iter().sum::<u32>(), 20);
    }

    #[test]
    fn single_replica_matches_sequential_exactly() {
        let g = s27();
        let p = FlowParams::quick(); // replicas = 1
        let seq = saturate_network(&g, &p, 11);
        for workers in [1, 2, 8] {
            let par = saturate_network_par(&g, &p, 11, &Pool::new(workers));
            assert_eq!(par, seq, "workers = {workers}");
        }
    }

    #[test]
    fn result_is_worker_count_invariant() {
        let g = s27();
        let p = FlowParams::quick().with_replicas(5);
        let baseline = saturate_network_par(&g, &p, 3, &Pool::sequential());
        for workers in [2, 4, 8] {
            let par = saturate_network_par(&g, &p, 3, &Pool::new(workers));
            assert_eq!(par, baseline, "workers = {workers}");
        }
    }

    #[test]
    fn replica_count_changes_the_experiment() {
        let g = s27();
        let one = saturate_network_par(&g, &FlowParams::quick(), 3, &Pool::sequential());
        let five = saturate_network_par(
            &g,
            &FlowParams::quick().with_replicas(5),
            3,
            &Pool::sequential(),
        );
        assert_ne!(one, five);
    }

    #[test]
    fn merged_profile_respects_the_quota() {
        let g = s27();
        let p = FlowParams::quick().with_replicas(5); // quota 1 per replica
        let prof = saturate_network_par(&g, &p, 9, &Pool::new(4));
        // Every replica visits every node at least quota+1 times, so the
        // merged count is at least min_visit + replicas.
        for (i, &v) in prof.visits().iter().enumerate() {
            assert!(
                v >= p.min_visit + p.replicas,
                "node {i} visited only {v} times"
            );
        }
        assert!(prof.num_trees() >= g.num_nodes());
    }

    #[test]
    fn merged_distances_consistent_with_merged_flow() {
        let g = s27();
        let p = FlowParams::quick().with_replicas(5);
        let prof = saturate_network_par(&g, &p, 2, &Pool::new(3));
        for (net, _) in g.nets() {
            if prof.flow(net) == 0.0 {
                assert_eq!(prof.distance(net), 1.0);
            } else {
                let expected = (p.alpha * prof.flow(net) / p.capacity).exp();
                assert!((prof.distance(net) - expected).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn tree_budget_is_partitioned() {
        let g = s27();
        let mut p = FlowParams::quick().with_replicas(5);
        p.max_trees = Some(10);
        let prof = saturate_network_par(&g, &p, 4, &Pool::new(2));
        assert!(prof.num_trees() <= 10);
        // 10 trees cannot cover |V|·(quota+1) visits: the merged profile
        // must report the shortfall instead of staying silent.
        assert!(!prof.is_saturated());
        assert!(prof.unsaturated_nodes() > 0);
    }

    #[test]
    fn unbudgeted_parallel_run_is_saturated() {
        let g = s27();
        let p = FlowParams::quick().with_replicas(5);
        let prof = saturate_network_par(&g, &p, 4, &Pool::new(2));
        assert!(prof.is_saturated());
        assert_eq!(prof.unsaturated_nodes(), 0);
    }

    #[test]
    fn extreme_congestion_stays_finite_in_the_merged_distances() {
        // Regression: the merged-recompute path had its own raw
        // `exp(α·flow/cap)` — it must clamp exactly like the sequential
        // update so determinism parity holds under extreme parameters.
        let g = s27();
        let mut p = FlowParams::quick().with_replicas(5);
        p.alpha = 1e6;
        let prof = saturate_network_par(&g, &p, 4, &Pool::new(3));
        for (net, _) in g.nets() {
            assert!(
                prof.distance(net).is_finite(),
                "net {net}: merged distance overflowed"
            );
        }
    }

    #[test]
    fn tracing_does_not_perturb_results_and_counters_match() {
        let g = s27();
        let p = FlowParams::quick().with_replicas(5);
        let plain = saturate_network_par(&g, &p, 6, &Pool::new(4));
        let (tracer, sink) = Tracer::collecting();
        let traced = saturate_network_par_traced(&g, &p, 6, &Pool::new(4), &tracer);
        assert_eq!(plain, traced);

        let report = sink.report();
        assert_eq!(report.counters["flow.replicas"], 5);
        assert_eq!(
            report.counters["flow.trees_built"],
            traced.num_trees() as u64
        );
        let stats = traced.search_stats();
        assert_eq!(report.counters["flow.heap_pops"], stats.heap_pops);
        assert_eq!(report.counters["flow.relaxations"], stats.relaxations);
        assert_eq!(report.counters["flow.nodes_settled"], stats.settled);
        let hist = &report.histograms["flow.tree_nodes"];
        assert_eq!(hist.count, traced.num_trees() as u64);
        assert_eq!(hist.sum, stats.settled);
    }

    #[test]
    fn traced_counters_are_worker_count_invariant() {
        let g = s27();
        let p = FlowParams::quick().with_replicas(5);
        let counters = |workers: usize| {
            let (tracer, sink) = Tracer::collecting();
            let _ = saturate_network_par_traced(&g, &p, 8, &Pool::new(workers), &tracer);
            sink.report().counters
        };
        let baseline = counters(1);
        assert_eq!(counters(4), baseline);
    }

    #[test]
    fn empty_graph_is_fine() {
        let c = ppet_netlist::Circuit::new("empty");
        let g = CircuitGraph::from_circuit(&c);
        let p = FlowParams::paper().with_replicas(4);
        let prof = saturate_network_par(&g, &p, 0, &Pool::new(4));
        assert_eq!(prof.num_trees(), 0);
    }

    #[test]
    #[should_panic(expected = "invalid flow parameters")]
    fn invalid_parameters_panic() {
        let g = s27();
        let p = FlowParams::quick().with_replicas(0);
        let _ = saturate_network_par(&g, &p, 0, &Pool::sequential());
    }
}
