//! Parameters of the saturation process.

/// Tunables of `Saturate_Network` (paper Table 3 and §4.1).
///
/// The paper reports that `b = 1`, `min_visit = 20`, `α = 4`, `Δ = 0.01`
/// give a well-differentiated distance function on the benchmark suite;
/// [`FlowParams::paper`] is that setting. The constraint to respect when
/// tuning is `min_visit · Δ ≤ b` so average flow does not exceed capacity
/// (§4.1).
///
/// # Examples
///
/// ```
/// let p = ppet_flow::FlowParams::paper();
/// assert_eq!(p.min_visit, 20);
/// assert!(p.min_visit as f64 * p.delta <= p.capacity);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct FlowParams {
    /// Net capacity `b` (every net has the same capacity).
    pub capacity: f64,
    /// Flow quantum `Δ` injected per tree net.
    pub delta: f64,
    /// Congestion exponent `α` in `d(e) = exp(α·flow/cap)`.
    pub alpha: f64,
    /// Minimum number of times every node must have been picked as a source
    /// before the process stops.
    pub min_visit: u32,
    /// When `true`, a net on a shortest-path tree receives `Δ` per tree
    /// *branch* instead of `Δ` per tree (the multi-pin ambiguity discussed
    /// in `DESIGN.md` §3; the paper's Table 3 reads as per-net, the
    /// default).
    pub per_branch: bool,
    /// Optional cap on the total number of shortest-path trees. The
    /// paper-faithful loop runs ≈ `min_visit · |V| · ln|V|` trees, which is
    /// intractable for the 20 000-cell benchmarks on commodity hardware
    /// (and could not have been what the authors ran in 98 s on a Sparc10);
    /// the large-circuit harnesses set a budget of a few trees per node and
    /// record the deviation in `EXPERIMENTS.md`. `None` = unbounded.
    pub max_trees: Option<u64>,
    /// Number of independent saturation replicas the visit quota is split
    /// across (see `saturate_network_par`). `1` — the default — is the
    /// paper's strictly sequential Table 3 loop. With `R > 1`, replica `r`
    /// runs the same loop over its own non-overlapping PRNG stream with
    /// `min_visit/R` of the quota (and its share of `max_trees`), and the
    /// per-net flows are summed in replica order.
    ///
    /// The replica count is part of the *experiment definition*: it changes
    /// the (still deterministic) result. The worker count executing the
    /// replicas never does.
    pub replicas: u32,
}

impl FlowParams {
    /// Largest exponent [`FlowParams::congestion_distance`] feeds to
    /// `exp`. `exp(709.78…)` is the last finite `f64`; saturating a little
    /// below it keeps every congestion distance finite with headroom for
    /// downstream additions.
    pub const MAX_EXPONENT: f64 = 700.0;

    /// Budget (in cached tree nodes, summed over all sources) of the
    /// per-replica incremental-SSSP cache the saturation loop carries.
    ///
    /// Each cached node is 16 bytes, so the worst case is ~256 KiB per
    /// replica; sources past the budget simply run fresh, which cannot
    /// change any result (the cache only ever changes *work counters* —
    /// see `ppet_graph::dijkstra::SsspCache`). Deliberately small: cache
    /// hits only happen when no weight on the cached tree changed between
    /// two visits of the same source, which is common on small circuits
    /// (and in the clamped-congestion regime where distances freeze) but
    /// rare mid-saturation on large ones — a large budget would pay
    /// store-and-revalidate on every tree for almost no reuse. A constant
    /// rather than a tunable: it is invisible in the output, so it has no
    /// place in the experiment definition or the run manifest.
    pub const SSSP_CACHE_NODES: usize = 1 << 14;

    /// The congestion distance `d(e) = exp(α·flow/cap)` of Table 3 STEP
    /// 3.3, with the exponent saturated at [`FlowParams::MAX_EXPONENT`].
    ///
    /// [`FlowParams::validate`] bounds the *expected* flow, but source
    /// selection is random: unlucky draws (or a heavily shared net in a
    /// per-branch run) can overshoot the visit quota far enough that the
    /// raw `exp` overflows to `+inf`, which makes every path through the
    /// net compare as unreachable and silently distorts the trees that
    /// follow. Saturating keeps the distance finite and the ordering of
    /// all smaller flows intact. Both the sequential loop and the parallel
    /// merge use this single definition, so determinism parity holds.
    ///
    /// # Examples
    ///
    /// ```
    /// let p = ppet_flow::FlowParams::paper();
    /// assert_eq!(p.congestion_distance(0.0), 1.0);
    /// assert!(p.congestion_distance(f64::MAX).is_finite());
    /// ```
    #[must_use]
    pub fn congestion_distance(&self, flow: f64) -> f64 {
        let exponent = (self.alpha * flow / self.capacity).min(Self::MAX_EXPONENT);
        exponent.exp()
    }

    /// The paper's published setting: `b = 1`, `min_visit = 20`, `α = 4`,
    /// `Δ = 0.01`, per-net accounting.
    #[must_use]
    pub fn paper() -> Self {
        Self {
            capacity: 1.0,
            delta: 0.01,
            alpha: 4.0,
            min_visit: 20,
            per_branch: false,
            max_trees: None,
            replicas: 1,
        }
    }

    /// This parameter set with the visit quota split across `replicas`
    /// independent streams (see [`FlowParams::replicas`]).
    #[must_use]
    pub fn with_replicas(mut self, replicas: u32) -> Self {
        self.replicas = replicas;
        self
    }

    /// A fast setting for unit tests and examples on small circuits
    /// (`min_visit = 5`).
    #[must_use]
    pub fn quick() -> Self {
        Self {
            min_visit: 5,
            ..Self::paper()
        }
    }

    /// The paper setting with a tree budget of `trees_per_node · |V|`
    /// shortest-path trees, for circuits too large for the unbounded loop.
    #[must_use]
    pub fn budgeted(num_nodes: usize, trees_per_node: u64) -> Self {
        Self {
            max_trees: Some(trees_per_node.saturating_mul(num_nodes as u64).max(1)),
            ..Self::paper()
        }
    }

    /// Validates the parameter set; returns a description of the first
    /// problem found, or `None` when sane.
    #[must_use]
    pub fn validate(&self) -> Option<String> {
        if self.capacity.partial_cmp(&0.0) != Some(std::cmp::Ordering::Greater) {
            return Some(format!("capacity must be positive, got {}", self.capacity));
        }
        if self.delta.partial_cmp(&0.0) != Some(std::cmp::Ordering::Greater) {
            return Some(format!("delta must be positive, got {}", self.delta));
        }
        if self.alpha.partial_cmp(&0.0) != Some(std::cmp::Ordering::Greater) {
            return Some(format!("alpha must be positive, got {}", self.alpha));
        }
        if self.min_visit == 0 {
            return Some("min_visit must be at least 1".to_string());
        }
        if f64::from(self.min_visit) * self.delta > self.capacity * 64.0 {
            // exp(α·flow/cap) would overflow long before this; refuse.
            return Some("min_visit·delta/capacity is absurdly large".to_string());
        }
        if self.replicas == 0 {
            return Some("replicas must be at least 1".to_string());
        }
        if self.replicas > self.min_visit {
            return Some(format!(
                "replicas ({}) must not exceed min_visit ({}): every replica needs \
                 at least one visit of the quota",
                self.replicas, self.min_visit
            ));
        }
        None
    }
}

impl Default for FlowParams {
    fn default() -> Self {
        Self::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_parameters_match_section_4_1() {
        let p = FlowParams::paper();
        assert_eq!(p.capacity, 1.0);
        assert_eq!(p.delta, 0.01);
        assert_eq!(p.alpha, 4.0);
        assert_eq!(p.min_visit, 20);
        assert!(!p.per_branch);
        assert!(p.validate().is_none());
    }

    #[test]
    fn bad_parameters_flagged() {
        let mut p = FlowParams::paper();
        p.delta = 0.0;
        assert!(p.validate().unwrap().contains("delta"));
        let mut p = FlowParams::paper();
        p.capacity = -1.0;
        assert!(p.validate().unwrap().contains("capacity"));
        let mut p = FlowParams::paper();
        p.min_visit = 0;
        assert!(p.validate().unwrap().contains("min_visit"));
        let mut p = FlowParams::paper();
        p.replicas = 0;
        assert!(p.validate().unwrap().contains("replicas"));
        let p = FlowParams::quick().with_replicas(6); // quick: min_visit = 5
        assert!(p.validate().unwrap().contains("exceed"));
    }

    #[test]
    fn replica_split_within_quota_is_valid() {
        let p = FlowParams::paper().with_replicas(8);
        assert!(p.validate().is_none());
        assert_eq!(p.replicas, 8);
    }

    #[test]
    fn default_is_paper() {
        assert_eq!(FlowParams::default(), FlowParams::paper());
    }

    #[test]
    fn congestion_distance_saturates_instead_of_overflowing() {
        let p = FlowParams::paper();
        assert_eq!(p.congestion_distance(0.0), 1.0);
        // Below the clamp the definition is the raw exponential.
        assert_eq!(p.congestion_distance(0.5), (p.alpha * 0.5).exp());
        // Past the clamp the distance stays finite (raw exp would be +inf
        // for any exponent above ~709.78).
        let saturated = p.congestion_distance(1e6);
        assert!(saturated.is_finite());
        assert_eq!(saturated, FlowParams::MAX_EXPONENT.exp());
        assert_eq!(p.congestion_distance(f64::MAX), saturated);
        // Monotone: saturation never reorders smaller flows.
        assert!(p.congestion_distance(10.0) < p.congestion_distance(100.0));
    }
}
