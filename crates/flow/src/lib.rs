//! Probabilistic multicommodity-flow congestion estimation — the paper's
//! `Saturate_Network` procedure (§3.1, Table 3).
//!
//! The partitioner needs to know which nets are *congested*: nets that many
//! source-to-sink commodities would route through. Yeh, Cheng & Lin's
//! probabilistic multicommodity-flow method (ICCAD 1992, the paper's
//! reference \[10\]) estimates this by repeatedly
//!
//! 1. picking a random source node (with a fairness index so every node is
//!    visited at least `min_visit` times),
//! 2. computing the shortest-path tree to all reachable sinks under the
//!    current distance function, and
//! 3. injecting `Δ` units of flow on every net of the tree, then updating
//!    each net's distance to `d(e) = exp(α · flow(e) / cap(e))`.
//!
//! Congested nets grow exponentially long and later trees route around
//! them, so at saturation the distance function ranks nets by how much the
//! network "wants" to use them. Nets inside strongly connected regions
//! absorb flow from many sources and end up the most congested — exactly
//! the nets whose removal dissects the circuit (the paper's Fig. 5).
//!
//! [`saturate_network_par`] runs the same process with the visit quota
//! split across [`FlowParams::replicas`] independent PRNG streams on a
//! `ppet_exec::Pool` — deterministic at any worker count: the result
//! depends on `replicas` (part of the experiment definition), never on
//! how many workers executed them.
//!
//! # Examples
//!
//! ```
//! use ppet_flow::{saturate_network, FlowParams};
//! use ppet_graph::CircuitGraph;
//! use ppet_netlist::data;
//!
//! let g = CircuitGraph::from_circuit(&data::s27());
//! let profile = saturate_network(&g, &FlowParams::paper(), 42);
//! // Every net with sinks received a finite, positive distance.
//! for (net, _) in g.nets() {
//!     assert!(profile.distance(net) >= 1.0);
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod par;
mod params;
mod profile;
mod saturate;

pub use par::{saturate_network_par, saturate_network_par_traced};
pub use params::FlowParams;
pub use profile::CongestionProfile;
pub use saturate::{saturate_network, saturate_network_reference, saturate_network_traced};
