//! The result of a saturation run.

use ppet_graph::dijkstra::DijkstraStats;
use ppet_netlist::NetId;

/// Per-net congestion data produced by
/// [`saturate_network`](crate::saturate_network).
///
/// Distances and flows are indexed by net (= driver cell) id. Nets with no
/// sinks keep the initial distance `1.0` and zero flow.
#[derive(Debug, Clone, PartialEq)]
pub struct CongestionProfile {
    pub(crate) distance: Vec<f64>,
    pub(crate) flow: Vec<f64>,
    pub(crate) visits: Vec<u32>,
    pub(crate) trees: usize,
    pub(crate) search: DijkstraStats,
}

impl CongestionProfile {
    /// The congestion distance `d(e)` of a net.
    #[must_use]
    pub fn distance(&self, net: NetId) -> f64 {
        self.distance[net.index()]
    }

    /// The accumulated flow of a net.
    #[must_use]
    pub fn flow(&self, net: NetId) -> f64 {
        self.flow[net.index()]
    }

    /// How many times each node served as a Dijkstra source.
    #[must_use]
    pub fn visits(&self) -> &[u32] {
        &self.visits
    }

    /// Total number of shortest-path trees computed.
    #[must_use]
    pub fn num_trees(&self) -> usize {
        self.trees
    }

    /// Aggregate Dijkstra work counters (heap pops, relaxations, settled
    /// nodes) summed across every tree of the run.
    #[must_use]
    pub fn search_stats(&self) -> DijkstraStats {
        self.search
    }

    /// The raw distance vector (one slot per net id), for use as Dijkstra
    /// lengths or partitioner boundaries.
    #[must_use]
    pub fn distances(&self) -> &[f64] {
        &self.distance
    }

    /// The distinct distance values, sorted descending — the paper's sorted
    /// stack `D` of `Make_Group` STEP 3, from which clustering boundaries
    /// are popped.
    #[must_use]
    pub fn sorted_boundaries(&self) -> Vec<f64> {
        let mut values: Vec<f64> = self.distance.clone();
        values.sort_by(|a, b| b.partial_cmp(a).unwrap_or(std::cmp::Ordering::Equal));
        values.dedup_by(|a, b| (*a - *b).abs() < f64::EPSILON * a.abs().max(1.0));
        values
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppet_netlist::CellId;

    fn sample() -> CongestionProfile {
        CongestionProfile {
            distance: vec![1.0, 2.5, 2.5, 7.0],
            flow: vec![0.0, 0.2, 0.2, 0.5],
            visits: vec![3, 3, 3, 3],
            trees: 12,
            search: DijkstraStats::default(),
        }
    }

    #[test]
    fn accessors() {
        let p = sample();
        assert_eq!(p.distance(CellId::from_index(3)), 7.0);
        assert_eq!(p.flow(CellId::from_index(1)), 0.2);
        assert_eq!(p.num_trees(), 12);
        assert_eq!(p.distances().len(), 4);
    }

    #[test]
    fn boundaries_sorted_descending_and_deduplicated() {
        let p = sample();
        assert_eq!(p.sorted_boundaries(), vec![7.0, 2.5, 1.0]);
    }
}
