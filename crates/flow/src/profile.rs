//! The result of a saturation run.

use ppet_graph::dijkstra::DijkstraStats;
use ppet_netlist::NetId;

/// Per-net congestion data produced by
/// [`saturate_network`](crate::saturate_network).
///
/// Distances and flows are indexed by net (= driver cell) id. Nets with no
/// sinks keep the initial distance `1.0` and zero flow.
#[derive(Debug, Clone, PartialEq)]
pub struct CongestionProfile {
    pub(crate) distance: Vec<f64>,
    pub(crate) flow: Vec<f64>,
    pub(crate) visits: Vec<u32>,
    pub(crate) trees: usize,
    pub(crate) search: DijkstraStats,
    pub(crate) saturated: bool,
    pub(crate) shortfall: Vec<u32>,
}

impl CongestionProfile {
    /// The congestion distance `d(e)` of a net.
    #[must_use]
    pub fn distance(&self, net: NetId) -> f64 {
        self.distance[net.index()]
    }

    /// The accumulated flow of a net.
    #[must_use]
    pub fn flow(&self, net: NetId) -> f64 {
        self.flow[net.index()]
    }

    /// How many times each node served as a Dijkstra source.
    #[must_use]
    pub fn visits(&self) -> &[u32] {
        &self.visits
    }

    /// Total number of shortest-path trees computed.
    #[must_use]
    pub fn num_trees(&self) -> usize {
        self.trees
    }

    /// Aggregate Dijkstra work counters (heap pops, relaxations, settled
    /// nodes) summed across every tree of the run.
    #[must_use]
    pub fn search_stats(&self) -> DijkstraStats {
        self.search
    }

    /// Whether every node met its visit quota before the run stopped.
    ///
    /// `false` means the [`FlowParams::max_trees`](crate::FlowParams)
    /// budget ran out first and the distance function was built from fewer
    /// trees than the paper's STEP 3 loop condition demands — see
    /// [`CongestionProfile::shortfall`] for where the quota was missed.
    #[must_use]
    pub fn is_saturated(&self) -> bool {
        self.saturated
    }

    /// Per-node visit shortfall: how many source visits each node was
    /// short of its quota when the run stopped (all zeros when
    /// [`CongestionProfile::is_saturated`]). For a replicated run the
    /// entries are the per-replica shortfalls summed in replica order.
    #[must_use]
    pub fn shortfall(&self) -> &[u32] {
        &self.shortfall
    }

    /// Number of nodes that never met their visit quota.
    #[must_use]
    pub fn unsaturated_nodes(&self) -> usize {
        self.shortfall.iter().filter(|&&s| s > 0).count()
    }

    /// True when two profiles agree on every *algorithmic* output —
    /// distances, flows, visit counts, tree count, saturation flag and
    /// shortfall — ignoring the [`DijkstraStats`] work counters.
    ///
    /// This is the equivalence the saturation rewrite is tested under:
    /// the reference and the CSR/radix-heap/cached engines must produce
    /// identical results, but legitimately differ in how much search work
    /// they spent getting there (`PartialEq` compares the counters too
    /// and is the right notion *within* one engine).
    #[must_use]
    pub fn result_eq(&self, other: &Self) -> bool {
        self.distance == other.distance
            && self.flow == other.flow
            && self.visits == other.visits
            && self.trees == other.trees
            && self.saturated == other.saturated
            && self.shortfall == other.shortfall
    }

    /// The raw distance vector (one slot per net id), for use as Dijkstra
    /// lengths or partitioner boundaries.
    #[must_use]
    pub fn distances(&self) -> &[f64] {
        &self.distance
    }

    /// The distinct distance values, sorted descending — the paper's sorted
    /// stack `D` of `Make_Group` STEP 3, from which clustering boundaries
    /// are popped.
    #[must_use]
    pub fn sorted_boundaries(&self) -> Vec<f64> {
        let mut values: Vec<f64> = self.distance.clone();
        values.sort_by(|a, b| b.partial_cmp(a).unwrap_or(std::cmp::Ordering::Equal));
        values.dedup_by(|a, b| (*a - *b).abs() < f64::EPSILON * a.abs().max(1.0));
        values
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppet_netlist::CellId;

    fn sample() -> CongestionProfile {
        CongestionProfile {
            distance: vec![1.0, 2.5, 2.5, 7.0],
            flow: vec![0.0, 0.2, 0.2, 0.5],
            visits: vec![3, 3, 3, 3],
            trees: 12,
            search: DijkstraStats::default(),
            saturated: true,
            shortfall: vec![0, 0, 0, 0],
        }
    }

    #[test]
    fn accessors() {
        let p = sample();
        assert_eq!(p.distance(CellId::from_index(3)), 7.0);
        assert_eq!(p.flow(CellId::from_index(1)), 0.2);
        assert_eq!(p.num_trees(), 12);
        assert_eq!(p.distances().len(), 4);
        assert!(p.is_saturated());
        assert_eq!(p.unsaturated_nodes(), 0);
    }

    #[test]
    fn shortfall_counts_unsaturated_nodes() {
        let mut p = sample();
        p.saturated = false;
        p.shortfall = vec![0, 2, 0, 1];
        assert!(!p.is_saturated());
        assert_eq!(p.unsaturated_nodes(), 2);
        assert_eq!(p.shortfall(), &[0, 2, 0, 1]);
    }

    #[test]
    fn boundaries_sorted_descending_and_deduplicated() {
        let p = sample();
        assert_eq!(p.sorted_boundaries(), vec![7.0, 2.5, 1.0]);
    }
}
