//! 64-way bit-parallel logic simulation.
//!
//! Every signal carries a `u64` word: bit `i` is the signal's value under
//! pattern `i` of the current block, so one pass evaluates 64 patterns —
//! the classic parallel-pattern single-fault technique that fault
//! simulation builds on.

use ppet_netlist::{CellId, CellKind, Circuit};

use crate::levelize::{LevelizeError, Levelized};

/// A compiled combinational evaluator for one circuit.
///
/// # Examples
///
/// ```
/// use ppet_netlist::bench_format::parse;
/// use ppet_sim::logic::Simulator;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let c = parse("toy", "INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = XOR(a, b)\n")?;
/// let sim = Simulator::new(&c)?;
/// let values = sim.eval(&[0b0101, 0b0011], &[]);
/// let y = c.find("y").unwrap();
/// assert_eq!(values[y.index()] & 0xF, 0b0110);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Simulator<'c> {
    circuit: &'c Circuit,
    levelized: Levelized,
    inputs: Vec<CellId>,
    dffs: Vec<CellId>,
}

impl<'c> Simulator<'c> {
    /// Compiles the circuit (levelizes it).
    ///
    /// # Errors
    ///
    /// Returns [`LevelizeError`] if the circuit has a combinational cycle.
    pub fn new(circuit: &'c Circuit) -> Result<Self, LevelizeError> {
        let levelized = Levelized::of(circuit)?;
        Ok(Self {
            circuit,
            levelized,
            inputs: circuit.inputs().collect(),
            dffs: circuit.flip_flops().collect(),
        })
    }

    /// The circuit being simulated.
    #[must_use]
    pub fn circuit(&self) -> &Circuit {
        self.circuit
    }

    /// The primary inputs, in the order `eval` expects their words.
    #[must_use]
    pub fn inputs(&self) -> &[CellId] {
        &self.inputs
    }

    /// The registers, in the order `eval` expects their state words.
    #[must_use]
    pub fn dffs(&self) -> &[CellId] {
        &self.dffs
    }

    /// The levelized evaluation order (drivers before consumers).
    #[must_use]
    pub fn levelized_order(&self) -> &[CellId] {
        self.levelized.order()
    }

    /// Evaluates the combinational logic for a block of 64 patterns.
    ///
    /// `pi_words[i]` is the word of the `i`-th primary input (see
    /// [`Simulator::inputs`]); `dff_words[i]` the current state of the
    /// `i`-th register. Returns one word per cell: gate outputs, with
    /// inputs/registers echoing their sources.
    ///
    /// # Panics
    ///
    /// Panics if the slice lengths do not match the input/register counts.
    #[must_use]
    pub fn eval(&self, pi_words: &[u64], dff_words: &[u64]) -> Vec<u64> {
        assert_eq!(pi_words.len(), self.inputs.len(), "one word per input");
        assert_eq!(dff_words.len(), self.dffs.len(), "one word per register");
        let mut values = vec![0u64; self.circuit.num_cells()];
        for (i, &pi) in self.inputs.iter().enumerate() {
            values[pi.index()] = pi_words[i];
        }
        for (i, &q) in self.dffs.iter().enumerate() {
            values[q.index()] = dff_words[i];
        }
        for &v in self.levelized.order() {
            let cell = self.circuit.cell(v);
            if !cell.kind().is_combinational() {
                continue;
            }
            values[v.index()] = eval_gate(cell.kind(), cell.fanin(), &values);
        }
        values
    }

    /// The next-state words implied by an evaluation: for each register,
    /// the word of its `D` driver.
    #[must_use]
    pub fn next_state(&self, values: &[u64]) -> Vec<u64> {
        self.dffs
            .iter()
            .map(|&q| values[self.circuit.cell(q).fanin()[0].index()])
            .collect()
    }

    /// The primary-output words of an evaluation.
    #[must_use]
    pub fn outputs(&self, values: &[u64]) -> Vec<u64> {
        self.circuit
            .outputs()
            .iter()
            .map(|&o| values[o.index()])
            .collect()
    }
}

/// Evaluates one gate over 64-bit pattern words.
#[must_use]
pub fn eval_gate(kind: CellKind, fanin: &[CellId], values: &[u64]) -> u64 {
    let mut inputs = fanin.iter().map(|f| values[f.index()]);
    match kind {
        CellKind::And => inputs.fold(u64::MAX, |a, b| a & b),
        CellKind::Nand => !inputs.fold(u64::MAX, |a, b| a & b),
        CellKind::Or => inputs.fold(0, |a, b| a | b),
        CellKind::Nor => !inputs.fold(0, |a, b| a | b),
        CellKind::Xor => inputs.fold(0, |a, b| a ^ b),
        CellKind::Xnor => !inputs.fold(0, |a, b| a ^ b),
        CellKind::Not => !inputs.next().expect("inverter has one input"),
        CellKind::Buf => inputs.next().expect("buffer has one input"),
        CellKind::Input | CellKind::Dff => unreachable!("not combinational"),
    }
}

/// A stateful sequential simulator: clocks a circuit block by block.
///
/// Registers power up at zero (see the retiming notes in
/// `ppet-graph::retime::apply` on initial states).
///
/// # Examples
///
/// ```
/// use ppet_netlist::bench_format::parse;
/// use ppet_sim::logic::{Simulator, SequentialSim};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// // 1-bit toggle: q flips whenever en = 1.
/// let c = parse("t", "INPUT(en)\nOUTPUT(q)\nq = DFF(d)\nd = XOR(q, en)\n")?;
/// let sim = Simulator::new(&c)?;
/// let mut seq = SequentialSim::new(&sim);
/// let out1 = seq.clock(&[u64::MAX]); // all 64 lanes enable
/// let out2 = seq.clock(&[u64::MAX]);
/// assert_eq!(out1[0], 0);            // q was 0 before the first edge
/// assert_eq!(out2[0], u64::MAX);     // toggled
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct SequentialSim<'s, 'c> {
    sim: &'s Simulator<'c>,
    state: Vec<u64>,
}

impl<'s, 'c> SequentialSim<'s, 'c> {
    /// Creates a sequential simulator with all registers at zero.
    #[must_use]
    pub fn new(sim: &'s Simulator<'c>) -> Self {
        let n = sim.dffs().len();
        Self {
            sim,
            state: vec![0; n],
        }
    }

    /// Sets the register state words.
    ///
    /// # Panics
    ///
    /// Panics if the length does not match the register count.
    pub fn set_state(&mut self, state: Vec<u64>) {
        assert_eq!(state.len(), self.sim.dffs().len());
        self.state = state;
    }

    /// The current register state words.
    #[must_use]
    pub fn state(&self) -> &[u64] {
        &self.state
    }

    /// Applies one clock: evaluates with the given input words, returns the
    /// primary-output words *before* the edge, then advances the state.
    pub fn clock(&mut self, pi_words: &[u64]) -> Vec<u64> {
        let values = self.sim.eval(pi_words, &self.state);
        let outs = self.sim.outputs(&values);
        self.state = self.sim.next_state(&values);
        outs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppet_netlist::bench_format::parse;
    use ppet_netlist::data;

    #[test]
    fn gate_truth_tables() {
        let c = parse(
            "g",
            "INPUT(a)\nINPUT(b)\nOUTPUT(o1)\nOUTPUT(o2)\nOUTPUT(o3)\nOUTPUT(o4)\n\
             o1 = AND(a, b)\no2 = NOR(a, b)\no3 = XNOR(a, b)\no4 = BUFF(a)\n",
        )
        .unwrap();
        let sim = Simulator::new(&c).unwrap();
        // Patterns (a,b) = 00,01,10,11 in bits 0..3.
        let v = sim.eval(&[0b1100, 0b1010], &[]);
        let val = |name: &str| v[c.find(name).unwrap().index()] & 0xF;
        assert_eq!(val("o1"), 0b1000);
        assert_eq!(val("o2"), 0b0001);
        assert_eq!(val("o3"), 0b1001);
        assert_eq!(val("o4"), 0b1100);
    }

    #[test]
    fn wide_gates() {
        let c = parse(
            "w",
            "INPUT(a)\nINPUT(b)\nINPUT(c)\nOUTPUT(y)\ny = NAND(a, b, c)\n",
        )
        .unwrap();
        let sim = Simulator::new(&c).unwrap();
        // 8 patterns: a,b,c = bits of 0..8.
        let a = 0b10101010u64;
        let b = 0b11001100u64;
        let cc = 0b11110000u64;
        let v = sim.eval(&[a, b, cc], &[]);
        let y = v[c.find("y").unwrap().index()] & 0xFF;
        assert_eq!(y, !(a & b & cc) & 0xFF);
    }

    #[test]
    fn s27_sequential_simulation_is_deterministic() {
        let c = data::s27();
        let sim = Simulator::new(&c).unwrap();
        let mut seq1 = SequentialSim::new(&sim);
        let mut seq2 = SequentialSim::new(&sim);
        let stim = [0b1010u64, 0b0110, 0b0011, 0b1001];
        for step in 0..20u64 {
            let inputs: Vec<u64> = stim.iter().map(|s| s.rotate_left(step as u32)).collect();
            assert_eq!(seq1.clock(&inputs), seq2.clock(&inputs));
        }
    }

    #[test]
    fn toggle_counter_behaviour() {
        let c = parse("t", "INPUT(en)\nOUTPUT(q)\nq = DFF(d)\nd = XOR(q, en)\n").unwrap();
        let sim = Simulator::new(&c).unwrap();
        let mut seq = SequentialSim::new(&sim);
        // Lane 0: en always 1 (toggles); lane 1: en always 0 (holds).
        let mut qs = Vec::new();
        for _ in 0..4 {
            let out = seq.clock(&[0b01]);
            qs.push(out[0] & 0b11);
        }
        assert_eq!(qs, vec![0b00, 0b01, 0b00, 0b01]);
    }

    #[test]
    fn next_state_matches_d_inputs() {
        let c = data::s27();
        let sim = Simulator::new(&c).unwrap();
        let values = sim.eval(&[1, 2, 3, 4], &[5, 6, 7]);
        let next = sim.next_state(&values);
        for (i, &q) in sim.dffs().iter().enumerate() {
            let d = c.cell(q).fanin()[0];
            assert_eq!(next[i], values[d.index()]);
        }
    }

    #[test]
    #[should_panic(expected = "one word per input")]
    fn wrong_input_count_panics() {
        let c = data::s27();
        let sim = Simulator::new(&c).unwrap();
        let _ = sim.eval(&[0; 3], &[0; 3]);
    }
}
