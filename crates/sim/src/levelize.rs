//! Combinational levelization.

use std::error::Error;
use std::fmt;

use ppet_netlist::{CellId, Circuit};

/// Error raised when a circuit cannot be levelized.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LevelizeError {
    /// A cell on the combinational cycle.
    pub cell: CellId,
}

impl fmt::Display for LevelizeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "combinational cycle through cell {}", self.cell)
    }
}

impl Error for LevelizeError {}

/// An evaluation order for the combinational logic of a circuit: inputs
/// and registers first, then every gate after all of its drivers.
///
/// # Examples
///
/// ```
/// use ppet_netlist::data;
/// use ppet_sim::levelize::Levelized;
///
/// let c = data::s27();
/// let lv = Levelized::of(&c).expect("s27 levelizes");
/// assert_eq!(lv.order().len(), c.num_cells());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Levelized {
    order: Vec<CellId>,
}

impl Levelized {
    /// Computes the order with Kahn's algorithm over combinational
    /// dependencies.
    ///
    /// # Errors
    ///
    /// Returns [`LevelizeError`] naming a cell on a combinational cycle.
    pub fn of(circuit: &Circuit) -> Result<Self, LevelizeError> {
        let n = circuit.num_cells();
        let mut indegree = vec![0usize; n];
        for (id, cell) in circuit.iter() {
            if cell.kind().is_combinational() {
                indegree[id.index()] = cell.fanin().len();
            }
        }
        let mut order: Vec<CellId> = circuit.ids().filter(|v| indegree[v.index()] == 0).collect();
        let fanouts = circuit.fanouts();
        let mut head = 0;
        while head < order.len() {
            let v = order[head];
            head += 1;
            for &w in fanouts.of(v) {
                if circuit.cell(w).kind().is_combinational() {
                    indegree[w.index()] -= 1;
                    if indegree[w.index()] == 0 {
                        order.push(w);
                    }
                }
            }
        }
        if order.len() == n {
            Ok(Self { order })
        } else {
            let cell = circuit
                .ids()
                .find(|v| circuit.cell(*v).kind().is_combinational() && indegree[v.index()] > 0)
                .expect("some gate remains blocked on a cycle");
            Err(LevelizeError { cell })
        }
    }

    /// The evaluation order.
    #[must_use]
    pub fn order(&self) -> &[CellId] {
        &self.order
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppet_netlist::{data, CellKind};

    #[test]
    fn order_respects_dependencies() {
        let c = data::s27();
        let lv = Levelized::of(&c).unwrap();
        let mut pos = vec![0usize; c.num_cells()];
        for (i, v) in lv.order().iter().enumerate() {
            pos[v.index()] = i;
        }
        for (id, cell) in c.iter() {
            if cell.kind().is_combinational() {
                for &f in cell.fanin() {
                    assert!(pos[f.index()] < pos[id.index()]);
                }
            }
        }
    }

    #[test]
    fn cycle_reported() {
        let mut c = ppet_netlist::Circuit::new("cyc");
        let a = c.add_input("a").unwrap();
        let x = c.add_cell_deferred("x", CellKind::And).unwrap();
        let y = c.add_cell("y", CellKind::And, vec![x, a]).unwrap();
        c.set_fanin(x, vec![y, a]).unwrap();
        c.mark_output(y).unwrap();
        let err = Levelized::of(&c).unwrap_err();
        assert!(err.to_string().contains("combinational cycle"));
    }

    #[test]
    fn registers_are_sources() {
        let c = data::s27();
        let lv = Levelized::of(&c).unwrap();
        // All DFFs and PIs appear before any gate that reads them; in
        // particular the first 7 slots are exactly the 4 PIs + 3 DFFs.
        let heads: Vec<CellKind> = lv.order()[..7].iter().map(|&v| c.cell(v).kind()).collect();
        assert!(heads
            .iter()
            .all(|k| matches!(k, CellKind::Input | CellKind::Dff)));
    }
}
