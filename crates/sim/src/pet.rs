//! Pseudo-exhaustive testing of circuit segments.
//!
//! PPET's coverage argument (paper §1): after partitioning, every segment
//! sees all `2^{ι}` combinations of its inputs, so every detectable single
//! stuck-at fault inside the segment is detected with *zero* test-pattern
//! generation. This module extracts segments from a partitioned circuit
//! (registers become scan/CBIT cells: their outputs are segment inputs,
//! their `D` pins are segment outputs) and measures stuck-at coverage under
//! exhaustive and random pattern sets.

use std::error::Error;
use std::fmt;

use ppet_exec::Pool;
use ppet_netlist::{CellId, CellKind, Circuit};
use ppet_prng::{Rng, Xoshiro256PlusPlus};
use ppet_trace::Tracer;

use crate::fsim::{CoverageReport, FaultSim};
use crate::levelize::{LevelizeError, Levelized};

/// Error raised by segment extraction or exhaustive simulation.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum PetError {
    /// The circuit/segment has too many inputs for exhaustive enumeration
    /// (guard: 2^k pattern blow-up).
    TooManyInputs {
        /// The input count found.
        inputs: usize,
        /// The enumeration guard.
        limit: usize,
    },
    /// The circuit could not be levelized.
    Levelize(LevelizeError),
}

impl fmt::Display for PetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::TooManyInputs { inputs, limit } => write!(
                f,
                "segment has {inputs} inputs; exhaustive enumeration capped at {limit}"
            ),
            Self::Levelize(e) => write!(f, "{e}"),
        }
    }
}

impl Error for PetError {}

impl From<LevelizeError> for PetError {
    fn from(e: LevelizeError) -> Self {
        Self::Levelize(e)
    }
}

/// Enumeration guard: segments beyond this many inputs are refused (the
/// paper's own recommendation is `l_k ∈ {16, 24}`; 24 is simulable but
/// slow in debug builds, so harnesses choose their own sizes).
pub const MAX_EXHAUSTIVE_INPUTS: usize = 26;

/// A combinational segment extracted from a partitioned sequential
/// circuit.
#[derive(Debug, Clone)]
pub struct Segment {
    /// The standalone combinational circuit.
    pub circuit: Circuit,
    /// For each segment input (in input order): the original cell whose net
    /// it represents.
    pub input_origin: Vec<CellId>,
    /// For each segment output: the original cell whose net it represents.
    pub output_origin: Vec<CellId>,
}

/// Extracts the combinational segment spanned by `members` of `circuit`.
///
/// Segment inputs are: nets entering the member set from outside, the
/// outputs of member registers, and member primary inputs. Segment outputs
/// are member nets that leave the set, feed member register `D` pins, or
/// are primary outputs — i.e. everything a surrounding CBIT would observe.
///
/// # Examples
///
/// ```
/// use ppet_netlist::data;
/// use ppet_sim::pet::extract_segment;
///
/// let c = data::s27();
/// let members: Vec<_> = c.ids().collect(); // the whole circuit as one CUT
/// let seg = extract_segment(&c, &members);
/// // 4 PIs + 3 register outputs drive the segment.
/// assert_eq!(seg.circuit.num_inputs(), 7);
/// assert_eq!(seg.circuit.num_flip_flops(), 0);
/// ```
#[must_use]
pub fn extract_segment(circuit: &Circuit, members: &[CellId]) -> Segment {
    let mut member_set = vec![false; circuit.num_cells()];
    for &m in members {
        member_set[m.index()] = true;
    }
    let fanouts = circuit.fanouts();
    let mut seg = Circuit::new(format!("{}_segment", circuit.name()));
    let mut new_id: Vec<Option<CellId>> = vec![None; circuit.num_cells()];
    let mut input_origin = Vec::new();

    // Segment inputs: external drivers of member pins, member register
    // outputs, member PIs.
    let add_input = |seg: &mut Circuit,
                     new_id: &mut Vec<Option<CellId>>,
                     input_origin: &mut Vec<CellId>,
                     cell: CellId| {
        if new_id[cell.index()].is_none() {
            let id = seg
                .add_input(circuit.cell(cell).name())
                .expect("unique names from source circuit");
            new_id[cell.index()] = Some(id);
            input_origin.push(cell);
        }
    };
    for &m in members {
        let cell = circuit.cell(m);
        match cell.kind() {
            CellKind::Input | CellKind::Dff => {
                add_input(&mut seg, &mut new_id, &mut input_origin, m);
            }
            _ => {
                for &driver in cell.fanin() {
                    // Everything driven from outside the member set becomes
                    // a segment input, whether it is another partition's
                    // logic, a primary input, or a register.
                    if !member_set[driver.index()] {
                        add_input(&mut seg, &mut new_id, &mut input_origin, driver);
                    }
                }
            }
        }
    }

    // Combinational members in level order.
    let level = Levelized::of(circuit).expect("source circuit levelizes");
    for &v in level.order() {
        if !member_set[v.index()] || !circuit.cell(v).kind().is_combinational() {
            continue;
        }
        let cell = circuit.cell(v);
        let fanin: Vec<CellId> = cell
            .fanin()
            .iter()
            .map(|&f| new_id[f.index()].expect("driver materialized"))
            .collect();
        let id = seg
            .add_cell(cell.name(), cell.kind(), fanin)
            .expect("clone is structurally valid");
        new_id[v.index()] = Some(id);
    }

    // Segment outputs.
    let mut output_origin = Vec::new();
    for &m in members {
        if !circuit.cell(m).kind().is_combinational() {
            continue;
        }
        let leaves = fanouts
            .of(m)
            .iter()
            .any(|&s| !member_set[s.index()] || circuit.cell(s).kind() == CellKind::Dff);
        if leaves || circuit.is_output(m) {
            let id = new_id[m.index()].expect("member materialized");
            seg.mark_output(id).expect("id valid");
            output_origin.push(m);
        }
    }

    Segment {
        circuit: seg,
        input_origin,
        output_origin,
    }
}

/// Builds the 64-lane word of input `i` for pattern block `block`: lane `l`
/// carries bit `i` of the pattern index `block·64 + l` (counting order).
#[must_use]
pub fn counting_word(i: usize, block: u64) -> u64 {
    let mut w = 0u64;
    for l in 0..64u64 {
        let pattern = block * 64 + l;
        if (pattern >> i) & 1 == 1 {
            w |= 1 << l;
        }
    }
    w
}

/// Exhaustive stuck-at coverage of a combinational circuit: applies all
/// `2^k` input patterns.
///
/// # Errors
///
/// * [`PetError::TooManyInputs`] beyond [`MAX_EXHAUSTIVE_INPUTS`];
/// * [`PetError::Levelize`] for cyclic netlists.
pub fn exhaustive_coverage(circuit: &Circuit) -> Result<CoverageReport, PetError> {
    exhaustive_coverage_par_traced(circuit, &Pool::sequential(), &Tracer::noop())
}

/// [`exhaustive_coverage`] with observability: records the simulation work
/// as `fsim.*` counters (see [`exhaustive_coverage_par_traced`]).
///
/// # Errors
///
/// As [`exhaustive_coverage`].
pub fn exhaustive_coverage_traced(
    circuit: &Circuit,
    tracer: &Tracer,
) -> Result<CoverageReport, PetError> {
    exhaustive_coverage_par_traced(circuit, &Pool::sequential(), tracer)
}

/// [`exhaustive_coverage`] with the undetected faults of each pattern
/// block decided in parallel on `pool` (see
/// [`FaultSim::apply_block_par`]). Bit-identical to the sequential sweep
/// at any worker count.
///
/// # Errors
///
/// As [`exhaustive_coverage`].
pub fn exhaustive_coverage_par(circuit: &Circuit, pool: &Pool) -> Result<CoverageReport, PetError> {
    exhaustive_coverage_par_traced(circuit, pool, &Tracer::noop())
}

/// The fully general exhaustive sweep: fault-parallel on `pool`, reporting
/// `fsim.blocks`, `fsim.fault_evals`, `fsim.patterns`, `fsim.detected`,
/// and `fsim.faults` counters to `tracer`. All counters are accumulated by
/// the calling thread after the sweep, so traced output is as
/// worker-count independent as the coverage itself.
///
/// # Errors
///
/// As [`exhaustive_coverage`].
pub fn exhaustive_coverage_par_traced(
    circuit: &Circuit,
    pool: &Pool,
    tracer: &Tracer,
) -> Result<CoverageReport, PetError> {
    let k = circuit.num_inputs();
    if k > MAX_EXHAUSTIVE_INPUTS {
        return Err(PetError::TooManyInputs {
            inputs: k,
            limit: MAX_EXHAUSTIVE_INPUTS,
        });
    }
    let mut fs = FaultSim::new(circuit)?;
    let dffs = vec![0u64; circuit.num_flip_flops()];
    let total: u64 = 1u64 << k;
    let mut pattern = 0u64;
    while pattern < total {
        let block = pattern / 64;
        let valid = (total - pattern).min(64) as u32;
        let pis: Vec<u64> = (0..k).map(|i| counting_word(i, block)).collect();
        fs.apply_block_par_counted(&pis, &dffs, valid, pool);
        pattern += u64::from(valid);
        if fs.report().detected == fs.report().total {
            break; // everything detectable found already
        }
    }
    let report = fs.report();
    if tracer.enabled() {
        let stats = fs.stats();
        tracer.add("fsim.blocks", stats.blocks);
        tracer.add("fsim.fault_evals", stats.fault_evals);
        tracer.add("fsim.patterns", report.patterns);
        tracer.add("fsim.detected", report.detected as u64);
        tracer.add("fsim.faults", report.total as u64);
    }
    Ok(report)
}

/// Random-pattern coverage with `n` patterns (the comparison the paper's §1
/// premise rests on: random testing needs many more patterns for the same
/// coverage, and can miss random-pattern-resistant faults entirely).
///
/// # Errors
///
/// Returns [`PetError::Levelize`] for cyclic netlists.
pub fn random_coverage(circuit: &Circuit, n: u64, seed: u64) -> Result<CoverageReport, PetError> {
    let mut fs = FaultSim::new(circuit)?;
    let k = circuit.num_inputs();
    let dffs = vec![0u64; circuit.num_flip_flops()];
    let mut rng = Xoshiro256PlusPlus::seed_from(seed ^ 0x5045_545f_524e_4400);
    let mut applied = 0u64;
    while applied < n {
        let valid = (n - applied).min(64) as u32;
        let pis: Vec<u64> = (0..k).map(|_| rng.next_u64()).collect();
        fs.apply_block_counted(&pis, &dffs, valid);
        applied += u64::from(valid);
    }
    Ok(fs.report())
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppet_netlist::bench_format::parse;
    use ppet_netlist::data;

    #[test]
    fn counting_words_enumerate_patterns() {
        // Bit 2 of pattern indices 0..63.
        let w = counting_word(2, 0);
        for l in 0..64u64 {
            assert_eq!((w >> l) & 1, (l >> 2) & 1);
        }
        // Block 1 starts at pattern 64: bit 6 becomes 1.
        assert_eq!(counting_word(6, 1), u64::MAX);
    }

    #[test]
    fn whole_s27_segment_exhaustive_coverage() {
        let c = data::s27();
        let members: Vec<_> = c.ids().collect();
        let seg = extract_segment(&c, &members);
        assert_eq!(seg.circuit.num_inputs(), 7);
        // Outputs: nets feeding DFF D pins (G10, G11, G13) and the PO G17.
        assert_eq!(seg.output_origin.len(), 4);
        let report = exhaustive_coverage(&seg.circuit).unwrap();
        // s27's logic is irredundant under full observability.
        assert_eq!(report.coverage(), 1.0, "{report:?}");
        assert_eq!(report.patterns, 128);
    }

    #[test]
    fn exhaustive_beats_or_equals_random() {
        let c = data::s27();
        let members: Vec<_> = c.ids().collect();
        let seg = extract_segment(&c, &members);
        let ex = exhaustive_coverage(&seg.circuit).unwrap();
        let rnd = random_coverage(&seg.circuit, 16, 1).unwrap();
        assert!(ex.coverage() >= rnd.coverage());
    }

    #[test]
    fn redundant_logic_stays_undetected() {
        // y = OR(a, NOT(a), b): the a/NOT(a) pair makes y constant 1, so
        // most faults are undetectable; exhaustive coverage must be < 1 but
        // the simulator must not loop or crash.
        let c = parse(
            "red",
            "INPUT(a)\nINPUT(b)\nOUTPUT(y)\nn = NOT(a)\ny = OR(a, n, b)\n",
        )
        .unwrap();
        let report = exhaustive_coverage(&c).unwrap();
        assert!(report.coverage() < 1.0);
        // y stuck-at-1 is undetectable (y is constant 1).
        assert!(report.detected < report.total);
    }

    #[test]
    fn parallel_coverage_is_worker_count_invariant() {
        let c = data::s27();
        let members: Vec<_> = c.ids().collect();
        let seg = extract_segment(&c, &members);
        let seq = exhaustive_coverage(&seg.circuit).unwrap();
        for workers in [1, 2, 8] {
            let par = exhaustive_coverage_par(&seg.circuit, &Pool::new(workers)).unwrap();
            assert_eq!(par, seq, "workers = {workers}");
        }
    }

    #[test]
    fn traced_coverage_reports_consistent_counters() {
        let c = data::s27();
        let members: Vec<_> = c.ids().collect();
        let seg = extract_segment(&c, &members);
        let plain = exhaustive_coverage(&seg.circuit).unwrap();
        let (tracer, sink) = Tracer::collecting();
        let traced = exhaustive_coverage_par_traced(&seg.circuit, &Pool::new(4), &tracer).unwrap();
        assert_eq!(plain, traced);

        let report = sink.report();
        assert_eq!(report.counters["fsim.patterns"], traced.patterns);
        assert_eq!(report.counters["fsim.detected"], traced.detected as u64);
        assert_eq!(report.counters["fsim.faults"], traced.total as u64);
        assert_eq!(report.counters["fsim.blocks"], traced.patterns.div_ceil(64));
        // Every block simulates at most the full fault list.
        assert!(
            report.counters["fsim.fault_evals"]
                <= traced.total as u64 * traced.patterns.div_ceil(64)
        );
        assert!(report.counters["fsim.fault_evals"] >= traced.total as u64);
    }

    #[test]
    fn traced_counters_are_worker_count_invariant() {
        let c = data::s27();
        let members: Vec<_> = c.ids().collect();
        let seg = extract_segment(&c, &members);
        let counters = |workers: usize| {
            let (tracer, sink) = Tracer::collecting();
            let _ =
                exhaustive_coverage_par_traced(&seg.circuit, &Pool::new(workers), &tracer).unwrap();
            sink.report().counters
        };
        let baseline = counters(1);
        assert_eq!(counters(8), baseline);
    }

    #[test]
    fn too_many_inputs_guarded() {
        let mut c = Circuit::new("wide");
        let inputs: Vec<_> = (0..30)
            .map(|i| c.add_input(format!("i{i}")).unwrap())
            .collect();
        let g = c.add_cell("g", CellKind::And, inputs).unwrap();
        c.mark_output(g).unwrap();
        let err = exhaustive_coverage(&c).unwrap_err();
        assert!(matches!(err, PetError::TooManyInputs { inputs: 30, .. }));
        assert!(err.to_string().contains("capped"));
    }

    #[test]
    fn sub_segment_extraction() {
        // Extract only the G12/G13/G7 loop region of s27.
        let c = data::s27();
        let members: Vec<_> = ["G12", "G13", "G7"]
            .iter()
            .map(|n| c.find(n).unwrap())
            .collect();
        let seg = extract_segment(&c, &members);
        // Inputs: G1, G2 (external PIs), G7 (member register).
        assert_eq!(seg.circuit.num_inputs(), 3);
        // Outputs: G12 (feeds G15 outside), G13 (feeds member register G7).
        assert_eq!(seg.output_origin.len(), 2);
        let report = exhaustive_coverage(&seg.circuit).unwrap();
        assert_eq!(report.coverage(), 1.0);
    }
}
