//! Three-valued (0/1/X) simulation for initialization analysis.
//!
//! Retiming preserves steady-state behaviour but not power-up state: the
//! paper points at Touati & Brayton (\[16\]) for recomputing initial states.
//! This simulator answers the practical question downstream of that: from
//! an all-`X` power-up, **how many cycles of a given stimulus until every
//! register (or output) holds a known value?** Comparing the original and
//! retimed circuits' initialization depth flags retimings that would need
//! explicit initial-state work.
//!
//! Values are dual-rail encoded per signal and 64-way lane-parallel:
//! `ones` and `zeros` masks, where a lane with both bits set is impossible
//! and a lane with neither is `X`.

use ppet_netlist::{CellId, CellKind, Circuit};

use crate::levelize::{LevelizeError, Levelized};

/// A 64-lane three-valued word: lane `i` is `1` if `ones` bit `i` is set,
/// `0` if `zeros` bit `i` is set, `X` if neither.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct XWord {
    /// Lanes known to be 1.
    pub ones: u64,
    /// Lanes known to be 0.
    pub zeros: u64,
}

impl XWord {
    /// All lanes `X`.
    pub const ALL_X: XWord = XWord { ones: 0, zeros: 0 };

    /// A fully known word from a binary lane mask.
    #[must_use]
    pub fn known(bits: u64) -> Self {
        Self {
            ones: bits,
            zeros: !bits,
        }
    }

    /// Lanes with a known value.
    #[must_use]
    pub fn known_mask(self) -> u64 {
        self.ones | self.zeros
    }

    /// True when every lane is known.
    #[must_use]
    pub fn fully_known(self) -> bool {
        self.known_mask() == u64::MAX
    }

    /// Three-valued NOT.
    #[must_use]
    #[allow(clippy::should_implement_trait)] // deliberate: X-aware, not ops::Not
    pub fn not(self) -> Self {
        Self {
            ones: self.zeros,
            zeros: self.ones,
        }
    }

    /// Three-valued AND: 0 dominates, 1 ∧ 1 = 1, anything else X.
    #[must_use]
    pub fn and(self, other: Self) -> Self {
        Self {
            ones: self.ones & other.ones,
            zeros: self.zeros | other.zeros,
        }
    }

    /// Three-valued OR: 1 dominates.
    #[must_use]
    pub fn or(self, other: Self) -> Self {
        Self {
            ones: self.ones | other.ones,
            zeros: self.zeros & other.zeros,
        }
    }

    /// Three-valued XOR: known only when both inputs are known.
    #[must_use]
    pub fn xor(self, other: Self) -> Self {
        let known = self.known_mask() & other.known_mask();
        let value = (self.ones ^ other.ones) & known;
        Self {
            ones: value,
            zeros: !value & known,
        }
    }
}

/// A three-valued simulator.
///
/// # Examples
///
/// ```
/// use ppet_netlist::data;
/// use ppet_sim::xsim::{XSim, XWord};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// // A shift register flushes X out in one cycle per stage.
/// let c = data::shift_register(3);
/// let mut sim = XSim::new(&c)?;
/// let depth = sim.initialization_depth(
///     |_cycle, _i| XWord::known(0), // serial_in = 0
///     16,
/// );
/// assert_eq!(depth, Some(3));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct XSim<'c> {
    circuit: &'c Circuit,
    levelized: Levelized,
    inputs: Vec<CellId>,
    dffs: Vec<CellId>,
    state: Vec<XWord>,
}

impl<'c> XSim<'c> {
    /// Compiles the circuit; registers power up all-`X`.
    ///
    /// # Errors
    ///
    /// Returns [`LevelizeError`] for combinationally cyclic circuits.
    pub fn new(circuit: &'c Circuit) -> Result<Self, LevelizeError> {
        let levelized = Levelized::of(circuit)?;
        let inputs = circuit.inputs().collect();
        let dffs: Vec<CellId> = circuit.flip_flops().collect();
        let state = vec![XWord::ALL_X; dffs.len()];
        Ok(Self {
            circuit,
            levelized,
            inputs,
            dffs,
            state,
        })
    }

    /// Current register values.
    #[must_use]
    pub fn state(&self) -> &[XWord] {
        &self.state
    }

    /// Resets all registers to `X`.
    pub fn reset_to_x(&mut self) {
        self.state.fill(XWord::ALL_X);
    }

    /// Evaluates one combinational frame under the given input words.
    ///
    /// # Panics
    ///
    /// Panics if `pi_words.len()` differs from the input count.
    #[must_use]
    pub fn eval(&self, pi_words: &[XWord]) -> Vec<XWord> {
        assert_eq!(pi_words.len(), self.inputs.len(), "one word per input");
        let mut values = vec![XWord::ALL_X; self.circuit.num_cells()];
        for (i, &pi) in self.inputs.iter().enumerate() {
            values[pi.index()] = pi_words[i];
        }
        for (i, &q) in self.dffs.iter().enumerate() {
            values[q.index()] = self.state[i];
        }
        for &v in self.levelized.order() {
            let cell = self.circuit.cell(v);
            if !cell.kind().is_combinational() {
                continue;
            }
            values[v.index()] = eval_gate_x(cell.kind(), cell.fanin(), &values);
        }
        values
    }

    /// One clock edge: evaluate, capture, return the frame's values.
    pub fn clock(&mut self, pi_words: &[XWord]) -> Vec<XWord> {
        let values = self.eval(pi_words);
        for (i, &q) in self.dffs.iter().enumerate() {
            self.state[i] = values[self.circuit.cell(q).fanin()[0].index()];
        }
        values
    }

    /// Clocks with `stimulus(cycle, input_index)` until every register is
    /// fully known in all lanes; returns the number of cycles needed, or
    /// `None` if `max_cycles` pass without full initialization.
    pub fn initialization_depth(
        &mut self,
        mut stimulus: impl FnMut(u64, usize) -> XWord,
        max_cycles: u64,
    ) -> Option<u64> {
        self.reset_to_x();
        if self.state.iter().all(|w| w.fully_known()) {
            return Some(0);
        }
        for cycle in 0..max_cycles {
            let pis: Vec<XWord> = (0..self.inputs.len()).map(|i| stimulus(cycle, i)).collect();
            let _ = self.clock(&pis);
            if self.state.iter().all(|w| w.fully_known()) {
                return Some(cycle + 1);
            }
        }
        None
    }
}

/// Three-valued gate evaluation.
#[must_use]
pub fn eval_gate_x(kind: CellKind, fanin: &[CellId], values: &[XWord]) -> XWord {
    let mut inputs = fanin.iter().map(|f| values[f.index()]);
    match kind {
        CellKind::And => inputs.fold(XWord::known(u64::MAX), XWord::and),
        CellKind::Nand => inputs.fold(XWord::known(u64::MAX), XWord::and).not(),
        CellKind::Or => inputs.fold(XWord::known(0), XWord::or),
        CellKind::Nor => inputs.fold(XWord::known(0), XWord::or).not(),
        CellKind::Xor => inputs.fold(XWord::known(0), XWord::xor),
        CellKind::Xnor => inputs.fold(XWord::known(0), XWord::xor).not(),
        CellKind::Not => inputs.next().expect("inverter has one input").not(),
        CellKind::Buf => inputs.next().expect("buffer has one input"),
        CellKind::Input | CellKind::Dff => unreachable!("not combinational"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppet_netlist::bench_format::parse;
    use ppet_netlist::data;

    #[test]
    fn xword_algebra() {
        let x = XWord::ALL_X;
        let one = XWord::known(u64::MAX);
        let zero = XWord::known(0);
        // Controlling values beat X.
        assert_eq!(x.and(zero), zero);
        assert_eq!(x.or(one), one);
        // Non-controlling values leave X.
        assert_eq!(x.and(one), x);
        assert_eq!(x.or(zero), x);
        assert_eq!(x.xor(one), x);
        assert_eq!(one.xor(one), zero);
        assert_eq!(x.not(), x);
        assert_eq!(zero.not(), one);
    }

    #[test]
    fn shift_register_initializes_in_n_cycles() {
        for n in [1usize, 4, 7] {
            let c = data::shift_register(n);
            let mut sim = XSim::new(&c).unwrap();
            let depth = sim.initialization_depth(|_, _| XWord::known(0), 32);
            assert_eq!(depth, Some(n as u64), "n = {n}");
        }
    }

    #[test]
    fn xor_feedback_counter_never_initializes() {
        // q = DFF(q XOR en): X XOR anything stays X — a classic
        // reset-less design that never self-initializes.
        let c = parse("t", "INPUT(en)\nOUTPUT(q)\nq = DFF(d)\nd = XOR(q, en)\n").unwrap();
        let mut sim = XSim::new(&c).unwrap();
        let depth = sim.initialization_depth(|_, _| XWord::known(u64::MAX), 64);
        assert_eq!(depth, None);
    }

    #[test]
    fn and_gated_loop_initializes_via_controlling_value() {
        // q = DFF(q AND en): driving en = 0 forces q to a known 0.
        let c = parse("t", "INPUT(en)\nOUTPUT(q)\nq = DFF(d)\nd = AND(q, en)\n").unwrap();
        let mut sim = XSim::new(&c).unwrap();
        let depth = sim.initialization_depth(|_, _| XWord::known(0), 8);
        assert_eq!(depth, Some(1));
    }

    #[test]
    fn johnson_counter_initializes_when_held_in_reset() {
        // run = 0 forces the twist NOR to 0, flushing the ring like a
        // shift register.
        let n = 5;
        let c = data::johnson_counter(n);
        let mut sim = XSim::new(&c).unwrap();
        let depth = sim.initialization_depth(|_, _| XWord::known(0), 32);
        assert_eq!(depth, Some(n as u64));
    }

    #[test]
    fn s27_initialization_depth_is_finite() {
        // NOR-based feedback initializes quickly under constant-1 inputs
        // (1 is the NOR controlling value).
        let c = data::s27();
        let mut sim = XSim::new(&c).unwrap();
        let depth = sim.initialization_depth(|_, _| XWord::known(u64::MAX), 32);
        assert!(depth.is_some(), "s27 should initialize");
    }

    #[test]
    fn known_values_agree_with_binary_simulation() {
        // With fully known inputs and state, X-sim equals the binary sim.
        use crate::logic::Simulator;
        let c = data::s27();
        let bin = Simulator::new(&c).unwrap();
        let mut xs = XSim::new(&c).unwrap();
        // Set a known register state.
        let state = [0x0F0Fu64, 0xFFFF, 0x1234];
        for (i, s) in state.iter().enumerate() {
            xs.state[i] = XWord::known(*s);
        }
        let pis = [1u64, 2, 3, 4];
        let xw: Vec<XWord> = pis.iter().map(|&p| XWord::known(p)).collect();
        let xvals = xs.eval(&xw);
        let bvals = bin.eval(&pis, &state);
        for id in c.ids() {
            assert!(xvals[id.index()].fully_known());
            assert_eq!(
                xvals[id.index()].ones,
                bvals[id.index()],
                "{}",
                c.cell(id).name()
            );
        }
    }
}
