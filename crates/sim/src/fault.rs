//! The single stuck-at fault model.

use std::fmt;

use ppet_netlist::{CellId, CellKind, Circuit};

/// A stuck value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum StuckAt {
    /// Stuck at logic 0.
    Zero,
    /// Stuck at logic 1.
    One,
}

impl StuckAt {
    /// The 64-lane word of this stuck value.
    #[must_use]
    pub fn word(self) -> u64 {
        match self {
            StuckAt::Zero => 0,
            StuckAt::One => u64::MAX,
        }
    }
}

impl fmt::Display for StuckAt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            StuckAt::Zero => "s-a-0",
            StuckAt::One => "s-a-1",
        })
    }
}

/// Where a fault sits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum FaultSite {
    /// On a cell's output net (affects every fan-out branch).
    Output(CellId),
    /// On one input pin of a cell (a fan-out branch fault).
    Input {
        /// The consuming cell.
        cell: CellId,
        /// The pin index within its fan-in list.
        pin: usize,
    },
}

/// A single stuck-at fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Fault {
    /// Location.
    pub site: FaultSite,
    /// Stuck value.
    pub value: StuckAt,
}

impl Fault {
    /// Human-readable description against a circuit.
    #[must_use]
    pub fn describe(&self, circuit: &Circuit) -> String {
        match self.site {
            FaultSite::Output(c) => format!("{} output {}", circuit.cell(c).name(), self.value),
            FaultSite::Input { cell, pin } => format!(
                "{} input {} (from {}) {}",
                circuit.cell(cell).name(),
                pin,
                circuit.cell(circuit.cell(cell).fanin()[pin]).name(),
                self.value
            ),
        }
    }
}

/// Enumerates the complete (uncollapsed) single stuck-at fault list:
/// both polarities on every cell output that drives something (or is a
/// primary output) and on every gate input pin.
///
/// # Examples
///
/// ```
/// use ppet_netlist::bench_format::parse;
/// use ppet_sim::fault::all_faults;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let c = parse("toy", "INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = NAND(a, b)\n")?;
/// // Outputs: a, b, y (3 × 2) + input pins of y (2 × 2) = 10 faults.
/// assert_eq!(all_faults(&c).len(), 10);
/// # Ok(())
/// # }
/// ```
#[must_use]
pub fn all_faults(circuit: &Circuit) -> Vec<Fault> {
    let fanouts = circuit.fanouts();
    let mut out = Vec::new();
    for (id, cell) in circuit.iter() {
        if fanouts.degree(id) > 0 || circuit.is_output(id) {
            for value in [StuckAt::Zero, StuckAt::One] {
                out.push(Fault {
                    site: FaultSite::Output(id),
                    value,
                });
            }
        }
        if cell.kind() != CellKind::Input {
            for pin in 0..cell.fanin().len() {
                for value in [StuckAt::Zero, StuckAt::One] {
                    out.push(Fault {
                        site: FaultSite::Input { cell: id, pin },
                        value,
                    });
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppet_netlist::data;

    #[test]
    fn fault_count_formula() {
        let c = data::s27();
        let faults = all_faults(&c);
        let fanouts = c.fanouts();
        let driving: usize = c
            .ids()
            .filter(|&id| fanouts.degree(id) > 0 || c.is_output(id))
            .count();
        let pins: usize = c
            .iter()
            .filter(|(_, cell)| cell.kind() != CellKind::Input)
            .map(|(_, cell)| cell.fanin().len())
            .sum();
        assert_eq!(faults.len(), 2 * (driving + pins));
    }

    #[test]
    fn describe_names_cells() {
        let c = data::s27();
        let g8 = c.find("G8").unwrap();
        let f = Fault {
            site: FaultSite::Input { cell: g8, pin: 1 },
            value: StuckAt::One,
        };
        let d = f.describe(&c);
        assert!(
            d.contains("G8") && d.contains("s-a-1") && d.contains("G6"),
            "{d}"
        );
    }

    #[test]
    fn stuck_words() {
        assert_eq!(StuckAt::Zero.word(), 0);
        assert_eq!(StuckAt::One.word(), u64::MAX);
    }
}
