//! Sequential stuck-at fault simulation.
//!
//! [`fsim`](crate::fsim) detects faults through one combinational frame
//! with full observability — the model for pseudo-exhaustively tested
//! segments whose registers are CBIT cells. This module simulates faults
//! through *time*: the good machine and each faulty machine are clocked
//! side by side over a stimulus, and a fault counts as detected when the
//! observation points (primary outputs, or a chosen register set — e.g.
//! the CBIT signature registers of an instrumented circuit) ever differ.
//! Bit-parallelism is across stimulus lanes: all 64 lanes of a stream run
//! simultaneously for every machine.

use ppet_netlist::{CellId, Circuit};

use crate::fault::{Fault, FaultSite};
use crate::fsim::CoverageReport;
use crate::levelize::LevelizeError;
use crate::logic::{eval_gate, Simulator};

/// What the tester can observe.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Observe {
    /// Primary outputs, compared every cycle (external tester).
    OutputsEveryCycle,
    /// A register set, compared once after the last cycle (signature
    /// read-out over the scan chain — the PPET setting).
    RegistersAtEnd(Vec<CellId>),
}

/// A sequential fault simulator over a compiled circuit.
///
/// # Examples
///
/// ```
/// use ppet_netlist::bench_format::parse;
/// use ppet_sim::fault::all_faults;
/// use ppet_sim::seqsim::{Observe, SequentialFaultSim};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// // 1-bit toggle counter: every fault is eventually visible at q,
/// // provided the stimulus exercises both enable values.
/// let c = parse("t", "INPUT(en)\nOUTPUT(q)\nq = DFF(d)\nd = XOR(q, en)\n")?;
/// let mut sim = SequentialFaultSim::new(&c, all_faults(&c), Observe::OutputsEveryCycle)?;
/// for step in 0..16 {
///     sim.clock(&[0xAAAA_5555u64.rotate_left(step)]);
/// }
/// assert_eq!(sim.report().coverage(), 1.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct SequentialFaultSim<'c> {
    sim: Simulator<'c>,
    faults: Vec<Fault>,
    detected: Vec<bool>,
    observe: Observe,
    good_state: Vec<u64>,
    faulty_state: Vec<Vec<u64>>,
    cycles: u64,
}

impl<'c> SequentialFaultSim<'c> {
    /// Creates the simulator with every machine reset to all-zero state.
    ///
    /// # Errors
    ///
    /// Returns [`LevelizeError`] for combinationally cyclic circuits.
    pub fn new(
        circuit: &'c Circuit,
        faults: Vec<Fault>,
        observe: Observe,
    ) -> Result<Self, LevelizeError> {
        let sim = Simulator::new(circuit)?;
        let n_dffs = sim.dffs().len();
        let n_faults = faults.len();
        Ok(Self {
            sim,
            faults,
            detected: vec![false; n_faults],
            observe,
            good_state: vec![0; n_dffs],
            faulty_state: vec![vec![0; n_dffs]; n_faults],
            cycles: 0,
        })
    }

    /// The fault list.
    #[must_use]
    pub fn faults(&self) -> &[Fault] {
        &self.faults
    }

    /// Per-fault detection flags.
    #[must_use]
    pub fn detected(&self) -> &[bool] {
        &self.detected
    }

    /// Current coverage (pattern counter counts clock cycles).
    #[must_use]
    pub fn report(&self) -> CoverageReport {
        CoverageReport {
            detected: self.detected.iter().filter(|&&d| d).count(),
            total: self.faults.len(),
            patterns: self.cycles,
        }
    }

    /// Evaluates one machine's combinational frame with a fault injected.
    fn eval_faulty(&self, fault: Fault, pi_words: &[u64], state: &[u64]) -> Vec<u64> {
        let circuit = self.sim.circuit();
        let mut values = self.sim.eval(pi_words, state);
        // Inject and propagate in level order (same technique as fsim, but
        // against this machine's own state).
        let inject_at = match fault.site {
            FaultSite::Output(c) => {
                values[c.index()] = fault.value.word();
                c
            }
            FaultSite::Input { cell, pin } => {
                let gate = circuit.cell(cell);
                if !gate.kind().is_combinational() {
                    // Register D-pin fault: handled at state capture.
                    return values;
                }
                let saved = values[gate.fanin()[pin].index()];
                values[gate.fanin()[pin].index()] = fault.value.word();
                let v = eval_gate(gate.kind(), gate.fanin(), &values);
                values[gate.fanin()[pin].index()] = saved;
                values[cell.index()] = v;
                cell
            }
        };
        let mut dirty = vec![false; circuit.num_cells()];
        dirty[inject_at.index()] = true;
        for &v in self.sim.levelized_order() {
            let cell = circuit.cell(v);
            if !cell.kind().is_combinational() || v == inject_at {
                continue;
            }
            if cell.fanin().iter().any(|f| dirty[f.index()]) {
                let nv = eval_gate(cell.kind(), cell.fanin(), &values);
                if nv != values[v.index()] {
                    values[v.index()] = nv;
                    dirty[v.index()] = true;
                }
            }
        }
        values
    }

    /// Next state from an evaluation, honouring register-pin faults.
    fn capture(&self, fault: Option<Fault>, values: &[u64]) -> Vec<u64> {
        let circuit = self.sim.circuit();
        let mut next: Vec<u64> = self.sim.next_state(values);
        if let Some(Fault {
            site: FaultSite::Input { cell, pin },
            value,
        }) = fault
        {
            if circuit.cell(cell).kind() == ppet_netlist::CellKind::Dff {
                let _ = pin;
                if let Some(pos) = self.sim.dffs().iter().position(|&d| d == cell) {
                    next[pos] = value.word();
                }
            }
        }
        // Output faults on a register corrupt its captured state too: the
        // stuck net is the register's own output, which the state models.
        if let Some(Fault {
            site: FaultSite::Output(c),
            value,
        }) = fault
        {
            if circuit.cell(c).kind() == ppet_netlist::CellKind::Dff {
                if let Some(pos) = self.sim.dffs().iter().position(|&d| d == c) {
                    next[pos] = value.word();
                }
            }
        }
        next
    }

    /// Applies one clock of stimulus to every machine.
    pub fn clock(&mut self, pi_words: &[u64]) {
        self.cycles += 1;
        let good = self.sim.eval(pi_words, &self.good_state);
        let good_outs = self.sim.outputs(&good);
        self.good_state = self.capture(None, &good);

        for fi in 0..self.faults.len() {
            if self.detected[fi] {
                continue;
            }
            let fault = self.faults[fi];
            let state = std::mem::take(&mut self.faulty_state[fi]);
            let values = self.eval_faulty(fault, pi_words, &state);
            if let Observe::OutputsEveryCycle = self.observe {
                let outs = self.sim.outputs(&values);
                if outs.iter().zip(&good_outs).any(|(a, b)| a != b) {
                    self.detected[fi] = true;
                }
            }
            self.faulty_state[fi] = self.capture(Some(fault), &values);
        }
    }

    /// Final signature comparison for [`Observe::RegistersAtEnd`]; call
    /// after the last clock. No-op for per-cycle observation.
    pub fn finish(&mut self) {
        let Observe::RegistersAtEnd(regs) = &self.observe else {
            return;
        };
        let positions: Vec<usize> = regs
            .iter()
            .filter_map(|r| self.sim.dffs().iter().position(|d| d == r))
            .collect();
        for fi in 0..self.faults.len() {
            if self.detected[fi] {
                continue;
            }
            let differs = positions
                .iter()
                .any(|&p| self.faulty_state[fi][p] != self.good_state[p]);
            if differs {
                self.detected[fi] = true;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::{all_faults, StuckAt};
    use ppet_netlist::bench_format::parse;
    use ppet_netlist::data;
    use ppet_prng::{Rng, Xoshiro256PlusPlus};

    #[test]
    fn toggle_counter_faults_all_detected_at_outputs() {
        let c = parse("t", "INPUT(en)\nOUTPUT(q)\nq = DFF(d)\nd = XOR(q, en)\n").unwrap();
        let mut sim =
            SequentialFaultSim::new(&c, all_faults(&c), Observe::OutputsEveryCycle).unwrap();
        for step in 0..16u32 {
            // Mixed enable pattern across lanes and time.
            let en = 0xAAAA_5555_u64.rotate_left(step);
            sim.clock(&[en]);
        }
        assert_eq!(sim.report().coverage(), 1.0, "{:?}", sim.report());
    }

    #[test]
    fn s27_random_stimulus_detects_most_faults() {
        let c = data::s27();
        let mut sim =
            SequentialFaultSim::new(&c, all_faults(&c), Observe::OutputsEveryCycle).unwrap();
        let mut rng = Xoshiro256PlusPlus::seed_from(7);
        for _ in 0..64 {
            let pis: Vec<u64> = (0..4).map(|_| rng.next_u64()).collect();
            sim.clock(&pis);
        }
        // s27 has a single observable output; sequential detection through
        // it still catches the majority of faults.
        assert!(sim.report().coverage() > 0.5, "{:?}", sim.report());
    }

    #[test]
    fn register_end_observation_needs_finish() {
        let c = data::s27();
        let regs: Vec<CellId> = c.flip_flops().collect();
        let mut sim =
            SequentialFaultSim::new(&c, all_faults(&c), Observe::RegistersAtEnd(regs)).unwrap();
        let mut rng = Xoshiro256PlusPlus::seed_from(9);
        for _ in 0..32 {
            let pis: Vec<u64> = (0..4).map(|_| rng.next_u64()).collect();
            sim.clock(&pis);
        }
        let before = sim.report().detected;
        assert_eq!(before, 0, "nothing observed before finish()");
        sim.finish();
        assert!(sim.report().detected > 0);
    }

    #[test]
    fn sequential_agrees_with_combinational_on_one_frame() {
        // One clock of the sequential simulator with per-cycle output
        // observation must detect exactly the faults the combinational
        // simulator detects when observing only the primary outputs.
        let c = data::s27();
        let faults = all_faults(&c);
        let mut rng = Xoshiro256PlusPlus::seed_from(21);
        let pis: Vec<u64> = (0..4).map(|_| rng.next_u64()).collect();

        let mut seq =
            SequentialFaultSim::new(&c, faults.clone(), Observe::OutputsEveryCycle).unwrap();
        seq.clock(&pis);

        let mut comb = crate::fsim::FaultSim::with_faults(&c, faults).unwrap();
        comb.set_observe(c.outputs().to_vec());
        comb.apply_block(&pis, &[0u64; 3]);

        assert_eq!(seq.detected(), comb.detected());
    }

    #[test]
    fn stuck_register_output_corrupts_state() {
        // q s-a-1 on the toggle counter: q must read 1 forever in the
        // faulty machine, so with en=0 the good machine (q=0) differs
        // immediately.
        let c = parse("t", "INPUT(en)\nOUTPUT(q)\nq = DFF(d)\nd = XOR(q, en)\n").unwrap();
        let q = c.find("q").unwrap();
        let fault = Fault {
            site: FaultSite::Output(q),
            value: StuckAt::One,
        };
        let mut sim = SequentialFaultSim::new(&c, vec![fault], Observe::OutputsEveryCycle).unwrap();
        sim.clock(&[0]);
        assert!(sim.detected()[0]);
    }
}
