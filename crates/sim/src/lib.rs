//! Gate-level logic and stuck-at fault simulation.
//!
//! This crate is the substrate that validates the *premise* of
//! pseudo-exhaustive testing (paper §1 and its reference \[12\]): applying
//! all `2^k` input combinations to a `k`-input combinational segment
//! detects every detectable single stuck-at fault in that segment, with no
//! test-generation effort. The modules:
//!
//! * [`levelize`] — combinational levelization (registers break cycles);
//! * [`logic`] — 64-way bit-parallel logic simulation, combinational and
//!   sequential;
//! * [`fault`] — the single stuck-at fault model (output and input pins);
//! * [`collapse`] — structural fault-equivalence collapsing;
//! * [`fsim`] — bit-parallel fault simulation with forward-cone
//!   re-evaluation;
//! * [`pet`] — segment extraction and the pseudo-exhaustive vs. random
//!   coverage experiment;
//! * [`seqsim`] — sequential (multi-cycle) fault simulation, including
//!   signature-at-end observation for instrumented PPET circuits;
//! * [`xsim`] — three-valued (0/1/X) simulation for power-up
//!   initialization analysis (the retimed-initial-state question the paper
//!   defers to its reference \[16\]).
//!
//! # Examples
//!
//! Full pseudo-exhaustive test of a small combinational circuit:
//!
//! ```
//! use ppet_netlist::bench_format::parse;
//! use ppet_sim::{fault, fsim::FaultSim, pet};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let c = parse("toy", "INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = NAND(a, b)\n")?;
//! let report = pet::exhaustive_coverage(&c)?;
//! assert_eq!(report.coverage(), 1.0); // every stuck-at fault detected
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod collapse;
pub mod fault;
pub mod fsim;
pub mod levelize;
pub mod logic;
pub mod pet;
pub mod seqsim;
pub mod xsim;
