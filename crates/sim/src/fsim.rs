//! Bit-parallel stuck-at fault simulation.

use ppet_exec::Pool;
use ppet_netlist::{CellId, Circuit};

use crate::collapse::collapse;
use crate::fault::{Fault, FaultSite};
use crate::levelize::LevelizeError;
use crate::logic::{eval_gate, Simulator};

/// Fixed size of the fault chunks handed to pool workers by
/// [`FaultSim::apply_block_par_counted`]. A constant — never derived from
/// the worker count — so the chunk boundaries, and with them the merged
/// detection flags, are identical no matter how many workers execute them.
const FAULT_CHUNK: usize = 64;

/// Coverage bookkeeping.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CoverageReport {
    /// Faults detected so far.
    pub detected: usize,
    /// Faults under simulation.
    pub total: usize,
    /// Patterns applied.
    pub patterns: u64,
}

impl CoverageReport {
    /// Detected / total (1.0 for an empty fault list).
    #[must_use]
    pub fn coverage(&self) -> f64 {
        if self.total == 0 {
            1.0
        } else {
            self.detected as f64 / self.total as f64
        }
    }
}

/// Work counters accumulated by a [`FaultSim`] across all applied blocks.
///
/// Both the sequential and the parallel block paths account identically
/// (the evaluated-fault set of a block is decided by the detection flags
/// at block entry in either path), so these counters are deterministic at
/// any worker count.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FsimStats {
    /// Pattern blocks applied.
    pub blocks: u64,
    /// Faulty-machine evaluations: one per still-undetected fault per
    /// block (the forward-cone re-evaluations of the classic PPSFP loop).
    pub fault_evals: u64,
}

/// A fault simulator over a compiled circuit.
///
/// For every 64-pattern block it evaluates the good machine once, then for
/// each undetected fault re-evaluates only the fault's forward cone and
/// compares the observation points (primary outputs plus, for sequential
/// circuits in the PPET full-observability setting, the register `D`
/// inputs).
///
/// # Examples
///
/// ```
/// use ppet_netlist::bench_format::parse;
/// use ppet_sim::fsim::FaultSim;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let c = parse("toy", "INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = NAND(a, b)\n")?;
/// let mut fs = FaultSim::new(&c)?;
/// // One block holding all four input patterns: ab = 00,01,10,11.
/// fs.apply_block(&[0b1100, 0b1010], &[]);
/// assert_eq!(fs.report().coverage(), 1.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct FaultSim<'c> {
    sim: Simulator<'c>,
    faults: Vec<Fault>,
    detected: Vec<bool>,
    observe: Vec<CellId>,
    patterns: u64,
    stats: FsimStats,
}

impl<'c> FaultSim<'c> {
    /// Creates a simulator over the structurally collapsed fault list,
    /// observing primary outputs and register `D` inputs.
    ///
    /// # Errors
    ///
    /// Returns [`LevelizeError`] for combinationally cyclic circuits.
    pub fn new(circuit: &'c Circuit) -> Result<Self, LevelizeError> {
        let faults = collapse(circuit).faults;
        Self::with_faults(circuit, faults)
    }

    /// Creates a simulator over an explicit fault list.
    ///
    /// # Errors
    ///
    /// Returns [`LevelizeError`] for combinationally cyclic circuits.
    pub fn with_faults(circuit: &'c Circuit, faults: Vec<Fault>) -> Result<Self, LevelizeError> {
        let sim = Simulator::new(circuit)?;
        let mut observe: Vec<CellId> = circuit.outputs().to_vec();
        for q in circuit.flip_flops() {
            observe.push(circuit.cell(q).fanin()[0]);
        }
        observe.sort_unstable();
        observe.dedup();
        let detected = vec![false; faults.len()];
        Ok(Self {
            sim,
            faults,
            detected,
            observe,
            patterns: 0,
            stats: FsimStats::default(),
        })
    }

    /// Overrides the observation points.
    pub fn set_observe(&mut self, observe: Vec<CellId>) {
        self.observe = observe;
    }

    /// The fault list under simulation.
    #[must_use]
    pub fn faults(&self) -> &[Fault] {
        &self.faults
    }

    /// Per-fault detection flags.
    #[must_use]
    pub fn detected(&self) -> &[bool] {
        &self.detected
    }

    /// Work counters accumulated so far (see [`FsimStats`]).
    #[must_use]
    pub fn stats(&self) -> FsimStats {
        self.stats
    }

    /// Current coverage.
    #[must_use]
    pub fn report(&self) -> CoverageReport {
        CoverageReport {
            detected: self.detected.iter().filter(|&&d| d).count(),
            total: self.faults.len(),
            patterns: self.patterns,
        }
    }

    /// Simulates one block of up to 64 patterns (the caller packs them into
    /// the input words) against every still-undetected fault. Returns the
    /// number of newly detected faults.
    pub fn apply_block(&mut self, pi_words: &[u64], dff_words: &[u64]) -> usize {
        self.apply_block_counted(pi_words, dff_words, 64)
    }

    /// Like [`FaultSim::apply_block`] but records only `valid` patterns in
    /// the pattern counter (for the final partial block of an exhaustive
    /// sweep).
    pub fn apply_block_counted(
        &mut self,
        pi_words: &[u64],
        dff_words: &[u64],
        valid: u32,
    ) -> usize {
        let good = self.sim.eval(pi_words, dff_words);
        let valid_mask = Self::valid_mask(valid);
        self.account_block(valid);

        let mut newly = 0;
        let mut scratch = FaultScratch::for_block(&good);
        for fi in 0..self.faults.len() {
            if self.detected[fi] {
                continue;
            }
            if self.fault_detected(self.faults[fi], &good, valid_mask, &mut scratch) {
                self.detected[fi] = true;
                newly += 1;
            }
        }
        newly
    }

    /// Like [`FaultSim::apply_block`] but simulates the still-undetected
    /// faults in fixed-size chunks on `pool`'s workers.
    ///
    /// Bit-identical to the sequential block application at any worker
    /// count: each fault's detection for a given pattern block depends
    /// only on the good-machine values and that fault — never on the
    /// other faults in the block — chunk boundaries are a fixed constant,
    /// and the per-chunk detection sets are merged in chunk order.
    /// Returns the number of newly detected faults.
    pub fn apply_block_par(&mut self, pi_words: &[u64], dff_words: &[u64], pool: &Pool) -> usize {
        self.apply_block_par_counted(pi_words, dff_words, 64, pool)
    }

    /// [`FaultSim::apply_block_par`] with an explicit valid-pattern count,
    /// the parallel counterpart of [`FaultSim::apply_block_counted`].
    pub fn apply_block_par_counted(
        &mut self,
        pi_words: &[u64],
        dff_words: &[u64],
        valid: u32,
        pool: &Pool,
    ) -> usize {
        let good = self.sim.eval(pi_words, dff_words);
        let valid_mask = Self::valid_mask(valid);
        self.account_block(valid);

        let chunks: Vec<(usize, usize)> = (0..self.faults.len())
            .step_by(FAULT_CHUNK)
            .map(|start| (start, (start + FAULT_CHUNK).min(self.faults.len())))
            .collect();
        let newly_per_chunk: Vec<Vec<usize>> = {
            let this: &Self = self;
            let good = &good;
            pool.par_map(&chunks, |_, &(start, end)| {
                let mut scratch = FaultScratch::for_block(good);
                let mut newly = Vec::new();
                for fi in start..end {
                    if this.detected[fi] {
                        continue;
                    }
                    if this.fault_detected(this.faults[fi], good, valid_mask, &mut scratch) {
                        newly.push(fi);
                    }
                }
                newly
            })
        };

        // Merge in chunk order. Chunks are disjoint, so no fault is
        // reported twice, and marking a fault here cannot influence any
        // other fault's verdict for this block.
        let mut newly = 0;
        for fi in newly_per_chunk.into_iter().flatten() {
            self.detected[fi] = true;
            newly += 1;
        }
        newly
    }

    /// Lane mask selecting the first `valid` of the 64 block patterns.
    fn valid_mask(valid: u32) -> u64 {
        if valid >= 64 {
            u64::MAX
        } else {
            (1u64 << valid) - 1
        }
    }

    /// Per-block bookkeeping shared by the sequential and parallel paths:
    /// counts the applied patterns, the block, and one faulty-machine
    /// evaluation per fault that is still undetected at block entry (the
    /// set both paths will simulate).
    fn account_block(&mut self, valid: u32) {
        self.patterns += u64::from(valid.min(64));
        self.stats.blocks += 1;
        self.stats.fault_evals += self.detected.iter().filter(|&&d| !d).count() as u64;
    }

    /// Decides whether one block of patterns detects `fault`: injects it,
    /// propagates the difference through the fault's forward cone, and
    /// compares the observation points against the good machine.
    ///
    /// Pure with respect to the simulator (`&self`): all mutation happens
    /// in `scratch`, which is restored to its block-entry state (`faulty`
    /// equal to `good`, `dirty` all-false) before returning — so disjoint
    /// faults can be decided concurrently with per-worker scratch.
    fn fault_detected(
        &self,
        fault: Fault,
        good: &[u64],
        valid_mask: u64,
        scratch: &mut FaultScratch,
    ) -> bool {
        let circuit = self.sim.circuit();
        // A fault on a register's D pin is latched directly by the
        // register (in PPET, by the CBIT analyzing this segment): it is
        // detected whenever the stuck value differs from the good value
        // at the pin — provided the register's capture point (its D
        // net) is among the observation points. It does not perturb
        // this block's combinational values (the register's output is
        // state, not a function of D).
        if let FaultSite::Input { cell, pin } = fault.site {
            if !circuit.cell(cell).kind().is_combinational() {
                let driver = circuit.cell(cell).fanin()[pin];
                return self.observe.contains(&driver)
                    && (good[driver.index()] ^ fault.value.word()) & valid_mask != 0;
            }
        }
        let FaultScratch { faulty, dirty } = scratch;
        // Inject.
        let inject_at = match fault.site {
            FaultSite::Output(c) => {
                faulty[c.index()] = fault.value.word();
                c
            }
            FaultSite::Input { cell, pin } => {
                let gate = circuit.cell(cell);
                let saved = faulty[gate.fanin()[pin].index()];
                faulty[gate.fanin()[pin].index()] = fault.value.word();
                let v = eval_gate(gate.kind(), gate.fanin(), faulty);
                faulty[gate.fanin()[pin].index()] = saved;
                faulty[cell.index()] = v;
                cell
            }
        };
        // Propagate: re-evaluate downstream gates whose inputs changed.
        // The level order guarantees drivers settle before consumers.
        dirty[inject_at.index()] = faulty[inject_at.index()] != good[inject_at.index()];
        if dirty[inject_at.index()] {
            for &v in self.sim.levelized_order() {
                let cell = circuit.cell(v);
                if !cell.kind().is_combinational() || v == inject_at {
                    continue;
                }
                if cell.fanin().iter().any(|f| dirty[f.index()]) {
                    let nv = eval_gate(cell.kind(), cell.fanin(), faulty);
                    if nv != faulty[v.index()] {
                        faulty[v.index()] = nv;
                        dirty[v.index()] = true;
                    }
                }
            }
        }
        // Observe.
        let seen = self
            .observe
            .iter()
            .any(|&o| (faulty[o.index()] ^ good[o.index()]) & valid_mask != 0);
        // Undo: restore the touched slots for the next fault.
        for (slot, &g) in faulty.iter_mut().zip(good.iter()) {
            *slot = g;
        }
        for d in dirty.iter_mut() {
            *d = false;
        }
        seen
    }
}

/// Per-worker mutable state for deciding faults within one pattern block:
/// the faulty-machine value vector (equal to the good machine between
/// faults) and the dirty flags of the forward-cone walk.
struct FaultScratch {
    faulty: Vec<u64>,
    dirty: Vec<bool>,
}

impl FaultScratch {
    fn for_block(good: &[u64]) -> Self {
        Self {
            faulty: good.to_vec(),
            dirty: vec![false; good.len()],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::{all_faults, StuckAt};
    use ppet_netlist::bench_format::parse;
    use ppet_netlist::data;
    use ppet_prng::{Rng, Xoshiro256PlusPlus};

    #[test]
    fn nand_exhaustive_detects_all() {
        let c = parse("t", "INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = NAND(a, b)\n").unwrap();
        let mut fs = FaultSim::new(&c).unwrap();
        fs.apply_block_counted(&[0b1100, 0b1010], &[], 4);
        assert_eq!(fs.report().coverage(), 1.0);
        assert_eq!(fs.report().patterns, 4);
    }

    #[test]
    fn no_patterns_no_detection() {
        let c = data::s27();
        let fs = FaultSim::new(&c).unwrap();
        assert_eq!(fs.report().detected, 0);
        assert!(fs.report().coverage() < 1.0e-9);
    }

    #[test]
    fn parallel_block_matches_serial_single_patterns() {
        // Cross-check: applying 16 patterns in one block detects exactly
        // the faults detected by 16 single-pattern blocks.
        let c = data::s27();
        let faults = all_faults(&c);
        let mut rng = Xoshiro256PlusPlus::seed_from(8);
        let pis: Vec<u64> = (0..4).map(|_| rng.next_u64() & 0xFFFF).collect();
        let dffs: Vec<u64> = (0..3).map(|_| rng.next_u64() & 0xFFFF).collect();

        let mut block = FaultSim::with_faults(&c, faults.clone()).unwrap();
        block.apply_block_counted(&pis, &dffs, 16);

        let mut serial = FaultSim::with_faults(&c, faults).unwrap();
        for bit in 0..16 {
            let p: Vec<u64> = pis.iter().map(|w| (w >> bit) & 1).collect();
            let d: Vec<u64> = dffs.iter().map(|w| (w >> bit) & 1).collect();
            serial.apply_block_counted(&p, &d, 1);
        }
        assert_eq!(block.detected(), serial.detected());
    }

    #[test]
    fn input_pin_fault_differs_from_output_fault_on_fanout() {
        // On a fan-out stem, the branch fault is weaker than the stem
        // fault: find a pattern set distinguishing them in s27.
        let c = data::s27();
        let g14 = c.find("G14").unwrap(); // fans out to G8 and G10
        let g8 = c.find("G8").unwrap();
        let stem = Fault {
            site: FaultSite::Output(g14),
            value: StuckAt::One,
        };
        let branch = Fault {
            site: FaultSite::Input {
                cell: g8,
                pin: c.cell(g8).fanin().iter().position(|&f| f == g14).unwrap(),
            },
            value: StuckAt::One,
        };
        let mut fs = FaultSim::with_faults(&c, vec![stem, branch]).unwrap();
        // Exhaust the 4 PIs x a few register states.
        for state in 0..8u64 {
            let dffs: Vec<u64> = (0..3)
                .map(|i| if (state >> i) & 1 == 1 { u64::MAX } else { 0 })
                .collect();
            let pis: Vec<u64> = (0..4).map(pattern_word).collect();
            fs.apply_block_counted(&pis, &dffs, 16);
        }
        // Both are detectable; detection flags must be set independently.
        assert!(fs.detected()[0] && fs.detected()[1]);
    }

    /// Word whose bit `l` is bit `i` of the pattern index `l`.
    fn pattern_word(i: usize) -> u64 {
        let mut w = 0u64;
        for l in 0..64 {
            if (l >> i) & 1 == 1 {
                w |= 1 << l;
            }
        }
        w
    }

    #[test]
    fn parallel_apply_matches_sequential_at_any_worker_count() {
        // The determinism contract: the same pattern blocks through
        // apply_block_par_counted produce the same detection flags, the
        // same newly-detected counts, and the same work counters as the
        // sequential path, for every worker count.
        let c = data::s27();
        let faults = all_faults(&c);
        let mut rng = Xoshiro256PlusPlus::seed_from(17);
        let blocks: Vec<(Vec<u64>, Vec<u64>, u32)> = (0..5)
            .map(|b| {
                let pis: Vec<u64> = (0..4).map(|_| rng.next_u64()).collect();
                let dffs: Vec<u64> = (0..3).map(|_| rng.next_u64()).collect();
                (pis, dffs, if b == 4 { 13 } else { 64 })
            })
            .collect();

        let mut seq = FaultSim::with_faults(&c, faults.clone()).unwrap();
        let seq_newly: Vec<usize> = blocks
            .iter()
            .map(|(p, d, v)| seq.apply_block_counted(p, d, *v))
            .collect();

        for workers in [1, 2, 8] {
            let pool = Pool::new(workers);
            let mut par = FaultSim::with_faults(&c, faults.clone()).unwrap();
            let par_newly: Vec<usize> = blocks
                .iter()
                .map(|(p, d, v)| par.apply_block_par_counted(p, d, *v, &pool))
                .collect();
            assert_eq!(par_newly, seq_newly, "workers = {workers}");
            assert_eq!(par.detected(), seq.detected(), "workers = {workers}");
            assert_eq!(par.report(), seq.report(), "workers = {workers}");
            assert_eq!(par.stats(), seq.stats(), "workers = {workers}");
        }
    }

    #[test]
    fn stats_account_blocks_and_pending_faults() {
        let c = data::s27();
        let mut fs = FaultSim::new(&c).unwrap();
        let total = fs.report().total as u64;
        assert_eq!(fs.stats(), FsimStats::default());
        let mut rng = Xoshiro256PlusPlus::seed_from(23);
        let pis: Vec<u64> = (0..4).map(|_| rng.next_u64()).collect();
        let dffs: Vec<u64> = (0..3).map(|_| rng.next_u64()).collect();
        fs.apply_block(&pis, &dffs);
        assert_eq!(fs.stats().blocks, 1);
        assert_eq!(fs.stats().fault_evals, total);
        let pending = (fs.report().total - fs.report().detected) as u64;
        fs.apply_block(&pis, &dffs);
        assert_eq!(fs.stats().blocks, 2);
        // Second block only re-simulates the faults still undetected.
        assert_eq!(fs.stats().fault_evals, total + pending);
    }

    #[test]
    fn coverage_monotone_in_patterns() {
        let c = data::s27();
        let mut fs = FaultSim::new(&c).unwrap();
        let mut rng = Xoshiro256PlusPlus::seed_from(5);
        let mut last = 0;
        for _ in 0..6 {
            let pis: Vec<u64> = (0..4).map(|_| rng.next_u64()).collect();
            let dffs: Vec<u64> = (0..3).map(|_| rng.next_u64()).collect();
            fs.apply_block(&pis, &dffs);
            let now = fs.report().detected;
            assert!(now >= last);
            last = now;
        }
        assert!(last > 0, "random patterns detect something in s27");
    }
}
