//! Structural fault-equivalence collapsing.
//!
//! Two faults are *equivalent* when every test detecting one detects the
//! other; simulating one representative per class is enough. The classic
//! gate-local rules (Abramovici, Breuer & Friedman, ch. 4):
//!
//! * AND: any input s-a-0 ≡ output s-a-0; NAND: input s-a-0 ≡ output s-a-1;
//! * OR: any input s-a-1 ≡ output s-a-1; NOR: input s-a-1 ≡ output s-a-0;
//! * NOT/BUF: both input faults are equivalent to the corresponding
//!   (inverted/identical) output faults.
//!
//! On a fan-out-free pin the input fault is also equivalent to the driver's
//! output fault, letting equivalence chains propagate through buffer and
//! inverter trees. Collapsing typically removes 40–55 % of the fault list.

use ppet_netlist::{CellKind, Circuit};

use crate::fault::{all_faults, Fault, FaultSite, StuckAt};

/// The collapsed fault list (one representative per structural equivalence
/// class) together with the class count bookkeeping.
#[derive(Debug, Clone)]
pub struct CollapsedFaults {
    /// The representatives.
    pub faults: Vec<Fault>,
    /// Size of the uncollapsed list.
    pub uncollapsed: usize,
}

impl CollapsedFaults {
    /// The collapse ratio (`collapsed / uncollapsed`).
    #[must_use]
    pub fn ratio(&self) -> f64 {
        if self.uncollapsed == 0 {
            1.0
        } else {
            self.faults.len() as f64 / self.uncollapsed as f64
        }
    }
}

/// Collapses the complete stuck-at list of `circuit` with gate-local
/// equivalence rules.
///
/// # Examples
///
/// ```
/// use ppet_netlist::bench_format::parse;
/// use ppet_sim::collapse::collapse;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let c = parse("toy", "INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = AND(a, b)\n")?;
/// let collapsed = collapse(&c);
/// // AND: {a s-a-0, b s-a-0, y s-a-0} is one class.
/// assert!(collapsed.faults.len() < collapsed.uncollapsed);
/// # Ok(())
/// # }
/// ```
#[must_use]
pub fn collapse(circuit: &Circuit) -> CollapsedFaults {
    let all = all_faults(circuit);
    let fanouts = circuit.fanouts();
    let keep = |f: &Fault| -> bool {
        match f.site {
            FaultSite::Output(_) => true,
            FaultSite::Input { cell, pin } => {
                let c = circuit.cell(cell);
                let driver = c.fanin()[pin];
                // An input fault on a fan-out-free pin whose controlled
                // polarity matches the gate's controlling value is
                // represented by an output fault; likewise for single-input
                // cells (NOT/BUF/DFF) both polarities collapse onto the
                // driver's output faults when the pin is fan-out-free.
                let fanout_free = fanouts.degree(driver) == 1 && !circuit.is_output(driver);
                match c.kind() {
                    CellKind::And | CellKind::Nand => {
                        f.value != StuckAt::Zero || !equiv_to_output(c.kind())
                    }
                    CellKind::Or | CellKind::Nor => {
                        f.value != StuckAt::One || !equiv_to_output(c.kind())
                    }
                    CellKind::Not | CellKind::Buf | CellKind::Dff => !fanout_free,
                    CellKind::Xor | CellKind::Xnor | CellKind::Input => true,
                }
            }
        }
    };
    let faults: Vec<Fault> = all.iter().copied().filter(keep).collect();
    CollapsedFaults {
        faults,
        uncollapsed: all.len(),
    }
}

/// Whether the gate kind has an input-to-output equivalence for its
/// controlling value (it always does for AND/NAND/OR/NOR).
fn equiv_to_output(kind: CellKind) -> bool {
    matches!(
        kind,
        CellKind::And | CellKind::Nand | CellKind::Or | CellKind::Nor
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppet_netlist::bench_format::parse;
    use ppet_netlist::data;

    #[test]
    fn and_gate_collapses_controlling_input_faults() {
        let c = parse("t", "INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = AND(a, b)\n").unwrap();
        let col = collapse(&c);
        // Input s-a-0 faults removed (2), input s-a-1 kept (2),
        // output faults kept for a, b, y (6). 10 -> 8.
        assert_eq!(col.uncollapsed, 10);
        assert_eq!(col.faults.len(), 8);
        assert!(col
            .faults
            .iter()
            .all(|f| !matches!(f.site, FaultSite::Input { .. }) || f.value == StuckAt::One));
    }

    #[test]
    fn inverter_chain_collapses() {
        let c = parse(
            "t",
            "INPUT(a)\nOUTPUT(y)\nn1 = NOT(a)\nn2 = NOT(n1)\ny = BUFF(n2)\n",
        )
        .unwrap();
        let col = collapse(&c);
        // All input-pin faults on the chain vanish (fan-out-free).
        assert!(col
            .faults
            .iter()
            .all(|f| matches!(f.site, FaultSite::Output(_))));
    }

    #[test]
    fn fanout_pins_are_kept() {
        // a fans out to two gates: its branch faults are NOT equivalent to
        // the stem fault and must survive for the non-controlling value.
        let c = parse(
            "t",
            "INPUT(a)\nINPUT(b)\nOUTPUT(y)\ng1 = NOT(a)\ng2 = AND(a, b)\ny = OR(g1, g2)\n",
        )
        .unwrap();
        let col = collapse(&c);
        let g1 = c.find("g1").unwrap();
        assert!(col
            .faults
            .iter()
            .any(|f| matches!(f.site, FaultSite::Input { cell, .. } if cell == g1)));
    }

    #[test]
    fn collapse_ratio_in_expected_band_for_s27() {
        let col = collapse(&data::s27());
        assert!((0.4..0.9).contains(&col.ratio()), "ratio {}", col.ratio());
    }
}
