//! Property tests for the simulators: bit-parallel consistency, fault-model
//! laws, and segment-extraction invariants over random circuits.

use proptest::prelude::*;

use ppet_netlist::{SynthSpec, Synthesizer};
use ppet_prng::{Rng, Xoshiro256PlusPlus};
use ppet_sim::collapse::collapse;
use ppet_sim::fault::all_faults;
use ppet_sim::fsim::FaultSim;
use ppet_sim::logic::Simulator;
use ppet_sim::pet::extract_segment;

fn arb_circuit() -> impl Strategy<Value = (ppet_netlist::Circuit, u64)> {
    (
        (1usize..8, 0usize..8, 4usize..50, 0usize..10, any::<u64>()),
        any::<u64>(),
    )
        .prop_map(|((pis, dffs, gates, invs, seed), aux)| {
            (
                Synthesizer::new(
                    SynthSpec::new("prop")
                        .primary_inputs(pis)
                        .flip_flops(dffs)
                        .gates(gates)
                        .inverters(invs)
                        .dffs_on_scc(dffs / 2)
                        .seed(seed),
                )
                .build(),
                aux,
            )
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Bit-parallel evaluation lane `l` equals a fresh single-pattern
    /// evaluation of lane `l`'s bits.
    #[test]
    fn lanes_are_independent((circuit, aux) in arb_circuit()) {
        let sim = Simulator::new(&circuit).expect("levelizes");
        let mut rng = Xoshiro256PlusPlus::seed_from(aux);
        let pis: Vec<u64> = (0..circuit.num_inputs()).map(|_| rng.next_u64()).collect();
        let dffs: Vec<u64> = (0..circuit.num_flip_flops()).map(|_| rng.next_u64()).collect();
        let packed = sim.eval(&pis, &dffs);
        for lane in [0u32, 17, 63] {
            let pi1: Vec<u64> = pis.iter().map(|w| (w >> lane) & 1).collect();
            let dff1: Vec<u64> = dffs.iter().map(|w| (w >> lane) & 1).collect();
            let single = sim.eval(&pi1, &dff1);
            for id in circuit.ids() {
                prop_assert_eq!(
                    (packed[id.index()] >> lane) & 1,
                    single[id.index()] & 1,
                    "lane {} cell {}", lane, circuit.cell(id).name()
                );
            }
        }
    }

    /// Collapsing never drops detection power: on the same pattern block,
    /// every collapsed-detected class has nothing the full list detects at
    /// strictly higher count... concretely: collapsed coverage == coverage
    /// of the collapsed subset under the full-list run, and the collapsed
    /// list is a subset of the full list.
    #[test]
    fn collapse_is_a_consistent_subset((circuit, aux) in arb_circuit()) {
        let full = all_faults(&circuit);
        let col = collapse(&circuit);
        prop_assert!(col.faults.len() <= full.len());
        for f in &col.faults {
            prop_assert!(full.contains(f));
        }

        // Detection agreement on a shared pattern block.
        let mut rng = Xoshiro256PlusPlus::seed_from(aux);
        let pis: Vec<u64> = (0..circuit.num_inputs()).map(|_| rng.next_u64()).collect();
        let dffs: Vec<u64> = (0..circuit.num_flip_flops()).map(|_| rng.next_u64()).collect();
        let mut sim_full = FaultSim::with_faults(&circuit, full.clone()).expect("levelizes");
        sim_full.apply_block(&pis, &dffs);
        let mut sim_col = FaultSim::with_faults(&circuit, col.faults.clone()).expect("levelizes");
        sim_col.apply_block(&pis, &dffs);
        // Each collapsed fault's detection flag matches its flag in the
        // full run (same fault, same block, same observation points).
        for (i, f) in col.faults.iter().enumerate() {
            let j = full.iter().position(|g| g == f).expect("subset");
            prop_assert_eq!(sim_col.detected()[i], sim_full.detected()[j]);
        }
    }

    /// Segment extraction: the whole circuit as one segment yields a
    /// combinational circuit whose inputs are exactly PIs + registers.
    #[test]
    fn whole_circuit_segment_inputs((circuit, _) in arb_circuit()) {
        let members: Vec<_> = circuit.ids().collect();
        let seg = extract_segment(&circuit, &members);
        prop_assert_eq!(seg.circuit.num_flip_flops(), 0);
        prop_assert_eq!(
            seg.circuit.num_inputs(),
            circuit.num_inputs() + circuit.num_flip_flops()
        );
        prop_assert!(
            ppet_netlist::validate::find_combinational_cycle(&seg.circuit).is_none()
        );
    }

    /// Segment logic computes the same values as the host circuit: for a
    /// random assignment, every shared cell agrees.
    #[test]
    fn segment_agrees_with_host((circuit, aux) in arb_circuit()) {
        let members: Vec<_> = circuit.ids().collect();
        let seg = extract_segment(&circuit, &members);
        let host = Simulator::new(&circuit).expect("levelizes");
        let segment = Simulator::new(&seg.circuit).expect("levelizes");

        let mut rng = Xoshiro256PlusPlus::seed_from(aux);
        let host_pis: Vec<u64> = (0..circuit.num_inputs()).map(|_| rng.next_u64()).collect();
        let host_dffs: Vec<u64> =
            (0..circuit.num_flip_flops()).map(|_| rng.next_u64()).collect();
        let host_vals = host.eval(&host_pis, &host_dffs);

        // Feed the segment the host's values at its input origins.
        let seg_pis: Vec<u64> = segment
            .inputs()
            .iter()
            .map(|&i| {
                let name = seg.circuit.cell(i).name();
                let origin = circuit.find(name).expect("origin exists");
                host_vals[origin.index()]
            })
            .collect();
        let seg_vals = segment.eval(&seg_pis, &[]);
        for (id, cell) in seg.circuit.iter() {
            if cell.kind().is_combinational() {
                let origin = circuit.find(cell.name()).expect("same name");
                prop_assert_eq!(
                    seg_vals[id.index()],
                    host_vals[origin.index()],
                    "cell {}", cell.name()
                );
            }
        }
    }
}
