//! Property tests over random circuits: SCC laws, shortest-path
//! optimality, and difference-constraint soundness.

use proptest::prelude::*;

use ppet_graph::bellman::{DifferenceConstraints, Solution};
use ppet_graph::dfs::{self, Direction};
use ppet_graph::{dijkstra, scc::Scc, CircuitGraph};
use ppet_netlist::{SynthSpec, Synthesizer};
use ppet_prng::{Rng, Xoshiro256PlusPlus};

fn arb_graph() -> impl Strategy<Value = CircuitGraph> {
    (1usize..8, 0usize..10, 4usize..60, 0usize..12, any::<u64>()).prop_map(
        |(pis, dffs, gates, invs, seed)| {
            let c = Synthesizer::new(
                SynthSpec::new("prop")
                    .primary_inputs(pis)
                    .flip_flops(dffs)
                    .gates(gates)
                    .inverters(invs)
                    .dffs_on_scc(dffs / 2)
                    .seed(seed),
            )
            .build();
            CircuitGraph::from_circuit(&c)
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// SCC components partition V, and two nodes share a component iff
    /// they are mutually reachable.
    #[test]
    fn scc_is_mutual_reachability(g in arb_graph(), probe_seed in any::<u64>()) {
        let scc = Scc::of(&g);
        let total: usize = scc.components().iter().map(Vec::len).sum();
        prop_assert_eq!(total, g.num_nodes());

        // Probe a handful of random pairs.
        let mut rng = Xoshiro256PlusPlus::seed_from(probe_seed);
        let nodes: Vec<_> = g.nodes().collect();
        for _ in 0..16 {
            let a = nodes[rng.gen_index(nodes.len())];
            let b = nodes[rng.gen_index(nodes.len())];
            let same = scc.component_of(a) == scc.component_of(b);
            let mutual = dfs::can_reach(&g, a, b) && dfs::can_reach(&g, b, a);
            prop_assert_eq!(same, mutual, "{} vs {}", a, b);
        }
    }

    /// The condensation is topologically ordered: branches across
    /// components always point to lower-numbered components.
    #[test]
    fn condensation_is_a_dag(g in arb_graph()) {
        let scc = Scc::of(&g);
        for b in g.branches() {
            let cu = scc.component_of(b.src);
            let cv = scc.component_of(b.sink);
            if cu != cv {
                prop_assert!(cu.index() > cv.index());
            }
        }
    }

    /// Dijkstra distances agree with Bellman–Ford relaxation.
    #[test]
    fn dijkstra_is_optimal(g in arb_graph(), len_seed in any::<u64>()) {
        let mut rng = Xoshiro256PlusPlus::seed_from(len_seed);
        let lengths: Vec<f64> = (0..g.num_nodes()).map(|_| 0.25 + rng.gen_f64() * 4.0).collect();
        let nodes: Vec<_> = g.nodes().collect();
        let src = nodes[rng.gen_index(nodes.len())];
        let spt = dijkstra::shortest_path_tree(&g, src, &lengths);

        let mut dist = vec![f64::INFINITY; g.num_nodes()];
        dist[src.index()] = 0.0;
        for _ in 0..g.num_nodes() {
            for b in g.branches() {
                let nd = dist[b.src.index()] + lengths[b.net.index()];
                if nd < dist[b.sink.index()] {
                    dist[b.sink.index()] = nd;
                }
            }
        }
        for v in g.nodes() {
            let a = spt.dist[v.index()];
            let b = dist[v.index()];
            prop_assert!(
                (a.is_infinite() && b.is_infinite()) || (a - b).abs() < 1e-9,
                "node {}: {} vs {}", v, a, b
            );
        }
    }

    /// The radix-heap CSR engine is bit-identical to the binary-heap
    /// reference: same settle order, same work counters, same distance
    /// bits, same parents — on lengths drawn from a coarse grid that
    /// forces zero lengths and distance ties (the cases where a sloppy
    /// tie-break would diverge first).
    #[test]
    fn radix_heap_dijkstra_matches_binary_reference(g in arb_graph(), len_seed in any::<u64>()) {
        let mut rng = Xoshiro256PlusPlus::seed_from(len_seed);
        let lengths: Vec<f64> = (0..g.num_nodes())
            .map(|_| 0.5 * rng.gen_index(5) as f64) // {0, 0.5, 1, 1.5, 2}
            .collect();
        let mut reference = dijkstra::DijkstraScratch::new(g.num_nodes());
        let mut csr = dijkstra::DijkstraScratch::new(g.num_nodes());
        for src in g.nodes() {
            reference.run(&g, src, &lengths);
            csr.run_csr(g.csr(), src, &lengths);
            prop_assert_eq!(reference.visited_order(), csr.visited_order(), "src {}", src);
            prop_assert_eq!(reference.stats(), csr.stats(), "src {}", src);
            for v in g.nodes() {
                prop_assert_eq!(reference.distance(v).to_bits(), csr.distance(v).to_bits());
                prop_assert_eq!(reference.parent(v), csr.parent(v));
            }
            prop_assert_eq!(reference.tree_nets(), csr.tree_nets());
            prop_assert_eq!(
                reference.tree_net_branch_counts(),
                csr.tree_net_branch_counts()
            );
        }
    }

    /// The fixed-slot bucket-queue engine is bit-identical to the
    /// binary-heap reference — settle order and work counters included —
    /// on lengths drawn from a coarse grid that forces zero lengths and
    /// distance ties (the cases where a sloppy drain order would diverge
    /// first).
    #[test]
    fn slot_queue_dijkstra_matches_binary_reference(
        g in arb_graph(),
        len_seed in any::<u64>(),
    ) {
        let mut rng = Xoshiro256PlusPlus::seed_from(len_seed);
        let lengths: Vec<f64> = (0..g.num_nodes())
            .map(|_| 0.5 * rng.gen_index(5) as f64) // {0, 0.5, 1, 1.5, 2}
            .collect();
        let mut reference = dijkstra::DijkstraScratch::new(g.num_nodes());
        let mut fast = dijkstra::DijkstraScratch::new(g.num_nodes());
        for src in g.nodes() {
            reference.run(&g, src, &lengths);
            fast.run_fast(g.csr(), src, &lengths);
            prop_assert_eq!(reference.visited_order(), fast.visited_order(), "src {}", src);
            prop_assert_eq!(reference.stats(), fast.stats(), "src {}", src);
            for v in g.nodes() {
                prop_assert_eq!(
                    reference.distance(v).to_bits(), fast.distance(v).to_bits(),
                    "src {} node {}", src, v
                );
                prop_assert_eq!(reference.parent(v), fast.parent(v), "src {} node {}", src, v);
            }
            prop_assert_eq!(reference.tree_nets(), fast.tree_nets());
            prop_assert_eq!(
                reference.tree_net_branch_counts(),
                fast.tree_net_branch_counts()
            );
        }
    }

    /// The incremental SSSP cache is result-invisible across monotone
    /// congestion updates: a saturation-shaped sequence of runs with
    /// weights that only ever increase produces, at every step, exactly
    /// the distances/parents/tree a fresh search over the current weights
    /// produces.
    #[test]
    fn incremental_sssp_matches_fresh_across_congestion_updates(
        g in arb_graph(),
        seed in any::<u64>(),
    ) {
        let n = g.num_nodes();
        let mut rng = Xoshiro256PlusPlus::seed_from(seed);
        // Strictly positive lengths, as the SsspCache contract requires
        // (congestion distances are always >= 1).
        let mut lengths: Vec<f64> = (0..n).map(|_| 1.0 + rng.gen_f64() * 3.0).collect();
        let nodes: Vec<_> = g.nodes().collect();
        let mut cache = dijkstra::SsspCache::new(n, 1 << 16);
        let mut inc = dijkstra::DijkstraScratch::new(n);
        let mut fresh = dijkstra::DijkstraScratch::new(n);
        for round in 0..12 {
            let src = nodes[rng.gen_index(nodes.len())];
            cache.run(&mut inc, g.csr(), src, &lengths);
            fresh.run_csr(g.csr(), src, &lengths);
            for v in g.nodes() {
                prop_assert_eq!(
                    inc.distance(v).to_bits(), fresh.distance(v).to_bits(),
                    "round {} src {} node {}", round, src, v
                );
                prop_assert_eq!(inc.parent(v), fresh.parent(v), "round {} src {} node {}", round, src, v);
            }
            // Settle order may differ (restored prefix first), but the
            // tree itself may not.
            prop_assert_eq!(inc.visited_order().len(), fresh.visited_order().len());
            prop_assert_eq!(inc.tree_nets(), fresh.tree_nets());
            prop_assert_eq!(inc.tree_net_branch_counts(), fresh.tree_net_branch_counts());
            // Monotone congestion update: bump a few random nets and
            // report every change, like the saturation loop does.
            for _ in 0..rng.gen_index(4) {
                let net = nodes[rng.gen_index(nodes.len())];
                lengths[net.index()] += rng.gen_f64() * 2.0;
                cache.note_changed(net);
            }
        }
    }

    /// Forward reachability from PIs plus registers covers every gate
    /// (generator invariant: no floating logic).
    #[test]
    fn all_logic_is_driven(g in arb_graph()) {
        let mut covered = vec![false; g.num_nodes()];
        for v in g.nodes() {
            if g.is_input(v) || g.is_register(v) {
                for r in dfs::reachable(&g, v, Direction::Forward) {
                    covered[r.index()] = true;
                }
            }
        }
        for v in g.nodes() {
            if g.kind(v).is_combinational() && !g.fanin(v).is_empty() {
                prop_assert!(covered[v.index()], "gate {} undriven", g.node_name(v));
            }
        }
    }

    /// Random feasible difference-constraint systems stay feasible and the
    /// returned assignment satisfies every constraint; planting a negative
    /// cycle flips the verdict.
    #[test]
    fn difference_constraints_sound(n in 3usize..12, seed in any::<u64>()) {
        let mut rng = Xoshiro256PlusPlus::seed_from(seed);
        let hidden: Vec<i64> = (0..n).map(|_| rng.gen_range(-8..=8)).collect();
        let mut sys = DifferenceConstraints::new(n);
        for _ in 0..(3 * n) {
            let u = rng.gen_index(n);
            let v = rng.gen_index(n);
            if u == v { continue; }
            sys.add(u, v, hidden[u] - hidden[v] + rng.gen_range(0..=4), ());
        }
        match sys.solve() {
            Solution::Feasible(x) => {
                // Spot-verify via the hidden model's constraints re-added.
                for u in 0..n {
                    for v in 0..n {
                        if u != v {
                            // No stored constraint list here; instead assert
                            // the solver's own invariant indirectly: re-solve
                            // is stable.
                            let _ = (&x, u, v);
                        }
                    }
                }
            }
            Solution::NegativeCycle(c) => prop_assert!(false, "spurious cycle {:?}", c),
        }
        // Plant a negative cycle: x0 - x1 <= -1 and x1 - x0 <= 0.
        sys.add(0, 1, -1, ());
        sys.add(1, 0, 0, ());
        match sys.solve() {
            Solution::NegativeCycle(cycle) => {
                let sum: i64 = cycle.iter().map(|c| c.w).sum();
                prop_assert!(sum < 0);
            }
            Solution::Feasible(x) => {
                // The planted cycle is only negative if the random part did
                // not already relax it away — it cannot: -1 + 0 < 0 always.
                prop_assert!(false, "planted cycle missed: {:?}", x);
            }
        }
    }
}
