//! The multi-pin circuit graph (paper §2.1, Fig. 2).

use ppet_netlist::{CellId, CellKind, Circuit, NetId};

use crate::csr::Csr;

/// One net of the multi-pin model: a single driver with explicit fan-out
/// branches. The net's identifier equals its driver's [`CellId`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Net {
    pub(crate) src: CellId,
    pub(crate) sinks: Vec<CellId>,
}

impl Net {
    /// The driving node.
    #[must_use]
    pub fn src(&self) -> CellId {
        self.src
    }

    /// The sink nodes, one per consuming pin (a node reading the net on two
    /// pins appears twice).
    #[must_use]
    pub fn sinks(&self) -> &[CellId] {
        &self.sinks
    }

    /// Number of consuming pins.
    #[must_use]
    pub fn degree(&self) -> usize {
        self.sinks.len()
    }
}

/// One directed branch of a net: `src → sink`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Branch {
    /// The net this branch belongs to.
    pub net: NetId,
    /// Driving node.
    pub src: CellId,
    /// Consuming node.
    pub sink: CellId,
}

/// The directed multi-pin graph `G(V = R ∪ C, E)` of a circuit.
///
/// Nodes are the circuit's cells (primary inputs, gates, flip-flops);
/// each net is one logical edge with branches to every fan-out, exactly as
/// in the paper's Fig. 2(b). The graph borrows nothing: it snapshots the
/// structure so partitioning can proceed while the caller keeps mutating or
/// dropping the original circuit.
///
/// # Examples
///
/// ```
/// use ppet_graph::CircuitGraph;
/// use ppet_netlist::data;
///
/// let g = CircuitGraph::from_circuit(&data::s27());
/// assert_eq!(g.num_nodes(), 17);
/// // G11 fans out to three places (G17, G10, and DFF G6).
/// let g11 = g.find("G11").unwrap();
/// assert_eq!(g.net(g11).degree(), 3);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CircuitGraph {
    name: String,
    kinds: Vec<CellKind>,
    names: Vec<String>,
    nets: Vec<Net>,
    outputs: Vec<NetId>,
    csr: Csr,
}

impl CircuitGraph {
    /// Builds the graph of `circuit`.
    #[must_use]
    pub fn from_circuit(circuit: &Circuit) -> Self {
        let n = circuit.num_cells();
        let mut kinds = Vec::with_capacity(n);
        let mut names = Vec::with_capacity(n);
        let mut fanin = Vec::with_capacity(n);
        let mut nets: Vec<Net> = (0..n)
            .map(|i| Net {
                src: CellId::from_index(i),
                sinks: Vec::new(),
            })
            .collect();
        for (id, cell) in circuit.iter() {
            kinds.push(cell.kind());
            names.push(cell.name().to_string());
            fanin.push(cell.fanin().to_vec());
            for &f in cell.fanin() {
                nets[f.index()].sinks.push(id);
            }
        }
        let sinks: Vec<Vec<CellId>> = nets.iter().map(|n| n.sinks.clone()).collect();
        let csr = Csr::build(&sinks, &fanin);
        Self {
            name: circuit.name().to_string(),
            kinds,
            names,
            nets,
            outputs: circuit.outputs().to_vec(),
            csr,
        }
    }

    /// The packed struct-of-arrays view of this graph (see [`Csr`]),
    /// built once at construction and shared by every shortest-path tree.
    #[must_use]
    pub fn csr(&self) -> &Csr {
        &self.csr
    }

    /// The source circuit's name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of nodes (`|V|`).
    #[must_use]
    pub fn num_nodes(&self) -> usize {
        self.kinds.len()
    }

    /// Number of nets with at least one sink (`|E|` in the multi-pin sense).
    #[must_use]
    pub fn num_nets(&self) -> usize {
        self.nets.iter().filter(|n| !n.sinks.is_empty()).count()
    }

    /// Total number of branches (sum of net degrees).
    #[must_use]
    pub fn num_branches(&self) -> usize {
        self.nets.iter().map(Net::degree).sum()
    }

    /// All node ids.
    pub fn nodes(&self) -> impl Iterator<Item = CellId> + '_ {
        (0..self.kinds.len()).map(CellId::from_index)
    }

    /// The kind of a node.
    #[must_use]
    pub fn kind(&self, id: CellId) -> CellKind {
        self.kinds[id.index()]
    }

    /// The name of a node.
    #[must_use]
    pub fn node_name(&self, id: CellId) -> &str {
        &self.names[id.index()]
    }

    /// Looks up a node by name.
    #[must_use]
    pub fn find(&self, name: &str) -> Option<CellId> {
        self.names
            .iter()
            .position(|n| n == name)
            .map(CellId::from_index)
    }

    /// True if the node is a register (`R`).
    #[must_use]
    pub fn is_register(&self, id: CellId) -> bool {
        self.kinds[id.index()] == CellKind::Dff
    }

    /// True if the node is a primary input.
    #[must_use]
    pub fn is_input(&self, id: CellId) -> bool {
        self.kinds[id.index()] == CellKind::Input
    }

    /// Number of register nodes.
    #[must_use]
    pub fn num_registers(&self) -> usize {
        self.kinds.iter().filter(|&&k| k == CellKind::Dff).count()
    }

    /// The fan-in drivers of a node, in pin order.
    #[must_use]
    pub fn fanin(&self, id: CellId) -> &[CellId] {
        self.csr.fanin(id)
    }

    /// The net driven by `id` (may have zero sinks).
    #[must_use]
    pub fn net(&self, id: NetId) -> &Net {
        &self.nets[id.index()]
    }

    /// All nets with at least one sink.
    pub fn nets(&self) -> impl Iterator<Item = (NetId, &Net)> {
        self.nets
            .iter()
            .enumerate()
            .filter(|(_, n)| !n.sinks.is_empty())
            .map(|(i, n)| (CellId::from_index(i), n))
    }

    /// All branches, net by net.
    pub fn branches(&self) -> impl Iterator<Item = Branch> + '_ {
        self.nets().flat_map(|(net, n)| {
            n.sinks.iter().map(move |&sink| Branch {
                net,
                src: n.src,
                sink,
            })
        })
    }

    /// Primary-output nets.
    #[must_use]
    pub fn outputs(&self) -> &[NetId] {
        &self.outputs
    }

    /// The distinct undirected neighbours of a node (sources of its fan-in
    /// nets and sinks of its own net) — the adjacency used when clusters are
    /// grown over uncut nets.
    ///
    /// Returned in ascending node-id order with duplicates and self-loops
    /// removed, as a borrowed slice of the precomputed [`Csr`] row: the
    /// old implementation cloned the fan-in `Vec`, extended, sorted and
    /// deduplicated on **every call**, which made the annealer and refiner
    /// allocate inside their innermost move loops.
    #[must_use]
    pub fn undirected_neighbors(&self, id: CellId) -> &[CellId] {
        self.csr.undirected(id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppet_netlist::data;

    #[test]
    fn s27_graph_shape() {
        let g = CircuitGraph::from_circuit(&data::s27());
        assert_eq!(g.num_nodes(), 17);
        assert_eq!(g.num_registers(), 3);
        // Every net's sinks agree with the cells' fan-ins.
        let total_pins: usize = g.nodes().map(|id| g.fanin(id).len()).sum();
        assert_eq!(g.num_branches(), total_pins);
    }

    #[test]
    fn multi_fanout_nets_are_single_nets() {
        let g = CircuitGraph::from_circuit(&data::s27());
        // G8 feeds G15 and G16: one net, two branches.
        let g8 = g.find("G8").unwrap();
        assert_eq!(g.net(g8).degree(), 2);
        assert_eq!(g.net(g8).src(), g8);
    }

    #[test]
    fn output_only_nets_have_no_sinks() {
        let g = CircuitGraph::from_circuit(&data::s27());
        let g17 = g.find("G17").unwrap();
        assert_eq!(g.net(g17).degree(), 0);
        assert!(g.outputs().contains(&g17));
        // Zero-sink nets are excluded from `nets()`.
        assert!(g.nets().all(|(_, n)| n.degree() > 0));
    }

    #[test]
    fn undirected_neighbors_are_symmetric() {
        let g = CircuitGraph::from_circuit(&data::s27());
        for a in g.nodes() {
            for &b in g.undirected_neighbors(a) {
                assert!(
                    g.undirected_neighbors(b).contains(&a),
                    "{} <-> {}",
                    g.node_name(a),
                    g.node_name(b)
                );
            }
        }
    }

    #[test]
    fn undirected_neighbor_order_is_pinned() {
        // The adjacency the partitioners iterate is a contract: ascending
        // node id, deduplicated, no self-loops. G11 drives G17, G10 and
        // DFF G6 and is driven by G5 and G9.
        let g = CircuitGraph::from_circuit(&data::s27());
        let g11 = g.find("G11").unwrap();
        let expected: Vec<CellId> = ["G5", "G6", "G9", "G10", "G17"]
            .iter()
            .map(|n| g.find(n).unwrap())
            .collect();
        let mut sorted = expected.clone();
        sorted.sort_unstable();
        assert_eq!(g.undirected_neighbors(g11), &sorted[..]);
        // And on every node the row equals the old per-call derivation.
        for v in g.nodes() {
            let mut reference: Vec<CellId> = g.fanin(v).to_vec();
            reference.extend_from_slice(g.net(v).sinks());
            reference.sort_unstable();
            reference.dedup();
            reference.retain(|&x| x != v);
            assert_eq!(g.undirected_neighbors(v), &reference[..], "node {v}");
        }
    }

    #[test]
    fn find_by_name() {
        let g = CircuitGraph::from_circuit(&data::s27());
        assert!(g.find("G0").is_some());
        assert!(g.find("nope").is_none());
        let g0 = g.find("G0").unwrap();
        assert!(g.is_input(g0));
        assert!(!g.is_register(g0));
    }
}
