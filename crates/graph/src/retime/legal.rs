//! The retiming principles of the paper's §2.2 as checkable predicates.
//!
//! * **Lemma 1** — for a path `p`, `f_ρ(p) = f(p) + ρ(v_n) − ρ(v_0)`;
//! * **Corollary 2** — on any directed cycle, `f_ρ(p) = f(p)`;
//! * **Corollary 3** — a retiming is *legal* when every retimed edge weight
//!   is non-negative.

use crate::retime::weights::{EdgeId, RetimeGraph};

/// A retiming assignment: one integer lag per retime-graph node.
pub type Retiming = Vec<i64>;

/// The retimed weight of an edge: `w_ρ(e) = w(e) + ρ(head) − ρ(tail)`.
///
/// # Examples
///
/// ```
/// use ppet_graph::{retime::{retimed_weight, RetimeGraph}, CircuitGraph};
/// use ppet_netlist::data;
///
/// let g = CircuitGraph::from_circuit(&data::s27());
/// let rg = RetimeGraph::from_graph(&g).unwrap();
/// let identity = vec![0i64; rg.num_nodes()];
/// for (i, e) in rg.edges().iter().enumerate() {
///     let id = ppet_graph::retime::EdgeId::from_index(i);
///     assert_eq!(retimed_weight(&rg, &identity, id), i64::from(e.weight));
/// }
/// ```
#[must_use]
pub fn retimed_weight(rg: &RetimeGraph, r: &Retiming, edge: EdgeId) -> i64 {
    let e = rg.edge(edge);
    i64::from(e.weight) + r[e.to.index()] - r[e.from.index()]
}

/// Corollary 3: every retimed edge weight is non-negative.
///
/// # Panics
///
/// Panics if `r.len() != rg.num_nodes()`.
#[must_use]
pub fn is_legal(rg: &RetimeGraph, r: &Retiming) -> bool {
    assert_eq!(r.len(), rg.num_nodes(), "one lag per node required");
    (0..rg.edges().len()).all(|i| retimed_weight(rg, r, EdgeId::from_index(i)) >= 0)
}

/// Lemma 1 for an explicit edge path: total retimed weight of the path.
///
/// # Panics
///
/// Panics if consecutive edges do not share endpoints (not a path).
#[must_use]
pub fn retimed_path_weight(rg: &RetimeGraph, r: &Retiming, path: &[EdgeId]) -> i64 {
    validate_path(rg, path);
    path.iter().map(|&e| retimed_weight(rg, r, e)).sum()
}

/// The original register count of an edge path (`f(p)`).
///
/// # Panics
///
/// Panics if consecutive edges do not share endpoints (not a path).
#[must_use]
pub fn path_weight(rg: &RetimeGraph, path: &[EdgeId]) -> i64 {
    validate_path(rg, path);
    path.iter().map(|&e| i64::from(rg.edge(e).weight)).sum()
}

fn validate_path(rg: &RetimeGraph, path: &[EdgeId]) {
    for pair in path.windows(2) {
        assert_eq!(
            rg.edge(pair[0]).to,
            rg.edge(pair[1]).from,
            "edges do not form a path"
        );
    }
}

impl EdgeId {
    /// Creates an `EdgeId` from a dense index (for iteration code).
    #[must_use]
    pub fn from_index(i: usize) -> Self {
        Self(u32::try_from(i).expect("edge index exceeds u32"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::CircuitGraph;
    use ppet_netlist::data;
    use ppet_prng::{Rng, Xoshiro256PlusPlus};

    fn rg() -> RetimeGraph {
        let g = CircuitGraph::from_circuit(&data::s27());
        RetimeGraph::from_graph(&g).unwrap()
    }

    #[test]
    fn identity_retiming_is_legal() {
        let rg = rg();
        assert!(is_legal(&rg, &vec![0; rg.num_nodes()]));
    }

    #[test]
    fn lemma1_holds_for_random_retimings_and_paths() {
        let rg = rg();
        let mut prng = Xoshiro256PlusPlus::seed_from(4);
        for _ in 0..100 {
            let r: Retiming = (0..rg.num_nodes())
                .map(|_| prng.gen_range(-3..=3))
                .collect();
            // Random walk path of up to 6 edges.
            let start = EdgeId::from_index(prng.gen_index(rg.edges().len()));
            let mut path = vec![start];
            for _ in 0..5 {
                let tail = rg.edge(*path.last().unwrap()).to;
                let outs = rg.out_edges(tail);
                if outs.is_empty() {
                    break;
                }
                path.push(outs[prng.gen_index(outs.len())]);
            }
            let v0 = rg.edge(path[0]).from;
            let vn = rg.edge(*path.last().unwrap()).to;
            let lhs = retimed_path_weight(&rg, &r, &path);
            let rhs = path_weight(&rg, &path) + r[vn.index()] - r[v0.index()];
            assert_eq!(lhs, rhs, "Lemma 1 violated");
        }
    }

    #[test]
    fn corollary2_cycles_preserve_weight() {
        // Find cycles by random walking until we return to the start node;
        // by Lemma 1 the retimed weight must equal the original.
        let rg = rg();
        let mut prng = Xoshiro256PlusPlus::seed_from(9);
        let mut found = 0;
        'outer: for _ in 0..500 {
            let start_edge = EdgeId::from_index(prng.gen_index(rg.edges().len()));
            let origin = rg.edge(start_edge).from;
            let mut path = vec![start_edge];
            for _ in 0..20 {
                let tail = rg.edge(*path.last().unwrap()).to;
                if tail == origin {
                    let r: Retiming = (0..rg.num_nodes())
                        .map(|_| prng.gen_range(-5..=5))
                        .collect();
                    assert_eq!(
                        retimed_path_weight(&rg, &r, &path),
                        path_weight(&rg, &path),
                        "Corollary 2 violated"
                    );
                    found += 1;
                    continue 'outer;
                }
                let outs = rg.out_edges(tail);
                if outs.is_empty() {
                    continue 'outer;
                }
                path.push(outs[prng.gen_index(outs.len())]);
            }
        }
        assert!(found > 0, "no cycles sampled in s27 (unexpected)");
    }

    #[test]
    fn illegal_retiming_detected() {
        let rg = rg();
        // Find a zero-weight edge and push its tail forward: w_r < 0.
        let (i, e) = rg
            .edges()
            .iter()
            .enumerate()
            .find(|(_, e)| e.weight == 0)
            .expect("s27 has zero-weight edges");
        let mut r = vec![0i64; rg.num_nodes()];
        r[e.from.index()] = 1;
        assert!(retimed_weight(&rg, &r, EdgeId::from_index(i)) < 0);
        assert!(!is_legal(&rg, &r));
    }

    #[test]
    #[should_panic(expected = "path")]
    fn non_path_rejected() {
        let rg = rg();
        // Two arbitrary edges that (very likely) do not chain; find a
        // definite non-chaining pair.
        let e0 = EdgeId::from_index(0);
        let bad = (0..rg.edges().len())
            .map(EdgeId::from_index)
            .find(|&e| rg.edge(e).from != rg.edge(e0).to)
            .unwrap();
        let _ = path_weight(&rg, &[e0, bad]);
    }
}
