//! Leiserson–Saxe retiming for PPET (paper §2.2–§2.3).
//!
//! Retiming relocates registers across combinational logic without changing
//! circuit function. The paper uses it to move existing flip-flops onto the
//! partition cut nets, where they become CBIT bits for 0.9 DFF-areas instead
//! of full multiplexed test registers at 2.3 DFF-areas.
//!
//! The module is organized around three pieces:
//!
//! * [`RetimeGraph`] — the register-weighted graph `G_r`: nodes are
//!   combinational cells plus primary inputs and virtual output sinks;
//!   each edge is a register chain between two of them, annotated with the
//!   original nets it passes through so partition cut nets can be mapped
//!   onto it;
//! * `legal` — the paper's Lemma 1 (path weight transformation),
//!   Corollary 2 (cycle invariance) and Corollary 3 (legality) as checkable
//!   predicates;
//! * [`CutRealizer`] — a difference-constraint solver that finds a legal
//!   retiming placing a register on as many cut nets as possible, reporting
//!   the excess cuts that must fall back to multiplexed test registers;
//! * [`minimize_registers`] — exact minimum-register retiming (min-cost
//!   flow over the LP dual), optionally honouring the realizer's cut
//!   demands — the "further optimization" the paper's conclusion points
//!   at;
//! * [`apply`] — materializes a retiming back into a
//!   [`Circuit`](ppet_netlist::Circuit), with register sharing at fan-outs.

mod apply;
mod legal;
mod minarea;
mod solver;
mod weights;

pub use apply::{apply, shared_register_count, ApplyRetimingError};
pub use legal::{is_legal, path_weight, retimed_path_weight, retimed_weight, Retiming};
pub use minarea::{minimize_registers, minimize_shared_registers, MinAreaResult};
pub use solver::{CutRealization, CutRealizer, IoLatency};
pub use weights::{BuildRetimeGraphError, EdgeId, REdge, RNodeId, RNodeKind, RetimeGraph};
