//! The register-weighted retiming graph.

use std::error::Error;
use std::fmt;

use ppet_netlist::{CellId, NetId};

use crate::graph::CircuitGraph;

/// Identifier of a node in a [`RetimeGraph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RNodeId(pub(crate) u32);

impl RNodeId {
    /// Dense index.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Identifier of an edge in a [`RetimeGraph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EdgeId(pub(crate) u32);

impl EdgeId {
    /// Dense index.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// What a retime-graph node stands for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RNodeKind {
    /// A primary input of the circuit.
    Input(CellId),
    /// A combinational cell (gate, inverter, buffer).
    Comb(CellId),
    /// A virtual sink for one primary output; the payload is the net that
    /// feeds the output.
    Output(NetId),
}

/// One edge of the retiming graph: a pure register chain (possibly empty)
/// from one combinational node to another.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct REdge {
    /// Tail node (the driver).
    pub from: RNodeId,
    /// Head node (the consumer).
    pub to: RNodeId,
    /// Number of registers on the chain — the Leiserson–Saxe `w(e)`.
    pub weight: u32,
    /// The register cells traversed, in order from `from` to `to`.
    pub via: Vec<CellId>,
    /// The original nets this edge passes through, in order: the driver's
    /// net first, then the net of each register in `via`. A partition cut
    /// on any of these nets demands a register on this edge.
    pub nets: Vec<NetId>,
}

/// Error raised when a circuit cannot be converted to a retiming graph.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum BuildRetimeGraphError {
    /// The circuit contains a register-only cycle (a ring of flip-flops
    /// with no combinational cell). Such rings carry no logic and cannot
    /// host cut constraints; they do not occur in the benchmarks.
    RegisterRing {
        /// A register on the ring.
        register: CellId,
    },
}

impl fmt::Display for BuildRetimeGraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::RegisterRing { register } => {
                write!(f, "register-only cycle through {register} is not retimable")
            }
        }
    }
}

impl Error for BuildRetimeGraphError {}

/// The Leiserson–Saxe register-weighted view of a circuit.
///
/// # Examples
///
/// ```
/// use ppet_graph::{retime::RetimeGraph, CircuitGraph};
/// use ppet_netlist::data;
///
/// let g = CircuitGraph::from_circuit(&data::s27());
/// let rg = RetimeGraph::from_graph(&g).expect("no register rings in s27");
/// // Total edge weight equals... at least the number of registers.
/// let total: u32 = rg.edges().iter().map(|e| e.weight).sum();
/// assert!(total >= 3);
/// ```
#[derive(Debug, Clone)]
pub struct RetimeGraph {
    nodes: Vec<RNodeKind>,
    edges: Vec<REdge>,
    out_edges: Vec<Vec<EdgeId>>,
    in_edges: Vec<Vec<EdgeId>>,
    rnode_of_cell: Vec<Option<RNodeId>>,
    /// For every original cell: the combinational/PI origin of its driver
    /// chain and the register depth of its net from that origin. For a
    /// comb/PI cell this is `(itself, 0)`; for a register it is
    /// `(chain origin, number of registers up to and including itself)`.
    chain: Vec<(CellId, u32)>,
    /// `edges_on_net[net] = edges whose chain passes through that net`.
    edges_on_net: Vec<Vec<EdgeId>>,
}

impl RetimeGraph {
    /// Builds the retiming graph of `graph`.
    ///
    /// # Errors
    ///
    /// Returns [`BuildRetimeGraphError::RegisterRing`] if the circuit
    /// contains a cycle made only of registers.
    pub fn from_graph(graph: &CircuitGraph) -> Result<Self, BuildRetimeGraphError> {
        let n = graph.num_nodes();
        let mut nodes = Vec::new();
        let mut rnode_of_cell = vec![None; n];
        for v in graph.nodes() {
            if graph.is_register(v) {
                continue;
            }
            let id = RNodeId(nodes.len() as u32);
            if graph.is_input(v) {
                nodes.push(RNodeKind::Input(v));
            } else {
                nodes.push(RNodeKind::Comb(v));
            }
            rnode_of_cell[v.index()] = Some(id);
        }
        // Virtual sink per primary output.
        let mut po_node_of_net: Vec<(NetId, RNodeId)> = Vec::new();
        for &po in graph.outputs() {
            let id = RNodeId(nodes.len() as u32);
            nodes.push(RNodeKind::Output(po));
            po_node_of_net.push((po, id));
        }

        // Chain origin/depth for every cell; detects register rings.
        let mut chain: Vec<Option<(CellId, u32)>> = vec![None; n];
        for v in graph.nodes() {
            if !graph.is_register(v) {
                chain[v.index()] = Some((v, 0));
            }
        }
        for v in graph.nodes() {
            if chain[v.index()].is_some() {
                continue;
            }
            // Walk up the single-driver chain of registers.
            let mut path = vec![v];
            let mut cur = v;
            let (origin, base) = loop {
                let driver = graph.fanin(cur)[0];
                if let Some(oc) = chain[driver.index()] {
                    break oc;
                }
                if path.contains(&driver) {
                    return Err(BuildRetimeGraphError::RegisterRing { register: driver });
                }
                path.push(driver);
                cur = driver;
            };
            // `path` runs v, parent, ..., last-unresolved; assign depths from
            // the resolved end backwards.
            for (i, &reg) in path.iter().rev().enumerate() {
                chain[reg.index()] = Some((origin, base + 1 + i as u32));
            }
        }
        let chain: Vec<(CellId, u32)> = chain
            .into_iter()
            .map(|c| c.expect("all chains resolved"))
            .collect();

        // Trace edges from every comb/PI node.
        let mut edges: Vec<REdge> = Vec::new();
        let mut edges_on_net: Vec<Vec<EdgeId>> = vec![Vec::new(); n];
        for u in graph.nodes() {
            let Some(from) = rnode_of_cell[u.index()] else {
                continue;
            };
            // Depth-first over the register chain tree rooted at u's net.
            // Each stack item: (net, weight so far, registers so far).
            let mut stack: Vec<(NetId, u32, Vec<CellId>)> = vec![(u, 0, Vec::new())];
            while let Some((net, w, via)) = stack.pop() {
                for &sink in graph.net(net).sinks() {
                    if graph.is_register(sink) {
                        let mut via2 = via.clone();
                        via2.push(sink);
                        stack.push((sink, w + 1, via2));
                    } else {
                        let to = rnode_of_cell[sink.index()].expect("comb/PI has an rnode");
                        push_edge(&mut edges, &mut edges_on_net, from, to, w, &via, u);
                    }
                }
                // Primary output attached to this net?
                for &(po_net, po_node) in &po_node_of_net {
                    if po_net == net {
                        push_edge(&mut edges, &mut edges_on_net, from, po_node, w, &via, u);
                    }
                }
            }
        }

        let mut out_edges = vec![Vec::new(); nodes.len()];
        let mut in_edges = vec![Vec::new(); nodes.len()];
        for (i, e) in edges.iter().enumerate() {
            out_edges[e.from.index()].push(EdgeId(i as u32));
            in_edges[e.to.index()].push(EdgeId(i as u32));
        }

        Ok(Self {
            nodes,
            edges,
            out_edges,
            in_edges,
            rnode_of_cell,
            chain,
            edges_on_net,
        })
    }

    /// The nodes of the graph.
    #[must_use]
    pub fn nodes(&self) -> &[RNodeKind] {
        &self.nodes
    }

    /// Number of nodes.
    #[must_use]
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// The edges of the graph.
    #[must_use]
    pub fn edges(&self) -> &[REdge] {
        &self.edges
    }

    /// One edge.
    #[must_use]
    pub fn edge(&self, id: EdgeId) -> &REdge {
        &self.edges[id.index()]
    }

    /// Edges leaving `node`.
    #[must_use]
    pub fn out_edges(&self, node: RNodeId) -> &[EdgeId] {
        &self.out_edges[node.index()]
    }

    /// Edges entering `node`.
    #[must_use]
    pub fn in_edges(&self, node: RNodeId) -> &[EdgeId] {
        &self.in_edges[node.index()]
    }

    /// The retime-graph node of a combinational or input cell.
    #[must_use]
    pub fn rnode_of(&self, cell: CellId) -> Option<RNodeId> {
        self.rnode_of_cell.get(cell.index()).copied().flatten()
    }

    /// The chain origin and register depth of a cell's output net; see the
    /// field docs on [`RetimeGraph`].
    #[must_use]
    pub fn chain_of(&self, cell: CellId) -> (CellId, u32) {
        self.chain[cell.index()]
    }

    /// The edges whose register chain passes through `net` — a partition
    /// cut on `net` requires one register on each of these edges.
    #[must_use]
    pub fn edges_on_net(&self, net: NetId) -> &[EdgeId] {
        &self.edges_on_net[net.index()]
    }
}

fn push_edge(
    edges: &mut Vec<REdge>,
    edges_on_net: &mut [Vec<EdgeId>],
    from: RNodeId,
    to: RNodeId,
    weight: u32,
    via: &[CellId],
    origin_net: NetId,
) {
    let id = EdgeId(edges.len() as u32);
    let mut nets = Vec::with_capacity(via.len() + 1);
    nets.push(origin_net);
    nets.extend(via.iter().copied());
    for &net in &nets {
        edges_on_net[net.index()].push(id);
    }
    edges.push(REdge {
        from,
        to,
        weight,
        via: via.to_vec(),
        nets,
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppet_netlist::{bench_format, data};

    fn s27_rg() -> (CircuitGraph, RetimeGraph) {
        let g = CircuitGraph::from_circuit(&data::s27());
        let rg = RetimeGraph::from_graph(&g).unwrap();
        (g, rg)
    }

    #[test]
    fn node_census() {
        let (g, rg) = s27_rg();
        // 17 cells − 3 registers + 1 virtual PO = 15 nodes.
        assert_eq!(rg.num_nodes(), g.num_nodes() - 3 + 1);
        let inputs = rg
            .nodes()
            .iter()
            .filter(|k| matches!(k, RNodeKind::Input(_)))
            .count();
        assert_eq!(inputs, 4);
    }

    #[test]
    fn edge_weights_count_registers() {
        let (g, rg) = s27_rg();
        // G10 drives DFF G5 which drives G11: edge G10 -> G11 with weight 1.
        let g10 = rg.rnode_of(g.find("G10").unwrap()).unwrap();
        let g11 = rg.rnode_of(g.find("G11").unwrap()).unwrap();
        let e = rg
            .out_edges(g10)
            .iter()
            .map(|&id| rg.edge(id))
            .find(|e| e.to == g11)
            .expect("edge exists");
        assert_eq!(e.weight, 1);
        assert_eq!(e.via.len(), 1);
        assert_eq!(g.node_name(e.via[0]), "G5");
        // The edge passes through the nets of G10 and G5.
        assert_eq!(e.nets.len(), 2);
    }

    #[test]
    fn zero_weight_edges_for_direct_connections() {
        let (g, rg) = s27_rg();
        let g14 = rg.rnode_of(g.find("G14").unwrap()).unwrap();
        let g8 = rg.rnode_of(g.find("G8").unwrap()).unwrap();
        let direct = rg
            .out_edges(g14)
            .iter()
            .map(|&id| rg.edge(id))
            .any(|e| e.to == g8 && e.weight == 0);
        assert!(direct);
    }

    #[test]
    fn po_virtual_node_receives_edge() {
        let (g, rg) = s27_rg();
        let po_node = rg
            .nodes()
            .iter()
            .position(|k| matches!(k, RNodeKind::Output(_)))
            .unwrap();
        assert!(!rg.in_edges(RNodeId(po_node as u32)).is_empty());
        let _ = g;
    }

    #[test]
    fn chain_depths() {
        let (g, rg) = s27_rg();
        let g10 = g.find("G10").unwrap();
        let g5 = g.find("G5").unwrap();
        assert_eq!(rg.chain_of(g10), (g10, 0));
        assert_eq!(rg.chain_of(g5), (g10, 1));
    }

    #[test]
    fn edges_on_net_maps_register_nets() {
        let (g, rg) = s27_rg();
        // A cut on DFF G5's output net constrains the edges through G5.
        let g5 = g.find("G5").unwrap();
        let edges = rg.edges_on_net(g5);
        assert!(!edges.is_empty());
        for &e in edges {
            assert!(rg.edge(e).via.contains(&g5));
        }
    }

    #[test]
    fn total_edge_branches_match_pin_count() {
        let (g, rg) = s27_rg();
        // Every comb/PI pin of every comb cell yields exactly one edge;
        // plus one per PO. Register D-pins are absorbed into chains.
        let comb_pins: usize = g
            .nodes()
            .filter(|&v| g.kind(v).is_combinational())
            .map(|v| g.fanin(v).len())
            .sum();
        assert_eq!(rg.edges().len(), comb_pins + g.outputs().len());
    }

    #[test]
    fn register_ring_rejected() {
        let c = bench_format::parse("ring", "OUTPUT(q1)\nq1 = DFF(q2)\nq2 = DFF(q1)\n").unwrap();
        let g = CircuitGraph::from_circuit(&c);
        let err = RetimeGraph::from_graph(&g).unwrap_err();
        assert!(matches!(err, BuildRetimeGraphError::RegisterRing { .. }));
        assert!(err.to_string().contains("not retimable"));
    }

    #[test]
    fn dff_chain_produces_weight_two() {
        let c = bench_format::parse(
            "chain",
            "INPUT(a)\nOUTPUT(y)\nq1 = DFF(a)\nq2 = DFF(q1)\ny = NOT(q2)\n",
        )
        .unwrap();
        let g = CircuitGraph::from_circuit(&c);
        let rg = RetimeGraph::from_graph(&g).unwrap();
        let a = rg.rnode_of(g.find("a").unwrap()).unwrap();
        let y = rg.rnode_of(g.find("y").unwrap()).unwrap();
        let e = rg
            .out_edges(a)
            .iter()
            .map(|&id| rg.edge(id))
            .find(|e| e.to == y)
            .unwrap();
        assert_eq!(e.weight, 2);
        assert_eq!(e.nets.len(), 3); // a's net, q1's net, q2's net
    }
}
