//! Realizing CBIT register positions through legal retiming.
//!
//! Given the partition's cut nets, the solver searches for a legal retiming
//! that leaves at least one register on every cut. The constraint system is
//! exactly the paper's §2.2/§2.3 conditions:
//!
//! * legality (Corollary 3): for every edge, `ρ(tail) − ρ(head) ≤ w(e)`;
//! * a register chain crossing `c` distinct cut nets must carry at least
//!   `c` registers after retiming: `ρ(tail) − ρ(head) ≤ w(e) − c`;
//! * optionally, fixed I/O latency ties all primary inputs and outputs to a
//!   common lag (the conservative interpretation; the paper's Eq. (1)
//!   reading permits latency changes, which is the default here).
//!
//! When the system is infeasible the offending cuts necessarily lie on a
//! negative-weight constraint cycle — by Corollary 2 the registers on a
//! cycle are invariant, so a cycle asking for more registers than it owns
//! cannot be retimed (`χ(p) > f(p)`, paper §2.3). The solver then drops the
//! cut that appears on the most constraint-cycle edges (deterministic
//! tie-break by net id) and re-solves; dropped cuts are reported as *excess*
//! and must be realized as multiplexed test registers (A_CELL + MUX,
//! Fig. 3(c)) instead of converted functional flip-flops (Fig. 3(b)).

use std::collections::BTreeSet;

use ppet_netlist::NetId;

use crate::bellman::{DifferenceConstraints, Solution};
use crate::retime::legal::Retiming;
use crate::retime::weights::{EdgeId, RNodeKind, RetimeGraph};

/// How primary I/O latency is treated during retiming.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum IoLatency {
    /// Inputs and outputs may be lagged freely — the paper's reading of its
    /// Eq. (1) ("additional registers can be added arbitrarily"). Default.
    #[default]
    Flexible,
    /// All primary inputs and outputs keep their relative latency (they
    /// share one lag value), the conservative choice for drop-in designs.
    Fixed,
}

/// The result of [`CutRealizer::realize`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CutRealization {
    /// A legal retiming satisfying every covered cut.
    pub retiming: Retiming,
    /// Cut nets that hold at least one register after retiming — these cost
    /// only the three A_CELL gates (0.9 DFF) each.
    pub covered: Vec<NetId>,
    /// Cut nets that cannot be covered — each needs A_CELL + MUX (2.3 DFF).
    pub excess: Vec<NetId>,
    /// Number of solve/drop iterations performed.
    pub iterations: usize,
}

/// Solver binding a [`RetimeGraph`] with an I/O latency policy.
///
/// # Examples
///
/// ```
/// use ppet_graph::{retime::{CutRealizer, RetimeGraph}, CircuitGraph};
/// use ppet_netlist::data;
///
/// let circuit = data::s27();
/// let g = CircuitGraph::from_circuit(&circuit);
/// let rg = RetimeGraph::from_graph(&g).unwrap();
/// // Ask for a register on G10's output (it already has one: DFF G5).
/// let cut = circuit.find("G10").unwrap();
/// let result = CutRealizer::new(&rg).realize(&[cut]);
/// assert_eq!(result.covered, vec![cut]);
/// assert!(result.excess.is_empty());
/// ```
#[derive(Debug)]
pub struct CutRealizer<'g> {
    rg: &'g RetimeGraph,
    io: IoLatency,
}

impl<'g> CutRealizer<'g> {
    /// Creates a solver with [`IoLatency::Flexible`].
    #[must_use]
    pub fn new(rg: &'g RetimeGraph) -> Self {
        Self {
            rg,
            io: IoLatency::Flexible,
        }
    }

    /// Sets the I/O latency policy.
    #[must_use]
    pub fn io_latency(mut self, io: IoLatency) -> Self {
        self.io = io;
        self
    }

    /// Finds a legal retiming covering as many of `cuts` as possible.
    ///
    /// Duplicate cut nets are coalesced. Cut nets that map to no register
    /// chain (for example a net whose only sink is unreachable logic) are
    /// reported as covered — nothing crosses them, so no test register is
    /// needed there.
    #[must_use]
    pub fn realize(&self, cuts: &[NetId]) -> CutRealization {
        let rg = self.rg;
        let mut active: BTreeSet<NetId> = cuts.iter().copied().collect();
        let mut excess: Vec<NetId> = Vec::new();
        let mut iterations = 0;

        loop {
            iterations += 1;
            let mut sys: DifferenceConstraints<Option<EdgeId>> =
                DifferenceConstraints::new(rg.num_nodes());
            // Legality constraints.
            for (i, e) in rg.edges().iter().enumerate() {
                let demand = e.nets.iter().filter(|n| active.contains(n)).count() as i64;
                let tag = if demand > 0 {
                    Some(EdgeId::from_index(i))
                } else {
                    None
                };
                sys.add(
                    e.from.index(),
                    e.to.index(),
                    i64::from(e.weight) - demand,
                    tag,
                );
            }
            // Optional I/O tie: chain all IO nodes with 0/0 constraints.
            if self.io == IoLatency::Fixed {
                let ios: Vec<usize> = rg
                    .nodes()
                    .iter()
                    .enumerate()
                    .filter(|(_, k)| matches!(k, RNodeKind::Input(_) | RNodeKind::Output(_)))
                    .map(|(i, _)| i)
                    .collect();
                for pair in ios.windows(2) {
                    sys.add(pair[0], pair[1], 0, None);
                    sys.add(pair[1], pair[0], 0, None);
                }
            }

            match sys.solve() {
                Solution::Feasible(r) => {
                    excess.sort_unstable();
                    excess.dedup();
                    let covered: Vec<NetId> = active.into_iter().collect();
                    return CutRealization {
                        retiming: r,
                        covered,
                        excess,
                        iterations,
                    };
                }
                Solution::NegativeCycle(cycle) => {
                    // Count how often each active cut appears on the cycle's
                    // demanding edges; drop the most frequent (ties: larger
                    // net id, deterministic).
                    let mut counts: Vec<(NetId, usize)> = Vec::new();
                    for c in &cycle {
                        let Some(edge) = c.tag else { continue };
                        for net in &rg.edge(edge).nets {
                            if active.contains(net) {
                                match counts.iter_mut().find(|(n, _)| n == net) {
                                    Some((_, k)) => *k += 1,
                                    None => counts.push((*net, 1)),
                                }
                            }
                        }
                    }
                    let victim = counts
                        .iter()
                        .max_by_key(|&&(n, k)| (k, n))
                        .map(|&(n, _)| n)
                        .expect("negative cycle must involve a cut constraint");
                    active.remove(&victim);
                    excess.push(victim);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::CircuitGraph;
    use crate::retime::legal::{is_legal, retimed_weight};
    use ppet_netlist::{bench_format, data, Circuit};

    fn setup(c: &Circuit) -> (CircuitGraph, RetimeGraph) {
        let g = CircuitGraph::from_circuit(c);
        let rg = RetimeGraph::from_graph(&g).unwrap();
        (g, rg)
    }

    /// Checks the realization invariant: covered cuts have enough registers
    /// on every edge through them.
    fn assert_covered(rg: &RetimeGraph, real: &CutRealization) {
        assert!(is_legal(rg, &real.retiming));
        for (i, e) in rg.edges().iter().enumerate() {
            let demand = e.nets.iter().filter(|n| real.covered.contains(n)).count() as i64;
            let w = retimed_weight(rg, &real.retiming, EdgeId::from_index(i));
            assert!(w >= demand, "edge {i}: w_r={w} demand={demand}");
        }
    }

    #[test]
    fn register_already_on_cut_is_free() {
        let c = data::s27();
        let (_, rg) = setup(&c);
        let cut = c.find("G10").unwrap(); // feeds DFF G5
        let real = CutRealizer::new(&rg).realize(&[cut]);
        assert_eq!(real.covered, vec![cut]);
        assert!(real.excess.is_empty());
        assert_covered(&rg, &real);
    }

    #[test]
    fn acyclic_cut_is_satisfiable_with_flexible_io() {
        // A purely feed-forward circuit: a cut anywhere can be retimed by
        // borrowing latency from the I/O boundary.
        let c = bench_format::parse(
            "ff",
            "INPUT(a)\nINPUT(b)\nOUTPUT(y)\ng1 = AND(a, b)\ng2 = OR(g1, a)\ny = NOT(g2)\n",
        )
        .unwrap();
        let (_, rg) = setup(&c);
        let cut = c.find("g1").unwrap();
        let real = CutRealizer::new(&rg).realize(&[cut]);
        assert_eq!(real.covered, vec![cut]);
        assert_covered(&rg, &real);
    }

    #[test]
    fn fixed_io_makes_feed_forward_cut_excess() {
        // With fixed I/O latency no register can be conjured on a pure
        // combinational path from input to output.
        let c = bench_format::parse(
            "ff",
            "INPUT(a)\nINPUT(b)\nOUTPUT(y)\ng1 = AND(a, b)\ny = NOT(g1)\n",
        )
        .unwrap();
        let (_, rg) = setup(&c);
        let cut = c.find("g1").unwrap();
        let real = CutRealizer::new(&rg)
            .io_latency(IoLatency::Fixed)
            .realize(&[cut]);
        assert_eq!(real.excess, vec![cut]);
        assert!(real.covered.is_empty());
        assert_covered(&rg, &real);
    }

    #[test]
    fn loop_with_one_register_covers_one_of_two_cuts() {
        // q = DFF(g2); g1 = AND(q, x); g2 = OR(g1, x): the loop
        // q -> g1 -> g2 -> q holds exactly one register. Cutting both g1
        // and g2 demands two registers on the cycle: impossible
        // (Corollary 2), so exactly one cut must become excess.
        let c = bench_format::parse(
            "loop1",
            "INPUT(x)\nOUTPUT(g2)\nq = DFF(g2)\ng1 = AND(q, x)\ng2 = OR(g1, x)\n",
        )
        .unwrap();
        let (_, rg) = setup(&c);
        let cuts = [c.find("g1").unwrap(), c.find("g2").unwrap()];
        let real = CutRealizer::new(&rg).realize(&cuts);
        assert_eq!(real.covered.len(), 1, "{real:?}");
        assert_eq!(real.excess.len(), 1);
        assert_covered(&rg, &real);
    }

    #[test]
    fn two_register_loop_covers_two_cuts() {
        let c = bench_format::parse(
            "loop2",
            "INPUT(x)\nOUTPUT(g2)\nq1 = DFF(g2)\nq2 = DFF(q1)\n\
             g1 = AND(q2, x)\ng2 = OR(g1, x)\n",
        )
        .unwrap();
        let (_, rg) = setup(&c);
        let cuts = [c.find("g1").unwrap(), c.find("g2").unwrap()];
        let real = CutRealizer::new(&rg).realize(&cuts);
        assert_eq!(real.covered.len(), 2, "{real:?}");
        assert!(real.excess.is_empty());
        assert_covered(&rg, &real);
    }

    #[test]
    fn duplicate_cuts_coalesce() {
        let c = data::s27();
        let (_, rg) = setup(&c);
        let cut = c.find("G10").unwrap();
        let real = CutRealizer::new(&rg).realize(&[cut, cut, cut]);
        assert_eq!(real.covered.len(), 1);
    }

    #[test]
    fn s27_full_register_cut_set_is_coverable() {
        // Cutting every register output net must be satisfiable with the
        // identity-ish retiming: registers are already there.
        let c = data::s27();
        let (g, rg) = setup(&c);
        let cuts: Vec<_> = g.nodes().filter(|&v| g.is_register(v)).collect();
        let real = CutRealizer::new(&rg).realize(&cuts);
        assert_eq!(real.covered.len(), 3);
        assert!(real.excess.is_empty());
        assert_covered(&rg, &real);
    }

    #[test]
    fn iterations_reported() {
        let c = bench_format::parse(
            "loop1",
            "INPUT(x)\nOUTPUT(g2)\nq = DFF(g2)\ng1 = AND(q, x)\ng2 = OR(g1, x)\n",
        )
        .unwrap();
        let (_, rg) = setup(&c);
        let cuts = [c.find("g1").unwrap(), c.find("g2").unwrap()];
        let real = CutRealizer::new(&rg).realize(&cuts);
        assert!(real.iterations >= 2); // at least one drop happened
    }
}
