//! Materializing a retiming back into a circuit.
//!
//! Registers are re-instantiated along each retimed edge; chains leaving the
//! same driver share registers up to each branch's depth (the classic
//! fan-out sharing of Leiserson–Saxe), so the register count after retiming
//! is `Σ_v max_{e∈out(v)} w_ρ(e)`.
//!
//! Initial states are *not* recomputed: the new registers power up at the
//! simulator's reset value. Computing equivalent initial states is the
//! Touati–Brayton problem the paper cites as [16] and is orthogonal to the
//! area question studied here.

use std::error::Error;
use std::fmt;

use ppet_netlist::{CellId, CellKind, Circuit, NetId};

use crate::retime::legal::{retimed_weight, Retiming};
use crate::retime::weights::{EdgeId, RNodeKind, RetimeGraph};

/// Error raised by [`apply`].
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ApplyRetimingError {
    /// The retiming is illegal: the given edge would get a negative register
    /// count (violates the paper's Corollary 3).
    Illegal {
        /// The offending edge.
        edge: EdgeId,
        /// Its retimed weight.
        weight: i64,
    },
}

impl fmt::Display for ApplyRetimingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Illegal { edge, weight } => write!(
                f,
                "illegal retiming: edge {} would carry {weight} registers",
                edge.index()
            ),
        }
    }
}

impl Error for ApplyRetimingError {}

/// Number of registers the circuit will contain after applying `r`, with
/// fan-out sharing.
///
/// # Examples
///
/// ```
/// use ppet_graph::{retime::{shared_register_count, RetimeGraph}, CircuitGraph};
/// use ppet_netlist::data;
///
/// let g = CircuitGraph::from_circuit(&data::s27());
/// let rg = RetimeGraph::from_graph(&g).unwrap();
/// let identity = vec![0i64; rg.num_nodes()];
/// assert_eq!(shared_register_count(&rg, &identity), 3);
/// ```
#[must_use]
pub fn shared_register_count(rg: &RetimeGraph, r: &Retiming) -> usize {
    let mut total = 0i64;
    for node in 0..rg.num_nodes() {
        let node_id = crate::retime::weights::RNodeId(node as u32);
        let max_w = rg
            .out_edges(node_id)
            .iter()
            .map(|&e| retimed_weight(rg, r, e))
            .max()
            .unwrap_or(0);
        total += max_w.max(0);
    }
    usize::try_from(total).unwrap_or(0)
}

/// Applies a legal retiming to `circuit`, producing the retimed circuit.
///
/// Combinational cells keep their names; registers are re-created with
/// `<driver>__rt<k>` names. Primary outputs are reattached at their retimed
/// depths.
///
/// # Errors
///
/// Returns [`ApplyRetimingError::Illegal`] when any edge's retimed weight is
/// negative.
///
/// # Examples
///
/// ```
/// use ppet_graph::{retime::{apply, RetimeGraph}, CircuitGraph};
/// use ppet_netlist::data;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let circuit = data::s27();
/// let g = CircuitGraph::from_circuit(&circuit);
/// let rg = RetimeGraph::from_graph(&g)?;
/// let identity = vec![0i64; rg.num_nodes()];
/// let same = apply(&circuit, &rg, &identity)?;
/// assert_eq!(same.num_flip_flops(), 3);
/// # Ok(())
/// # }
/// ```
pub fn apply(
    circuit: &Circuit,
    rg: &RetimeGraph,
    r: &Retiming,
) -> Result<Circuit, ApplyRetimingError> {
    // Validate legality first.
    for i in 0..rg.edges().len() {
        let e = EdgeId::from_index(i);
        let w = retimed_weight(rg, r, e);
        if w < 0 {
            return Err(ApplyRetimingError::Illegal { edge: e, weight: w });
        }
    }

    let mut out = Circuit::new(format!("{}_retimed", circuit.name()));

    // 1. Create combinational/PI cells (empty fan-in, patched later).
    let mut new_id: Vec<Option<CellId>> = vec![None; circuit.num_cells()];
    for (id, cell) in circuit.iter() {
        match cell.kind() {
            CellKind::Dff => {}
            CellKind::Input => {
                let nid = out.add_input(cell.name()).expect("unique names");
                new_id[id.index()] = Some(nid);
            }
            kind => {
                let nid = out
                    .add_cell_deferred(cell.name(), kind)
                    .expect("names are unique in the source circuit");
                new_id[id.index()] = Some(nid);
            }
        }
    }

    // 2. Register chains: for each rnode, a chain of max out-edge weight.
    //    chain_cells[v][0] is v itself; [k] is the k-th register.
    let mut chain_cells: Vec<Vec<CellId>> = vec![Vec::new(); rg.num_nodes()];
    for (ni, kind) in rg.nodes().iter().enumerate() {
        let node = crate::retime::weights::RNodeId(ni as u32);
        let cell = match kind {
            RNodeKind::Input(c) | RNodeKind::Comb(c) => *c,
            RNodeKind::Output(_) => continue,
        };
        let base = new_id[cell.index()].expect("comb/PI created");
        let max_w = rg
            .out_edges(node)
            .iter()
            .map(|&e| retimed_weight(rg, r, e))
            .max()
            .unwrap_or(0);
        let mut chain = vec![base];
        for k in 1..=max_w {
            let name = format!("{}__rt{}", circuit.cell(cell).name(), k);
            let prev = *chain.last().expect("non-empty");
            let reg = out
                .add_cell_deferred(name, CellKind::Dff)
                .expect("generated register names are fresh");
            out.set_fanin(reg, vec![prev]).expect("driver exists");
            chain.push(reg);
        }
        chain_cells[ni] = chain;
    }

    // 3. Patch combinational fan-ins: the signal for a pin originally driven
    //    by cell p is the chain of p's origin at the retimed depth.
    let signal_at = |driver: CellId, consumer_rnode: crate::retime::weights::RNodeId| -> CellId {
        let (origin, _depth) = rg.chain_of(driver);
        let origin_rnode = rg.rnode_of(origin).expect("origin is comb/PI");
        // Retimed depth of this connection = w(e) + r(to) − r(from) for the
        // edge origin→consumer; equivalently depth + r(to) − r(origin) works
        // for every edge of the same (origin, consumer, weight) class.
        let (_, depth) = rg.chain_of(driver);
        let d = i64::from(depth) + r[consumer_rnode.index()] - r[origin_rnode.index()];
        let chain = &chain_cells[origin_rnode.index()];
        let idx = usize::try_from(d).expect("legal retiming keeps depths non-negative");
        chain[idx]
    };

    for (id, cell) in circuit.iter() {
        if !cell.kind().is_combinational() {
            continue;
        }
        let rnode = rg.rnode_of(id).expect("comb cell has rnode");
        let fanin: Vec<CellId> = cell.fanin().iter().map(|&p| signal_at(p, rnode)).collect();
        out.set_fanin(new_id[id.index()].expect("created"), fanin)
            .expect("drivers exist and arity is preserved");
    }

    // 4. Primary outputs. Two POs with different original latencies can
    //    land on the same retimed signal (flexible I/O lag); a buffer keeps
    //    them distinct pins so the output count survives.
    for (ni, kind) in rg.nodes().iter().enumerate() {
        if let RNodeKind::Output(po_net) = kind {
            let rnode = crate::retime::weights::RNodeId(ni as u32);
            let driver: NetId = *po_net;
            let mut sig = signal_at(driver, rnode);
            if out.is_output(sig) {
                let name = format!("{}__podup{}", out.cell(sig).name(), ni);
                let buf = out
                    .add_cell_deferred(name, CellKind::Buf)
                    .expect("fresh duplicate-output buffer name");
                out.set_fanin(buf, vec![sig]).expect("signal exists");
                sig = buf;
            }
            out.mark_output(sig).expect("signal exists");
        }
    }

    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::CircuitGraph;
    use crate::retime::solver::CutRealizer;
    use crate::scc::Scc;
    use ppet_netlist::{bench_format, data};

    fn setup(c: &Circuit) -> (CircuitGraph, RetimeGraph) {
        let g = CircuitGraph::from_circuit(c);
        let rg = RetimeGraph::from_graph(&g).unwrap();
        (g, rg)
    }

    #[test]
    fn identity_retiming_reproduces_register_count_and_structure() {
        let c = data::s27();
        let (_g, rg) = setup(&c);
        let identity = vec![0i64; rg.num_nodes()];
        let out = apply(&c, &rg, &identity).unwrap();
        assert_eq!(out.num_flip_flops(), c.num_flip_flops());
        assert_eq!(out.num_inputs(), c.num_inputs());
        assert_eq!(out.outputs().len(), c.outputs().len());
        // Combinational cells survive by name with the same kind.
        for (_, cell) in c.iter() {
            if cell.kind().is_combinational() {
                let nid = out.find(cell.name()).expect("cell kept");
                assert_eq!(out.cell(nid).kind(), cell.kind());
            }
        }
    }

    #[test]
    fn illegal_retiming_rejected() {
        let c = data::s27();
        let (_g, rg) = setup(&c);
        // Push one node with a zero-weight out-edge forward.
        let (i, e) = rg
            .edges()
            .iter()
            .enumerate()
            .find(|(_, e)| e.weight == 0)
            .unwrap();
        let mut r = vec![0i64; rg.num_nodes()];
        r[e.from.index()] = 1;
        let err = apply(&c, &rg, &r).unwrap_err();
        assert!(matches!(err, ApplyRetimingError::Illegal { .. }));
        let _ = i;
    }

    #[test]
    fn comb_structure_and_register_count_preserved_after_apply() {
        // Retiming may redistribute registers between edges (even in and out
        // of SCC regions — only *per-cycle* counts are invariant, which the
        // legal.rs Corollary 2 test verifies), but the combinational
        // skeleton must be untouched: every comb cell keeps its kind and the
        // chain-origin of each of its fan-in connections.
        let c = data::s27();
        let (_g, rg) = setup(&c);
        let cuts: Vec<_> = [c.find("G10").unwrap(), c.find("G11").unwrap()].to_vec();
        let real = CutRealizer::new(&rg).realize(&cuts);
        let out = apply(&c, &rg, &real.retiming).unwrap();

        assert_eq!(
            out.num_flip_flops(),
            shared_register_count(&rg, &real.retiming)
        );

        let g_after = CircuitGraph::from_circuit(&out);
        let rg_after = RetimeGraph::from_graph(&g_after).unwrap();
        for (id, cell) in c.iter() {
            if !cell.kind().is_combinational() {
                continue;
            }
            let nid = out.find(cell.name()).expect("comb cell kept");
            assert_eq!(out.cell(nid).kind(), cell.kind());
            // Chain origins of fan-ins map to the same named comb/PI cells.
            let orig_origins: Vec<String> = cell
                .fanin()
                .iter()
                .map(|&p| c.cell(rg.chain_of(p).0).name().to_string())
                .collect();
            let new_origins: Vec<String> = out
                .cell(nid)
                .fanin()
                .iter()
                .map(|&p| out.cell(rg_after.chain_of(p).0).name().to_string())
                .collect();
            assert_eq!(new_origins, orig_origins, "{}", cell.name());
            let _ = id;
        }
        // The retimed circuit still has feedback (registers on cycles).
        assert!(Scc::of(&g_after).registers_on_cyclic() > 0);
    }

    #[test]
    fn covered_cut_nets_carry_registers_after_apply() {
        // Realize a cut on a combinational net, apply, and check that the
        // cut driver's fan-out in the new circuit goes through a register.
        let c = bench_format::parse(
            "loop2",
            "INPUT(x)\nOUTPUT(g2)\nq1 = DFF(g2)\nq2 = DFF(q1)\n\
             g1 = AND(q2, x)\ng2 = OR(g1, x)\n",
        )
        .unwrap();
        let (_g, rg) = setup(&c);
        let cut = c.find("g1").unwrap();
        let real = CutRealizer::new(&rg).realize(&[cut]);
        assert_eq!(real.covered, vec![cut]);
        let out = apply(&c, &rg, &real.retiming).unwrap();
        // In the retimed circuit, every sink of g1 must be a register.
        let g1_new = out.find("g1").unwrap();
        let fanouts = out.fanouts();
        assert!(!fanouts.of(g1_new).is_empty());
        for &s in fanouts.of(g1_new) {
            assert_eq!(
                out.cell(s).kind(),
                CellKind::Dff,
                "sink {}",
                out.cell(s).name()
            );
        }
        // Total register count is preserved on the loop (Corollary 2).
        assert_eq!(
            out.num_flip_flops(),
            shared_register_count(&rg, &real.retiming)
        );
    }

    #[test]
    fn shared_register_count_identity_matches_original() {
        for text in [
            "INPUT(a)\nOUTPUT(y)\nq1 = DFF(a)\nq2 = DFF(q1)\ny = NOT(q2)\n",
            "INPUT(x)\nOUTPUT(g2)\nq = DFF(g2)\ng1 = AND(q, x)\ng2 = OR(g1, x)\n",
        ] {
            let c = bench_format::parse("t", text).unwrap();
            let (_, rg) = setup(&c);
            let identity = vec![0i64; rg.num_nodes()];
            assert_eq!(shared_register_count(&rg, &identity), c.num_flip_flops());
        }
    }

    #[test]
    fn retimed_circuit_is_structurally_valid() {
        let c = data::s27();
        let (_g, rg) = setup(&c);
        let cuts: Vec<_> = c.flip_flops().map(|q| c.cell(q).fanin()[0]).collect();
        let real = CutRealizer::new(&rg).realize(&cuts);
        let out = apply(&c, &rg, &real.retiming).unwrap();
        assert!(ppet_netlist::validate::find_combinational_cycle(&out).is_none());
    }
}
