//! Minimum-register retiming (Leiserson–Saxe §8, via min-cost flow).
//!
//! The paper closes by noting its framework allows "further performance
//! optimization"; the canonical instance is choosing, among all legal
//! retimings that realize the CBIT register positions, one with the
//! fewest total registers:
//!
//! ```text
//! minimize   Σ_e w_ρ(e)  =  Σ_e w(e) + Σ_v ρ(v)·(indeg(v) − outdeg(v))
//! subject to w(e) + ρ(head) − ρ(tail) ≥ demand(e)        for every edge
//! ```
//!
//! A linear objective over difference constraints is the LP dual of a
//! transshipment problem, so the optimum is computed exactly by
//! [`MinCostFlow`](crate::mincost::MinCostFlow): node `v` gets supply
//! `outdeg(v) − indeg(v)`, every constraint becomes an uncapacitated arc
//! `tail → head` with cost `w(e) − demand(e)`, and the negated optimal
//! potentials are an optimal retiming (complementary slackness — see the
//! module tests, which cross-check against brute force).
//!
//! Two objectives are provided: [`minimize_registers`] counts registers
//! *per edge* (exact for fan-out-free nets, conservative otherwise), and
//! [`minimize_shared_registers`] counts the physically paid
//! `Σ_v max_e w_ρ(e)` with register chains shared across fan-outs —
//! Leiserson–Saxe's register-sharing refinement, linearized with one
//! auxiliary variable per multi-fan-out node.

use crate::mincost::MinCostFlow;
use crate::retime::legal::{retimed_weight, Retiming};
use crate::retime::weights::{EdgeId, RetimeGraph};

/// The outcome of [`minimize_registers`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MinAreaResult {
    /// An optimal legal retiming.
    pub retiming: Retiming,
    /// The minimized total register count `Σ_e w_ρ(e)`.
    pub total_registers: i64,
}

/// Finds a legal retiming minimizing the total per-edge register count,
/// subject to `w_ρ(e) ≥ demands[e]` for every edge (`demands` may be empty
/// for the unconstrained minimum, or carry per-edge cut requirements from
/// a [`CutRealization`](crate::retime::CutRealization)).
///
/// Returns `None` when the demands are unsatisfiable (some cycle demands
/// more registers than it owns — the same condition the cut realizer
/// resolves by dropping cuts) .
///
/// # Panics
///
/// Panics if `demands` is non-empty and its length differs from the edge
/// count.
///
/// # Examples
///
/// ```
/// use ppet_graph::{retime::{minimize_registers, RetimeGraph}, CircuitGraph};
/// use ppet_netlist::data;
///
/// // A shift register's registers cannot be reduced below the count on
/// // the single input-to-output path... but the *sum over edges* can when
/// // no demands force them: with flexible I/O, everything can retire to
/// // the boundary.
/// let c = data::shift_register(4);
/// let g = CircuitGraph::from_circuit(&c);
/// let rg = RetimeGraph::from_graph(&g).unwrap();
/// let result = minimize_registers(&rg, &[]).expect("legality is satisfiable");
/// let original: i64 = rg.edges().iter().map(|e| i64::from(e.weight)).sum();
/// assert!(result.total_registers <= original);
/// ```
#[must_use]
pub fn minimize_registers(rg: &RetimeGraph, demands: &[i64]) -> Option<MinAreaResult> {
    let n = rg.num_nodes();
    let m = rg.edges().len();
    if !demands.is_empty() {
        assert_eq!(demands.len(), m, "one demand per edge");
    }
    if n == 0 {
        return Some(MinAreaResult {
            retiming: Vec::new(),
            total_registers: 0,
        });
    }

    // Node coefficient c_v = indeg − outdeg.
    let mut coeff = vec![0i64; n];
    let mut constraints = Vec::with_capacity(m);
    for (i, e) in rg.edges().iter().enumerate() {
        coeff[e.to.index()] += 1;
        coeff[e.from.index()] -= 1;
        let demand = demands.get(i).copied().unwrap_or(0);
        constraints.push((e.from.index(), e.to.index(), i64::from(e.weight) - demand));
    }
    let r = solve_difference_lp(n, &constraints, &coeff)?;
    let retiming: Retiming = r[..n].to_vec();

    // Verify feasibility defensively (a violated edge would mean the LP
    // duality plumbing broke — better a None than a silent illegal result).
    let mut total = 0i64;
    for i in 0..m {
        let w = retimed_weight(rg, &retiming, EdgeId::from_index(i));
        let demand = demands.get(i).copied().unwrap_or(0);
        if w < demand {
            return None;
        }
        total += w;
    }
    Some(MinAreaResult {
        retiming,
        total_registers: total,
    })
}

/// Finds a legal retiming minimizing the **shared** register count
/// `Σ_v max_{e ∈ out(v)} w_ρ(e)` — the metric the physical realization
/// actually pays, with one register chain per driver shared across its
/// fan-outs (Leiserson–Saxe's register-sharing refinement, their §8).
///
/// `max` is linearized by one auxiliary variable per multi-fan-out node
/// `v`: a "hat" `v̂` with constraints `r(u_i) − r(v̂) ≤ w_m − w(e_i)` for
/// each fan-out edge (where `w_m = max_i w(e_i)`); minimizing
/// `w_m + r(v̂) − r(v)` then yields exactly `max_i w_ρ(e_i)`.
///
/// Semantics of `demands` match [`minimize_registers`].
///
/// # Panics
///
/// Panics if `demands` is non-empty and its length differs from the edge
/// count.
///
/// # Examples
///
/// ```
/// use ppet_graph::{retime::{minimize_shared_registers, RetimeGraph}, CircuitGraph};
/// use ppet_netlist::data;
///
/// let g = CircuitGraph::from_circuit(&data::s27());
/// let rg = RetimeGraph::from_graph(&g).unwrap();
/// let result = minimize_shared_registers(&rg, &[]).expect("satisfiable");
/// assert!(result.total_registers <= 3); // s27 has 3 registers to begin with
/// ```
#[must_use]
pub fn minimize_shared_registers(rg: &RetimeGraph, demands: &[i64]) -> Option<MinAreaResult> {
    let n = rg.num_nodes();
    let m = rg.edges().len();
    if !demands.is_empty() {
        assert_eq!(demands.len(), m, "one demand per edge");
    }
    if n == 0 {
        return Some(MinAreaResult {
            retiming: Vec::new(),
            total_registers: 0,
        });
    }

    // Group out-edges per node.
    let mut out_edges: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (i, e) in rg.edges().iter().enumerate() {
        out_edges[e.from.index()].push(i);
    }

    let mut coeff = vec![0i64; n];
    let mut constraints: Vec<(usize, usize, i64)> = Vec::new();
    // Legality + demand constraints on the real edges.
    for (i, e) in rg.edges().iter().enumerate() {
        let demand = demands.get(i).copied().unwrap_or(0);
        constraints.push((e.from.index(), e.to.index(), i64::from(e.weight) - demand));
    }
    // Hat variables for nodes with out-edges.
    let mut next_var = n;
    let mut hats: Vec<(usize, usize, i64)> = Vec::new(); // (node, hat var, w_m)
    for (v, outs) in out_edges.iter().enumerate() {
        if outs.is_empty() {
            continue;
        }
        if outs.len() == 1 {
            // Single fan-out: shared = w_ρ(e) directly.
            let e = &rg.edges()[outs[0]];
            coeff[e.to.index()] += 1;
            coeff[e.from.index()] -= 1;
            continue;
        }
        let w_m = outs
            .iter()
            .map(|&i| i64::from(rg.edges()[i].weight))
            .max()
            .expect("non-empty");
        let hat = next_var;
        next_var += 1;
        hats.push((v, hat, w_m));
        for &i in outs {
            let e = &rg.edges()[i];
            // r(u_i) − r(v̂) ≤ w_m − w(e_i)
            constraints.push((e.to.index(), hat, w_m - i64::from(e.weight)));
        }
        // Objective term w_m + r(v̂) − r(v).
        coeff[v] -= 1;
    }
    let total_vars = next_var;
    let mut full_coeff = vec![0i64; total_vars];
    full_coeff[..n].copy_from_slice(&coeff);
    for &(_, hat, _) in &hats {
        full_coeff[hat] = 1;
    }

    let assignment = solve_difference_lp(total_vars, &constraints, &full_coeff)?;
    let retiming: Retiming = assignment[..n].to_vec();

    // Defensive feasibility check + exact shared count from the retiming.
    for i in 0..m {
        let w = retimed_weight(rg, &retiming, EdgeId::from_index(i));
        let demand = demands.get(i).copied().unwrap_or(0);
        if w < demand {
            return None;
        }
    }
    let total_registers = (0..n)
        .map(|v| {
            out_edges[v]
                .iter()
                .map(|&i| retimed_weight(rg, &retiming, EdgeId::from_index(i)))
                .max()
                .unwrap_or(0)
        })
        .sum();
    Some(MinAreaResult {
        retiming,
        total_registers,
    })
}

/// Minimizes `Σ coeff[v]·x[v]` subject to `x[u] − x[v] ≤ b` for every
/// `(u, v, b)` in `constraints`, via the min-cost-flow dual: node `v` gets
/// supply `−coeff[v]`, each constraint becomes an arc `u → v` with cost `b`
/// and ample capacity, and the negated optimal potentials solve the primal
/// (complementary slackness). Returns `None` when unbounded/infeasible.
fn solve_difference_lp(
    n: usize,
    constraints: &[(usize, usize, i64)],
    coeff: &[i64],
) -> Option<Vec<i64>> {
    let mut mcf = MinCostFlow::new(n);
    let total_pos: i64 = coeff.iter().filter(|&&c| c > 0).sum();
    let big = total_pos.max(1);
    for &(u, v, b) in constraints {
        mcf.add_arc(u, v, big, b);
    }
    for (v, &c) in coeff.iter().enumerate() {
        mcf.set_supply(v, -c);
    }
    let sol = mcf.solve()?;
    Some(sol.potentials.iter().map(|&p| -p).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::CircuitGraph;
    use crate::retime::solver::CutRealizer;
    use ppet_netlist::{bench_format, data, Circuit, SynthSpec, Synthesizer};

    fn rg_of(c: &Circuit) -> RetimeGraph {
        let g = CircuitGraph::from_circuit(c);
        RetimeGraph::from_graph(&g).unwrap()
    }

    fn edge_sum(rg: &RetimeGraph, r: &Retiming) -> i64 {
        (0..rg.edges().len())
            .map(|i| retimed_weight(rg, r, EdgeId::from_index(i)))
            .sum()
    }

    /// Brute force over a small retiming box.
    fn brute_force_min(rg: &RetimeGraph, demands: &[i64], radius: i64) -> Option<i64> {
        let n = rg.num_nodes();
        let span = (2 * radius + 1) as u64;
        let combos = span.checked_pow(n as u32)?;
        let mut best: Option<i64> = None;
        'outer: for code in 0..combos {
            let mut c = code;
            let mut r = vec![0i64; n];
            for slot in r.iter_mut() {
                *slot = (c % span) as i64 - radius;
                c /= span;
            }
            let mut total = 0i64;
            for i in 0..rg.edges().len() {
                let w = retimed_weight(rg, &r, EdgeId::from_index(i));
                let d = demands.get(i).copied().unwrap_or(0);
                if w < d {
                    continue 'outer;
                }
                total += w;
            }
            best = Some(best.map_or(total, |b: i64| b.min(total)));
        }
        best
    }

    #[test]
    fn matches_brute_force_on_tiny_loop() {
        let c = bench_format::parse(
            "loop2",
            "INPUT(x)\nOUTPUT(g2)\nq1 = DFF(g2)\nq2 = DFF(q1)\n\
             g1 = AND(q2, x)\ng2 = OR(g1, x)\n",
        )
        .unwrap();
        let rg = rg_of(&c);
        assert!(rg.num_nodes() <= 6, "brute force box must stay tiny");
        let opt = minimize_registers(&rg, &[]).unwrap();
        let brute = brute_force_min(&rg, &[], 3).unwrap();
        assert_eq!(opt.total_registers, brute);
        assert_eq!(opt.total_registers, edge_sum(&rg, &opt.retiming));
    }

    #[test]
    fn matches_brute_force_with_demands() {
        let c = bench_format::parse(
            "loop2",
            "INPUT(x)\nOUTPUT(g2)\nq1 = DFF(g2)\nq2 = DFF(q1)\n\
             g1 = AND(q2, x)\ng2 = OR(g1, x)\n",
        )
        .unwrap();
        let rg = rg_of(&c);
        // Demand one register on every edge that touches g1's net.
        let g1 = c.find("g1").unwrap();
        let demands: Vec<i64> = rg
            .edges()
            .iter()
            .map(|e| i64::from(e.nets.contains(&g1)))
            .collect();
        let opt = minimize_registers(&rg, &demands).unwrap();
        let brute = brute_force_min(&rg, &demands, 3).unwrap();
        assert_eq!(opt.total_registers, brute);
    }

    #[test]
    fn infeasible_demands_return_none() {
        // The 1-register loop cannot provide 2 registers on its cycle.
        let c = bench_format::parse(
            "loop1",
            "INPUT(x)\nOUTPUT(g2)\nq = DFF(g2)\ng1 = AND(q, x)\ng2 = OR(g1, x)\n",
        )
        .unwrap();
        let rg = rg_of(&c);
        let g1 = c.find("g1").unwrap();
        let g2 = c.find("g2").unwrap();
        let demands: Vec<i64> = rg
            .edges()
            .iter()
            .map(|e| i64::from(e.nets.contains(&g1) || e.nets.contains(&g2)))
            .collect();
        assert!(minimize_registers(&rg, &demands).is_none());
    }

    #[test]
    fn never_worse_than_identity_or_realizer() {
        let c = data::s27();
        let rg = rg_of(&c);
        let identity = vec![0i64; rg.num_nodes()];
        let opt = minimize_registers(&rg, &[]).unwrap();
        assert!(opt.total_registers <= edge_sum(&rg, &identity));

        // With the realizer's covered cuts as demands, min-area still beats
        // (or ties) the realizer's own retiming on register count.
        let cuts = vec![c.find("G10").unwrap(), c.find("G11").unwrap()];
        let real = CutRealizer::new(&rg).realize(&cuts);
        let demands: Vec<i64> = rg
            .edges()
            .iter()
            .map(|e| e.nets.iter().filter(|n| real.covered.contains(n)).count() as i64)
            .collect();
        let opt = minimize_registers(&rg, &demands).expect("realizer proved feasibility");
        assert!(opt.total_registers <= edge_sum(&rg, &real.retiming));
        // And the demands still hold (checked inside, but assert the cut
        // coverage meaningfully here too).
        for (i, d) in demands.iter().enumerate() {
            assert!(retimed_weight(&rg, &opt.retiming, EdgeId::from_index(i)) >= *d);
        }
    }

    #[test]
    fn shared_objective_matches_brute_force_on_fanout_circuit() {
        // x fans out; g1 fans out to g2 and the register chain.
        let c = bench_format::parse(
            "fan",
            "INPUT(x)
OUTPUT(g2)
OUTPUT(q2)
q1 = DFF(g1)
q2 = DFF(q1)
             g1 = AND(x, x)
g2 = OR(g1, x)
",
        )
        .unwrap();
        let rg = rg_of(&c);
        assert!(rg.num_nodes() <= 6);
        let opt = minimize_shared_registers(&rg, &[]).unwrap();

        // Brute force the shared metric.
        let shared = |r: &Retiming| -> i64 {
            let mut out_edges: Vec<Vec<usize>> = vec![Vec::new(); rg.num_nodes()];
            for (i, e) in rg.edges().iter().enumerate() {
                out_edges[e.from.index()].push(i);
            }
            (0..rg.num_nodes())
                .map(|v| {
                    out_edges[v]
                        .iter()
                        .map(|&i| retimed_weight(&rg, r, EdgeId::from_index(i)))
                        .max()
                        .unwrap_or(0)
                })
                .sum()
        };
        let n = rg.num_nodes();
        let span = 7u64; // radius 3
        let mut best: Option<i64> = None;
        'outer: for code in 0..span.pow(n as u32) {
            let mut cc = code;
            let mut r = vec![0i64; n];
            for slot in r.iter_mut() {
                *slot = (cc % span) as i64 - 3;
                cc /= span;
            }
            for i in 0..rg.edges().len() {
                if retimed_weight(&rg, &r, EdgeId::from_index(i)) < 0 {
                    continue 'outer;
                }
            }
            let s = shared(&r);
            best = Some(best.map_or(s, |b: i64| b.min(s)));
        }
        assert_eq!(opt.total_registers, best.unwrap());
        assert_eq!(opt.total_registers, shared(&opt.retiming));
    }

    #[test]
    fn shared_optimum_never_exceeds_edge_sum_optimum() {
        let c = data::s27();
        let rg = rg_of(&c);
        let per_edge = minimize_registers(&rg, &[]).unwrap();
        let shared = minimize_shared_registers(&rg, &[]).unwrap();
        // The shared metric counts each fan-out chain once, so its optimum
        // is at most the per-edge sum optimum.
        assert!(shared.total_registers <= per_edge.total_registers);
    }

    #[test]
    fn shared_with_demands_still_covers_cuts() {
        let c = data::s27();
        let rg = rg_of(&c);
        let cuts = vec![c.find("G10").unwrap(), c.find("G11").unwrap()];
        let real = CutRealizer::new(&rg).realize(&cuts);
        let demands: Vec<i64> = rg
            .edges()
            .iter()
            .map(|e| e.nets.iter().filter(|n| real.covered.contains(n)).count() as i64)
            .collect();
        let opt = minimize_shared_registers(&rg, &demands).expect("feasible");
        for (i, &d) in demands.iter().enumerate() {
            assert!(retimed_weight(&rg, &opt.retiming, EdgeId::from_index(i)) >= d);
        }
        // Consistency with the physical realization metric.
        use crate::retime::apply::shared_register_count;
        assert_eq!(
            shared_register_count(&rg, &opt.retiming) as i64,
            opt.total_registers
        );
    }

    #[test]
    fn random_circuits_beat_sampled_feasible_retimings() {
        use ppet_prng::{Rng, Xoshiro256PlusPlus};
        let mut prng = Xoshiro256PlusPlus::seed_from(31);
        for seed in 0..6 {
            let c = Synthesizer::new(
                SynthSpec::new("ma")
                    .primary_inputs(3)
                    .flip_flops(4)
                    .dffs_on_scc(2)
                    .gates(12)
                    .inverters(3)
                    .seed(seed),
            )
            .build();
            let rg = rg_of(&c);
            let opt = minimize_registers(&rg, &[]).unwrap();
            // Sample random legal retimings; none may beat the optimum.
            for _ in 0..200 {
                let r: Retiming = (0..rg.num_nodes())
                    .map(|_| prng.gen_range(-2..=2))
                    .collect();
                let legal = (0..rg.edges().len())
                    .all(|i| retimed_weight(&rg, &r, EdgeId::from_index(i)) >= 0);
                if legal {
                    assert!(
                        edge_sum(&rg, &r) >= opt.total_registers,
                        "seed {seed}: sampled beats optimum"
                    );
                }
            }
        }
    }
}
