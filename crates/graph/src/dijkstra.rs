//! Deterministic single-source shortest-path trees over net lengths.
//!
//! `Saturate_Network` (paper Table 3, STEP 3.2) computes, for a randomly
//! chosen source, the shortest-path tree `T_v = Dijkstra(G, d(E), v)` to all
//! reachable sinks, where the length of every branch of a net is that net's
//! congestion distance `d(e)`. Ties are broken by node id so the tree — and
//! therefore the whole stochastic flow process — is reproducible.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use ppet_netlist::{CellId, NetId};

use crate::graph::CircuitGraph;

/// The result of a shortest-path-tree computation.
#[derive(Debug, Clone)]
pub struct ShortestPathTree {
    /// `dist[v]` — length of the shortest path from the source, `f64::INFINITY`
    /// when unreachable.
    pub dist: Vec<f64>,
    /// `parent_net[v]` — the net whose branch enters `v` on the tree path
    /// (`None` for the source and unreachable nodes).
    pub parent_net: Vec<Option<NetId>>,
    /// The source node.
    pub source: CellId,
}

impl ShortestPathTree {
    /// The distinct nets used by the tree — the paper's `e ∈ T_v` set
    /// (each net counted once regardless of how many tree branches it
    /// contributes, see `DESIGN.md` §3 item 5).
    #[must_use]
    pub fn tree_nets(&self) -> Vec<NetId> {
        let mut nets: Vec<NetId> = self.parent_net.iter().flatten().copied().collect();
        nets.sort_unstable();
        nets.dedup();
        nets
    }

    /// The number of tree branches entering each net's sinks — the
    /// per-branch accounting variant (`flow_per_branch` in the flow
    /// parameters).
    #[must_use]
    pub fn tree_net_branch_counts(&self) -> Vec<(NetId, usize)> {
        let mut nets: Vec<NetId> = self.parent_net.iter().flatten().copied().collect();
        nets.sort_unstable();
        let mut out: Vec<(NetId, usize)> = Vec::new();
        for n in nets {
            match out.last_mut() {
                Some((last, count)) if *last == n => *count += 1,
                _ => out.push((n, 1)),
            }
        }
        out
    }
}

#[derive(Debug, Clone, PartialEq)]
struct HeapEntry {
    dist: f64,
    node: u32,
}

impl Eq for HeapEntry {}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Min-heap by distance, tie-broken by node id for determinism.
        other
            .dist
            .partial_cmp(&self.dist)
            .unwrap_or(Ordering::Equal)
            .then_with(|| other.node.cmp(&self.node))
    }
}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Computes the shortest-path tree from `source`, where every branch of net
/// `e` has length `length[e]`.
///
/// # Panics
///
/// Panics if `length.len() != graph.num_nodes()` (one length per net slot)
/// or any length consumed by the search is negative or NaN (validated in
/// release builds too — see [`DijkstraScratch::run`]).
///
/// # Examples
///
/// ```
/// use ppet_graph::{dijkstra, CircuitGraph};
/// use ppet_netlist::data;
///
/// let g = CircuitGraph::from_circuit(&data::s27());
/// let unit = vec![1.0; g.num_nodes()];
/// let spt = dijkstra::shortest_path_tree(&g, g.find("G0").unwrap(), &unit);
/// let g14 = g.find("G14").unwrap(); // NOT(G0): one hop
/// assert_eq!(spt.dist[g14.index()], 1.0);
/// ```
#[must_use]
pub fn shortest_path_tree(
    graph: &CircuitGraph,
    source: CellId,
    length: &[f64],
) -> ShortestPathTree {
    let mut scratch = DijkstraScratch::new(graph.num_nodes());
    scratch.run(graph, source, length);
    ShortestPathTree {
        dist: scratch.dist.clone(),
        parent_net: scratch.parent_net.clone(),
        source,
    }
}

/// Reusable work buffers for repeated shortest-path-tree computations.
///
/// `Saturate_Network` runs tens of thousands of Dijkstra trees over the
/// same graph; reallocating and re-initializing the distance/parent/done
/// arrays every time dominates small-tree runs. The scratch keeps the
/// arrays alive and resets them lazily through a visitation stamp, so a run
/// touching `k` nodes costs `O(k log k)` regardless of `|V|`.
///
/// # Examples
///
/// ```
/// use ppet_graph::{dijkstra::DijkstraScratch, CircuitGraph};
/// use ppet_netlist::data;
///
/// let g = CircuitGraph::from_circuit(&data::s27());
/// let unit = vec![1.0; g.num_nodes()];
/// let mut scratch = DijkstraScratch::new(g.num_nodes());
/// scratch.run(&g, g.find("G0").unwrap(), &unit);
/// let visited = scratch.visited_order().len();
/// assert!(visited >= 2);
/// ```
#[derive(Debug, Clone)]
pub struct DijkstraScratch {
    dist: Vec<f64>,
    parent_net: Vec<Option<NetId>>,
    stamp: Vec<u32>,
    done: Vec<bool>,
    epoch: u32,
    heap: BinaryHeap<HeapEntry>,
    visited: Vec<CellId>,
    stats: DijkstraStats,
}

/// Work counters accumulated across every [`DijkstraScratch::run`] call
/// since creation (or [`DijkstraScratch::take_stats`]). Plain integers —
/// always maintained, cheap enough to never need a feature gate — so the
/// flow phase can report how much search work its trees cost.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DijkstraStats {
    /// Heap pops, including stale entries skipped by the `done` check.
    pub heap_pops: u64,
    /// Successful relaxations (`dist` improvements pushed to the heap).
    pub relaxations: u64,
    /// Nodes settled (popped with their final distance).
    pub settled: u64,
}

impl DijkstraScratch {
    /// Creates buffers for graphs of `n` nodes.
    #[must_use]
    pub fn new(n: usize) -> Self {
        Self {
            dist: vec![f64::INFINITY; n],
            parent_net: vec![None; n],
            stamp: vec![0; n],
            done: vec![false; n],
            epoch: 0,
            heap: BinaryHeap::new(),
            visited: Vec::new(),
            stats: DijkstraStats::default(),
        }
    }

    /// The work counters accumulated so far.
    #[must_use]
    pub fn stats(&self) -> DijkstraStats {
        self.stats
    }

    /// Returns the accumulated counters and resets them to zero.
    pub fn take_stats(&mut self) -> DijkstraStats {
        std::mem::take(&mut self.stats)
    }

    fn fresh(&mut self, v: usize) -> bool {
        if self.stamp[v] != self.epoch {
            self.stamp[v] = self.epoch;
            self.dist[v] = f64::INFINITY;
            self.parent_net[v] = None;
            self.done[v] = false;
            true
        } else {
            false
        }
    }

    /// Runs Dijkstra from `source`; results are readable until the next
    /// `run` via [`DijkstraScratch::distance`],
    /// [`DijkstraScratch::parent`], and [`DijkstraScratch::visited_order`].
    ///
    /// # Panics
    ///
    /// Panics if `length.len()` differs from the node count, or if any
    /// length the search consumes is negative or NaN. The validation is
    /// always on — not a `debug_assert!` — because a NaN admitted in a
    /// release build makes the heap entry's `partial_cmp` fall back to
    /// `Ordering::Equal`, silently corrupting heap order; each length is
    /// checked once when its node settles, so the check adds O(1) per
    /// settled node and never touches lengths of unreached nodes.
    pub fn run(&mut self, graph: &CircuitGraph, source: CellId, length: &[f64]) {
        assert_eq!(
            length.len(),
            graph.num_nodes(),
            "one length per net slot required"
        );
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            // Stamp wrap-around: force full reset.
            self.stamp.fill(u32::MAX);
            self.epoch = 1;
        }
        self.heap.clear();
        self.visited.clear();
        let s = source.index();
        self.fresh(s);
        self.dist[s] = 0.0;
        self.heap.push(HeapEntry {
            dist: 0.0,
            node: s as u32,
        });
        while let Some(HeapEntry { dist: d, node }) = self.heap.pop() {
            self.stats.heap_pops += 1;
            let v = node as usize;
            if self.done[v] {
                continue;
            }
            self.done[v] = true;
            self.stats.settled += 1;
            self.visited.push(CellId::from_index(v));
            let net = CellId::from_index(v);
            let l = length[v];
            assert!(
                l >= 0.0,
                "net length of node {v} must be non-negative and not NaN, got {l}"
            );
            for &w in graph.net(net).sinks() {
                let wi = w.index();
                self.fresh(wi);
                let nd = d + l;
                if nd < self.dist[wi] {
                    self.dist[wi] = nd;
                    self.parent_net[wi] = Some(net);
                    self.stats.relaxations += 1;
                    self.heap.push(HeapEntry {
                        dist: nd,
                        node: wi as u32,
                    });
                } else if nd == self.dist[wi]
                    && !self.done[wi]
                    && should_replace(self.parent_net[wi], net)
                {
                    // Equal distance: prefer the smaller parent net id so
                    // the tree is unique regardless of heap pop order.
                    self.parent_net[wi] = Some(net);
                }
            }
        }
    }

    /// Distance of `node` from the last run's source (`INFINITY` when
    /// unreached).
    #[must_use]
    pub fn distance(&self, node: CellId) -> f64 {
        if self.stamp[node.index()] == self.epoch {
            self.dist[node.index()]
        } else {
            f64::INFINITY
        }
    }

    /// The tree parent net of `node`, if reached.
    #[must_use]
    pub fn parent(&self, node: CellId) -> Option<NetId> {
        if self.stamp[node.index()] == self.epoch {
            self.parent_net[node.index()]
        } else {
            None
        }
    }

    /// Nodes settled by the last run, in settle order (source first).
    #[must_use]
    pub fn visited_order(&self) -> &[CellId] {
        &self.visited
    }

    /// The distinct nets used by the last run's tree (each net once).
    #[must_use]
    pub fn tree_nets(&self) -> Vec<NetId> {
        let mut nets: Vec<NetId> = self
            .visited
            .iter()
            .filter_map(|&v| self.parent(v))
            .collect();
        nets.sort_unstable();
        nets.dedup();
        nets
    }

    /// Per-net branch counts of the last run's tree.
    #[must_use]
    pub fn tree_net_branch_counts(&self) -> Vec<(NetId, usize)> {
        let mut nets: Vec<NetId> = self
            .visited
            .iter()
            .filter_map(|&v| self.parent(v))
            .collect();
        nets.sort_unstable();
        let mut out: Vec<(NetId, usize)> = Vec::new();
        for n in nets {
            match out.last_mut() {
                Some((last, count)) if *last == n => *count += 1,
                _ => out.push((n, 1)),
            }
        }
        out
    }
}

fn should_replace(current: Option<NetId>, candidate: NetId) -> bool {
    match current {
        None => true,
        Some(c) => candidate < c,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppet_netlist::data;

    fn s27_graph() -> CircuitGraph {
        CircuitGraph::from_circuit(&data::s27())
    }

    #[test]
    fn source_distance_zero_and_unreachable_infinite() {
        let g = s27_graph();
        let unit = vec![1.0; g.num_nodes()];
        let src = g.find("G9").unwrap();
        let spt = shortest_path_tree(&g, src, &unit);
        assert_eq!(spt.dist[src.index()], 0.0);
        // Primary inputs are unreachable from internal nodes.
        assert!(spt.dist[g.find("G0").unwrap().index()].is_infinite());
    }

    #[test]
    fn tree_parent_edges_are_consistent() {
        let g = s27_graph();
        let unit = vec![1.0; g.num_nodes()];
        let spt = shortest_path_tree(&g, g.find("G0").unwrap(), &unit);
        for v in g.nodes() {
            if let Some(p) = spt.parent_net[v.index()] {
                // The parent net's branch must land on v and distances must
                // satisfy the tree equality.
                assert!(g.net(p).sinks().contains(&v));
                let d_parent = spt.dist[p.index()];
                assert!((spt.dist[v.index()] - (d_parent + unit[p.index()])).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn matches_bellman_ford_distances() {
        let g = s27_graph();
        // Varied lengths: net i has length (i % 5) + 0.5.
        let lengths: Vec<f64> = (0..g.num_nodes()).map(|i| (i % 5) as f64 + 0.5).collect();
        for src in g.nodes() {
            let spt = shortest_path_tree(&g, src, &lengths);
            // Reference: Bellman-Ford relaxation.
            let mut dist = vec![f64::INFINITY; g.num_nodes()];
            dist[src.index()] = 0.0;
            for _ in 0..g.num_nodes() {
                for b in g.branches() {
                    let nd = dist[b.src.index()] + lengths[b.net.index()];
                    if nd < dist[b.sink.index()] {
                        dist[b.sink.index()] = nd;
                    }
                }
            }
            for v in g.nodes() {
                let a = spt.dist[v.index()];
                let b = dist[v.index()];
                assert!(
                    (a.is_infinite() && b.is_infinite()) || (a - b).abs() < 1e-9,
                    "src {src} node {v}: {a} vs {b}"
                );
            }
        }
    }

    #[test]
    fn deterministic_tree() {
        let g = s27_graph();
        let unit = vec![1.0; g.num_nodes()];
        let a = shortest_path_tree(&g, g.find("G1").unwrap(), &unit);
        let b = shortest_path_tree(&g, g.find("G1").unwrap(), &unit);
        assert_eq!(a.parent_net, b.parent_net);
    }

    #[test]
    fn tree_nets_deduplicate() {
        let g = s27_graph();
        let unit = vec![1.0; g.num_nodes()];
        let spt = shortest_path_tree(&g, g.find("G0").unwrap(), &unit);
        let nets = spt.tree_nets();
        let mut sorted = nets.clone();
        sorted.dedup();
        assert_eq!(nets, sorted);
        let per_branch = spt.tree_net_branch_counts();
        let total: usize = per_branch.iter().map(|(_, c)| c).sum();
        let used_branches = spt.parent_net.iter().flatten().count();
        assert_eq!(total, used_branches);
    }

    #[test]
    fn stats_accumulate_and_reset() {
        let g = s27_graph();
        let unit = vec![1.0; g.num_nodes()];
        let mut scratch = DijkstraScratch::new(g.num_nodes());
        scratch.run(&g, g.find("G0").unwrap(), &unit);
        let one = scratch.stats();
        assert!(one.heap_pops >= one.settled);
        assert!(one.settled >= 2);
        assert!(one.relaxations >= one.settled - 1);
        assert_eq!(one.settled, scratch.visited_order().len() as u64);

        scratch.run(&g, g.find("G0").unwrap(), &unit);
        let two = scratch.stats();
        assert_eq!(
            two.heap_pops,
            2 * one.heap_pops,
            "identical runs add equal work"
        );

        assert_eq!(scratch.take_stats(), two);
        assert_eq!(scratch.stats(), DijkstraStats::default());
    }

    // The two rejection tests below are regression tests for a release-mode
    // hole: the length check used to be a `debug_assert!`, so `--release`
    // builds accepted NaN (and negative) lengths and silently corrupted the
    // heap order. CI runs them under the release profile as well.

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_length_rejected() {
        let g = s27_graph();
        let src = g.find("G0").unwrap();
        let mut lengths = vec![1.0; g.num_nodes()];
        lengths[src.index()] = -1.0; // the source always settles first
        let _ = shortest_path_tree(&g, src, &lengths);
    }

    #[test]
    #[should_panic(expected = "not NaN")]
    fn nan_length_rejected() {
        let g = s27_graph();
        let src = g.find("G0").unwrap();
        let mut lengths = vec![1.0; g.num_nodes()];
        lengths[src.index()] = f64::NAN;
        let _ = shortest_path_tree(&g, src, &lengths);
    }
}
