//! Deterministic single-source shortest-path trees over net lengths.
//!
//! `Saturate_Network` (paper Table 3, STEP 3.2) computes, for a randomly
//! chosen source, the shortest-path tree `T_v = Dijkstra(G, d(E), v)` to all
//! reachable sinks, where the length of every branch of a net is that net's
//! congestion distance `d(e)`. Ties are broken by node id so the tree — and
//! therefore the whole stochastic flow process — is reproducible.
//!
//! Three interchangeable engines compute the tree:
//!
//! * [`DijkstraScratch::run`] — the **reference**: a `BinaryHeap` over the
//!   pointer-rich [`CircuitGraph`] adjacency. Kept as the executable
//!   specification the property tests compare against.
//! * [`DijkstraScratch::run_csr`] — a monotone radix (bucket) heap over
//!   the packed [`Csr`] adjacency. Distances are quantized onto the
//!   2⁶⁴-point grid of their IEEE-754 bit patterns — for non-negative
//!   doubles the bit pattern is a monotone fixed-point encoding, so bucket
//!   order is *exact* and the results (distances, parents, settle order,
//!   even the work counters) are bit-identical to the reference. See
//!   `DESIGN.md` §13.
//! * [`DijkstraScratch::run_fast`] — the **saturation hot path**: a
//!   fixed-slot bucket queue (`SlotQueue`) keyed by the top 16 bits of
//!   the distance bit pattern. The slots cover the entire non-negative
//!   `f64` range (saturation's clamped-exponential weights span
//!   `[1, e^700]`, far beyond any bounded calendar), entries never
//!   migrate between slots, and the drain order reproduces the binary
//!   heap's `(distance, node)` order exactly — so *everything* observable
//!   (distances, parents, settle order, work counters) is bit-identical
//!   to the reference, at a fraction of the per-settle cost of either
//!   heap.
//!
//! [`SsspCache`] adds an incremental layer for the saturation loop: when
//! the congestion weights a cached tree depends on did not change between
//! trees, the unchanged part is reused instead of re-relaxed.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use ppet_netlist::{CellId, NetId};

use crate::csr::Csr;
use crate::graph::CircuitGraph;

/// The result of a shortest-path-tree computation.
#[derive(Debug, Clone)]
pub struct ShortestPathTree {
    /// `dist[v]` — length of the shortest path from the source, `f64::INFINITY`
    /// when unreachable.
    pub dist: Vec<f64>,
    /// `parent_net[v]` — the net whose branch enters `v` on the tree path
    /// (`None` for the source and unreachable nodes).
    pub parent_net: Vec<Option<NetId>>,
    /// The source node.
    pub source: CellId,
}

impl ShortestPathTree {
    /// The distinct nets used by the tree — the paper's `e ∈ T_v` set
    /// (each net counted once regardless of how many tree branches it
    /// contributes, see `DESIGN.md` §3 item 5).
    #[must_use]
    pub fn tree_nets(&self) -> Vec<NetId> {
        let mut nets: Vec<NetId> = self.parent_net.iter().flatten().copied().collect();
        nets.sort_unstable();
        nets.dedup();
        nets
    }

    /// The number of tree branches entering each net's sinks — the
    /// per-branch accounting variant (`flow_per_branch` in the flow
    /// parameters).
    #[must_use]
    pub fn tree_net_branch_counts(&self) -> Vec<(NetId, usize)> {
        let mut nets: Vec<NetId> = self.parent_net.iter().flatten().copied().collect();
        nets.sort_unstable();
        let mut out: Vec<(NetId, usize)> = Vec::new();
        for n in nets {
            match out.last_mut() {
                Some((last, count)) if *last == n => *count += 1,
                _ => out.push((n, 1)),
            }
        }
        out
    }
}

#[derive(Debug, Clone, PartialEq)]
struct HeapEntry {
    dist: f64,
    node: u32,
}

impl Eq for HeapEntry {}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Min-heap by distance, tie-broken by node id for determinism.
        other
            .dist
            .partial_cmp(&self.dist)
            .unwrap_or(Ordering::Equal)
            .then_with(|| other.node.cmp(&self.node))
    }
}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// A monotone radix heap over `(f64-bit key, node)` pairs.
///
/// Keys are the raw bit patterns of non-negative `f64` distances — a
/// monotone 64-bit fixed-point quantization, so comparing keys compares
/// distances exactly. Entries live in 65 buckets indexed by the highest
/// bit in which the key differs from the last extracted minimum; bucket 0
/// holds keys *equal* to that minimum and is kept sorted by node id
/// (descending, so popping from the back yields the smallest node).
/// Because Dijkstra only inserts keys ≥ the current minimum, every entry
/// moves to a strictly lower bucket each redistribution, giving amortized
/// O(64) per operation — and pops leave in exactly the `(distance, node)`
/// order a tie-broken binary heap produces, which is what makes
/// [`DijkstraScratch::run_csr`] bit-identical to the reference.
#[derive(Debug, Clone, Default)]
struct RadixHeap {
    buckets: Vec<Vec<(u64, u32)>>,
    last: u64,
    len: usize,
}

impl RadixHeap {
    fn new() -> Self {
        Self {
            buckets: vec![Vec::new(); 65],
            last: 0,
            len: 0,
        }
    }

    fn clear(&mut self) {
        for b in &mut self.buckets {
            b.clear();
        }
        self.last = 0;
        self.len = 0;
    }

    fn bucket_of(last: u64, key: u64) -> usize {
        if key == last {
            0
        } else {
            64 - (key ^ last).leading_zeros() as usize
        }
    }

    fn push(&mut self, key: u64, node: u32) {
        debug_assert!(key >= self.last, "radix heap requires monotone keys");
        let i = Self::bucket_of(self.last, key);
        if i == 0 {
            // Keep bucket 0 sorted by node id descending: O(1) pops in
            // ascending node order, the binary heap's tie order.
            let b = &mut self.buckets[0];
            let pos = b.partition_point(|&(_, n)| n > node);
            b.insert(pos, (key, node));
        } else {
            self.buckets[i].push((key, node));
        }
        self.len += 1;
    }

    fn pop(&mut self) -> Option<(u64, u32)> {
        if self.len == 0 {
            return None;
        }
        if self.buckets[0].is_empty() {
            let i = (1..=64)
                .find(|&i| !self.buckets[i].is_empty())
                .expect("len > 0 but all buckets empty");
            let min = self.buckets[i].iter().copied().min().expect("nonempty");
            self.last = min.0;
            let drained = std::mem::take(&mut self.buckets[i]);
            for (key, node) in drained {
                let j = Self::bucket_of(self.last, key);
                debug_assert!(j < i, "redistribution must strictly descend");
                self.buckets[j].push((key, node));
            }
            self.buckets[0].sort_unstable_by_key(|b| std::cmp::Reverse(b.1));
        }
        self.len -= 1;
        self.buckets[0].pop()
    }
}

/// A monotone fixed-slot bucket queue over `(f64-bit key, node)` pairs —
/// the engine behind [`DijkstraScratch::run_fast`].
///
/// The slot of a key is its top 16 bits (sign, the 11 exponent bits, and
/// the 4 leading mantissa bits): a monotone index for non-negative
/// doubles, so [`NUM_SLOTS`] = 2¹⁵ slots cover the entire
/// non-negative `f64` range — including `+inf` — with an exponentially
/// scaled grid whose slot width is a fixed ×(1 + 2⁻⁴) distance band.
/// Unlike a radix heap, entries never migrate: a push lands in its final
/// slot, and a two-level occupancy bitmap finds the next occupied slot in
/// a handful of word scans. The slot being drained is sorted descending
/// by `(key, node)` once, and same-slot arrivals (Dijkstra pushes keys ≥
/// the minimum, so they can land in the cursor slot but never before it)
/// are inserted in order — pops therefore leave in exactly the
/// `(distance, node)` order of a tie-broken binary heap, which is what
/// makes `run_fast` bit-identical to the reference.
#[derive(Debug, Clone, Default)]
struct SlotQueue {
    /// Lazily sized to [`NUM_SLOTS`] on first use, so scratch
    /// areas that never call `run_fast` stay small.
    slots: Vec<Vec<(u64, u32)>>,
    /// One occupancy bit per slot.
    occ1: Vec<u64>,
    /// One occupancy bit per `occ1` word.
    occ2: [u64; SLOT_SUMMARY_WORDS],
    /// Slot currently being drained.
    cur: usize,
    /// The drained slot's entries, sorted descending (pop from the back).
    cur_vec: Vec<(u64, u32)>,
    len: usize,
}

/// `f64::to_bits() >> 48` of any non-negative double (`+inf` included) is
/// below this.
const NUM_SLOTS: usize = 1 << 15;
/// Words of the second-level occupancy bitmap: one bit per `occ1` word.
const SLOT_SUMMARY_WORDS: usize = NUM_SLOTS / 64 / 64;

impl SlotQueue {
    fn new() -> Self {
        Self::default()
    }

    /// Allocates the slot array (~0.75 MiB of empty `Vec` headers) on
    /// first use.
    fn ensure(&mut self) {
        if self.slots.is_empty() {
            self.slots = vec![Vec::new(); NUM_SLOTS];
            self.occ1 = vec![0; NUM_SLOTS / 64];
        }
    }

    /// Prepares for a new run. A completed run drains every slot, so this
    /// is O(1) then; after an abandoned run (caller panicked mid-search)
    /// it sweeps the occupied slots clean.
    fn reset(&mut self) {
        if self.len != 0 {
            for w in 0..self.occ1.len() {
                let mut bits = self.occ1[w];
                while bits != 0 {
                    let s = (w << 6) + bits.trailing_zeros() as usize;
                    self.slots[s].clear();
                    bits &= bits - 1;
                }
                self.occ1[w] = 0;
            }
            self.occ2 = [0; SLOT_SUMMARY_WORDS];
            self.len = 0;
        }
        self.cur = 0;
        self.cur_vec.clear();
    }

    #[inline]
    fn push(&mut self, key: u64, node: u32) {
        self.len += 1;
        let s = (key >> 48) as usize;
        if s == self.cur {
            // A same-slot arrival while the slot drains: keep it sorted.
            let pos = self.cur_vec.partition_point(|&e| e > (key, node));
            self.cur_vec.insert(pos, (key, node));
            return;
        }
        let sv = &mut self.slots[s];
        if sv.is_empty() {
            self.occ1[s >> 6] |= 1u64 << (s & 63);
            self.occ2[s >> 12] |= 1u64 << ((s >> 6) & 63);
        }
        sv.push((key, node));
    }

    #[inline]
    fn pop(&mut self) -> Option<(u64, u32)> {
        if let Some(e) = self.cur_vec.pop() {
            self.len -= 1;
            return Some(e);
        }
        if self.len == 0 {
            return None;
        }
        // Find the next occupied slot strictly after `cur` via the
        // two-level bitmap.
        let mut w = self.cur >> 6;
        let rest = if (self.cur & 63) == 63 {
            0
        } else {
            !0u64 << ((self.cur & 63) + 1)
        };
        let mut bits = self.occ1[w] & rest;
        if bits == 0 {
            let mut w2 = w >> 6;
            let rest2 = if (w & 63) == 63 {
                0
            } else {
                !0u64 << ((w & 63) + 1)
            };
            let mut bits2 = self.occ2[w2] & rest2;
            while bits2 == 0 {
                w2 += 1;
                bits2 = self.occ2[w2];
            }
            w = (w2 << 6) + bits2.trailing_zeros() as usize;
            bits = self.occ1[w];
        }
        let s = (w << 6) + bits.trailing_zeros() as usize;
        self.cur = s;
        self.occ1[w] &= !(1u64 << (s & 63));
        if self.occ1[w] == 0 {
            self.occ2[w >> 6] &= !(1u64 << (w & 63));
        }
        self.len -= 1;
        if self.slots[s].len() == 1 {
            // The common late-saturation case: distances span a huge
            // dynamic range, one entry per slot — skip the swap and sort.
            return self.slots[s].pop();
        }
        std::mem::swap(&mut self.cur_vec, &mut self.slots[s]);
        self.cur_vec.sort_unstable_by(|a, b| b.cmp(a));
        self.cur_vec.pop()
    }
}

/// Computes the shortest-path tree from `source`, where every branch of net
/// `e` has length `length[e]`.
///
/// # Panics
///
/// Panics if `length.len() != graph.num_nodes()` (one length per net slot)
/// or any length consumed by the search is negative or NaN (validated in
/// release builds too — see [`DijkstraScratch::run`]).
///
/// # Examples
///
/// ```
/// use ppet_graph::{dijkstra, CircuitGraph};
/// use ppet_netlist::data;
///
/// let g = CircuitGraph::from_circuit(&data::s27());
/// let unit = vec![1.0; g.num_nodes()];
/// let spt = dijkstra::shortest_path_tree(&g, g.find("G0").unwrap(), &unit);
/// let g14 = g.find("G14").unwrap(); // NOT(G0): one hop
/// assert_eq!(spt.dist[g14.index()], 1.0);
/// ```
#[must_use]
pub fn shortest_path_tree(
    graph: &CircuitGraph,
    source: CellId,
    length: &[f64],
) -> ShortestPathTree {
    let mut scratch = DijkstraScratch::new(graph.num_nodes());
    scratch.run_csr(graph.csr(), source, length);
    ShortestPathTree {
        dist: scratch.dist.clone(),
        parent_net: scratch.parent_net.clone(),
        source,
    }
}

/// Reusable work buffers for repeated shortest-path-tree computations.
///
/// `Saturate_Network` runs tens of thousands of Dijkstra trees over the
/// same graph; reallocating and re-initializing the distance/parent/done
/// arrays every time dominates small-tree runs. The scratch keeps the
/// arrays alive and resets them lazily through a visitation stamp, so a run
/// touching `k` nodes costs `O(k)`-ish regardless of `|V|`, and the tree's
/// per-net branch counts are accumulated *while nodes settle* — no
/// post-pass allocation or sort on the hot path.
///
/// # Examples
///
/// ```
/// use ppet_graph::{dijkstra::DijkstraScratch, CircuitGraph};
/// use ppet_netlist::data;
///
/// let g = CircuitGraph::from_circuit(&data::s27());
/// let unit = vec![1.0; g.num_nodes()];
/// let mut scratch = DijkstraScratch::new(g.num_nodes());
/// scratch.run_csr(g.csr(), g.find("G0").unwrap(), &unit);
/// let visited = scratch.visited_order().len();
/// assert!(visited >= 2);
/// ```
#[derive(Debug, Clone)]
pub struct DijkstraScratch {
    dist: Vec<f64>,
    parent_net: Vec<Option<NetId>>,
    stamp: Vec<u32>,
    done: Vec<bool>,
    epoch: u32,
    heap: BinaryHeap<HeapEntry>,
    radix: RadixHeap,
    slot_queue: SlotQueue,
    visited: Vec<CellId>,
    net_stamp: Vec<u32>,
    net_count: Vec<u32>,
    tree_list: Vec<NetId>,
    stats: DijkstraStats,
}

/// Work counters accumulated across every [`DijkstraScratch`] run since
/// creation (or [`DijkstraScratch::take_stats`]). Plain integers —
/// always maintained, cheap enough to never need a feature gate — so the
/// flow phase can report how much search work its trees cost.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DijkstraStats {
    /// Heap pops, including stale entries skipped by the `done` check.
    pub heap_pops: u64,
    /// Successful relaxations (`dist` improvements pushed to the heap).
    pub relaxations: u64,
    /// Nodes settled (final distance fixed) — restored-from-cache nodes
    /// count too, so this always equals the total tree size.
    pub settled: u64,
    /// Nodes whose `(distance, parent)` were reused verbatim from a
    /// cached tree by the incremental path ([`SsspCache`]); zero for
    /// fresh runs.
    pub reused: u64,
    /// Nodes an incremental run had to requeue and re-relax because a
    /// congestion weight on their cached tree path changed; zero for
    /// fresh runs.
    pub requeued: u64,
}

/// One node of a cached shortest-path tree, in settle order.
#[derive(Debug, Clone, Copy)]
struct CacheNode {
    node: u32,
    /// Parent net id, `u32::MAX` for the source.
    parent: u32,
    dist: f64,
}

impl DijkstraScratch {
    /// Creates buffers for graphs of `n` nodes.
    #[must_use]
    pub fn new(n: usize) -> Self {
        Self {
            dist: vec![f64::INFINITY; n],
            parent_net: vec![None; n],
            stamp: vec![0; n],
            done: vec![false; n],
            epoch: 0,
            heap: BinaryHeap::new(),
            radix: RadixHeap::new(),
            slot_queue: SlotQueue::new(),
            visited: Vec::new(),
            net_stamp: vec![0; n],
            net_count: vec![0; n],
            tree_list: Vec::new(),
            stats: DijkstraStats::default(),
        }
    }

    /// The work counters accumulated so far.
    #[must_use]
    pub fn stats(&self) -> DijkstraStats {
        self.stats
    }

    /// Returns the accumulated counters and resets them to zero.
    pub fn take_stats(&mut self) -> DijkstraStats {
        std::mem::take(&mut self.stats)
    }

    fn begin(&mut self) {
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            // Stamp wrap-around: force full reset.
            self.stamp.fill(u32::MAX);
            self.net_stamp.fill(u32::MAX);
            self.epoch = 1;
        }
        self.heap.clear();
        self.radix.clear();
        self.slot_queue.reset();
        self.visited.clear();
        self.tree_list.clear();
    }

    fn fresh(&mut self, v: usize) -> bool {
        if self.stamp[v] != self.epoch {
            self.stamp[v] = self.epoch;
            self.dist[v] = f64::INFINITY;
            self.parent_net[v] = None;
            self.done[v] = false;
            true
        } else {
            false
        }
    }

    /// Marks `v` settled: final distance fixed, parent final, tree-net
    /// branch accounting updated.
    fn settle(&mut self, v: usize) {
        self.done[v] = true;
        self.stats.settled += 1;
        self.visited.push(CellId::from_index(v));
        if let Some(p) = self.parent_net[v] {
            let pi = p.index();
            if self.net_stamp[pi] == self.epoch {
                self.net_count[pi] += 1;
            } else {
                self.net_stamp[pi] = self.epoch;
                self.net_count[pi] = 1;
                self.tree_list.push(p);
            }
        }
    }

    /// Runs the reference binary-heap Dijkstra from `source`; results are
    /// readable until the next run via [`DijkstraScratch::distance`],
    /// [`DijkstraScratch::parent`], and [`DijkstraScratch::visited_order`].
    ///
    /// This is the executable specification [`DijkstraScratch::run_csr`]
    /// is property-tested against; the hot saturation loop uses the CSR
    /// variant.
    ///
    /// # Panics
    ///
    /// Panics if `length.len()` differs from the node count, or if any
    /// length the search consumes is negative or NaN. The validation is
    /// always on — not a `debug_assert!` — because a NaN admitted in a
    /// release build makes the heap entry's `partial_cmp` fall back to
    /// `Ordering::Equal`, silently corrupting heap order; each length is
    /// checked once when its node settles, so the check adds O(1) per
    /// settled node and never touches lengths of unreached nodes.
    pub fn run(&mut self, graph: &CircuitGraph, source: CellId, length: &[f64]) {
        assert_eq!(
            length.len(),
            graph.num_nodes(),
            "one length per net slot required"
        );
        self.begin();
        let s = source.index();
        self.fresh(s);
        self.dist[s] = 0.0;
        self.heap.push(HeapEntry {
            dist: 0.0,
            node: s as u32,
        });
        while let Some(HeapEntry { dist: d, node }) = self.heap.pop() {
            self.stats.heap_pops += 1;
            let v = node as usize;
            if self.done[v] {
                continue;
            }
            self.settle(v);
            let net = CellId::from_index(v);
            let l = length[v];
            assert!(
                l >= 0.0,
                "net length of node {v} must be non-negative and not NaN, got {l}"
            );
            for &w in graph.net(net).sinks() {
                let wi = w.index();
                self.fresh(wi);
                let nd = d + l;
                if nd < self.dist[wi] {
                    self.dist[wi] = nd;
                    self.parent_net[wi] = Some(net);
                    self.stats.relaxations += 1;
                    self.heap.push(HeapEntry {
                        dist: nd,
                        node: wi as u32,
                    });
                } else if nd == self.dist[wi]
                    && !self.done[wi]
                    && should_replace(self.parent_net[wi], net)
                {
                    // Equal distance: prefer the smaller parent net id so
                    // the tree is unique regardless of heap pop order.
                    self.parent_net[wi] = Some(net);
                }
            }
        }
    }

    /// Runs the radix-heap Dijkstra over the packed [`Csr`] adjacency —
    /// the production engine of `Saturate_Network`.
    ///
    /// Bit-identical to [`DijkstraScratch::run`] in every observable:
    /// distances, parents, settle order, and work counters. The heap keys
    /// are the distances' IEEE-754 bit patterns (an exact monotone
    /// quantization for non-negative doubles) and bucket 0 pops in node-id
    /// order, reproducing the reference's `(distance, node)` tie-break.
    ///
    /// # Panics
    ///
    /// As [`DijkstraScratch::run`]: length-vector size mismatch, or a
    /// negative/NaN length consumed by the search.
    pub fn run_csr(&mut self, csr: &Csr, source: CellId, length: &[f64]) {
        assert_eq!(
            length.len(),
            csr.num_nodes(),
            "one length per net slot required"
        );
        self.begin();
        let s = source.index();
        self.fresh(s);
        self.dist[s] = 0.0;
        self.radix.push(0, s as u32); // 0.0f64.to_bits() == 0
        while let Some((key, node)) = self.radix.pop() {
            self.stats.heap_pops += 1;
            let v = node as usize;
            if self.done[v] {
                continue;
            }
            let d = f64::from_bits(key);
            self.settle(v);
            let net = CellId::from_index(v);
            let l = length[v];
            assert!(
                l >= 0.0,
                "net length of node {v} must be non-negative and not NaN, got {l}"
            );
            for &w in csr.sinks(net) {
                let wi = w.index();
                self.fresh(wi);
                let nd = d + l;
                if nd < self.dist[wi] {
                    self.dist[wi] = nd;
                    self.parent_net[wi] = Some(net);
                    self.stats.relaxations += 1;
                    self.radix.push(nd.to_bits(), wi as u32);
                } else if nd == self.dist[wi]
                    && !self.done[wi]
                    && should_replace(self.parent_net[wi], net)
                {
                    self.parent_net[wi] = Some(net);
                }
            }
        }
    }

    /// Runs the fixed-slot bucket-queue Dijkstra over the packed [`Csr`]
    /// adjacency — the `Saturate_Network` hot path.
    ///
    /// The queue keys are the distances' IEEE-754 bit patterns (an exact
    /// monotone quantization for non-negative doubles), bucketed by their
    /// top 16 bits into a fixed array of 2¹⁵ slots
    /// that covers the *entire* non-negative `f64` range — saturation's
    /// clamped-exponential congestion distances span `[1, e^700]`, so no
    /// bounded-range calendar works. Entries never migrate between slots
    /// and the slot being drained is kept sorted, so pops come out in
    /// exactly the `(distance, node)` order of the binary-heap reference:
    /// distances, parents, settle order, and work counters are all
    /// bit-identical to [`DijkstraScratch::run`]. See `DESIGN.md` §13.
    ///
    /// # Panics
    ///
    /// As [`DijkstraScratch::run`]: length-vector size mismatch, or a
    /// negative/NaN length consumed by the search.
    pub fn run_fast(&mut self, csr: &Csr, source: CellId, length: &[f64]) {
        assert_eq!(
            length.len(),
            csr.num_nodes(),
            "one length per net slot required"
        );
        self.begin();
        self.slot_queue.ensure();
        // Bulk-initialize instead of the per-touch lazy `fresh()`: four
        // vectorized fills per tree cost far less than a stamp check and
        // three conditional stores on every edge scanned. Stamping every
        // node keeps the accessor contract: unreached nodes read
        // `INFINITY`/`None` through the now-valid stamp.
        self.stamp.fill(self.epoch);
        self.dist.fill(f64::INFINITY);
        self.parent_net.fill(None);
        self.done.fill(false);
        let s = source.index();
        self.dist[s] = 0.0;
        let mut pops = 0u64;
        let mut relaxations = 0u64;
        self.slot_queue.push(0, s as u32); // 0.0f64.to_bits() == 0
        while let Some((key, node)) = self.slot_queue.pop() {
            pops += 1;
            let v = node as usize;
            if self.done[v] {
                continue;
            }
            let d = f64::from_bits(key);
            self.settle(v);
            let net = CellId::from_index(v);
            let l = length[v];
            assert!(
                l >= 0.0,
                "net length of node {v} must be non-negative and not NaN, got {l}"
            );
            let nd = d + l;
            let bits = nd.to_bits();
            for &w in csr.sinks(net) {
                let wi = w.index();
                if nd < self.dist[wi] {
                    self.dist[wi] = nd;
                    self.parent_net[wi] = Some(net);
                    relaxations += 1;
                    self.slot_queue.push(bits, wi as u32);
                } else if nd == self.dist[wi]
                    && !self.done[wi]
                    && should_replace(self.parent_net[wi], net)
                {
                    self.parent_net[wi] = Some(net);
                }
            }
        }
        self.stats.heap_pops += pops;
        self.stats.relaxations += relaxations;
    }

    /// Restores a cached tree verbatim: every node settles with its
    /// cached distance and parent, no search work at all.
    fn restore_tree(&mut self, nodes: &[CacheNode]) {
        self.begin();
        for e in nodes {
            let v = e.node as usize;
            self.fresh(v);
            self.dist[v] = e.dist;
            self.parent_net[v] = cached_parent(e.parent);
            self.settle(v);
            self.stats.reused += 1;
        }
    }

    /// Incremental run: restores the `valid` subset of a cached tree and
    /// re-searches only the invalidated remainder, seeded by relaxing
    /// every branch from a restored node into the non-restored region.
    ///
    /// Soundness (see `DESIGN.md` §13): congestion weights only ever
    /// increase, so a node whose cached tree path avoids every changed
    /// net keeps its exact distance *and* — because the tie rule picks the
    /// smallest net id among minimal candidates, and non-minimal
    /// candidates only move further from the minimum — its exact parent.
    /// Strictly positive lengths are required (saturation's congestion
    /// distances are ≥ 1): a zero-length branch could tie a node to a
    /// predecessor that a fresh run would settle *after* it, where the
    /// reference blocks the equal-distance parent swap.
    fn run_seeded(
        &mut self,
        csr: &Csr,
        source: CellId,
        length: &[f64],
        cached: &[CacheNode],
        valid: &[bool],
    ) {
        assert_eq!(
            length.len(),
            csr.num_nodes(),
            "one length per net slot required"
        );
        debug_assert_eq!(cached.first().map(|e| e.node), Some(source.index() as u32));
        let _ = source;
        self.begin();
        // 1. Restore the still-valid nodes, preserving their relative
        //    settle order (a parent always precedes its children).
        for (e, &ok) in cached.iter().zip(valid) {
            if !ok {
                continue;
            }
            let v = e.node as usize;
            self.fresh(v);
            self.dist[v] = e.dist;
            self.parent_net[v] = cached_parent(e.parent);
            self.settle(v);
            self.stats.reused += 1;
        }
        // 2. Seed: relax every branch leaving a restored node into the
        //    not-yet-settled region. Order does not matter — the improve /
        //    equal-min-net rules make the outcome order-independent.
        let restored = self.visited.len();
        for idx in 0..restored {
            let u = self.visited[idx];
            let ui = u.index();
            let d = self.dist[ui];
            let l = length[ui];
            assert!(
                l > 0.0,
                "incremental SSSP requires strictly positive lengths, got {l} at node {ui}"
            );
            for &w in csr.sinks(u) {
                let wi = w.index();
                self.fresh(wi);
                if self.done[wi] {
                    continue;
                }
                let nd = d + l;
                if nd < self.dist[wi] {
                    self.dist[wi] = nd;
                    self.parent_net[wi] = Some(u);
                    self.stats.relaxations += 1;
                    self.radix.push(nd.to_bits(), wi as u32);
                } else if nd == self.dist[wi] && should_replace(self.parent_net[wi], u) {
                    self.parent_net[wi] = Some(u);
                }
            }
        }
        // 3. Search the invalidated region, exactly the run_csr main loop.
        while let Some((key, node)) = self.radix.pop() {
            self.stats.heap_pops += 1;
            let v = node as usize;
            if self.done[v] {
                continue;
            }
            let d = f64::from_bits(key);
            self.settle(v);
            self.stats.requeued += 1;
            let net = CellId::from_index(v);
            let l = length[v];
            assert!(
                l > 0.0,
                "incremental SSSP requires strictly positive lengths, got {l} at node {v}"
            );
            for &w in csr.sinks(net) {
                let wi = w.index();
                self.fresh(wi);
                if self.done[wi] {
                    continue;
                }
                let nd = d + l;
                if nd < self.dist[wi] {
                    self.dist[wi] = nd;
                    self.parent_net[wi] = Some(net);
                    self.stats.relaxations += 1;
                    self.radix.push(nd.to_bits(), wi as u32);
                } else if nd == self.dist[wi] && should_replace(self.parent_net[wi], net) {
                    self.parent_net[wi] = Some(net);
                }
            }
        }
    }

    /// Distance of `node` from the last run's source (`INFINITY` when
    /// unreached).
    #[must_use]
    pub fn distance(&self, node: CellId) -> f64 {
        if self.stamp[node.index()] == self.epoch {
            self.dist[node.index()]
        } else {
            f64::INFINITY
        }
    }

    /// The tree parent net of `node`, if reached.
    #[must_use]
    pub fn parent(&self, node: CellId) -> Option<NetId> {
        if self.stamp[node.index()] == self.epoch {
            self.parent_net[node.index()]
        } else {
            None
        }
    }

    /// Nodes settled by the last run, in settle order (source first). An
    /// incremental run lists the restored nodes first (in their cached
    /// relative order), then the re-searched ones.
    #[must_use]
    pub fn visited_order(&self) -> &[CellId] {
        &self.visited
    }

    /// The distinct nets of the last run's tree with their branch counts,
    /// in first-settled order — the allocation-free view the saturation
    /// loop folds its flow updates over. The order is deterministic; use
    /// [`DijkstraScratch::tree_nets`] for the sorted view.
    pub fn tree_net_counts(&self) -> impl Iterator<Item = (NetId, u32)> + '_ {
        self.tree_list
            .iter()
            .map(move |&n| (n, self.net_count[n.index()]))
    }

    /// The distinct nets used by the last run's tree (each net once,
    /// ascending id).
    #[must_use]
    pub fn tree_nets(&self) -> Vec<NetId> {
        let mut nets = self.tree_list.clone();
        nets.sort_unstable();
        nets
    }

    /// Per-net branch counts of the last run's tree, ascending net id.
    #[must_use]
    pub fn tree_net_branch_counts(&self) -> Vec<(NetId, usize)> {
        let mut out: Vec<(NetId, usize)> = self
            .tree_list
            .iter()
            .map(|&n| (n, self.net_count[n.index()] as usize))
            .collect();
        out.sort_unstable();
        out
    }
}

fn cached_parent(raw: u32) -> Option<NetId> {
    (raw != u32::MAX).then(|| CellId::from_index(raw as usize))
}

fn should_replace(current: Option<NetId>, candidate: NetId) -> bool {
    match current {
        None => true,
        Some(c) => candidate < c,
    }
}

/// One cached shortest-path tree plus the clock tick it was built at.
#[derive(Debug, Clone)]
struct CachedTree {
    built_at: u64,
    /// [`SsspCache::note_changed`] total at build time, for the O(1)
    /// nothing-changed and hopeless fast paths.
    changes_at_build: u64,
    nodes: Vec<CacheNode>,
}

/// Incremental single-source shortest-path cache for the saturation loop.
///
/// `Saturate_Network` redraws every source ≥ `min_visit` times while the
/// congestion weights *only ever increase* (flow is only added). Under
/// monotone weight increases a cached tree node stays exact as long as no
/// net on its root path changed — so when a source recurs, the cache
/// revalidates its previous tree with one linear walk and either reuses
/// it wholly (no search at all), reuses the unchanged part and re-relaxes
/// only the invalidated subtrees ([`DijkstraScratch`] seeded run — only
/// worth it when at least half the tree survives), or falls back to a
/// fresh [`DijkstraScratch::run_fast`].
///
/// # Contract
///
/// * Between two [`SsspCache::run`] calls, weights may only **increase**,
///   and every net whose weight changed must be reported via
///   [`SsspCache::note_changed`]. Violating this silently yields stale
///   distances.
/// * Lengths must be ≥ 1 (congestion distances are `exp(non-negative)`):
///   the seeded partial re-search is unsound for zero-length branches.
///
/// Results are bit-identical to fresh runs regardless of cache hits; only
/// the [`DijkstraStats`] work counters (`reused`, `requeued`, and the
/// reduced `heap_pops`/`relaxations`) reveal the shortcut. The cache
/// bounds its memory by `budget_nodes` total cached tree nodes; sources
/// past the budget simply run fresh, which cannot change any result.
///
/// Because any heuristic here is result-invisible, the cache also defends
/// its own overhead: a global change counter gives an O(1) "nothing
/// changed at all" restore that skips the validity walk, and after
/// [`SsspCache::MISS_STREAK_OFF`] consecutive failed reuses it stops
/// *storing* trees until the weights freeze (mid-saturation on a large
/// circuit every tree invalidates everything, so storing is pure waste;
/// once congestion clamps and distances stop moving, storing resumes and
/// full-tree restores kick in).
///
/// # Examples
///
/// ```
/// use ppet_graph::{dijkstra::{DijkstraScratch, SsspCache}, CircuitGraph};
/// use ppet_netlist::data;
///
/// let g = CircuitGraph::from_circuit(&data::s27());
/// let unit = vec![1.0; g.num_nodes()];
/// let mut scratch = DijkstraScratch::new(g.num_nodes());
/// let mut cache = SsspCache::new(g.num_nodes(), 1 << 16);
/// let src = g.find("G0").unwrap();
/// cache.run(&mut scratch, g.csr(), src, &unit);
/// let first: Vec<f64> = g.nodes().map(|v| scratch.distance(v)).collect();
/// // No weight changed: the second run reuses the whole tree.
/// cache.run(&mut scratch, g.csr(), src, &unit);
/// let second: Vec<f64> = g.nodes().map(|v| scratch.distance(v)).collect();
/// assert_eq!(first, second);
/// assert!(scratch.stats().reused > 0);
/// ```
#[derive(Debug, Clone)]
pub struct SsspCache {
    trees: Vec<Option<CachedTree>>,
    last_changed: Vec<u64>,
    clock: u64,
    budget: usize,
    used: usize,
    valid_stamp: Vec<u32>,
    valid_epoch: u32,
    valid_flags: Vec<bool>,
    /// Total [`SsspCache::note_changed`] calls ever; a cached tree built
    /// when this had the same value is trivially fully valid.
    changes: u64,
    /// `changes` as of the previous [`SsspCache::run`] — equal to
    /// `changes` when the weights have frozen.
    changes_at_prev_run: u64,
    /// Consecutive runs that found a cached tree but could not restore
    /// it whole.
    miss_streak: u32,
}

impl SsspCache {
    /// After this many consecutive failed full-tree reuses the cache
    /// stops storing trees (each store copies the whole tree for
    /// nothing) until a run observes zero weight changes — the signal
    /// that congestion has clamped and reuse can start paying again.
    pub const MISS_STREAK_OFF: u32 = 64;

    /// Creates a cache for graphs of `n` nodes holding at most
    /// `budget_nodes` cached tree nodes across all sources.
    #[must_use]
    pub fn new(n: usize, budget_nodes: usize) -> Self {
        Self {
            trees: vec![None; n],
            last_changed: vec![0; n],
            clock: 0,
            budget: budget_nodes,
            used: 0,
            valid_stamp: vec![0; n],
            valid_epoch: 0,
            valid_flags: Vec::new(),
            changes: 0,
            changes_at_prev_run: 0,
            miss_streak: 0,
        }
    }

    /// Records that `net`'s weight changed after the most recent
    /// [`SsspCache::run`]. Call once per changed net per tree.
    pub fn note_changed(&mut self, net: NetId) {
        self.last_changed[net.index()] = self.clock;
        self.changes += 1;
    }

    /// Computes the shortest-path tree from `source` into `scratch`,
    /// reusing whatever the cache proves unchanged. Results in `scratch`
    /// are bit-identical to `scratch.run_fast(csr, source, length)`.
    pub fn run(
        &mut self,
        scratch: &mut DijkstraScratch,
        csr: &Csr,
        source: CellId,
        length: &[f64],
    ) {
        self.clock += 1;
        let frozen = self.changes == self.changes_at_prev_run;
        self.changes_at_prev_run = self.changes;
        let s = source.index();
        match self.trees[s].take() {
            None => scratch.run_fast(csr, source, length),
            Some(tree) => {
                let changes_since = self.changes - tree.changes_at_build;
                if changes_since == 0 {
                    // Nothing anywhere changed since this tree was built.
                    self.miss_streak = 0;
                    scratch.restore_tree(&tree.nodes);
                    self.trees[s] = Some(tree);
                    return;
                }
                self.valid_epoch = self.valid_epoch.wrapping_add(1);
                if self.valid_epoch == 0 {
                    self.valid_stamp.fill(u32::MAX);
                    self.valid_epoch = 1;
                }
                self.valid_flags.clear();
                let mut valid_count = 0usize;
                for e in &tree.nodes {
                    let ok = e.parent == u32::MAX
                        || (self.valid_stamp[e.parent as usize] == self.valid_epoch
                            && self.last_changed[e.parent as usize] < tree.built_at);
                    if ok {
                        self.valid_stamp[e.node as usize] = self.valid_epoch;
                        valid_count += 1;
                    }
                    self.valid_flags.push(ok);
                }
                if valid_count == tree.nodes.len() {
                    self.miss_streak = 0;
                    scratch.restore_tree(&tree.nodes);
                    self.trees[s] = Some(tree);
                    return;
                }
                self.miss_streak = self.miss_streak.saturating_add(1);
                self.used -= tree.nodes.len();
                if 2 * valid_count >= tree.nodes.len() {
                    // Enough survives for the seeded re-search to beat a
                    // fresh run.
                    scratch.run_seeded(csr, source, length, &tree.nodes, &self.valid_flags);
                } else {
                    scratch.run_fast(csr, source, length);
                }
            }
        }
        if self.miss_streak >= Self::MISS_STREAK_OFF && !frozen {
            return;
        }
        let len = scratch.visited_order().len();
        if self.used + len <= self.budget {
            let nodes: Vec<CacheNode> = scratch
                .visited_order()
                .iter()
                .map(|&v| CacheNode {
                    node: v.index() as u32,
                    parent: scratch.parent(v).map_or(u32::MAX, |p| p.index() as u32),
                    dist: scratch.distance(v),
                })
                .collect();
            self.used += len;
            self.trees[s] = Some(CachedTree {
                built_at: self.clock,
                changes_at_build: self.changes,
                nodes,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppet_netlist::data;

    fn s27_graph() -> CircuitGraph {
        CircuitGraph::from_circuit(&data::s27())
    }

    #[test]
    fn source_distance_zero_and_unreachable_infinite() {
        let g = s27_graph();
        let unit = vec![1.0; g.num_nodes()];
        let src = g.find("G9").unwrap();
        let spt = shortest_path_tree(&g, src, &unit);
        assert_eq!(spt.dist[src.index()], 0.0);
        // Primary inputs are unreachable from internal nodes.
        assert!(spt.dist[g.find("G0").unwrap().index()].is_infinite());
    }

    #[test]
    fn tree_parent_edges_are_consistent() {
        let g = s27_graph();
        let unit = vec![1.0; g.num_nodes()];
        let spt = shortest_path_tree(&g, g.find("G0").unwrap(), &unit);
        for v in g.nodes() {
            if let Some(p) = spt.parent_net[v.index()] {
                // The parent net's branch must land on v and distances must
                // satisfy the tree equality.
                assert!(g.net(p).sinks().contains(&v));
                let d_parent = spt.dist[p.index()];
                assert!((spt.dist[v.index()] - (d_parent + unit[p.index()])).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn matches_bellman_ford_distances() {
        let g = s27_graph();
        // Varied lengths: net i has length (i % 5) + 0.5.
        let lengths: Vec<f64> = (0..g.num_nodes()).map(|i| (i % 5) as f64 + 0.5).collect();
        for src in g.nodes() {
            let spt = shortest_path_tree(&g, src, &lengths);
            // Reference: Bellman-Ford relaxation.
            let mut dist = vec![f64::INFINITY; g.num_nodes()];
            dist[src.index()] = 0.0;
            for _ in 0..g.num_nodes() {
                for b in g.branches() {
                    let nd = dist[b.src.index()] + lengths[b.net.index()];
                    if nd < dist[b.sink.index()] {
                        dist[b.sink.index()] = nd;
                    }
                }
            }
            for v in g.nodes() {
                let a = spt.dist[v.index()];
                let b = dist[v.index()];
                assert!(
                    (a.is_infinite() && b.is_infinite()) || (a - b).abs() < 1e-9,
                    "src {src} node {v}: {a} vs {b}"
                );
            }
        }
    }

    #[test]
    fn deterministic_tree() {
        let g = s27_graph();
        let unit = vec![1.0; g.num_nodes()];
        let a = shortest_path_tree(&g, g.find("G1").unwrap(), &unit);
        let b = shortest_path_tree(&g, g.find("G1").unwrap(), &unit);
        assert_eq!(a.parent_net, b.parent_net);
    }

    #[test]
    fn tree_nets_deduplicate() {
        let g = s27_graph();
        let unit = vec![1.0; g.num_nodes()];
        let spt = shortest_path_tree(&g, g.find("G0").unwrap(), &unit);
        let nets = spt.tree_nets();
        let mut sorted = nets.clone();
        sorted.dedup();
        assert_eq!(nets, sorted);
        let per_branch = spt.tree_net_branch_counts();
        let total: usize = per_branch.iter().map(|(_, c)| c).sum();
        let used_branches = spt.parent_net.iter().flatten().count();
        assert_eq!(total, used_branches);
    }

    #[test]
    fn csr_run_matches_reference_exactly() {
        let g = s27_graph();
        let lengths: Vec<f64> = (0..g.num_nodes()).map(|i| (i % 7) as f64 * 0.5).collect();
        for src in g.nodes() {
            let mut a = DijkstraScratch::new(g.num_nodes());
            a.run(&g, src, &lengths);
            let mut b = DijkstraScratch::new(g.num_nodes());
            b.run_csr(g.csr(), src, &lengths);
            assert_eq!(a.visited_order(), b.visited_order(), "src {src}");
            assert_eq!(a.stats(), b.stats(), "src {src}");
            for v in g.nodes() {
                assert_eq!(a.distance(v).to_bits(), b.distance(v).to_bits());
                assert_eq!(a.parent(v), b.parent(v));
            }
            assert_eq!(a.tree_nets(), b.tree_nets());
            assert_eq!(a.tree_net_branch_counts(), b.tree_net_branch_counts());
        }
    }

    #[test]
    fn tree_net_counts_agree_with_sorted_views() {
        let g = s27_graph();
        let unit = vec![1.0; g.num_nodes()];
        let mut scratch = DijkstraScratch::new(g.num_nodes());
        scratch.run_csr(g.csr(), g.find("G0").unwrap(), &unit);
        let mut from_iter: Vec<(NetId, usize)> = scratch
            .tree_net_counts()
            .map(|(n, c)| (n, c as usize))
            .collect();
        from_iter.sort_unstable();
        assert_eq!(from_iter, scratch.tree_net_branch_counts());
    }

    #[test]
    fn sssp_cache_reuses_and_invalidates_correctly() {
        let g = s27_graph();
        let n = g.num_nodes();
        let mut lengths = vec![1.0; n];
        let src = g.find("G9").unwrap();

        let mut scratch = DijkstraScratch::new(n);
        let mut cache = SsspCache::new(n, 1 << 16);
        cache.run(&mut scratch, g.csr(), src, &lengths);
        let baseline: Vec<u64> = g.nodes().map(|v| scratch.distance(v).to_bits()).collect();

        // Unchanged weights: full reuse, identical results.
        cache.run(&mut scratch, g.csr(), src, &lengths);
        assert!(scratch.stats().reused > 0);
        assert_eq!(scratch.stats().requeued, 0);
        let again: Vec<u64> = g.nodes().map(|v| scratch.distance(v).to_bits()).collect();
        assert_eq!(baseline, again);

        // Increase a weight on the tree: the invalidated part is re-run
        // and the result matches a fresh run bit for bit.
        let changed = scratch.tree_nets()[0];
        lengths[changed.index()] += 2.5;
        cache.note_changed(changed);
        cache.run(&mut scratch, g.csr(), src, &lengths);
        let incremental: Vec<u64> = g.nodes().map(|v| scratch.distance(v).to_bits()).collect();
        let inc_parents: Vec<Option<NetId>> = g.nodes().map(|v| scratch.parent(v)).collect();

        let mut fresh = DijkstraScratch::new(n);
        fresh.run_csr(g.csr(), src, &lengths);
        let want: Vec<u64> = g.nodes().map(|v| fresh.distance(v).to_bits()).collect();
        let want_parents: Vec<Option<NetId>> = g.nodes().map(|v| fresh.parent(v)).collect();
        assert_eq!(incremental, want);
        assert_eq!(inc_parents, want_parents);
    }

    #[test]
    fn sssp_cache_with_zero_budget_always_runs_fresh() {
        let g = s27_graph();
        let n = g.num_nodes();
        let unit = vec![1.0; n];
        let src = g.find("G0").unwrap();
        let mut scratch = DijkstraScratch::new(n);
        let mut cache = SsspCache::new(n, 0);
        cache.run(&mut scratch, g.csr(), src, &unit);
        cache.run(&mut scratch, g.csr(), src, &unit);
        assert_eq!(scratch.stats().reused, 0);
        assert_eq!(scratch.stats().requeued, 0);
    }

    #[test]
    fn slot_queue_run_matches_reference_exactly() {
        let g = s27_graph();
        // A coarse grid with zeros to force distance ties and absorption-
        // style equal keys — the cases a sloppy drain order would break.
        let lengths: Vec<f64> = (0..g.num_nodes()).map(|i| (i % 4) as f64 * 0.5).collect();
        for src in g.nodes() {
            let mut a = DijkstraScratch::new(g.num_nodes());
            a.run(&g, src, &lengths);
            let mut b = DijkstraScratch::new(g.num_nodes());
            b.run_fast(g.csr(), src, &lengths);
            // Bit-identical in every observable, settle order and work
            // counters included: the slot queue reproduces the binary
            // heap's (distance, node) pop order exactly.
            assert_eq!(a.visited_order(), b.visited_order(), "src {src}");
            assert_eq!(a.stats(), b.stats(), "src {src}");
            for v in g.nodes() {
                assert_eq!(
                    a.distance(v).to_bits(),
                    b.distance(v).to_bits(),
                    "src {src}"
                );
                assert_eq!(a.parent(v), b.parent(v), "src {src}");
            }
            assert_eq!(a.tree_nets(), b.tree_nets());
            assert_eq!(a.tree_net_branch_counts(), b.tree_net_branch_counts());
        }
    }

    #[test]
    fn slot_queue_handles_clamped_congestion_range() {
        let g = s27_graph();
        // Clamped-congestion-sized lengths span the whole f64 exponent
        // range; the fixed slots must cover it without any fallback.
        let mut lengths = vec![1.0; g.num_nodes()];
        let src = g.find("G9").unwrap();
        lengths[src.index()] = 1e300;
        lengths[g.find("G0").unwrap().index()] = 1e-12;
        let mut a = DijkstraScratch::new(g.num_nodes());
        a.run(&g, src, &lengths);
        let mut b = DijkstraScratch::new(g.num_nodes());
        b.run_fast(g.csr(), src, &lengths);
        assert_eq!(a.visited_order(), b.visited_order());
        assert_eq!(a.stats(), b.stats());
        for v in g.nodes() {
            assert_eq!(a.distance(v).to_bits(), b.distance(v).to_bits());
            assert_eq!(a.parent(v), b.parent(v));
        }
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn slot_queue_rejects_negative_lengths() {
        let g = s27_graph();
        let src = g.find("G0").unwrap();
        let mut lengths = vec![1.0; g.num_nodes()];
        lengths[src.index()] = -0.5; // the source always settles first
        let mut scratch = DijkstraScratch::new(g.num_nodes());
        scratch.run_fast(g.csr(), src, &lengths);
    }

    #[test]
    fn radix_heap_pops_in_distance_then_node_order() {
        let mut h = RadixHeap::new();
        let keys = [5.0f64, 1.25, 5.0, 0.0, 1.25, 9.75];
        for (i, k) in keys.iter().enumerate() {
            h.push(k.to_bits(), i as u32);
        }
        let mut popped = Vec::new();
        while let Some((k, n)) = h.pop() {
            popped.push((f64::from_bits(k), n));
        }
        assert_eq!(
            popped,
            vec![
                (0.0, 3),
                (1.25, 1),
                (1.25, 4),
                (5.0, 0),
                (5.0, 2),
                (9.75, 5)
            ]
        );
    }

    #[test]
    fn stats_accumulate_and_reset() {
        let g = s27_graph();
        let unit = vec![1.0; g.num_nodes()];
        let mut scratch = DijkstraScratch::new(g.num_nodes());
        scratch.run(&g, g.find("G0").unwrap(), &unit);
        let one = scratch.stats();
        assert!(one.heap_pops >= one.settled);
        assert!(one.settled >= 2);
        assert!(one.relaxations >= one.settled - 1);
        assert_eq!(one.settled, scratch.visited_order().len() as u64);

        scratch.run(&g, g.find("G0").unwrap(), &unit);
        let two = scratch.stats();
        assert_eq!(
            two.heap_pops,
            2 * one.heap_pops,
            "identical runs add equal work"
        );

        assert_eq!(scratch.take_stats(), two);
        assert_eq!(scratch.stats(), DijkstraStats::default());
    }

    // The two rejection tests below are regression tests for a release-mode
    // hole: the length check used to be a `debug_assert!`, so `--release`
    // builds accepted NaN (and negative) lengths and silently corrupted the
    // heap order. CI runs them under the release profile as well.

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_length_rejected() {
        let g = s27_graph();
        let src = g.find("G0").unwrap();
        let mut lengths = vec![1.0; g.num_nodes()];
        lengths[src.index()] = -1.0; // the source always settles first
        let mut scratch = DijkstraScratch::new(g.num_nodes());
        scratch.run(&g, src, &lengths);
    }

    #[test]
    #[should_panic(expected = "not NaN")]
    fn nan_length_rejected() {
        let g = s27_graph();
        let src = g.find("G0").unwrap();
        let mut lengths = vec![1.0; g.num_nodes()];
        lengths[src.index()] = f64::NAN;
        let mut scratch = DijkstraScratch::new(g.num_nodes());
        scratch.run(&g, src, &lengths);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_length_rejected_by_csr_run() {
        let g = s27_graph();
        let src = g.find("G0").unwrap();
        let mut lengths = vec![1.0; g.num_nodes()];
        lengths[src.index()] = -1.0;
        let _ = shortest_path_tree(&g, src, &lengths);
    }

    #[test]
    #[should_panic(expected = "not NaN")]
    fn nan_length_rejected_by_csr_run() {
        let g = s27_graph();
        let src = g.find("G0").unwrap();
        let mut lengths = vec![1.0; g.num_nodes()];
        lengths[src.index()] = f64::NAN;
        let _ = shortest_path_tree(&g, src, &lengths);
    }
}
