//! Topological ordering of the combinational subgraph.
//!
//! Registers break the order (their output does not combinationally depend
//! on their input), so a valid synchronous circuit always levelizes. The
//! order is used by the retiming machinery and by consumers that evaluate
//! logic level by level.

use ppet_netlist::CellId;

use crate::graph::CircuitGraph;

/// A topological order of all nodes such that every *combinational*
/// dependency appears before its consumer. Registers and primary inputs
/// appear before any combinational node that reads them.
///
/// Returns `None` if the graph has a combinational cycle.
///
/// # Examples
///
/// ```
/// use ppet_graph::{topo, CircuitGraph};
/// use ppet_netlist::data;
///
/// let g = CircuitGraph::from_circuit(&data::s27());
/// let order = topo::combinational_order(&g).expect("s27 levelizes");
/// assert_eq!(order.len(), g.num_nodes());
/// ```
#[must_use]
pub fn combinational_order(graph: &CircuitGraph) -> Option<Vec<CellId>> {
    let n = graph.num_nodes();
    let mut indegree = vec![0usize; n];
    for v in graph.nodes() {
        if graph.kind(v).is_combinational() {
            indegree[v.index()] = graph.fanin(v).len();
        }
    }
    let mut queue: Vec<CellId> = graph
        .nodes()
        .filter(|&v| indegree[v.index()] == 0)
        .collect();
    let mut order = Vec::with_capacity(n);
    let mut head = 0;
    while head < queue.len() {
        let v = queue[head];
        head += 1;
        order.push(v);
        for &w in graph.net(v).sinks() {
            if graph.kind(w).is_combinational() {
                indegree[w.index()] -= 1;
                if indegree[w.index()] == 0 {
                    queue.push(w);
                }
            }
        }
    }
    if order.len() == n {
        Some(order)
    } else {
        None
    }
}

/// Combinational depth (level) of every node: inputs and registers are at
/// level 0, a gate is one past its deepest fan-in.
///
/// Returns `None` on combinational cycles.
#[must_use]
pub fn levels(graph: &CircuitGraph) -> Option<Vec<usize>> {
    let order = combinational_order(graph)?;
    let mut level = vec![0usize; graph.num_nodes()];
    for v in order {
        if graph.kind(v).is_combinational() {
            level[v.index()] = graph
                .fanin(v)
                .iter()
                .map(|f| level[f.index()] + 1)
                .max()
                .unwrap_or(0);
        }
    }
    Some(level)
}

/// Largest combinational level in the graph (0 for pure register/IO
/// graphs); `None` on combinational cycles.
#[must_use]
pub fn depth(graph: &CircuitGraph) -> Option<usize> {
    levels(graph).map(|l| l.into_iter().max().unwrap_or(0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppet_netlist::{bench_format, data};

    #[test]
    fn order_respects_combinational_dependencies() {
        let g = CircuitGraph::from_circuit(&data::s27());
        let order = combinational_order(&g).unwrap();
        let mut pos = vec![0usize; g.num_nodes()];
        for (i, v) in order.iter().enumerate() {
            pos[v.index()] = i;
        }
        for v in g.nodes() {
            if g.kind(v).is_combinational() {
                for &f in g.fanin(v) {
                    assert!(pos[f.index()] < pos[v.index()]);
                }
            }
        }
    }

    #[test]
    fn levels_grow_by_one() {
        let g = CircuitGraph::from_circuit(&data::s27());
        let lvl = levels(&g).unwrap();
        let g14 = g.find("G14").unwrap(); // NOT(G0): level 1
        assert_eq!(lvl[g14.index()], 1);
        let g0 = g.find("G0").unwrap();
        assert_eq!(lvl[g0.index()], 0);
        assert!(depth(&g).unwrap() >= 3);
    }

    #[test]
    fn combinational_cycle_returns_none() {
        // Build a cyclic graph via the parser? The parser rejects it, so
        // construct a 2-gate loop through raw circuit surgery is not public;
        // instead check that a register loop still levelizes.
        let c =
            bench_format::parse("loop", "INPUT(x)\nOUTPUT(h)\nq = DFF(h)\nh = OR(q, x)\n").unwrap();
        let g = CircuitGraph::from_circuit(&c);
        assert!(combinational_order(&g).is_some());
    }
}
