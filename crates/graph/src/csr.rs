//! Flat compressed-sparse-row (CSR) view of a [`CircuitGraph`].
//!
//! `Saturate_Network` runs tens of thousands of shortest-path trees over
//! one immutable graph. The pointer-rich [`CircuitGraph`] representation
//! (`Vec<Net>` with one sink `Vec` per net) is convenient to build and
//! mutate-adjacent, but every tree walk chases one heap allocation per
//! visited node. The [`Csr`] packs all three adjacencies the workspace
//! uses — net sinks (forward), fan-ins (backward), and the distinct
//! undirected neighbourhood — into `u32` offset arrays over single packed
//! node arrays, built once per graph and shared by every tree.
//!
//! Layout, per adjacency: `off` has `n + 1` entries and the neighbours of
//! node `v` are `adj[off[v] .. off[v + 1]]`, in a pinned order:
//!
//! * **sinks** — pin order of the consuming cells, exactly the order
//!   [`Net::sinks`](crate::Net::sinks) reports (a node reading the net on
//!   two pins appears twice);
//! * **fanin** — pin order of the drivers, exactly
//!   [`CircuitGraph::fanin`](crate::CircuitGraph::fanin);
//! * **undirected** — ascending node id, deduplicated, self-loops
//!   removed: the adjacency clusters are grown over, byte-for-byte the
//!   order the old per-call `undirected_neighbors` `Vec` used.
//!
//! [`CircuitGraph`]: crate::CircuitGraph

use ppet_netlist::CellId;

/// Packed struct-of-arrays adjacency of a circuit graph.
///
/// Built once by [`CircuitGraph::from_circuit`](crate::CircuitGraph) and
/// exposed via [`CircuitGraph::csr`](crate::CircuitGraph::csr); all three
/// views borrow into the same contiguous buffers, so iterating a
/// neighbourhood is a bounds-checked slice, never an allocation.
///
/// # Examples
///
/// ```
/// use ppet_graph::CircuitGraph;
/// use ppet_netlist::data;
///
/// let g = CircuitGraph::from_circuit(&data::s27());
/// let csr = g.csr();
/// let g11 = g.find("G11").unwrap();
/// // The CSR sink row is the net's sink list, as a packed slice.
/// assert_eq!(csr.sinks(g11), g.net(g11).sinks());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Csr {
    n: usize,
    sink_off: Vec<u32>,
    sink_adj: Vec<CellId>,
    fanin_off: Vec<u32>,
    fanin_adj: Vec<CellId>,
    undir_off: Vec<u32>,
    undir_adj: Vec<CellId>,
}

/// Builds one `off`/`adj` pair from per-node neighbour lists.
fn pack<'a>(rows: impl Iterator<Item = &'a [CellId]>, n: usize) -> (Vec<u32>, Vec<CellId>) {
    let mut off = Vec::with_capacity(n + 1);
    let mut adj = Vec::new();
    off.push(0);
    for row in rows {
        adj.extend_from_slice(row);
        off.push(u32::try_from(adj.len()).expect("adjacency exceeds u32 range"));
    }
    (off, adj)
}

impl Csr {
    /// Packs the three adjacencies. `sinks[v]` are the sinks of the net
    /// driven by `v` (pin order), `fanin[v]` the drivers of `v` (pin
    /// order). The undirected rows are derived: sorted, deduplicated,
    /// self-removed union of the two.
    pub(crate) fn build(sinks: &[Vec<CellId>], fanin: &[Vec<CellId>]) -> Self {
        assert_eq!(sinks.len(), fanin.len());
        let n = sinks.len();
        let (sink_off, sink_adj) = pack(sinks.iter().map(Vec::as_slice), n);
        let (fanin_off, fanin_adj) = pack(fanin.iter().map(Vec::as_slice), n);

        let mut undir_off = Vec::with_capacity(n + 1);
        let mut undir_adj: Vec<CellId> = Vec::new();
        undir_off.push(0);
        let mut row: Vec<CellId> = Vec::new();
        for v in 0..n {
            row.clear();
            row.extend_from_slice(&fanin[v]);
            row.extend_from_slice(&sinks[v]);
            row.sort_unstable();
            row.dedup();
            row.retain(|&x| x.index() != v);
            undir_adj.extend_from_slice(&row);
            undir_off.push(u32::try_from(undir_adj.len()).expect("adjacency exceeds u32 range"));
        }
        Self {
            n,
            sink_off,
            sink_adj,
            fanin_off,
            fanin_adj,
            undir_off,
            undir_adj,
        }
    }

    /// Number of nodes.
    #[must_use]
    pub fn num_nodes(&self) -> usize {
        self.n
    }

    /// Total number of directed branches (sum of net degrees).
    #[must_use]
    pub fn num_branches(&self) -> usize {
        self.sink_adj.len()
    }

    /// The sinks of the net driven by `v`, in pin order.
    #[inline]
    #[must_use]
    pub fn sinks(&self, v: CellId) -> &[CellId] {
        let i = v.index();
        &self.sink_adj[self.sink_off[i] as usize..self.sink_off[i + 1] as usize]
    }

    /// The fan-in drivers of `v`, in pin order.
    #[inline]
    #[must_use]
    pub fn fanin(&self, v: CellId) -> &[CellId] {
        let i = v.index();
        &self.fanin_adj[self.fanin_off[i] as usize..self.fanin_off[i + 1] as usize]
    }

    /// The distinct undirected neighbours of `v` (ascending id, no
    /// self-loops).
    #[inline]
    #[must_use]
    pub fn undirected(&self, v: CellId) -> &[CellId] {
        let i = v.index();
        &self.undir_adj[self.undir_off[i] as usize..self.undir_off[i + 1] as usize]
    }
}

#[cfg(test)]
mod tests {
    use crate::CircuitGraph;
    use ppet_netlist::data;

    #[test]
    fn csr_rows_match_the_pointer_representation() {
        let g = CircuitGraph::from_circuit(&data::s27());
        let csr = g.csr();
        assert_eq!(csr.num_nodes(), g.num_nodes());
        assert_eq!(csr.num_branches(), g.num_branches());
        for v in g.nodes() {
            assert_eq!(csr.sinks(v), g.net(v).sinks(), "sinks of {v}");
            assert_eq!(csr.fanin(v), g.fanin(v), "fanin of {v}");
            assert_eq!(csr.undirected(v), g.undirected_neighbors(v), "undir of {v}");
        }
    }

    #[test]
    fn undirected_rows_are_sorted_dedup_no_self() {
        let g = CircuitGraph::from_circuit(&data::s27());
        let csr = g.csr();
        for v in g.nodes() {
            let row = csr.undirected(v);
            assert!(
                row.windows(2).all(|w| w[0] < w[1]),
                "row of {v} not strictly ascending"
            );
            assert!(!row.contains(&v), "row of {v} contains itself");
        }
    }

    #[test]
    fn empty_graph_has_empty_rows() {
        let c = ppet_netlist::Circuit::new("empty");
        let g = CircuitGraph::from_circuit(&c);
        assert_eq!(g.csr().num_nodes(), 0);
        assert_eq!(g.csr().num_branches(), 0);
    }
}
