//! Strongly connected components (Tarjan, iterative).
//!
//! The paper's STEP 2 ("Identify strongly connected components in G") feeds
//! the retiming budget of Eq. (6): on any cycle the register count is
//! invariant under retiming (Corollary 2), so the number of cut nets inside
//! an SCC that can be served by existing flip-flops is bounded by the SCC's
//! register count `f(SCC)`.

use ppet_netlist::{CellId, NetId};

use crate::graph::CircuitGraph;

/// Identifier of a strongly connected component.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SccId(pub u32);

impl SccId {
    /// Dense index of the component.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// The SCC decomposition of a [`CircuitGraph`].
///
/// # Examples
///
/// ```
/// use ppet_graph::{scc::Scc, CircuitGraph};
/// use ppet_netlist::data;
///
/// let g = CircuitGraph::from_circuit(&data::s27());
/// let scc = Scc::of(&g);
/// let dffs_on_scc = g
///     .nodes()
///     .filter(|&v| g.is_register(v) && scc.is_cyclic(scc.component_of(v)))
///     .count();
/// assert_eq!(dffs_on_scc, 3); // all three s27 registers are in feedback
/// ```
#[derive(Debug, Clone)]
pub struct Scc {
    comp_of: Vec<SccId>,
    components: Vec<Vec<CellId>>,
    cyclic: Vec<bool>,
    registers: Vec<usize>,
}

impl Scc {
    /// Computes the decomposition with Tarjan's algorithm (iterative, so
    /// deep circuits cannot overflow the call stack). Components are
    /// numbered in reverse topological order of the condensation.
    #[must_use]
    pub fn of(graph: &CircuitGraph) -> Self {
        let n = graph.num_nodes();
        const UNSET: u32 = u32::MAX;
        let mut index = vec![UNSET; n];
        let mut low = vec![0u32; n];
        let mut on_stack = vec![false; n];
        let mut stack: Vec<u32> = Vec::new();
        let mut next_index = 0u32;
        let mut comp_of = vec![SccId(0); n];
        let mut components: Vec<Vec<CellId>> = Vec::new();

        // Work stack frames: (node, next-sink-cursor).
        let mut work: Vec<(u32, usize)> = Vec::new();
        for start in 0..n as u32 {
            if index[start as usize] != UNSET {
                continue;
            }
            work.push((start, 0));
            index[start as usize] = next_index;
            low[start as usize] = next_index;
            next_index += 1;
            stack.push(start);
            on_stack[start as usize] = true;

            while let Some(&mut (v, ref mut cursor)) = work.last_mut() {
                let sinks = graph.net(CellId::from_index(v as usize)).sinks();
                if *cursor < sinks.len() {
                    let w = sinks[*cursor].index() as u32;
                    *cursor += 1;
                    if index[w as usize] == UNSET {
                        index[w as usize] = next_index;
                        low[w as usize] = next_index;
                        next_index += 1;
                        stack.push(w);
                        on_stack[w as usize] = true;
                        work.push((w, 0));
                    } else if on_stack[w as usize] {
                        low[v as usize] = low[v as usize].min(index[w as usize]);
                    }
                } else {
                    work.pop();
                    if let Some(&(parent, _)) = work.last() {
                        low[parent as usize] = low[parent as usize].min(low[v as usize]);
                    }
                    if low[v as usize] == index[v as usize] {
                        let comp_id = SccId(components.len() as u32);
                        let mut comp = Vec::new();
                        loop {
                            let w = stack.pop().expect("tarjan stack underflow");
                            on_stack[w as usize] = false;
                            comp_of[w as usize] = comp_id;
                            comp.push(CellId::from_index(w as usize));
                            if w == v {
                                break;
                            }
                        }
                        comp.sort_unstable();
                        components.push(comp);
                    }
                }
            }
        }

        // A component is cyclic if it has >1 node, or a single node with a
        // self-loop.
        let mut cyclic = vec![false; components.len()];
        let mut registers = vec![0usize; components.len()];
        for (ci, comp) in components.iter().enumerate() {
            if comp.len() > 1 {
                cyclic[ci] = true;
            } else {
                let v = comp[0];
                if graph.net(v).sinks().contains(&v) {
                    cyclic[ci] = true;
                }
            }
            for &v in comp {
                if graph.is_register(v) {
                    registers[ci] += 1;
                }
            }
        }

        Self {
            comp_of,
            components,
            cyclic,
            registers,
        }
    }

    /// The component containing `node`.
    #[must_use]
    pub fn component_of(&self, node: CellId) -> SccId {
        self.comp_of[node.index()]
    }

    /// All components (each sorted by node id).
    #[must_use]
    pub fn components(&self) -> &[Vec<CellId>] {
        &self.components
    }

    /// Number of components.
    #[must_use]
    pub fn len(&self) -> usize {
        self.components.len()
    }

    /// True when the graph has no nodes.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.components.is_empty()
    }

    /// Whether the component contains a cycle (size > 1, or a self-loop).
    #[must_use]
    pub fn is_cyclic(&self, id: SccId) -> bool {
        self.cyclic[id.index()]
    }

    /// The number of registers in the component — the paper's `f(SCC)`.
    #[must_use]
    pub fn registers_in(&self, id: SccId) -> usize {
        self.registers[id.index()]
    }

    /// Number of registers that sit in cyclic components — the Table 10
    /// "DFFs on SCC" column.
    #[must_use]
    pub fn registers_on_cyclic(&self) -> usize {
        self.components
            .iter()
            .enumerate()
            .filter(|(ci, _)| self.cyclic[*ci])
            .map(|(ci, _)| self.registers[ci])
            .sum()
    }

    /// Whether a whole net (driver and at least one sink) lies inside one
    /// cyclic component — the condition under which a cut on that net
    /// competes for the SCC's retiming budget (paper Eq. (6)).
    #[must_use]
    pub fn net_in_cyclic_component(&self, graph: &CircuitGraph, net: NetId) -> bool {
        let src_comp = self.component_of(graph.net(net).src());
        if !self.is_cyclic(src_comp) {
            return false;
        }
        graph
            .net(net)
            .sinks()
            .iter()
            .any(|&s| self.component_of(s) == src_comp)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppet_netlist::{data, CellKind, Circuit};

    #[test]
    fn s27_components() {
        let g = CircuitGraph::from_circuit(&data::s27());
        let scc = Scc::of(&g);
        // Components partition the node set.
        let total: usize = scc.components().iter().map(Vec::len).sum();
        assert_eq!(total, g.num_nodes());
        // All 3 registers are on feedback loops in s27.
        assert_eq!(scc.registers_on_cyclic(), 3);
        // PIs are trivial components.
        for pi in ["G0", "G1", "G2", "G3"] {
            let v = g.find(pi).unwrap();
            assert!(!scc.is_cyclic(scc.component_of(v)), "{pi}");
        }
    }

    #[test]
    fn mutual_reachability_defines_components() {
        let g = CircuitGraph::from_circuit(&data::s27());
        let scc = Scc::of(&g);
        // Spot-check: G5, G10, G11 are mutually reachable (G11→G10→G5→G11).
        let ids = ["G5", "G10", "G11"].map(|n| g.find(n).unwrap());
        assert_eq!(scc.component_of(ids[0]), scc.component_of(ids[1]));
        assert_eq!(scc.component_of(ids[1]), scc.component_of(ids[2]));
    }

    #[test]
    fn condensation_is_reverse_topological() {
        // Tarjan numbers a component only after all components reachable
        // from it: for every branch u→v across components,
        // comp(u) > comp(v).
        let g = CircuitGraph::from_circuit(&data::s27());
        let scc = Scc::of(&g);
        for b in g.branches() {
            let cu = scc.component_of(b.src);
            let cv = scc.component_of(b.sink);
            if cu != cv {
                assert!(cu.index() > cv.index());
            }
        }
    }

    #[test]
    fn self_loop_register_is_cyclic() {
        let mut c = Circuit::new("t");
        let a = c.add_input("a").unwrap();
        let q = c.add_cell("q", CellKind::Dff, vec![a]).unwrap();
        let g = c.add_cell("g", CellKind::And, vec![a, q]).unwrap();
        c.mark_output(g).unwrap();
        let graph = CircuitGraph::from_circuit(&c);
        let scc = Scc::of(&graph);
        assert_eq!(scc.registers_on_cyclic(), 0);
        // A genuine register feedback loop:
        let looped = ppet_netlist::bench_format::parse(
            "loop",
            "INPUT(x)\nOUTPUT(h)\nq = DFF(h)\nh = OR(q, x)\n",
        )
        .unwrap();
        let lg = CircuitGraph::from_circuit(&looped);
        let lscc = Scc::of(&lg);
        assert_eq!(lscc.registers_on_cyclic(), 1);
    }

    #[test]
    fn net_in_cyclic_component_distinguishes_feedback_nets() {
        let g = CircuitGraph::from_circuit(&data::s27());
        let scc = Scc::of(&g);
        // G0 is a PI: its net cannot be in a cyclic component.
        assert!(!scc.net_in_cyclic_component(&g, g.find("G0").unwrap()));
        // G11 drives G10 within the sequential core.
        assert!(scc.net_in_cyclic_component(&g, g.find("G11").unwrap()));
    }

    #[test]
    fn synthetic_dffs_on_scc_matches_target() {
        use ppet_netlist::{SynthSpec, Synthesizer};
        let spec = SynthSpec::new("scc-check")
            .primary_inputs(6)
            .flip_flops(10)
            .dffs_on_scc(7)
            .gates(80)
            .inverters(20)
            .seed(11);
        let c = Synthesizer::new(spec).build();
        let g = CircuitGraph::from_circuit(&c);
        let scc = Scc::of(&g);
        assert_eq!(scc.registers_on_cyclic(), 7);
    }
}
