//! Difference-constraint systems with negative-cycle extraction.
//!
//! A system of constraints `x_u − x_v ≤ w` is feasible iff the constraint
//! graph (edge `v → u` with weight `w`) has no negative cycle; a feasible
//! solution is given by shortest-path distances from a virtual source
//! (Cormen, Leiserson & Rivest — the paper's reference \[11\] — §25.5 of the
//! 1990 edition).
//!
//! The retiming solver expresses both the legality condition (Corollary 3:
//! `r(u) − r(v) ≤ w(e)`) and the CBIT register-position requirements
//! (`r(u) − r(v) ≤ w(e) − 1`) in this form. When the system is infeasible,
//! [`DifferenceConstraints::solve`] returns the constraints on one negative
//! cycle, letting the caller drop the cheapest requirement (that cut then
//! pays for multiplexed test hardware instead, paper §2.3).

use std::collections::VecDeque;

/// One constraint `x_u − x_v ≤ w`, with a caller-supplied tag for
/// identifying it in negative-cycle reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Constraint<T> {
    /// Left variable index.
    pub u: usize,
    /// Right variable index.
    pub v: usize,
    /// Bound.
    pub w: i64,
    /// Caller tag (e.g. a net id, or `None` for structural legality).
    pub tag: T,
}

/// Outcome of [`DifferenceConstraints::solve`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Solution<T> {
    /// A feasible assignment (one value per variable). The assignment is the
    /// canonical shortest-distance solution: every value is ≤ 0 and at least
    /// one is 0 when constraints exist.
    Feasible(Vec<i64>),
    /// The system is infeasible; the returned constraints form one negative
    /// cycle (in traversal order).
    NegativeCycle(Vec<Constraint<T>>),
}

/// A system of difference constraints over `n` variables.
///
/// # Examples
///
/// ```
/// use ppet_graph::bellman::{DifferenceConstraints, Solution};
///
/// let mut sys = DifferenceConstraints::new(2);
/// sys.add(0, 1, 3, "a");  // x0 - x1 <= 3
/// sys.add(1, 0, -1, "b"); // x1 - x0 <= -1
/// match sys.solve() {
///     Solution::Feasible(x) => assert!(x[0] - x[1] <= 3 && x[1] - x[0] <= -1),
///     Solution::NegativeCycle(_) => unreachable!("system is feasible"),
/// }
/// ```
#[derive(Debug, Clone)]
pub struct DifferenceConstraints<T> {
    n: usize,
    constraints: Vec<Constraint<T>>,
}

impl<T: Clone> DifferenceConstraints<T> {
    /// Creates an empty system over `n` variables.
    #[must_use]
    pub fn new(n: usize) -> Self {
        Self {
            n,
            constraints: Vec::new(),
        }
    }

    /// Adds the constraint `x_u − x_v ≤ w`.
    ///
    /// # Panics
    ///
    /// Panics if `u` or `v` is out of range.
    pub fn add(&mut self, u: usize, v: usize, w: i64, tag: T) {
        assert!(u < self.n && v < self.n, "variable index out of range");
        self.constraints.push(Constraint { u, v, w, tag });
    }

    /// Number of constraints added so far.
    #[must_use]
    pub fn len(&self) -> usize {
        self.constraints.len()
    }

    /// True when no constraints have been added.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.constraints.is_empty()
    }

    /// Solves the system with SPFA (queue-based Bellman–Ford).
    ///
    /// Runs in `O(V · E)` worst case but typically far less. A node
    /// enqueued more than `V` times signals a negative cycle; the cycle is
    /// then extracted by a full Bellman–Ford pass whose predecessor graph
    /// provably contains one (the SPFA trigger alone does not say *where*).
    #[must_use]
    pub fn solve(&self) -> Solution<T> {
        // Constraint x_u - x_v <= w  ==>  edge v -> u with weight w.
        // Virtual source connects to every variable with weight 0; it is
        // modeled by starting with all distances 0 and everything enqueued.
        let n = self.n;
        let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n]; // indices into constraints, keyed by v
        for (ci, c) in self.constraints.iter().enumerate() {
            adj[c.v].push(ci);
        }
        let mut dist = vec![0i64; n];
        let mut in_queue = vec![true; n];
        let mut enqueues = vec![1usize; n];
        let mut queue: VecDeque<usize> = (0..n).collect();

        while let Some(v) = queue.pop_front() {
            in_queue[v] = false;
            for &ci in &adj[v] {
                let c = &self.constraints[ci];
                let nd = dist[v].saturating_add(c.w);
                if nd < dist[c.u] {
                    dist[c.u] = nd;
                    if !in_queue[c.u] {
                        enqueues[c.u] += 1;
                        if enqueues[c.u] > n {
                            let cycle = self
                                .find_negative_cycle()
                                .expect("SPFA over-enqueue implies a negative cycle");
                            return Solution::NegativeCycle(cycle);
                        }
                        in_queue[c.u] = true;
                        queue.push_back(c.u);
                    }
                }
            }
        }
        Solution::Feasible(dist)
    }

    /// Full Bellman–Ford negative-cycle extraction: `n` relaxation rounds
    /// with predecessor tracking; if the final round still relaxes, the
    /// predecessor graph contains a cycle (were it a forest, all distances
    /// would be simple-path weights and stable by round `n − 1`), which a
    /// colored walk over every chain finds in `O(V)`.
    fn find_negative_cycle(&self) -> Option<Vec<Constraint<T>>> {
        let n = self.n;
        let mut dist = vec![0i64; n];
        let mut pred: Vec<Option<usize>> = vec![None; n];
        let mut relaxed_in_last_round = false;
        for _ in 0..n {
            relaxed_in_last_round = false;
            for (ci, c) in self.constraints.iter().enumerate() {
                let nd = dist[c.v].saturating_add(c.w);
                if nd < dist[c.u] {
                    dist[c.u] = nd;
                    pred[c.u] = Some(ci);
                    relaxed_in_last_round = true;
                }
            }
            if !relaxed_in_last_round {
                return None;
            }
        }
        if !relaxed_in_last_round {
            return None;
        }
        // Colored predecessor walk: 0 = unvisited, 1 = on current walk,
        // 2 = finished.
        let mut color = vec![0u8; n];
        for start in 0..n {
            if color[start] != 0 {
                continue;
            }
            let mut path: Vec<usize> = Vec::new();
            let mut v = start;
            loop {
                if color[v] == 1 {
                    // Found a cycle: collect constraints from v back to v.
                    let pos = path.iter().position(|&x| x == v).expect("on walk");
                    let mut cycle: Vec<Constraint<T>> = path[pos..]
                        .iter()
                        .map(|&x| self.constraints[pred[x].expect("walk node has pred")].clone())
                        .collect();
                    // `path` records u-nodes in walk order (u ← pred ← …);
                    // reverse to traversal order tail→head chaining.
                    cycle.reverse();
                    return Some(cycle);
                }
                if color[v] == 2 {
                    break;
                }
                color[v] = 1;
                path.push(v);
                match pred[v] {
                    Some(ci) => v = self.constraints[ci].v,
                    None => break,
                }
            }
            for &x in &path {
                color[x] = 2;
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trivial_system_is_feasible() {
        let sys: DifferenceConstraints<()> = DifferenceConstraints::new(3);
        assert!(matches!(sys.solve(), Solution::Feasible(v) if v == vec![0, 0, 0]));
    }

    #[test]
    fn feasible_chain() {
        let mut sys = DifferenceConstraints::new(3);
        sys.add(0, 1, 2, 0); // x0 <= x1 + 2
        sys.add(1, 2, -3, 1); // x1 <= x2 - 3
        sys.add(0, 2, 1, 2); // x0 <= x2 + 1
        match sys.solve() {
            Solution::Feasible(x) => {
                assert!(x[0] - x[1] <= 2);
                assert!(x[1] - x[2] <= -3);
                assert!(x[0] - x[2] <= 1);
            }
            Solution::NegativeCycle(c) => panic!("unexpected cycle {c:?}"),
        }
    }

    #[test]
    fn infeasible_two_cycle() {
        let mut sys = DifferenceConstraints::new(2);
        sys.add(0, 1, 1, "a"); // x0 - x1 <= 1
        sys.add(1, 0, -2, "b"); // x1 - x0 <= -2 => sum = -1 < 0
        match sys.solve() {
            Solution::NegativeCycle(cycle) => {
                assert_eq!(cycle.len(), 2);
                let sum: i64 = cycle.iter().map(|c| c.w).sum();
                assert!(sum < 0, "cycle sum {sum}");
                let tags: Vec<&str> = cycle.iter().map(|c| c.tag).collect();
                assert!(tags.contains(&"a") && tags.contains(&"b"));
            }
            Solution::Feasible(x) => panic!("should be infeasible, got {x:?}"),
        }
    }

    #[test]
    fn extracted_cycle_is_connected_and_negative() {
        // Larger infeasible system with an embedded negative triangle.
        let mut sys = DifferenceConstraints::new(6);
        sys.add(0, 1, 5, 0);
        sys.add(1, 2, 5, 1);
        // Negative triangle over 3,4,5:
        sys.add(3, 4, 0, 2);
        sys.add(4, 5, 0, 3);
        sys.add(5, 3, -1, 4);
        match sys.solve() {
            Solution::NegativeCycle(cycle) => {
                let sum: i64 = cycle.iter().map(|c| c.w).sum();
                assert!(sum < 0);
                // Connectivity: each constraint's v equals the next one's u
                // (edge v -> u chains through the walk).
                for pair in cycle.windows(2) {
                    assert_eq!(pair[0].u, pair[1].v);
                }
                assert_eq!(cycle.last().unwrap().u, cycle.first().unwrap().v);
            }
            Solution::Feasible(x) => panic!("should be infeasible, got {x:?}"),
        }
    }

    #[test]
    fn solution_satisfies_all_constraints_randomized() {
        use ppet_prng::{Rng, Xoshiro256PlusPlus};
        let mut rng = Xoshiro256PlusPlus::seed_from(17);
        for trial in 0..50 {
            let n = 2 + rng.gen_index(10);
            let mut sys = DifferenceConstraints::new(n);
            // Generate from a hidden feasible assignment so the system is
            // always satisfiable; solver must find *some* solution.
            let hidden: Vec<i64> = (0..n).map(|_| rng.gen_range(-10..=10)).collect();
            for _ in 0..(n * 3) {
                let u = rng.gen_index(n);
                let v = rng.gen_index(n);
                if u == v {
                    continue;
                }
                let slack = rng.gen_range(0..=5);
                sys.add(u, v, hidden[u] - hidden[v] + slack, ());
            }
            match sys.solve() {
                Solution::Feasible(x) => {
                    for c in &sys.constraints {
                        assert!(x[c.u] - x[c.v] <= c.w, "trial {trial}");
                    }
                }
                Solution::NegativeCycle(c) => panic!("trial {trial}: spurious cycle {c:?}"),
            }
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_variable_rejected() {
        let mut sys = DifferenceConstraints::new(2);
        sys.add(0, 5, 1, ());
    }
}
