//! Circuit graph algorithms for the PPET workspace.
//!
//! Implements the graph substrate of the paper's §2:
//!
//! * [`CircuitGraph`] — the directed **multi-pin model** of §2.1: one node
//!   per cell (registers `R` and combinational components `C`), one net per
//!   driver with explicit fan-out branches;
//! * [`csr`] — the packed struct-of-arrays (CSR) view of the graph, built
//!   once per compile and shared by every shortest-path tree of
//!   `Saturate_Network`;
//! * [`scc`] — Tarjan's strongly-connected-components algorithm (the paper's
//!   STEP 2, used to bound what legal retiming can do on loops);
//! * [`dijkstra`] — deterministic shortest-path trees over real-valued net
//!   lengths (the inner step of `Saturate_Network`);
//! * [`bellman`] — a difference-constraint solver with negative-cycle
//!   extraction (the engine of the retiming solver);
//! * [`mincost`] — successive-shortest-paths minimum-cost flow (the engine
//!   of min-area retiming);
//! * [`retime`] — Leiserson–Saxe retiming: the register-weighted graph, the
//!   legality conditions of the paper's Lemma 1 / Corollaries 2–3, a solver
//!   that realizes CBIT register positions with existing flip-flops, and
//!   application of a retiming back to a [`Circuit`](ppet_netlist::Circuit).
//!
//! # Examples
//!
//! ```
//! use ppet_graph::{CircuitGraph, scc::Scc};
//! use ppet_netlist::data;
//!
//! let g = CircuitGraph::from_circuit(&data::s27());
//! let scc = Scc::of(&g);
//! // s27 has a sequential core: at least one nontrivial SCC.
//! assert!(scc.components().iter().any(|c| c.len() > 1));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bellman;
pub mod csr;
pub mod dfs;
pub mod dijkstra;
mod graph;
pub mod mincost;
pub mod retime;
pub mod scc;
pub mod topo;

pub use csr::Csr;
pub use graph::{Branch, CircuitGraph, Net};
pub use ppet_netlist::{CellId as NodeId, NetId};
