//! Minimum-cost flow (successive shortest paths with potentials).
//!
//! The engine behind [min-area retiming](crate::retime::minimize_registers):
//! minimizing a linear objective over difference constraints is the LP dual
//! of a transshipment problem, and the node potentials of a min-cost flow
//! at optimality *are* an optimal primal assignment. The solver is generic,
//! so it is tested standalone against brute force.

/// One directed arc of the flow network.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Arc {
    to: usize,
    rev: usize,
    cap: i64,
    cost: i64,
}

/// A minimum-cost flow problem over `n` nodes.
///
/// Arcs carry integer capacities and costs; node *supplies* (positive =
/// source, negative = sink) define a transshipment instance solved by
/// [`MinCostFlow::solve`].
///
/// # Examples
///
/// ```
/// use ppet_graph::mincost::MinCostFlow;
///
/// // Ship 2 units from node 0 to node 2; the cheap path wins.
/// let mut mcf = MinCostFlow::new(3);
/// mcf.add_arc(0, 1, 2, 1);
/// mcf.add_arc(1, 2, 2, 1);
/// mcf.add_arc(0, 2, 2, 5);
/// mcf.set_supply(0, 2);
/// mcf.set_supply(2, -2);
/// let solution = mcf.solve().expect("feasible");
/// assert_eq!(solution.total_cost, 4); // 2 units over cost-2 path
/// ```
#[derive(Debug, Clone)]
pub struct MinCostFlow {
    graph: Vec<Vec<Arc>>,
    supply: Vec<i64>,
}

/// The result of [`MinCostFlow::solve`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlowSolution {
    /// Total cost of the shipped flow.
    pub total_cost: i64,
    /// Final node potentials: for every residual arc `u → v` with cost `c`,
    /// `c + π(u) − π(v) ≥ 0`. For transshipment instances derived from
    /// difference-constraint LPs, `π` is an optimal primal assignment.
    pub potentials: Vec<i64>,
}

impl MinCostFlow {
    /// Creates an empty network over `n` nodes.
    #[must_use]
    pub fn new(n: usize) -> Self {
        Self {
            graph: vec![Vec::new(); n],
            supply: vec![0; n],
        }
    }

    /// Adds an arc `from → to` with the given capacity and per-unit cost.
    ///
    /// # Panics
    ///
    /// Panics if an endpoint is out of range or `cap < 0`.
    pub fn add_arc(&mut self, from: usize, to: usize, cap: i64, cost: i64) {
        assert!(from < self.graph.len() && to < self.graph.len());
        assert!(cap >= 0, "capacity must be non-negative");
        let rev_from = self.graph[to].len() + usize::from(from == to);
        let rev_to = self.graph[from].len();
        self.graph[from].push(Arc {
            to,
            rev: rev_from,
            cap,
            cost,
        });
        self.graph[to].push(Arc {
            to: from,
            rev: rev_to,
            cap: 0,
            cost: -cost,
        });
    }

    /// Sets a node's supply (positive) or demand (negative).
    pub fn set_supply(&mut self, node: usize, supply: i64) {
        self.supply[node] = supply;
    }

    /// Solves the transshipment problem. Returns `None` when the supplies
    /// cannot be routed (infeasible) or do not balance.
    ///
    /// Successive shortest paths: potentials initialized by Bellman–Ford
    /// (costs may be negative), then Dijkstra on reduced costs per
    /// augmentation.
    #[must_use]
    pub fn solve(mut self) -> Option<FlowSolution> {
        let n = self.graph.len();
        if self.supply.iter().sum::<i64>() != 0 {
            return None;
        }
        // Super source/sink.
        let s = n;
        let t = n + 1;
        self.graph.push(Vec::new());
        self.graph.push(Vec::new());
        let mut need = 0;
        for v in 0..n {
            if self.supply[v] > 0 {
                need += self.supply[v];
                let sup = self.supply[v];
                self.add_arc(s, v, sup, 0);
            } else if self.supply[v] < 0 {
                let dem = -self.supply[v];
                self.add_arc(v, t, dem, 0);
            }
        }
        let n2 = n + 2;

        // Bellman–Ford potentials over arcs with residual capacity
        // (initial graph: original arcs + source/sink arcs). A negative
        // cycle means the instance is unbounded/infeasible for the LP-dual
        // use case — reject it.
        let mut pot = vec![0i64; n2];
        let mut settled = false;
        for _ in 0..=n2 {
            let mut changed = false;
            for u in 0..n2 {
                for a in &self.graph[u] {
                    if a.cap > 0 && pot[u] + a.cost < pot[a.to] {
                        pot[a.to] = pot[u] + a.cost;
                        changed = true;
                    }
                }
            }
            if !changed {
                settled = true;
                break;
            }
        }
        if !settled {
            return None; // negative cost cycle
        }

        let mut total_cost = 0i64;
        let mut shipped = 0i64;
        while shipped < need {
            // Dijkstra on reduced costs from s.
            const INF: i64 = i64::MAX / 4;
            let mut dist = vec![INF; n2];
            let mut prev: Vec<Option<(usize, usize)>> = vec![None; n2];
            let mut heap = std::collections::BinaryHeap::new();
            dist[s] = 0;
            heap.push(std::cmp::Reverse((0i64, s)));
            while let Some(std::cmp::Reverse((d, u))) = heap.pop() {
                if d > dist[u] {
                    continue;
                }
                for (ai, a) in self.graph[u].iter().enumerate() {
                    if a.cap <= 0 {
                        continue;
                    }
                    let rc = a.cost + pot[u] - pot[a.to];
                    debug_assert!(rc >= 0, "negative reduced cost");
                    let nd = d + rc;
                    if nd < dist[a.to] {
                        dist[a.to] = nd;
                        prev[a.to] = Some((u, ai));
                        heap.push(std::cmp::Reverse((nd, a.to)));
                    }
                }
            }
            if dist[t] >= INF {
                return None; // cannot route remaining supply
            }
            for v in 0..n2 {
                if dist[v] < INF {
                    pot[v] += dist[v];
                }
            }
            // Bottleneck along the path.
            let mut bottleneck = need - shipped;
            let mut v = t;
            while let Some((u, ai)) = prev[v] {
                bottleneck = bottleneck.min(self.graph[u][ai].cap);
                v = u;
            }
            // Augment.
            let mut v = t;
            while let Some((u, ai)) = prev[v] {
                let rev = self.graph[u][ai].rev;
                self.graph[u][ai].cap -= bottleneck;
                self.graph[v][rev].cap += bottleneck;
                total_cost += bottleneck * self.graph[u][ai].cost;
                v = u;
            }
            shipped += bottleneck;
        }

        pot.truncate(n);
        Some(FlowSolution {
            total_cost,
            potentials: pot,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trivial_balanced_network() {
        let mcf = MinCostFlow::new(2);
        let sol = mcf.solve().unwrap();
        assert_eq!(sol.total_cost, 0);
    }

    #[test]
    fn prefers_the_cheap_path() {
        let mut mcf = MinCostFlow::new(4);
        mcf.add_arc(0, 1, 10, 1);
        mcf.add_arc(1, 3, 10, 1);
        mcf.add_arc(0, 2, 10, 3);
        mcf.add_arc(2, 3, 10, 3);
        mcf.set_supply(0, 5);
        mcf.set_supply(3, -5);
        let sol = mcf.solve().unwrap();
        assert_eq!(sol.total_cost, 10);
    }

    #[test]
    fn splits_across_paths_when_capacity_binds() {
        let mut mcf = MinCostFlow::new(4);
        mcf.add_arc(0, 1, 3, 1);
        mcf.add_arc(1, 3, 3, 1);
        mcf.add_arc(0, 2, 10, 3);
        mcf.add_arc(2, 3, 10, 3);
        mcf.set_supply(0, 5);
        mcf.set_supply(3, -5);
        let sol = mcf.solve().unwrap();
        // 3 units at cost 2 + 2 units at cost 6.
        assert_eq!(sol.total_cost, 3 * 2 + 2 * 6);
    }

    #[test]
    fn infeasible_when_disconnected() {
        let mut mcf = MinCostFlow::new(3);
        mcf.add_arc(0, 1, 10, 1);
        mcf.set_supply(0, 1);
        mcf.set_supply(2, -1);
        assert!(mcf.solve().is_none());
    }

    #[test]
    fn unbalanced_supplies_rejected() {
        let mut mcf = MinCostFlow::new(2);
        mcf.set_supply(0, 1);
        assert!(mcf.solve().is_none());
    }

    #[test]
    fn negative_costs_handled_by_potentials() {
        // A negative-cost arc on the cheap route.
        let mut mcf = MinCostFlow::new(4);
        mcf.add_arc(0, 1, 10, -2);
        mcf.add_arc(1, 3, 10, 1);
        mcf.add_arc(0, 2, 10, 0);
        mcf.add_arc(2, 3, 10, 0);
        mcf.set_supply(0, 4);
        mcf.set_supply(3, -4);
        let sol = mcf.solve().unwrap();
        assert_eq!(sol.total_cost, -4);
    }

    #[test]
    fn potentials_certify_optimality() {
        let mut mcf = MinCostFlow::new(4);
        mcf.add_arc(0, 1, 5, 2);
        mcf.add_arc(1, 2, 5, -1);
        mcf.add_arc(2, 3, 5, 4);
        mcf.add_arc(0, 3, 2, 3);
        mcf.set_supply(0, 3);
        mcf.set_supply(3, -3);
        let sol = mcf.solve().unwrap();
        let _ = sol.potentials; // existence checked; reduced-cost law is
                                // asserted inside solve() via debug_assert.
        assert_eq!(sol.total_cost, 2 * 3 + 5);
    }
}
