//! Reachability utilities (iterative depth-first search).

use ppet_netlist::CellId;

use crate::graph::CircuitGraph;

/// Direction of traversal.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Follow nets from driver to sinks.
    Forward,
    /// Follow fan-ins from sink to drivers.
    Backward,
}

/// Returns every node reachable from `start` (including `start`), following
/// branches in the given direction.
///
/// # Examples
///
/// ```
/// use ppet_graph::{dfs, CircuitGraph};
/// use ppet_netlist::data;
///
/// let g = CircuitGraph::from_circuit(&data::s27());
/// let from_g0 = dfs::reachable(&g, g.find("G0").unwrap(), dfs::Direction::Forward);
/// assert!(from_g0.contains(&g.find("G14").unwrap())); // G14 = NOT(G0)
/// ```
#[must_use]
pub fn reachable(graph: &CircuitGraph, start: CellId, dir: Direction) -> Vec<CellId> {
    let mut seen = vec![false; graph.num_nodes()];
    let mut stack = vec![start];
    seen[start.index()] = true;
    let mut out = Vec::new();
    while let Some(v) = stack.pop() {
        out.push(v);
        let push = |stack: &mut Vec<CellId>, seen: &mut Vec<bool>, w: CellId| {
            if !seen[w.index()] {
                seen[w.index()] = true;
                stack.push(w);
            }
        };
        match dir {
            Direction::Forward => {
                for &w in graph.net(v).sinks() {
                    push(&mut stack, &mut seen, w);
                }
            }
            Direction::Backward => {
                for &w in graph.fanin(v) {
                    push(&mut stack, &mut seen, w);
                }
            }
        }
    }
    out.sort_unstable();
    out
}

/// True if `to` is reachable from `from` following driver→sink branches.
#[must_use]
pub fn can_reach(graph: &CircuitGraph, from: CellId, to: CellId) -> bool {
    reachable(graph, from, Direction::Forward)
        .binary_search(&to)
        .is_ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppet_netlist::data;

    #[test]
    fn forward_and_backward_are_converses() {
        let g = CircuitGraph::from_circuit(&data::s27());
        for a in g.nodes() {
            let fwd = reachable(&g, a, Direction::Forward);
            for &b in &fwd {
                let back = reachable(&g, b, Direction::Backward);
                assert!(back.binary_search(&a).is_ok());
            }
        }
    }

    #[test]
    fn reachable_includes_start() {
        let g = CircuitGraph::from_circuit(&data::s27());
        let v = g.find("G9").unwrap();
        assert!(reachable(&g, v, Direction::Forward).contains(&v));
    }

    #[test]
    fn can_reach_through_registers() {
        let g = CircuitGraph::from_circuit(&data::s27());
        // G10 drives DFF G5 which drives G11.
        assert!(can_reach(
            &g,
            g.find("G10").unwrap(),
            g.find("G11").unwrap()
        ));
        // Primary inputs are never reachable from internal logic.
        assert!(!can_reach(&g, g.find("G9").unwrap(), g.find("G0").unwrap()));
    }
}
