//! Clusterer determinism: cluster assignment and representative
//! election are pure functions of the member set — any insertion order,
//! with arbitrary interleaved removals, lands on the same clusters.

use ppet_dedup::feature::super_features;
use ppet_dedup::Clusterer;
use proptest::prelude::*;

/// Full observable state: every member's (cluster id, representative).
fn snapshot(c: &Clusterer, keys: &[u128]) -> Vec<(u128, Option<u128>, Option<u128>)> {
    keys.iter()
        .map(|&k| (k, c.cluster_id(k), c.representative_of(k)))
        .collect()
}

/// Sketches drawn from a small value space so clusters actually form.
fn sketches() -> impl Strategy<Value = Vec<[u64; 3]>> {
    proptest::collection::vec((0u64..24, 0u64..24, 0u64..24), 1..24)
        .prop_map(|v| v.into_iter().map(|(a, b, c)| [a, b, c]).collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Insert a random member set in two different orders (one with a
    /// churn pass: insert, remove, re-insert): identical clusters.
    #[test]
    fn insertion_order_never_changes_clusters(
        sketches in sketches(),
        churn in proptest::collection::vec(any::<usize>(), 0..8),
    ) {
        let keys: Vec<u128> = (0..sketches.len() as u128).collect();

        let mut forward = Clusterer::new();
        for (&k, sk) in keys.iter().zip(&sketches) {
            forward.insert(k, *sk);
        }

        let mut reverse = Clusterer::new();
        for (&k, sk) in keys.iter().zip(&sketches).rev() {
            reverse.insert(k, *sk);
        }

        let mut churned = Clusterer::new();
        for (&k, sk) in keys.iter().zip(&sketches) {
            churned.insert(k, *sk);
        }
        for idx in &churn {
            churned.remove(keys[idx % keys.len()]);
        }
        for idx in &churn {
            let i = idx % keys.len();
            churned.insert(keys[i], sketches[i]);
        }

        prop_assert_eq!(snapshot(&forward, &keys), snapshot(&reverse, &keys));
        prop_assert_eq!(snapshot(&forward, &keys), snapshot(&churned, &keys));
        prop_assert_eq!(forward.cluster_count(), reverse.cluster_count());
        prop_assert_eq!(forward.sf_table_len(), churned.sf_table_len());
    }

    /// Removing every member leaves a genuinely empty clusterer.
    #[test]
    fn full_removal_empties_all_tables(
        sketches in sketches(),
    ) {
        let mut c = Clusterer::new();
        for (i, sk) in sketches.iter().enumerate() {
            c.insert(i as u128, *sk);
        }
        for i in 0..sketches.len() {
            c.remove(i as u128);
        }
        prop_assert!(c.is_empty());
        prop_assert_eq!(c.cluster_count(), 0);
        prop_assert_eq!(c.sf_table_len(), 0);
    }

    /// Real sketches from real bytes: every artifact is among its own
    /// candidates with a full share count, and same-family variants
    /// land in the same cluster.
    #[test]
    fn real_sketches_cluster_family_variants(
        families in proptest::collection::vec(0u64..4, 2..10),
    ) {
        let mut c = Clusterer::new();
        let bodies: Vec<(u64, Vec<u8>)> = families
            .iter()
            .enumerate()
            .map(|(i, &family)| {
                // Same family ⇒ same body with a tiny per-index edit.
                let mut state = family.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
                let mut body = Vec::with_capacity(2100);
                for _ in 0..256 {
                    state = state
                        .wrapping_mul(6_364_136_223_846_793_005)
                        .wrapping_add(1_442_695_040_888_963_407);
                    body.extend_from_slice(&state.to_le_bytes());
                }
                body.extend_from_slice(format!("variant {i}").as_bytes());
                (family, body)
            })
            .collect();
        for (i, (_, body)) in bodies.iter().enumerate() {
            c.insert(i as u128, super_features(body));
        }
        for (i, (family, body)) in bodies.iter().enumerate() {
            let sf = super_features(body);
            let mut distinct = sf.to_vec();
            distinct.sort_unstable();
            distinct.dedup();
            let cands = c.candidates(&sf);
            let self_entry = cands.iter().find(|(k, _)| *k == i as u128);
            prop_assert_eq!(self_entry, Some(&(i as u128, distinct.len())));
            // A sibling differing by a short tail edit shares a cluster.
            for (j, (other_family, _)) in bodies.iter().enumerate() {
                if other_family == family {
                    prop_assert_eq!(
                        c.cluster_id(i as u128), c.cluster_id(j as u128),
                        "family {} variants {} and {} must share a cluster",
                        family, i, j
                    );
                }
            }
        }
    }
}
