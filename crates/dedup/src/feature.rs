//! Super-feature extraction: Gear content-defined features reduced to a
//! handful of min-hash group minima, then folded into `K` super-features.
//!
//! The pipeline is the Odess/Finesse shape of Broder's resemblance
//! sketches, reduced to std-only integer arithmetic:
//!
//! 1. **Rolling Gear hash.** A 64-bit state `h = (h << 1) + GEAR[byte]`
//!    slides over the data; each position's state summarizes the last
//!    ~64 bytes. The table is a fixed splitmix64 expansion, so the hash
//!    is a pure function of the bytes — no per-process salt.
//! 2. **Content-defined sampling.** Positions where the state's low
//!    [`SAMPLE_BITS`] bits are all ones are *features* (expected one per
//!    [`SAMPLE_RATE`] bytes); the feature value is the state masked to
//!    32 bits, bounding each edit's influence to a 32-byte trailing
//!    window. Sampling by content rather than offset is what makes the
//!    sketch insertion-stable: an edit shifts every later offset but
//!    only the features overlapping the edit change.
//! 3. **Min-hash groups.** Each sampled state is passed through
//!    [`GROUPS`] independent affine transforms; each group keeps its
//!    minimum. By Broder's argument the probability two artifacts agree
//!    on one group minimum approximates their feature-set resemblance.
//! 4. **Super-features.** The group minima are folded
//!    [`GROUP_SPAN`]-at-a-time into [`SUPER_FEATURES`] values. Two
//!    artifacts share a super-feature iff they agree on *every* minimum
//!    in its span — a high-precision, low-recall similarity vote, which
//!    is exactly what cluster formation wants (false merges are
//!    expensive, misses just cost one raw store).
//!
//! Everything is deterministic: the same bytes produce the same
//! super-features in every process, which is what lets the store rebuild
//! its cluster index from the log and land on byte-identical decisions.

/// Independent min-hash groups extracted per artifact.
pub const GROUPS: usize = 12;

/// Super-features per artifact: [`GROUPS`]` / `[`GROUP_SPAN`].
pub const SUPER_FEATURES: usize = 3;

/// Group minima folded into one super-feature.
pub const GROUP_SPAN: usize = GROUPS / SUPER_FEATURES;

/// Low bits of the Gear state that must be ones at a feature position.
pub const SAMPLE_BITS: u32 = 4;

/// Expected bytes per sampled feature (`2^`[`SAMPLE_BITS`]).
pub const SAMPLE_RATE: usize = 1 << SAMPLE_BITS;

const SAMPLE_MASK: u64 = (1 << SAMPLE_BITS) - 1;

/// The feature value is the Gear state masked to its low 32 bits.
/// Because the state shifts left one bit per byte, bit `k` depends only
/// on the last `k + 1` bytes — so the mask bounds each edit's blast
/// radius to a 32-byte trailing window instead of the full 64. Compile
/// manifests differ in many short scattered runs (counters, ids); the
/// narrower window roughly doubles how many features survive each edit,
/// which is the difference between clustering those manifests and
/// missing them entirely. A 2^32 feature space is still far too large
/// for unrelated artifacts to collide on minima.
const FEATURE_MASK: u64 = 0xFFFF_FFFF;

/// splitmix64 — the mixer the Gear table and the group transforms are
/// derived from (also xoshiro's seeding primitive, so the repo already
/// trusts it for decorrelation).
#[must_use]
const fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The 256-entry Gear table, expanded once at compile time.
const GEAR: [u64; 256] = {
    let mut table = [0u64; 256];
    let mut i = 0;
    while i < 256 {
        table[i] = splitmix64(0xC0DE_D0C5_0000_0000 ^ i as u64);
        i += 1;
    }
    table
};

/// Per-group affine transform constants `(mul, add)`; `mul` is forced
/// odd so the map is a bijection on `u64`.
const TRANSFORMS: [(u64, u64); GROUPS] = {
    let mut t = [(0u64, 0u64); GROUPS];
    let mut i = 0;
    while i < GROUPS {
        t[i] = (
            splitmix64(0x5EED_0000_0000_0000 ^ (i as u64 * 2)) | 1,
            splitmix64(0x5EED_0000_0000_0001 ^ (i as u64 * 2 + 1)),
        );
        i += 1;
    }
    t
};

/// FNV-1a over a byte slice (64-bit) — the fold used to combine group
/// minima into super-features and to fingerprint short inputs.
#[must_use]
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// The super-feature sketch of `data`.
///
/// Inputs too short to yield any sampled feature (roughly under
/// [`SAMPLE_RATE`] bytes) fall back to whole-content fingerprints: such
/// artifacts cluster only with byte-identical content, which is the
/// right behaviour — there is nothing meaningful to delta below that
/// size anyway.
#[must_use]
pub fn super_features(data: &[u8]) -> [u64; SUPER_FEATURES] {
    let mut minima = [u64::MAX; GROUPS];
    let mut sampled = false;
    let mut h = 0u64;
    for &b in data {
        h = (h << 1).wrapping_add(GEAR[b as usize]);
        if h & SAMPLE_MASK == SAMPLE_MASK {
            sampled = true;
            let feature = h & FEATURE_MASK;
            for (slot, &(mul, add)) in minima.iter_mut().zip(&TRANSFORMS) {
                let v = feature.wrapping_mul(mul).wrapping_add(add);
                if v < *slot {
                    *slot = v;
                }
            }
        }
    }
    let mut out = [0u64; SUPER_FEATURES];
    if !sampled {
        let fp = fnv1a(data);
        for (i, slot) in out.iter_mut().enumerate() {
            *slot = splitmix64(fp ^ (i as u64) << 56);
        }
        return out;
    }
    for (i, slot) in out.iter_mut().enumerate() {
        let mut bytes = [0u8; 8 * GROUP_SPAN];
        for (j, m) in minima[i * GROUP_SPAN..(i + 1) * GROUP_SPAN]
            .iter()
            .enumerate()
        {
            bytes[j * 8..(j + 1) * 8].copy_from_slice(&m.to_le_bytes());
        }
        // Mix the span index in so identical minima in different spans
        // never alias to the same super-feature value.
        *slot = fnv1a(&bytes) ^ splitmix64(i as u64);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A deterministic ~n-byte pseudo-random body.
    fn body(seed: u64, n: usize) -> Vec<u8> {
        let mut state = splitmix64(seed);
        let mut out = Vec::with_capacity(n + 8);
        while out.len() < n {
            state = splitmix64(state);
            out.extend_from_slice(&state.to_le_bytes());
        }
        out.truncate(n);
        out
    }

    fn shared(a: &[u64; SUPER_FEATURES], b: &[u64; SUPER_FEATURES]) -> usize {
        a.iter().filter(|v| b.contains(v)).count()
    }

    #[test]
    fn deterministic_across_calls() {
        let data = body(7, 4096);
        assert_eq!(super_features(&data), super_features(&data));
    }

    #[test]
    fn identical_content_shares_every_super_feature() {
        let data = body(3, 2048);
        let copy = data.clone();
        assert_eq!(
            shared(&super_features(&data), &super_features(&copy)),
            SUPER_FEATURES
        );
    }

    #[test]
    fn small_edit_keeps_at_least_one_super_feature() {
        let data = body(11, 4096);
        let mut edited = data.clone();
        edited[2000] ^= 0xFF;
        edited.splice(3000..3000, b"inserted counter 12345".iter().copied());
        assert!(
            shared(&super_features(&data), &super_features(&edited)) >= 1,
            "a point edit plus a small insertion must not break similarity"
        );
    }

    #[test]
    fn unrelated_content_shares_nothing() {
        let a = super_features(&body(100, 4096));
        let b = super_features(&body(200, 4096));
        assert_eq!(shared(&a, &b), 0, "independent bodies must not cluster");
    }

    #[test]
    fn insertion_shift_does_not_break_similarity() {
        // Content-defined sampling is the point: prepending bytes shifts
        // every offset but leaves most features intact.
        let data = body(42, 4096);
        let mut shifted = b"prefix header v2\n".to_vec();
        shifted.extend_from_slice(&data);
        assert!(shared(&super_features(&data), &super_features(&shifted)) >= 1);
    }

    #[test]
    fn short_inputs_cluster_only_when_identical() {
        let a = super_features(b"tiny");
        let b = super_features(b"tiny");
        let c = super_features(b"tinz");
        assert_eq!(shared(&a, &b), SUPER_FEATURES);
        assert_eq!(shared(&a, &c), 0);
    }

    #[test]
    fn empty_input_is_well_defined() {
        assert_eq!(super_features(&[]), super_features(&[]));
    }

    #[test]
    fn super_feature_values_are_distinct_within_a_sketch() {
        // The span-index mix keeps the K values from aliasing even on
        // degenerate (constant) content.
        let sf = super_features(&[0u8; 8192]);
        assert_ne!(sf[0], sf[1]);
        assert_ne!(sf[1], sf[2]);
    }
}
