//! `ppet-dedup` — the similarity engine behind the artifact store's
//! delta layer.
//!
//! `ppet-store` used to pick delta bases with a global inverted index of
//! fixed 64-byte chunk hashes: exact but purely local, first-fit, and
//! blind to artifact *families*. This crate replaces that with the
//! SBC-style stack — resemblance sketches plus graph clustering — in two
//! std-only layers:
//!
//! * [`feature`] — super-feature extraction: a rolling Gear hash samples
//!   content-defined features, [`feature::GROUPS`] min-hash transforms
//!   reduce them to group minima, and the minima fold into
//!   [`feature::SUPER_FEATURES`] super-features per artifact. Two
//!   artifacts sharing a super-feature are near-duplicates with high
//!   probability.
//! * [`cluster`] — the incremental [`cluster::Clusterer`]: artifacts
//!   sharing ≥ 1 super-feature join one cluster (transitively), each
//!   cluster elects a deterministic centrality-maximizing
//!   representative, and elections re-run on every removal. All answers
//!   are pure functions of the member set, so an index rebuilt from a
//!   log replay reproduces every decision bit-for-bit.
//!
//! The store's put path sketches the incoming artifact, asks the
//! clusterer for candidates, and encodes against the best-ranked one;
//! see `ppet-store` for the chain-depth and decode-budget gates layered
//! on top.

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod cluster;
pub mod feature;

pub use cluster::Clusterer;
pub use feature::{super_features, SUPER_FEATURES};
