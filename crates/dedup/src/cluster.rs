//! Incremental similarity clustering over super-feature sketches.
//!
//! Artifacts are nodes; two artifacts are linked iff they share at least
//! one super-feature value. A *cluster* is a connected component of that
//! graph — the graph-clustering rule of SBC-style dedup, which chains
//! transitive similarity (A≈B, B≈C clusters A,B,C even when A and C
//! share nothing directly) so a whole family of variants lands in one
//! cluster with one representative.
//!
//! Every query the store asks — membership, candidates, representative —
//! is a pure function of the *current member set*, never of insertion
//! order. That is the property that makes delta-base choice reproducible
//! when the index is rebuilt from the log: replay re-inserts the same
//! members and necessarily lands on the same clusters and the same
//! representatives.
//!
//! # Representative election
//!
//! Each cluster elects the member with the highest *centrality*: the sum
//! over its super-features of how many other members share that value
//! (ties broken toward the smaller key). The most-shared member is the
//! best default delta base — it is the one the most future variants will
//! resemble. Elections re-run on every membership change, including
//! evictions, so a cluster never points at a departed representative.

use std::collections::{BTreeSet, HashMap};

use crate::feature::SUPER_FEATURES;

/// One artifact's sketch, deduplicated to its distinct values.
type Sketch = Vec<u64>;

/// The incremental clusterer. Keys are the store's 128-bit content
/// addresses; values are super-feature sketches.
#[derive(Debug, Default)]
pub struct Clusterer {
    /// Member → its distinct super-feature values.
    members: HashMap<u128, Sketch>,
    /// Super-feature value → members carrying it (sorted, deduped).
    sf_map: HashMap<u64, Vec<u128>>,
    /// Member → cluster id. A cluster's id is its smallest member key —
    /// an order-independent name.
    cluster_of: HashMap<u128, u128>,
    /// Cluster id → (members, elected representative).
    clusters: HashMap<u128, Cluster>,
}

#[derive(Debug)]
struct Cluster {
    members: BTreeSet<u128>,
    representative: u128,
}

impl Clusterer {
    /// An empty clusterer.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Members currently tracked.
    #[must_use]
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Whether no members are tracked.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Number of clusters (singletons included).
    #[must_use]
    pub fn cluster_count(&self) -> usize {
        self.clusters.len()
    }

    /// Distinct super-feature values in the table.
    #[must_use]
    pub fn sf_table_len(&self) -> usize {
        self.sf_map.len()
    }

    /// Inserts (or re-sketches) `key`. Clusters linked through the new
    /// sketch merge; the merged cluster re-elects its representative.
    pub fn insert(&mut self, key: u128, sketch: [u64; SUPER_FEATURES]) {
        if self.members.contains_key(&key) {
            self.remove(key);
        }
        let mut distinct: Sketch = sketch.to_vec();
        distinct.sort_unstable();
        distinct.dedup();

        // Everyone reachable through a shared value joins one cluster.
        let mut merged: BTreeSet<u128> = BTreeSet::new();
        merged.insert(key);
        for sf in &distinct {
            if let Some(owners) = self.sf_map.get(sf) {
                for owner in owners {
                    let id = self.cluster_of[owner];
                    if let Some(cluster) = self.clusters.remove(&id) {
                        merged.extend(cluster.members);
                    }
                }
            }
        }

        for sf in &distinct {
            let owners = self.sf_map.entry(*sf).or_default();
            if let Err(at) = owners.binary_search(&key) {
                owners.insert(at, key);
            }
        }
        self.members.insert(key, distinct);
        self.install(merged);
    }

    /// Removes `key` (no-op when untracked). The cluster it belonged to
    /// may split into several components; each re-elects its
    /// representative.
    pub fn remove(&mut self, key: u128) {
        let Some(sketch) = self.members.remove(&key) else {
            return;
        };
        for sf in &sketch {
            if let Some(owners) = self.sf_map.get_mut(sf) {
                if let Ok(at) = owners.binary_search(&key) {
                    owners.remove(at);
                }
                if owners.is_empty() {
                    self.sf_map.remove(sf);
                }
            }
        }
        let id = self
            .cluster_of
            .remove(&key)
            .expect("tracked member has a cluster");
        let mut rest = self
            .clusters
            .remove(&id)
            .expect("cluster id resolves")
            .members;
        rest.remove(&key);
        // The survivors may no longer be connected: rebuild components.
        while let Some(&seed) = rest.iter().next() {
            let mut component = BTreeSet::new();
            let mut frontier = vec![seed];
            rest.remove(&seed);
            component.insert(seed);
            while let Some(node) = frontier.pop() {
                for sf in &self.members[&node] {
                    for peer in &self.sf_map[sf] {
                        if rest.remove(peer) {
                            component.insert(*peer);
                            frontier.push(*peer);
                        }
                    }
                }
            }
            self.install(component);
        }
    }

    /// The cluster id `key` belongs to, when tracked.
    #[must_use]
    pub fn cluster_id(&self, key: u128) -> Option<u128> {
        self.cluster_of.get(&key).copied()
    }

    /// The elected representative of `key`'s cluster.
    #[must_use]
    pub fn representative_of(&self, key: u128) -> Option<u128> {
        let id = self.cluster_of.get(&key)?;
        Some(self.clusters[id].representative)
    }

    /// Members of `key`'s cluster, ascending.
    #[must_use]
    pub fn cluster_members(&self, key: u128) -> Vec<u128> {
        match self.cluster_of.get(&key) {
            Some(id) => self.clusters[id].members.iter().copied().collect(),
            None => Vec::new(),
        }
    }

    /// Every member sharing at least one super-feature value with
    /// `sketch`, with its share count, ascending by key. These are the
    /// delta-base candidates for an incoming artifact.
    #[must_use]
    pub fn candidates(&self, sketch: &[u64; SUPER_FEATURES]) -> Vec<(u128, usize)> {
        let mut distinct: Sketch = sketch.to_vec();
        distinct.sort_unstable();
        distinct.dedup();
        let mut tally: HashMap<u128, usize> = HashMap::new();
        for sf in &distinct {
            if let Some(owners) = self.sf_map.get(sf) {
                for owner in owners {
                    *tally.entry(*owner).or_insert(0) += 1;
                }
            }
        }
        let mut out: Vec<(u128, usize)> = tally.into_iter().collect();
        out.sort_unstable_by_key(|&(k, _)| k);
        out
    }

    /// Whether `key`'s cluster currently elects it representative.
    #[must_use]
    pub fn is_representative(&self, key: u128) -> bool {
        self.representative_of(key) == Some(key)
    }

    /// Cluster sizes, ascending — diagnostics for stats output.
    #[must_use]
    pub fn cluster_sizes(&self) -> Vec<usize> {
        let mut sizes: Vec<usize> = self.clusters.values().map(|c| c.members.len()).collect();
        sizes.sort_unstable();
        sizes
    }

    /// Installs `members` as one cluster: names it after its smallest
    /// key and elects the representative by centrality.
    fn install(&mut self, members: BTreeSet<u128>) {
        debug_assert!(!members.is_empty());
        let id = *members.iter().next().expect("non-empty cluster");
        let representative = self.elect(&members);
        for member in &members {
            self.cluster_of.insert(*member, id);
        }
        self.clusters.insert(
            id,
            Cluster {
                members,
                representative,
            },
        );
    }

    /// Centrality election: maximize the number of *other* members
    /// sharing each of the member's super-feature values; ties go to the
    /// smaller key. Pure function of the member set — insertion order
    /// never matters.
    fn elect(&self, members: &BTreeSet<u128>) -> u128 {
        let mut best_key = *members.iter().next().expect("non-empty cluster");
        let mut best_score = usize::MIN;
        let mut first = true;
        for &member in members {
            let score: usize = self.members[&member]
                .iter()
                .map(|sf| self.sf_map[sf].len().saturating_sub(1))
                .sum();
            if first || score > best_score {
                best_key = member;
                best_score = score;
                first = false;
            }
        }
        best_key
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sk(values: [u64; SUPER_FEATURES]) -> [u64; SUPER_FEATURES] {
        values
    }

    #[test]
    fn disjoint_sketches_stay_singletons() {
        let mut c = Clusterer::new();
        c.insert(1, sk([10, 11, 12]));
        c.insert(2, sk([20, 21, 22]));
        assert_eq!(c.cluster_count(), 2);
        assert_eq!(c.representative_of(1), Some(1));
        assert_eq!(c.representative_of(2), Some(2));
    }

    #[test]
    fn one_shared_value_merges() {
        let mut c = Clusterer::new();
        c.insert(1, sk([10, 11, 12]));
        c.insert(2, sk([12, 21, 22]));
        assert_eq!(c.cluster_count(), 1);
        assert_eq!(c.cluster_id(1), c.cluster_id(2));
    }

    #[test]
    fn transitive_similarity_chains_into_one_cluster() {
        let mut c = Clusterer::new();
        c.insert(1, sk([10, 11, 12]));
        c.insert(3, sk([30, 31, 32]));
        // Bridges 1 and 3 without their sharing anything directly.
        c.insert(2, sk([12, 30, 99]));
        assert_eq!(c.cluster_count(), 1);
        let members = c.cluster_members(1);
        assert_eq!(members, vec![1, 2, 3]);
        // The bridge shares a value with both sides: centrality 2 versus
        // 1 and 1 — it is the representative.
        assert_eq!(c.representative_of(1), Some(2));
    }

    #[test]
    fn removal_splits_and_reelects() {
        let mut c = Clusterer::new();
        c.insert(1, sk([10, 11, 12]));
        c.insert(3, sk([30, 31, 32]));
        c.insert(2, sk([12, 30, 99]));
        c.remove(2);
        assert_eq!(c.cluster_count(), 2, "bridge removal must split");
        assert_eq!(c.representative_of(1), Some(1));
        assert_eq!(c.representative_of(3), Some(3));
        assert_eq!(c.cluster_id(1), Some(1));
        assert_eq!(c.cluster_id(3), Some(3));
    }

    #[test]
    fn representative_reelected_on_eviction() {
        let mut c = Clusterer::new();
        // 5 is central: shares a value with each of 6 and 7.
        c.insert(5, sk([1, 2, 3]));
        c.insert(6, sk([1, 60, 61]));
        c.insert(7, sk([2, 70, 71]));
        assert_eq!(c.representative_of(6), Some(5));
        c.remove(5);
        // 6 and 7 no longer connect: two singletons, each its own rep.
        assert_eq!(c.cluster_count(), 2);
        assert!(c.is_representative(6));
        assert!(c.is_representative(7));
    }

    #[test]
    fn election_is_insertion_order_independent() {
        let keys: Vec<u128> = (1..=6).collect();
        let sketches: Vec<[u64; SUPER_FEATURES]> = vec![
            sk([1, 2, 3]),
            sk([1, 4, 5]),
            sk([2, 4, 6]),
            sk([3, 5, 6]),
            sk([1, 2, 7]),
            sk([8, 9, 7]),
        ];
        let mut orders = vec![
            vec![0usize, 1, 2, 3, 4, 5],
            vec![5, 4, 3, 2, 1, 0],
            vec![2, 5, 0, 3, 1, 4],
        ];
        let mut snapshots = Vec::new();
        for order in orders.drain(..) {
            let mut c = Clusterer::new();
            for i in order {
                c.insert(keys[i], sketches[i]);
            }
            let snap: Vec<(Option<u128>, Option<u128>)> = keys
                .iter()
                .map(|&k| (c.cluster_id(k), c.representative_of(k)))
                .collect();
            snapshots.push(snap);
        }
        assert_eq!(snapshots[0], snapshots[1]);
        assert_eq!(snapshots[0], snapshots[2]);
    }

    #[test]
    fn candidates_report_share_counts() {
        let mut c = Clusterer::new();
        c.insert(1, sk([10, 11, 12]));
        c.insert(2, sk([10, 11, 99]));
        let cands = c.candidates(&sk([10, 11, 12]));
        assert_eq!(cands, vec![(1, 3), (2, 2)]);
    }

    #[test]
    fn reinsert_resketches() {
        let mut c = Clusterer::new();
        c.insert(1, sk([10, 11, 12]));
        c.insert(2, sk([10, 20, 21]));
        assert_eq!(c.cluster_count(), 1);
        c.insert(1, sk([40, 41, 42]));
        assert_eq!(c.cluster_count(), 2, "new sketch no longer links to 2");
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn sf_table_len_tracks_distinct_values() {
        let mut c = Clusterer::new();
        c.insert(1, sk([10, 10, 12]));
        assert_eq!(c.sf_table_len(), 2);
        c.remove(1);
        assert_eq!(c.sf_table_len(), 0);
        assert!(c.is_empty());
    }
}
