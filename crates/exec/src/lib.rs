//! `ppet-exec`: the deterministic parallel execution engine of the `ppet`
//! workspace.
//!
//! The Merced pipeline's dominant costs — `Saturate_Network`'s repeated
//! randomized Dijkstra trees and pseudo-exhaustive fault simulation — are
//! embarrassingly parallel, but the workspace's reason for existing is
//! *reproducible* experiments: a given seed must produce the exact same
//! report on every machine, at every `--jobs` setting. This crate
//! reconciles the two with a scoped thread pool whose primitives are
//! **bit-identical to sequential execution at any worker count**:
//!
//! - [`Pool::par_map`] — dynamic scheduling, results reassembled in item
//!   order;
//! - [`Pool::par_chunks`] — chunk boundaries depend only on the chunk
//!   size, never on the worker count;
//! - [`Pool::par_reduce`] — parallel map, then a fixed-order left fold,
//!   so even floating-point accumulation is stable.
//!
//! For long-running services the crate adds [`WorkQueue`]: a bounded,
//! persistent worker pool with backpressure ([`WorkQueue::try_submit`] /
//! [`QueueFull`]), graceful drain, and a cancellation hook for jobs that
//! have not started — the scheduling substrate of `merced serve`.
//!
//! The other half of the contract lives with callers: tasks must be pure
//! functions of `(index, item)`. Stochastic tasks get there by deriving
//! per-task PRNG streams (`ppet_prng::Xoshiro256PlusPlus::stream`, jump
//! based and non-overlapping) instead of sharing one mutable generator.
//!
//! Worker counts resolve through [`resolve_jobs`]: explicit request, then
//! the [`JOBS_ENV`] (`PPET_JOBS`) environment variable (`N` or `max`),
//! then 1 — always capped at [`available_workers`]. Because results never
//! depend on the worker count, the cap is a pure resource decision.
//!
//! ```
//! use ppet_exec::Pool;
//!
//! let inputs: Vec<u64> = (0..64).collect();
//! let a = Pool::new(8).par_map(&inputs, |_, &x| x.wrapping_mul(x));
//! let b = Pool::sequential().par_map(&inputs, |_, &x| x.wrapping_mul(x));
//! assert_eq!(a, b); // any worker count, same bits
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod jobs;
mod pool;
mod queue;

pub use jobs::{available_workers, parse_jobs, resolve_jobs, JobsError, JOBS_ENV};
pub use pool::Pool;
pub use queue::{QueueFull, WorkQueue};
