//! The scoped worker pool and its order-stable primitives.

use std::panic;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::thread;

use crate::jobs::{resolve_jobs, JobsError};

/// A deterministic parallel executor over borrowed data.
///
/// `Pool` carries only a worker count; every call runs on
/// [`std::thread::scope`] threads that may borrow from the caller's stack
/// and are joined before the call returns. There is no task queue to
/// drain, no detached state, and nothing to shut down.
///
/// # Determinism contract
///
/// Every primitive returns results **in item order**, regardless of which
/// worker computed which item and in what order tasks finished. As long
/// as the task function is a pure function of `(index, item)` — in
/// particular, stochastic tasks must derive their randomness from a
/// per-task PRNG stream (see `ppet_prng::Xoshiro256PlusPlus::stream`)
/// rather than a shared generator — the output is bit-identical to
/// sequential execution at *any* worker count.
///
/// # Examples
///
/// ```
/// use ppet_exec::Pool;
///
/// let squares = Pool::new(4).par_map(&[1u64, 2, 3, 4], |_, &x| x * x);
/// assert_eq!(squares, vec![1, 4, 9, 16]);
/// // Worker count never changes the result:
/// assert_eq!(squares, Pool::sequential().par_map(&[1u64, 2, 3, 4], |_, &x| x * x));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Pool {
    workers: usize,
}

impl Pool {
    /// A pool with `workers` worker threads.
    ///
    /// # Panics
    ///
    /// Panics if `workers == 0`; command-line layers validate user input
    /// through [`crate::resolve_jobs`] before constructing a pool.
    #[must_use]
    pub fn new(workers: usize) -> Self {
        assert!(workers > 0, "a pool needs at least one worker");
        Self { workers }
    }

    /// The single-worker pool: primitives run inline on the calling
    /// thread, with zero thread overhead.
    #[must_use]
    pub fn sequential() -> Self {
        Self { workers: 1 }
    }

    /// A pool sized by [`crate::resolve_jobs`]`(None)`: the `PPET_JOBS`
    /// environment variable when set (`N` or `max`), else one worker.
    ///
    /// # Errors
    ///
    /// Propagates [`JobsError`] when `PPET_JOBS` is set but invalid.
    pub fn from_env() -> Result<Self, JobsError> {
        resolve_jobs(None).map(Self::new)
    }

    /// The worker count.
    #[must_use]
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Applies `f(index, &item)` to every item and returns the results in
    /// item order.
    ///
    /// Work is distributed dynamically (an atomic cursor), so uneven task
    /// sizes balance across workers; the dynamic schedule is invisible in
    /// the output because results are reassembled by index. A panic in
    /// any task propagates to the caller after the scope joins.
    pub fn par_map<T, U, F>(&self, items: &[T], f: F) -> Vec<U>
    where
        T: Sync,
        U: Send,
        F: Fn(usize, &T) -> U + Sync,
    {
        let n = items.len();
        let workers = self.workers.min(n);
        if workers <= 1 {
            return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
        }

        let cursor = AtomicUsize::new(0);
        let mut slots: Vec<Option<U>> = Vec::with_capacity(n);
        slots.resize_with(n, || None);
        thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    scope.spawn(|| {
                        let mut local: Vec<(usize, U)> = Vec::new();
                        loop {
                            let i = cursor.fetch_add(1, Ordering::Relaxed);
                            if i >= n {
                                break;
                            }
                            local.push((i, f(i, &items[i])));
                        }
                        local
                    })
                })
                .collect();
            for handle in handles {
                match handle.join() {
                    Ok(local) => {
                        for (i, value) in local {
                            slots[i] = Some(value);
                        }
                    }
                    Err(payload) => panic::resume_unwind(payload),
                }
            }
        });
        slots
            .into_iter()
            .map(|slot| slot.expect("every index is claimed exactly once"))
            .collect()
    }

    /// Applies `f(chunk_index, chunk)` to fixed-size chunks of `items` and
    /// returns the results in chunk order.
    ///
    /// Chunk boundaries depend only on `chunk_size` (the last chunk may be
    /// short), never on the worker count — the property that keeps
    /// chunked reductions worker-count independent.
    ///
    /// # Panics
    ///
    /// Panics if `chunk_size == 0`.
    pub fn par_chunks<T, U, F>(&self, items: &[T], chunk_size: usize, f: F) -> Vec<U>
    where
        T: Sync,
        U: Send,
        F: Fn(usize, &[T]) -> U + Sync,
    {
        assert!(chunk_size > 0, "chunk_size must be positive");
        let chunks: Vec<&[T]> = items.chunks(chunk_size).collect();
        self.par_map(&chunks, |i, chunk| f(i, chunk))
    }

    /// Maps every item in parallel, then folds the mapped values **in item
    /// order** on the calling thread.
    ///
    /// Because the combine order is fixed, non-commutative and
    /// non-associative accumulations (floating-point sums, congestion
    /// merges) produce bit-identical results at any worker count: the
    /// reduction is exactly `items.map(map).fold(init, combine)`.
    pub fn par_reduce<T, U, A, M, C>(&self, items: &[T], map: M, init: A, combine: C) -> A
    where
        T: Sync,
        U: Send,
        M: Fn(usize, &T) -> U + Sync,
        C: FnMut(A, U) -> A,
    {
        self.par_map(items, map).into_iter().fold(init, combine)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppet_prng::{Rng, Xoshiro256PlusPlus};

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_workers_rejected() {
        let _ = Pool::new(0);
    }

    #[test]
    fn par_map_preserves_order() {
        let items: Vec<usize> = (0..100).collect();
        for workers in [1, 2, 3, 8, 64] {
            let out = Pool::new(workers).par_map(&items, |i, &x| {
                assert_eq!(i, x);
                x * 10
            });
            assert_eq!(out, (0..100).map(|x| x * 10).collect::<Vec<_>>());
        }
    }

    #[test]
    fn par_map_empty_and_tiny() {
        let empty: [u8; 0] = [];
        assert!(Pool::new(8).par_map(&empty, |_, &x| x).is_empty());
        assert_eq!(Pool::new(8).par_map(&[7u8], |_, &x| x), vec![7]);
    }

    #[test]
    fn stochastic_tasks_are_worker_count_invariant() {
        // Each task draws from its own PRNG stream; the aggregate must be
        // identical no matter how many workers race over the tasks.
        let base = Xoshiro256PlusPlus::seed_from(42);
        let streams = base.streams(16);
        let run = |workers: usize| -> Vec<u64> {
            Pool::new(workers).par_map(&streams, |_, stream| {
                let mut rng = stream.clone();
                (0..1000).map(|_| rng.next_u64() % 97).sum()
            })
        };
        let sequential = run(1);
        for workers in [2, 4, 8, 16] {
            assert_eq!(run(workers), sequential, "workers = {workers}");
        }
    }

    #[test]
    fn par_chunks_boundaries_are_fixed() {
        let items: Vec<u32> = (0..10).collect();
        for workers in [1, 2, 8] {
            let lens = Pool::new(workers).par_chunks(&items, 4, |i, chunk| (i, chunk.len()));
            assert_eq!(lens, vec![(0, 4), (1, 4), (2, 2)]);
        }
    }

    #[test]
    #[should_panic(expected = "chunk_size must be positive")]
    fn zero_chunk_size_rejected() {
        let _ = Pool::sequential().par_chunks(&[1], 0, |_, c| c.len());
    }

    #[test]
    fn par_reduce_folds_in_item_order() {
        // Subtraction is non-commutative and non-associative: any deviation
        // from left-fold item order changes the result.
        let items: Vec<i64> = (1..=50).collect();
        let expected = items.iter().fold(0i64, |acc, &x| acc * 2 - x);
        for workers in [1, 2, 7, 32] {
            let got = Pool::new(workers).par_reduce(&items, |_, &x| x, 0i64, |acc, x| acc * 2 - x);
            assert_eq!(got, expected, "workers = {workers}");
        }
    }

    #[test]
    fn float_sums_are_bit_identical_across_worker_counts() {
        let base = Xoshiro256PlusPlus::seed_from(7);
        let streams = base.streams(24);
        let sum = |workers: usize| -> f64 {
            Pool::new(workers).par_reduce(
                &streams,
                |_, stream| {
                    let mut rng = stream.clone();
                    (0..100).map(|_| rng.gen_f64()).sum::<f64>()
                },
                0.0f64,
                |acc, x| acc + x,
            )
        };
        let bits = sum(1).to_bits();
        for workers in [2, 3, 8] {
            assert_eq!(sum(workers).to_bits(), bits, "workers = {workers}");
        }
    }

    #[test]
    fn task_panics_propagate() {
        let result = std::panic::catch_unwind(|| {
            Pool::new(4).par_map(&[0, 1, 2, 3, 4], |i, _| {
                assert!(i != 3, "task three exploded");
                i
            })
        });
        assert!(result.is_err());
    }

    #[test]
    fn uneven_tasks_still_assemble_in_order() {
        // Early tasks sleep so later tasks finish first; order must hold.
        let items: Vec<u64> = (0..12).collect();
        let out = Pool::new(4).par_map(&items, |_, &x| {
            if x < 4 {
                std::thread::sleep(std::time::Duration::from_millis(10));
            }
            x
        });
        assert_eq!(out, items);
    }
}
