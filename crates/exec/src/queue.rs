//! A bounded, persistent work queue for long-running services.
//!
//! [`Pool`](crate::Pool) is scoped and stateless — perfect for one
//! compile, wrong for a server that accepts work over hours. The
//! [`WorkQueue`] keeps a fixed set of worker threads alive and feeds them
//! jobs through a *bounded* FIFO: when the queue is full,
//! [`WorkQueue::try_submit`] refuses immediately ([`QueueFull`]) so the
//! caller can push back on its own clients instead of buffering without
//! limit.
//!
//! Shutdown comes in two flavors matching a service's lifecycle:
//! [`WorkQueue::shutdown`] drains — queued and running jobs complete —
//! while [`WorkQueue::cancel_pending`] is the cancellation hook that drops
//! jobs that have not started yet (running jobs are never interrupted;
//! compiles are not preemptible).
//!
//! Determinism note: the queue schedules *whole jobs*; it makes no
//! ordering promises between jobs and offers no result collection. Jobs
//! communicate through their own channels/latches. The bit-identical
//! guarantees of this crate live in [`Pool`](crate::Pool)'s primitives,
//! which a job is free to use internally.

use std::collections::VecDeque;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

type Job = Box<dyn FnOnce() + Send + 'static>;

/// Error returned by [`WorkQueue::try_submit`] when the bounded queue is
/// at capacity — the service's backpressure signal.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueueFull {
    /// The queue capacity that was exhausted.
    pub capacity: usize,
}

impl fmt::Display for QueueFull {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "work queue full ({} queued jobs)", self.capacity)
    }
}

impl std::error::Error for QueueFull {}

#[derive(Default)]
struct State {
    queue: VecDeque<Job>,
    /// Jobs currently executing on a worker.
    active: usize,
    /// `false` once shutdown begins: no further submissions.
    open: bool,
    /// Total jobs dropped by [`WorkQueue::cancel_pending`].
    cancelled: u64,
}

struct Shared {
    state: Mutex<State>,
    /// Signaled when a job is queued or the queue closes.
    work: Condvar,
    /// Signaled when the queue might have gone idle (for `drain`).
    idle: Condvar,
}

/// A bounded multi-producer work queue over a fixed set of persistent
/// worker threads.
///
/// # Examples
///
/// ```
/// use std::sync::atomic::{AtomicU64, Ordering};
/// use std::sync::Arc;
///
/// let q = ppet_exec::WorkQueue::new(2, 16);
/// let done = Arc::new(AtomicU64::new(0));
/// for _ in 0..8 {
///     let done = Arc::clone(&done);
///     q.try_submit(move || {
///         done.fetch_add(1, Ordering::SeqCst);
///     })
///     .unwrap();
/// }
/// q.shutdown(); // drains: every accepted job runs
/// assert_eq!(done.load(Ordering::SeqCst), 8);
/// ```
pub struct WorkQueue {
    shared: Arc<Shared>,
    capacity: usize,
    workers: Vec<JoinHandle<()>>,
}

impl fmt::Debug for WorkQueue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("WorkQueue")
            .field("workers", &self.workers.len())
            .field("capacity", &self.capacity)
            .field("depth", &self.depth())
            .finish()
    }
}

impl WorkQueue {
    /// Starts `workers` worker threads over a queue holding at most
    /// `capacity` not-yet-started jobs.
    ///
    /// # Panics
    ///
    /// Panics if `workers == 0` or `capacity == 0`.
    #[must_use]
    pub fn new(workers: usize, capacity: usize) -> Self {
        assert!(workers > 0, "a work queue needs at least one worker");
        assert!(
            capacity > 0,
            "a work queue needs capacity for at least one job"
        );
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                open: true,
                ..State::default()
            }),
            work: Condvar::new(),
            idle: Condvar::new(),
        });
        let workers = (0..workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("ppet-queue-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn queue worker")
            })
            .collect();
        Self {
            shared,
            capacity,
            workers,
        }
    }

    /// Enqueues `job` unless the queue is at capacity or shut down.
    ///
    /// # Errors
    ///
    /// [`QueueFull`] when `capacity` jobs are already waiting (or shutdown
    /// has begun — a closing service refuses new work the same way).
    pub fn try_submit(&self, job: impl FnOnce() + Send + 'static) -> Result<(), QueueFull> {
        let mut state = self.shared.state.lock().unwrap();
        if !state.open || state.queue.len() >= self.capacity {
            return Err(QueueFull {
                capacity: self.capacity,
            });
        }
        state.queue.push_back(Box::new(job));
        drop(state);
        self.shared.work.notify_one();
        Ok(())
    }

    /// Number of jobs waiting to start (excludes running jobs).
    #[must_use]
    pub fn depth(&self) -> usize {
        self.shared.state.lock().unwrap().queue.len()
    }

    /// Number of jobs accepted but not yet finished (waiting + running).
    #[must_use]
    pub fn in_flight(&self) -> usize {
        let state = self.shared.state.lock().unwrap();
        state.queue.len() + state.active
    }

    /// The cancellation hook: drops every job that has not started yet and
    /// returns how many were dropped. Running jobs are unaffected —
    /// a compile in progress cannot be preempted — so pair this with
    /// [`WorkQueue::drain`] when the goal is "stop as soon as possible".
    pub fn cancel_pending(&self) -> usize {
        let mut state = self.shared.state.lock().unwrap();
        let dropped = state.queue.len();
        state.queue.clear();
        state.cancelled += dropped as u64;
        drop(state);
        self.shared.idle.notify_all();
        dropped
    }

    /// Total jobs ever dropped by [`WorkQueue::cancel_pending`].
    #[must_use]
    pub fn cancelled(&self) -> u64 {
        self.shared.state.lock().unwrap().cancelled
    }

    /// Blocks until no job is queued or running. New submissions remain
    /// possible; for a final drain use [`WorkQueue::shutdown`].
    pub fn drain(&self) {
        let mut state = self.shared.state.lock().unwrap();
        while !state.queue.is_empty() || state.active > 0 {
            state = self.shared.idle.wait(state).unwrap();
        }
    }

    /// Graceful shutdown: refuses new submissions, runs every already
    /// accepted job to completion, then joins the workers.
    pub fn shutdown(mut self) {
        self.close_and_join();
    }

    /// Fast shutdown: drops all not-yet-started jobs, lets running jobs
    /// finish (they cannot be interrupted), then joins the workers.
    /// Returns how many queued jobs were dropped.
    pub fn shutdown_now(mut self) -> usize {
        let dropped = self.cancel_pending();
        self.close_and_join();
        dropped
    }

    fn close_and_join(&mut self) {
        {
            let mut state = self.shared.state.lock().unwrap();
            state.open = false;
        }
        self.shared.work.notify_all();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for WorkQueue {
    /// Dropping without an explicit shutdown drains gracefully, matching
    /// [`WorkQueue::shutdown`].
    fn drop(&mut self) {
        if !self.workers.is_empty() {
            self.close_and_join();
        }
    }
}

fn worker_loop(shared: &Shared) {
    loop {
        let job = {
            let mut state = shared.state.lock().unwrap();
            loop {
                if let Some(job) = state.queue.pop_front() {
                    state.active += 1;
                    break job;
                }
                if !state.open {
                    return;
                }
                state = shared.work.wait(state).unwrap();
            }
        };
        // A panicking job must not kill the worker (the service converts
        // panics into structured errors through its own wrapper; this is
        // the backstop that keeps the pool alive regardless).
        let _ = catch_unwind(AssertUnwindSafe(job));
        let mut state = shared.state.lock().unwrap();
        state.active -= 1;
        let idle = state.queue.is_empty() && state.active == 0;
        drop(state);
        if idle {
            shared.idle.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::mpsc;
    use std::time::Duration;

    #[test]
    fn runs_all_submitted_jobs() {
        let q = WorkQueue::new(4, 64);
        let done = Arc::new(AtomicU64::new(0));
        for _ in 0..32 {
            let done = Arc::clone(&done);
            q.try_submit(move || {
                done.fetch_add(1, Ordering::SeqCst);
            })
            .unwrap();
        }
        q.shutdown();
        assert_eq!(done.load(Ordering::SeqCst), 32);
    }

    #[test]
    fn bounded_queue_pushes_back() {
        let q = WorkQueue::new(1, 2);
        // Park the single worker so queued jobs pile up deterministically.
        let (release_tx, release_rx) = mpsc::channel::<()>();
        let (started_tx, started_rx) = mpsc::channel::<()>();
        q.try_submit(move || {
            started_tx.send(()).unwrap();
            release_rx.recv().unwrap();
        })
        .unwrap();
        started_rx.recv().unwrap(); // worker is now busy, queue empty
        q.try_submit(|| {}).unwrap();
        q.try_submit(|| {}).unwrap();
        assert_eq!(q.depth(), 2);
        assert_eq!(q.in_flight(), 3);
        let err = q.try_submit(|| {}).unwrap_err();
        assert_eq!(err, QueueFull { capacity: 2 });
        assert!(err.to_string().contains("full"));
        release_tx.send(()).unwrap();
        q.shutdown();
    }

    #[test]
    fn shutdown_drains_accepted_work() {
        let q = WorkQueue::new(2, 16);
        let done = Arc::new(AtomicU64::new(0));
        for _ in 0..8 {
            let done = Arc::clone(&done);
            q.try_submit(move || {
                std::thread::sleep(Duration::from_millis(5));
                done.fetch_add(1, Ordering::SeqCst);
            })
            .unwrap();
        }
        q.shutdown(); // must not drop any accepted job
        assert_eq!(done.load(Ordering::SeqCst), 8);
    }

    #[test]
    fn cancel_pending_drops_only_unstarted_jobs() {
        let q = WorkQueue::new(1, 16);
        let (release_tx, release_rx) = mpsc::channel::<()>();
        let (started_tx, started_rx) = mpsc::channel::<()>();
        let done = Arc::new(AtomicU64::new(0));
        {
            let done = Arc::clone(&done);
            q.try_submit(move || {
                started_tx.send(()).unwrap();
                release_rx.recv().unwrap();
                done.fetch_add(1, Ordering::SeqCst);
            })
            .unwrap();
        }
        started_rx.recv().unwrap();
        for _ in 0..3 {
            let done = Arc::clone(&done);
            q.try_submit(move || {
                done.fetch_add(1, Ordering::SeqCst);
            })
            .unwrap();
        }
        assert_eq!(q.cancel_pending(), 3);
        assert_eq!(q.cancelled(), 3);
        release_tx.send(()).unwrap();
        q.shutdown();
        // The running job completed; the cancelled three never ran.
        assert_eq!(done.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn drain_waits_for_idle_without_closing() {
        let q = WorkQueue::new(2, 16);
        let done = Arc::new(AtomicU64::new(0));
        for _ in 0..4 {
            let done = Arc::clone(&done);
            q.try_submit(move || {
                std::thread::sleep(Duration::from_millis(2));
                done.fetch_add(1, Ordering::SeqCst);
            })
            .unwrap();
        }
        q.drain();
        assert_eq!(done.load(Ordering::SeqCst), 4);
        // Still open for business after a drain.
        let done2 = Arc::clone(&done);
        q.try_submit(move || {
            done2.fetch_add(1, Ordering::SeqCst);
        })
        .unwrap();
        q.shutdown();
        assert_eq!(done.load(Ordering::SeqCst), 5);
    }

    #[test]
    fn panicking_job_does_not_kill_the_pool() {
        let q = WorkQueue::new(1, 16);
        q.try_submit(|| panic!("job exploded")).unwrap();
        let done = Arc::new(AtomicU64::new(0));
        let d = Arc::clone(&done);
        q.try_submit(move || {
            d.fetch_add(1, Ordering::SeqCst);
        })
        .unwrap();
        q.shutdown();
        assert_eq!(done.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn submissions_refused_after_shutdown_begins() {
        let q = WorkQueue::new(1, 4);
        // Drop triggers graceful shutdown; here exercise the closed-path
        // explicitly through a second handle into the shared state.
        let shared = Arc::clone(&q.shared);
        q.shutdown();
        let state = shared.state.lock().unwrap();
        assert!(!state.open);
    }
}
