//! Worker-count resolution: `--jobs` flags, the `PPET_JOBS` environment
//! variable, and the hardware ceiling.

use std::fmt;

/// The environment variable consulted when no explicit job count is given.
/// Accepts a positive integer or the keyword `max` (= all available cores).
pub const JOBS_ENV: &str = "PPET_JOBS";

/// A rejected job-count request.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum JobsError {
    /// `0` was requested; a pool needs at least one worker.
    Zero,
    /// The value could not be parsed as a positive integer or `max`.
    Unparsable {
        /// The offending text.
        text: String,
    },
}

impl fmt::Display for JobsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Zero => write!(f, "jobs must be at least 1 (got 0)"),
            Self::Unparsable { text } => {
                write!(f, "jobs expects a positive integer or `max`, got `{text}`")
            }
        }
    }
}

impl std::error::Error for JobsError {}

/// The number of hardware execution units available to this process
/// (`std::thread::available_parallelism`, or 1 when it cannot be queried).
#[must_use]
pub fn available_workers() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// Parses a job-count string: a positive integer, or `max` for
/// [`available_workers`].
///
/// # Errors
///
/// [`JobsError::Zero`] for `0`, [`JobsError::Unparsable`] otherwise.
pub fn parse_jobs(text: &str) -> Result<usize, JobsError> {
    if text.eq_ignore_ascii_case("max") {
        return Ok(available_workers());
    }
    match text.trim().parse::<usize>() {
        Ok(0) => Err(JobsError::Zero),
        Ok(n) => Ok(n),
        Err(_) => Err(JobsError::Unparsable {
            text: text.to_owned(),
        }),
    }
}

/// Resolves the effective worker count for a command-line tool:
///
/// 1. an explicit request (e.g. `--jobs N`) wins;
/// 2. otherwise the [`JOBS_ENV`] environment variable (`N` or `max`);
/// 3. otherwise 1 (sequential — the conservative default, since results
///    are identical at every worker count anyway).
///
/// The result is capped at [`available_workers`]: oversubscribing cores
/// never helps these CPU-bound workloads, and the determinism contract
/// means capping cannot change any result.
///
/// # Errors
///
/// Propagates [`JobsError`] from the explicit request or the environment.
pub fn resolve_jobs(requested: Option<usize>) -> Result<usize, JobsError> {
    let uncapped = match requested {
        Some(0) => return Err(JobsError::Zero),
        Some(n) => n,
        None => match std::env::var(JOBS_ENV) {
            Ok(text) => parse_jobs(&text)?,
            Err(_) => 1,
        },
    };
    Ok(uncapped.min(available_workers()).max(1))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_accepts_numbers_and_max() {
        assert_eq!(parse_jobs("3"), Ok(3));
        assert_eq!(parse_jobs(" 8 "), Ok(8));
        assert_eq!(parse_jobs("max"), Ok(available_workers()));
        assert_eq!(parse_jobs("MAX"), Ok(available_workers()));
    }

    #[test]
    fn parse_rejects_zero_and_garbage() {
        assert_eq!(parse_jobs("0"), Err(JobsError::Zero));
        assert!(matches!(
            parse_jobs("many"),
            Err(JobsError::Unparsable { .. })
        ));
        assert!(matches!(
            parse_jobs("-2"),
            Err(JobsError::Unparsable { .. })
        ));
        assert!(parse_jobs("two").unwrap_err().to_string().contains("two"));
    }

    #[test]
    fn explicit_request_wins_and_is_capped() {
        assert_eq!(resolve_jobs(Some(1)), Ok(1));
        let capped = resolve_jobs(Some(usize::MAX)).unwrap();
        assert_eq!(capped, available_workers());
        assert_eq!(resolve_jobs(Some(0)), Err(JobsError::Zero));
    }

    #[test]
    fn available_workers_is_positive() {
        assert!(available_workers() >= 1);
    }
}
