//! Property tests: writer/parser round trip and generator invariants over
//! random circuit specifications.

use proptest::prelude::*;

use ppet_netlist::{bench_format, writer, AreaModel, CircuitStats, SynthSpec, Synthesizer};

fn arb_spec() -> impl Strategy<Value = (SynthSpec, usize, usize)> {
    (
        1usize..12,   // PIs
        0usize..15,   // DFFs
        2usize..100,  // gates
        0usize..30,   // inverters
        0usize..15,   // dffs on scc
        any::<u64>(), // seed
    )
        .prop_map(|(pis, dffs, gates, invs, on_scc, seed)| {
            (
                SynthSpec::new("prop")
                    .primary_inputs(pis)
                    .flip_flops(dffs)
                    .gates(gates)
                    .inverters(invs)
                    .dffs_on_scc(on_scc.min(dffs))
                    .seed(seed),
                pis,
                dffs,
            )
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// `parse(write(c))` preserves every cell, kind, fan-in name list, and
    /// the output set.
    #[test]
    fn writer_parser_round_trip((spec, _, _) in arb_spec()) {
        let original = Synthesizer::new(spec).build();
        let text = writer::to_bench(&original);
        let back = bench_format::parse(original.name(), &text).expect("round trips");

        prop_assert_eq!(back.num_cells(), original.num_cells());
        prop_assert_eq!(back.outputs().len(), original.outputs().len());
        for (_, cell) in original.iter() {
            let b_id = back.find(cell.name()).expect("cell survives");
            let b = back.cell(b_id);
            prop_assert_eq!(b.kind(), cell.kind());
            let orig: Vec<&str> = cell
                .fanin()
                .iter()
                .map(|&f| original.cell(f).name())
                .collect();
            let got: Vec<&str> = b.fanin().iter().map(|&f| back.cell(f).name()).collect();
            prop_assert_eq!(got, orig);
        }
        // Output name sets agree.
        let mut o1: Vec<&str> = original
            .outputs()
            .iter()
            .map(|&o| original.cell(o).name())
            .collect();
        let mut o2: Vec<&str> = back.outputs().iter().map(|&o| back.cell(o).name()).collect();
        o1.sort_unstable();
        o2.sort_unstable();
        prop_assert_eq!(o1, o2);
    }

    /// The generator hits its counts exactly and never creates
    /// combinational cycles.
    #[test]
    fn generator_counts_and_acyclicity((spec, pis, dffs) in arb_spec()) {
        let c = Synthesizer::new(spec.clone()).build();
        let s = CircuitStats::of(&c, &AreaModel::paper());
        prop_assert_eq!(s.primary_inputs, pis);
        prop_assert_eq!(s.flip_flops, dffs);
        prop_assert!(ppet_netlist::validate::find_combinational_cycle(&c).is_none());
        // Area is at least the structural minimum.
        prop_assert!(s.area >= spec.min_area());
    }

    /// Statistics are stable through a round trip.
    #[test]
    fn stats_survive_round_trip((spec, _, _) in arb_spec()) {
        let original = Synthesizer::new(spec).build();
        let text = writer::to_bench(&original);
        let back = bench_format::parse(original.name(), &text).expect("round trips");
        let model = AreaModel::paper();
        let a = CircuitStats::of(&original, &model);
        let b = CircuitStats::of(&back, &model);
        prop_assert_eq!(a.area, b.area);
        prop_assert_eq!(a.gates, b.gates);
        prop_assert_eq!(a.inverters, b.inverters);
        prop_assert_eq!(a.flip_flops, b.flip_flops);
    }
}
