//! Embedded benchmark data.
//!
//! * [`s27`] — the real ISCAS89 `s27` circuit, the paper's worked example
//!   (its Figs. 2, 5, 6 and 7 trace `s27` through the whole pipeline);
//! * [`table9`] — the published statistics of the 17 benchmark circuits the
//!   paper evaluates (Table 9) together with the register/SCC structure
//!   reported in Tables 10–11, used to calibrate the synthetic generator;
//! * parameterized textbook circuits ([`counter`], [`shift_register`],
//!   [`johnson_counter`], [`alu_slice`]) whose loop structure is exactly
//!   predictable — probes for the partitioner and retiming engine.

mod s27;
pub mod table9;
mod textbook;

pub use s27::{s27, S27_BENCH};
pub use table9::{BenchmarkRecord, TABLE9};
pub use textbook::{alu_slice, counter, johnson_counter, shift_register};
