//! The published benchmark statistics (paper Tables 9, 10 and 11).
//!
//! These records serve two purposes:
//!
//! 1. **Calibration** — the synthetic generator
//!    ([`crate::synth`]) reproduces each circuit's published PI / DFF /
//!    gate / inverter counts exactly and targets its estimated area and
//!    DFF-on-SCC fraction, so the partitioning experiments run on inputs
//!    with the same structural statistics the paper used;
//! 2. **Reporting** — the `table9`/`table10`/`table11` harnesses print the
//!    published value next to the measured one.
//!
//! Primary-output counts are not given in the paper; the values here are
//! the well-known ISCAS89 counts and only influence how many graph sinks
//! exist (they appear in none of the paper's metrics).

use crate::area::AreaUnits;

/// One benchmark circuit's published statistics.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BenchmarkRecord {
    /// Circuit name as printed in the paper (e.g. `"s9234.1"`).
    pub name: &'static str,
    /// Table 9 "No. of PIs".
    pub primary_inputs: usize,
    /// ISCAS89 primary-output count (not in Table 9; structural only).
    pub primary_outputs: usize,
    /// Table 9 "No. of DFFs".
    pub flip_flops: usize,
    /// Table 9 "No. of Gates" (multi-input gates).
    pub gates: usize,
    /// Table 9 "No. of INVs".
    pub inverters: usize,
    /// Table 9 "Estimated Area" in the paper's units.
    pub area: AreaUnits,
    /// Table 10 "DFFs on SCC" (flip-flops inside nontrivial strongly
    /// connected components).
    pub dffs_on_scc: usize,
    /// Table 10 (`l_k = 16`) published result: cut nets on SCC.
    pub t10_cut_nets_on_scc: usize,
    /// Table 10 (`l_k = 16`) published result: total nets cut.
    pub t10_nets_cut: usize,
    /// Table 11 (`l_k = 24`) published results, if the circuit appears
    /// there: `(cut nets on SCC, nets cut)`.
    pub t11: Option<(usize, usize)>,
    /// Table 12 published `A_CBIT/A_Total` percentages for `l_k = 16`:
    /// `(with retiming, without retiming)`.
    pub t12_lk16: (f64, f64),
    /// Table 12 published percentages for `l_k = 24`; `(0, 0)` in the paper
    /// marks circuits with no internal cuts at that width.
    pub t12_lk24: (f64, f64),
}

/// The seventeen circuits of the paper's evaluation, in Table 9 order.
pub const TABLE9: [BenchmarkRecord; 17] = [
    BenchmarkRecord {
        name: "s510",
        primary_inputs: 19,
        primary_outputs: 7,
        flip_flops: 6,
        gates: 179,
        inverters: 32,
        area: 547,
        dffs_on_scc: 6,
        t10_cut_nets_on_scc: 77,
        t10_nets_cut: 92,
        t11: None,
        t12_lk16: (78.8, 80.6),
        t12_lk24: (0.0, 0.0),
    },
    BenchmarkRecord {
        name: "s420.1",
        primary_inputs: 18,
        primary_outputs: 1,
        flip_flops: 16,
        gates: 140,
        inverters: 78,
        area: 620,
        dffs_on_scc: 16,
        t10_cut_nets_on_scc: 0,
        t10_nets_cut: 8,
        t11: None,
        t12_lk16: (19.7, 24.2),
        t12_lk24: (0.0, 0.0),
    },
    BenchmarkRecord {
        name: "s641",
        primary_inputs: 35,
        primary_outputs: 24,
        flip_flops: 19,
        gates: 107,
        inverters: 272,
        area: 832,
        dffs_on_scc: 15,
        t10_cut_nets_on_scc: 19,
        t10_nets_cut: 28,
        t11: Some((12, 17)),
        t12_lk16: (18.9, 45.4),
        t12_lk24: (13.2, 33.5),
    },
    BenchmarkRecord {
        name: "s713",
        primary_inputs: 35,
        primary_outputs: 23,
        flip_flops: 19,
        gates: 139,
        inverters: 254,
        area: 892,
        dffs_on_scc: 15,
        t10_cut_nets_on_scc: 24,
        t10_nets_cut: 34,
        t11: Some((32, 38)),
        t12_lk16: (27.4, 48.5),
        t12_lk24: (33.9, 51.3),
    },
    BenchmarkRecord {
        name: "s820",
        primary_inputs: 18,
        primary_outputs: 19,
        flip_flops: 5,
        gates: 256,
        inverters: 33,
        area: 943,
        dffs_on_scc: 5,
        t10_cut_nets_on_scc: 68,
        t10_nets_cut: 88,
        t11: None,
        t12_lk16: (67.2, 69.7),
        t12_lk24: (0.0, 0.0),
    },
    BenchmarkRecord {
        name: "s832",
        primary_inputs: 18,
        primary_outputs: 19,
        flip_flops: 5,
        gates: 262,
        inverters: 25,
        area: 961,
        dffs_on_scc: 5,
        t10_cut_nets_on_scc: 77,
        t10_nets_cut: 96,
        t11: None,
        t12_lk16: (69.0, 71.2),
        t12_lk24: (0.0, 0.0),
    },
    BenchmarkRecord {
        name: "s838.1",
        primary_inputs: 34,
        primary_outputs: 1,
        flip_flops: 32,
        gates: 288,
        inverters: 158,
        area: 1268,
        dffs_on_scc: 32,
        t10_cut_nets_on_scc: 0,
        t10_nets_cut: 23,
        t11: None,
        t12_lk16: (25.6, 30.9),
        t12_lk24: (0.0, 0.0),
    },
    BenchmarkRecord {
        name: "s1423",
        primary_inputs: 17,
        primary_outputs: 5,
        flip_flops: 74,
        gates: 490,
        inverters: 167,
        area: 2238,
        dffs_on_scc: 71,
        t10_cut_nets_on_scc: 53,
        t10_nets_cut: 65,
        t11: None,
        t12_lk16: (22.5, 41.8),
        t12_lk24: (0.0, 0.0),
    },
    BenchmarkRecord {
        name: "s5378",
        primary_inputs: 35,
        primary_outputs: 49,
        flip_flops: 179,
        gates: 1004,
        inverters: 1775,
        area: 6241,
        dffs_on_scc: 124,
        t10_cut_nets_on_scc: 283,
        t10_nets_cut: 420,
        t11: Some((254, 392)),
        t12_lk16: (46.8, 62.4),
        t12_lk24: (43.4, 60.8),
    },
    BenchmarkRecord {
        name: "s9234.1",
        primary_inputs: 36,
        primary_outputs: 39,
        flip_flops: 211,
        gates: 2027,
        inverters: 3570,
        area: 11467,
        dffs_on_scc: 172,
        t10_cut_nets_on_scc: 497,
        t10_nets_cut: 700,
        t11: Some((379, 531)),
        t12_lk16: (49.3, 60.1),
        t12_lk24: (38.8, 53.4),
    },
    BenchmarkRecord {
        name: "s9234",
        primary_inputs: 19,
        primary_outputs: 22,
        flip_flops: 228,
        gates: 2027,
        inverters: 3570,
        area: 11637,
        dffs_on_scc: 173,
        t10_cut_nets_on_scc: 471,
        t10_nets_cut: 649,
        t11: None,
        t12_lk16: (45.5, 57.9),
        t12_lk24: (0.0, 0.0),
    },
    BenchmarkRecord {
        name: "s13207.1",
        primary_inputs: 62,
        primary_outputs: 152,
        flip_flops: 638,
        gates: 2573,
        inverters: 5378,
        area: 19171,
        dffs_on_scc: 462,
        t10_cut_nets_on_scc: 794,
        t10_nets_cut: 975,
        t11: Some((749, 931)),
        t12_lk16: (30.2, 55.7),
        t12_lk24: (27.3, 54.5),
    },
    BenchmarkRecord {
        name: "s13207",
        primary_inputs: 31,
        primary_outputs: 121,
        flip_flops: 669,
        gates: 2573,
        inverters: 5378,
        area: 19476,
        dffs_on_scc: 463,
        t10_cut_nets_on_scc: 817,
        t10_nets_cut: 978,
        t11: Some((689, 845)),
        t12_lk16: (34.4, 55.4),
        t12_lk24: (26.4, 51.7),
    },
    BenchmarkRecord {
        name: "s15850.1",
        primary_inputs: 77,
        primary_outputs: 150,
        flip_flops: 534,
        gates: 3448,
        inverters: 6324,
        area: 21305,
        dffs_on_scc: 487,
        t10_cut_nets_on_scc: 720,
        t10_nets_cut: 1014,
        t11: Some((602, 872)),
        t12_lk16: (32.9, 54.0),
        t12_lk24: (24.9, 50.3),
    },
    BenchmarkRecord {
        name: "s35932",
        primary_inputs: 35,
        primary_outputs: 320,
        flip_flops: 1728,
        gates: 12204,
        inverters: 3861,
        area: 50625,
        dffs_on_scc: 1728,
        t10_cut_nets_on_scc: 2881,
        t10_nets_cut: 2926,
        t11: Some((2639, 2667)),
        t12_lk16: (36.7, 58.8),
        t12_lk24: (31.3, 56.5),
    },
    BenchmarkRecord {
        name: "s38417",
        primary_inputs: 28,
        primary_outputs: 106,
        flip_flops: 1636,
        gates: 8709,
        inverters: 13470,
        area: 52768,
        dffs_on_scc: 1166,
        t10_cut_nets_on_scc: 1703,
        t10_nets_cut: 2506,
        t11: Some((1555, 2279)),
        t12_lk16: (27.1, 54.0),
        t12_lk24: (21.5, 51.6),
    },
    BenchmarkRecord {
        name: "s38584.1",
        primary_inputs: 38,
        primary_outputs: 278,
        flip_flops: 1426,
        gates: 11448,
        inverters: 7805,
        area: 55147,
        dffs_on_scc: 1424,
        t10_cut_nets_on_scc: 3110,
        t10_nets_cut: 3322,
        t11: Some((2593, 2764)),
        t12_lk16: (45.3, 59.8),
        t12_lk24: (36.8, 55.3),
    },
];

/// Looks up a record by circuit name.
#[must_use]
pub fn find(name: &str) -> Option<&'static BenchmarkRecord> {
    TABLE9.iter().find(|r| r.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seventeen_circuits_in_order() {
        assert_eq!(TABLE9.len(), 17);
        assert_eq!(TABLE9[0].name, "s510");
        assert_eq!(TABLE9[16].name, "s38584.1");
    }

    #[test]
    fn lookup_by_name() {
        let r = find("s5378").unwrap();
        assert_eq!(r.flip_flops, 179);
        assert_eq!(r.area, 6241);
        assert!(find("s0").is_none());
    }

    #[test]
    fn dffs_on_scc_never_exceed_dffs() {
        for r in &TABLE9 {
            assert!(r.dffs_on_scc <= r.flip_flops, "{}", r.name);
        }
    }

    #[test]
    fn cut_nets_on_scc_never_exceed_total() {
        for r in &TABLE9 {
            assert!(r.t10_cut_nets_on_scc <= r.t10_nets_cut, "{}", r.name);
            if let Some((on_scc, total)) = r.t11 {
                assert!(on_scc <= total, "{}", r.name);
            }
        }
    }

    #[test]
    fn area_budget_is_feasible_for_generator() {
        // Gate area budget = area − inverters − 10·DFFs must allow at least
        // 2 units per multi-input gate (NAND/NOR base cost).
        for r in &TABLE9 {
            let budget = r.area as i64 - r.inverters as i64 - 10 * r.flip_flops as i64;
            assert!(
                budget >= 2 * r.gates as i64,
                "{}: budget {budget} for {} gates",
                r.name,
                r.gates
            );
        }
    }
}
