//! Parameterized textbook circuits.
//!
//! Small, structurally *known* sequential circuits for tests, examples and
//! sanity experiments: unlike the synthetic benchmarks their loops, depths
//! and SCC shapes are exactly predictable, which makes them ideal probes
//! for the partitioner and the retiming engine (e.g. a ripple counter is
//! `n` independent 1-register SCCs; a Johnson counter is one `n`-register
//! SCC).

use crate::cell::CellKind;
use crate::circuit::Circuit;

/// An `n`-bit synchronous binary counter with enable.
///
/// Bit `i` toggles when all lower bits and `en` are 1:
/// `d[i] = q[i] XOR (en AND q[0] AND … AND q[i−1])`.
/// Structure: every bit's register sits on its own feedback loop, and the
/// carry chain makes bit `i` combinationally depend on all lower bits.
///
/// # Panics
///
/// Panics if `n == 0`.
///
/// # Examples
///
/// ```
/// let c = ppet_netlist::data::counter(4);
/// assert_eq!(c.num_flip_flops(), 4);
/// assert_eq!(c.num_inputs(), 1);
/// ```
#[must_use]
pub fn counter(n: usize) -> Circuit {
    assert!(n > 0, "counter needs at least one bit");
    let mut c = Circuit::new(format!("counter{n}"));
    let en = c.add_input("en").expect("fresh");
    let mut qs = Vec::with_capacity(n);
    for i in 0..n {
        qs.push(
            c.add_cell_deferred(format!("q{i}"), CellKind::Dff)
                .expect("fresh"),
        );
    }
    let mut carry = en;
    for (i, &q) in qs.iter().enumerate() {
        let d = c
            .add_cell(format!("d{i}"), CellKind::Xor, vec![q, carry])
            .expect("fresh");
        c.set_fanin(q, vec![d]).expect("valid");
        if i + 1 < n {
            carry = c
                .add_cell(format!("c{i}"), CellKind::And, vec![carry, q])
                .expect("fresh");
        }
    }
    for &q in &qs {
        c.mark_output(q).expect("valid");
    }
    c
}

/// An `n`-stage shift register: `q0 ← serial_in`, `q(i) ← q(i−1)`.
/// Structure: a pure register pipeline — zero SCCs, the retiming engine's
/// easiest case.
///
/// # Panics
///
/// Panics if `n == 0`.
///
/// # Examples
///
/// ```
/// let c = ppet_netlist::data::shift_register(8);
/// assert_eq!(c.num_flip_flops(), 8);
/// ```
#[must_use]
pub fn shift_register(n: usize) -> Circuit {
    assert!(n > 0, "shift register needs at least one stage");
    let mut c = Circuit::new(format!("shift{n}"));
    let sin = c.add_input("serial_in").expect("fresh");
    let mut prev = sin;
    let mut last = sin;
    for i in 0..n {
        // A buffer between stages keeps the netlist gate-level (pure
        // register rings/chains are legal but degenerate).
        let b = c
            .add_cell(format!("b{i}"), CellKind::Buf, vec![prev])
            .expect("fresh");
        let q = c
            .add_cell(format!("q{i}"), CellKind::Dff, vec![b])
            .expect("fresh");
        prev = q;
        last = q;
    }
    c.mark_output(last).expect("valid");
    c
}

/// An `n`-bit Johnson (twisted-ring) counter: one SCC containing all `n`
/// registers — the worst case for the per-SCC cut budget (`f(SCC) = n`,
/// every internal net on the loop).
///
/// # Panics
///
/// Panics if `n == 0`.
///
/// # Examples
///
/// ```
/// let c = ppet_netlist::data::johnson_counter(5);
/// assert_eq!(c.num_flip_flops(), 5);
/// ```
#[must_use]
pub fn johnson_counter(n: usize) -> Circuit {
    assert!(n > 0, "johnson counter needs at least one bit");
    let mut c = Circuit::new(format!("johnson{n}"));
    let run = c.add_input("run").expect("fresh");
    let mut qs = Vec::with_capacity(n);
    for i in 0..n {
        qs.push(
            c.add_cell_deferred(format!("q{i}"), CellKind::Dff)
                .expect("fresh"),
        );
    }
    // q0 <- run AND NOT q(n-1) (gated twist); q(i) <- q(i-1).
    let nrun = c.add_cell("nrun", CellKind::Not, vec![run]).expect("fresh");
    let inv = c
        .add_cell("twist", CellKind::Nor, vec![qs[n - 1], nrun])
        .expect("fresh");
    c.set_fanin(qs[0], vec![inv]).expect("valid");
    for i in 1..n {
        let b = c
            .add_cell(format!("b{i}"), CellKind::Buf, vec![qs[i - 1]])
            .expect("fresh");
        c.set_fanin(qs[i], vec![b]).expect("valid");
    }
    for &q in &qs {
        c.mark_output(q).expect("valid");
    }
    c
}

/// A 1-bit ALU slice (carry-propagate add/and/or/xor, 2-bit opcode),
/// purely combinational — the canonical pseudo-exhaustive segment.
///
/// Inputs: `a`, `b`, `cin`, `op0`, `op1`; outputs: `res`, `cout`.
///
/// # Examples
///
/// ```
/// let c = ppet_netlist::data::alu_slice();
/// assert_eq!(c.num_inputs(), 5);
/// assert_eq!(c.num_flip_flops(), 0);
/// ```
#[must_use]
pub fn alu_slice() -> Circuit {
    let mut c = Circuit::new("alu_slice");
    let a = c.add_input("a").expect("fresh");
    let b = c.add_input("b").expect("fresh");
    let cin = c.add_input("cin").expect("fresh");
    let op0 = c.add_input("op0").expect("fresh");
    let op1 = c.add_input("op1").expect("fresh");

    let axb = c.add_cell("axb", CellKind::Xor, vec![a, b]).expect("fresh");
    let sum = c
        .add_cell("sum", CellKind::Xor, vec![axb, cin])
        .expect("fresh");
    let aab = c.add_cell("aab", CellKind::And, vec![a, b]).expect("fresh");
    let pc = c
        .add_cell("pc", CellKind::And, vec![axb, cin])
        .expect("fresh");
    let cout = c
        .add_cell("cout", CellKind::Or, vec![aab, pc])
        .expect("fresh");
    let aob = c.add_cell("aob", CellKind::Or, vec![a, b]).expect("fresh");

    // op: 00 -> sum, 01 -> and, 10 -> or, 11 -> xor.
    let n0 = c.add_cell("n0", CellKind::Not, vec![op0]).expect("fresh");
    let n1 = c.add_cell("n1", CellKind::Not, vec![op1]).expect("fresh");
    let s_add = c
        .add_cell("s_add", CellKind::And, vec![n0, n1])
        .expect("fresh");
    let s_and = c
        .add_cell("s_and", CellKind::And, vec![op0, n1])
        .expect("fresh");
    let s_or = c
        .add_cell("s_or", CellKind::And, vec![n0, op1])
        .expect("fresh");
    let s_xor = c
        .add_cell("s_xor", CellKind::And, vec![op0, op1])
        .expect("fresh");
    let m0 = c
        .add_cell("m0", CellKind::And, vec![s_add, sum])
        .expect("fresh");
    let m1 = c
        .add_cell("m1", CellKind::And, vec![s_and, aab])
        .expect("fresh");
    let m2 = c
        .add_cell("m2", CellKind::And, vec![s_or, aob])
        .expect("fresh");
    let m3 = c
        .add_cell("m3", CellKind::And, vec![s_xor, axb])
        .expect("fresh");
    let res = c
        .add_cell("res", CellKind::Or, vec![m0, m1, m2, m3])
        .expect("fresh");

    c.mark_output(res).expect("valid");
    c.mark_output(cout).expect("valid");
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::validate::validate;

    #[test]
    fn counter_shape() {
        for n in [1usize, 4, 8] {
            let c = counter(n);
            assert_eq!(c.num_flip_flops(), n);
            assert_eq!(c.outputs().len(), n);
            assert!(validate(&c).is_empty(), "n = {n}");
        }
    }

    #[test]
    fn shift_register_is_acyclic() {
        let c = shift_register(6);
        assert!(validate(&c).is_empty());
        // No cell combinationally reaches itself; the netlist has no SCCs,
        // which the graph crate asserts in its own tests — here just check
        // the chain structure.
        for i in 1..6 {
            let q = c.find(&format!("q{i}")).unwrap();
            let b = c.cell(q).fanin()[0];
            assert_eq!(c.cell(b).kind(), CellKind::Buf);
        }
    }

    #[test]
    fn johnson_counter_closes_the_ring() {
        let c = johnson_counter(5);
        assert!(validate(&c).is_empty());
        let q0 = c.find("q0").unwrap();
        let twist = c.cell(q0).fanin()[0];
        assert_eq!(c.cell(twist).kind(), CellKind::Nor);
    }

    #[test]
    fn alu_slice_is_combinational_and_clean() {
        let c = alu_slice();
        assert_eq!(c.num_flip_flops(), 0);
        assert!(validate(&c).is_empty());
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn zero_bit_counter_rejected() {
        let _ = counter(0);
    }
}
