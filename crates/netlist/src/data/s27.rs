//! The ISCAS89 `s27` benchmark circuit.
//!
//! `s27` is the smallest circuit of the ISCAS89 suite (Brglez, Bryan &
//! Kozminski, ISCAS 1989) and the one the paper uses for its worked example:
//! Fig. 2 shows its schematic and multi-pin graph, Figs. 5–7 trace it
//! through `Saturate_Network`, `Make_Group` and `Assign_CBIT`.

use crate::bench_format::parse;
use crate::circuit::Circuit;

/// The original `.bench` source of `s27`: 4 inputs, 1 output, 3 flip-flops,
/// 8 multi-input gates and 2 inverters.
pub const S27_BENCH: &str = "\
# s27 (ISCAS89)
# 4 inputs, 1 output, 3 D-type flipflops, 2 inverters, 8 gates

INPUT(G0)
INPUT(G1)
INPUT(G2)
INPUT(G3)

OUTPUT(G17)

G5 = DFF(G10)
G6 = DFF(G11)
G7 = DFF(G13)

G14 = NOT(G0)
G17 = NOT(G11)
G8 = AND(G14, G6)
G15 = OR(G12, G8)
G16 = OR(G3, G8)
G9 = NAND(G16, G15)
G10 = NOR(G14, G11)
G11 = NOR(G5, G9)
G12 = NOR(G1, G7)
G13 = NAND(G2, G12)
";

/// Builds the `s27` circuit.
///
/// # Examples
///
/// ```
/// let c = ppet_netlist::data::s27();
/// assert_eq!(c.name(), "s27");
/// assert_eq!(c.num_inputs(), 4);
/// assert_eq!(c.num_flip_flops(), 3);
/// ```
#[must_use]
pub fn s27() -> Circuit {
    parse("s27", S27_BENCH).expect("embedded s27 netlist is valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cell::CellKind;

    #[test]
    fn shape_matches_iscas89() {
        let c = s27();
        assert_eq!(c.num_cells(), 17); // 4 PI + 3 DFF + 10 logic
        assert_eq!(c.num_inputs(), 4);
        assert_eq!(c.num_flip_flops(), 3);
        assert_eq!(c.outputs().len(), 1);
        assert_eq!(c.cell(c.outputs()[0]).name(), "G17");
    }

    #[test]
    fn feedback_structure_present() {
        // G11 -> G10 -> G5 -> G11 is one of the sequential loops.
        let c = s27();
        let g10 = c.find("G10").unwrap();
        let g11 = c.find("G11").unwrap();
        let g5 = c.find("G5").unwrap();
        assert!(c.cell(g10).fanin().contains(&g11));
        assert_eq!(c.cell(g5).fanin(), &[g10]);
        assert!(c.cell(g11).fanin().contains(&g5));
    }

    #[test]
    fn gate_kinds_match_source() {
        let c = s27();
        assert_eq!(c.cell(c.find("G8").unwrap()).kind(), CellKind::And);
        assert_eq!(c.cell(c.find("G9").unwrap()).kind(), CellKind::Nand);
        assert_eq!(c.cell(c.find("G12").unwrap()).kind(), CellKind::Nor);
        assert_eq!(c.cell(c.find("G14").unwrap()).kind(), CellKind::Not);
    }
}
