//! Structural validation of circuits.
//!
//! [`Circuit`] construction already enforces local well-formedness (arity,
//! name uniqueness, defined fan-ins). `validate` adds the global checks a
//! BIST compiler cares about before spending minutes partitioning: no
//! combinational cycles, no dangling logic, no floating outputs.

use crate::cell::{CellId, CellKind};
use crate::circuit::Circuit;

/// A problem found by [`validate`].
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ValidationIssue {
    /// A combinational cycle exists through the named cell; such a netlist
    /// is not a valid synchronous circuit and no levelization exists.
    CombinationalCycle {
        /// A cell on the cycle.
        cell: CellId,
    },
    /// The cell drives no other cell and is not a primary output; its logic
    /// is dead. Harmless, but usually indicates a netlist extraction bug.
    Dangling {
        /// The cell with no observers.
        cell: CellId,
    },
    /// The circuit declares no primary outputs at all.
    NoOutputs,
}

impl std::fmt::Display for ValidationIssue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::CombinationalCycle { cell } => {
                write!(f, "combinational cycle through cell {cell}")
            }
            Self::Dangling { cell } => write!(f, "cell {cell} drives nothing and is not an output"),
            Self::NoOutputs => write!(f, "circuit declares no primary outputs"),
        }
    }
}

/// Checks global structural sanity; returns all issues found (empty when the
/// circuit is clean).
///
/// # Examples
///
/// ```
/// use ppet_netlist::{data, validate};
///
/// assert!(validate(&data::s27()).is_empty());
/// ```
#[must_use]
pub fn validate(circuit: &Circuit) -> Vec<ValidationIssue> {
    let mut issues = Vec::new();
    if circuit.outputs().is_empty() && circuit.num_cells() > 0 {
        issues.push(ValidationIssue::NoOutputs);
    }
    if let Some(cell) = find_combinational_cycle(circuit) {
        issues.push(ValidationIssue::CombinationalCycle { cell });
    }
    let fanouts = circuit.fanouts();
    for (id, _) in circuit.iter() {
        if fanouts.degree(id) == 0 && !circuit.is_output(id) {
            issues.push(ValidationIssue::Dangling { cell: id });
        }
    }
    issues
}

/// Returns a cell on a combinational cycle, if one exists. Flip-flops break
/// cycles (their output does not combinationally depend on their input).
#[must_use]
pub fn find_combinational_cycle(circuit: &Circuit) -> Option<CellId> {
    let n = circuit.num_cells();
    let mut state = vec![0u8; n]; // 0 unvisited, 1 on stack, 2 done
    for start in 0..n {
        if state[start] != 0 {
            continue;
        }
        let mut stack: Vec<(usize, usize)> = vec![(start, 0)];
        state[start] = 1;
        while let Some(&mut (node, ref mut next)) = stack.last_mut() {
            let id = CellId::from_index(node);
            let cell = circuit.cell(id);
            let deps: &[CellId] = if cell.kind() == CellKind::Dff {
                &[]
            } else {
                cell.fanin()
            };
            if *next < deps.len() {
                let dep = deps[*next].index();
                *next += 1;
                match state[dep] {
                    0 => {
                        state[dep] = 1;
                        stack.push((dep, 0));
                    }
                    1 => return Some(CellId::from_index(dep)),
                    _ => {}
                }
            } else {
                state[node] = 2;
                stack.pop();
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data;

    #[test]
    fn s27_is_clean() {
        assert!(validate(&data::s27()).is_empty());
    }

    #[test]
    fn missing_outputs_flagged() {
        let mut c = Circuit::new("t");
        let a = c.add_input("a").unwrap();
        let y = c.add_cell("y", CellKind::Not, vec![a]).unwrap();
        let issues = validate(&c);
        assert!(issues.contains(&ValidationIssue::NoOutputs));
        assert!(issues.contains(&ValidationIssue::Dangling { cell: y }));
    }

    #[test]
    fn dff_feedback_is_not_a_combinational_cycle() {
        let mut c = Circuit::new("t");
        let en = c.add_input("en").unwrap();
        // q = DFF(d); d = XOR(q, en) — build via raw patching.
        let q = c.push_raw("q".into(), CellKind::Dff, Vec::new());
        let d = c.add_cell("d", CellKind::Xor, vec![q, en]).unwrap();
        c.set_fanin_raw(q, vec![d]);
        c.mark_output(q).unwrap();
        assert_eq!(find_combinational_cycle(&c), None);
        assert!(validate(&c).is_empty());
    }

    #[test]
    fn combinational_cycle_detected() {
        let mut c = Circuit::new("t");
        let a = c.add_input("a").unwrap();
        let x = c.push_raw("x".into(), CellKind::And, vec![a]);
        let y = c.add_cell("y", CellKind::And, vec![x, a]).unwrap();
        c.set_fanin_raw(x, vec![y, a]);
        c.mark_output(y).unwrap();
        assert!(find_combinational_cycle(&c).is_some());
    }

    #[test]
    fn issue_display_is_informative() {
        let issue = ValidationIssue::NoOutputs;
        assert!(issue.to_string().contains("no primary outputs"));
    }
}
