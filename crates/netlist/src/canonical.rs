//! Canonical circuit bytes and content hashing.
//!
//! The compile service (`ppet-serve`) deduplicates requests through a
//! content-addressed cache: two requests naming the *same circuit* must
//! produce the same cache key even when their `.bench` sources differ in
//! comments, whitespace, or line order quirks. This module defines the
//! canonical byte form — the [`writer::to_bench`](crate::writer) emission,
//! which normalizes everything the parser discards — and a small
//! dependency-free 128-bit FNV-1a hasher over it.
//!
//! # Examples
//!
//! ```
//! use ppet_netlist::{bench_format, canonical};
//!
//! # fn main() -> Result<(), ppet_netlist::ParseBenchError> {
//! let a = bench_format::parse("toy", "INPUT(a)\nOUTPUT(y)\ny = NOT(a)\n")?;
//! let b = bench_format::parse("toy", "# a comment\nINPUT(a)\n\nOUTPUT(y)\n  y = NOT( a )\n")?;
//! assert_eq!(canonical::content_hash(&a), canonical::content_hash(&b));
//! # Ok(())
//! # }
//! ```

use crate::circuit::Circuit;
use crate::writer;

/// The canonical byte form of a circuit: its deterministic `.bench`
/// serialization. Comments, spacing, and blank lines of the original
/// source never survive a parse, so any two textual variants of the same
/// netlist canonicalize identically.
#[must_use]
pub fn canonical_bytes(circuit: &Circuit) -> Vec<u8> {
    writer::to_bench(circuit).into_bytes()
}

/// Streaming 128-bit FNV-1a hasher.
///
/// Not cryptographic — the service cache only needs a stable, well-mixed
/// key with a collision probability negligible at cache scale, without
/// pulling in a dependency. The 128-bit variant uses the standard FNV
/// offset basis and prime.
#[derive(Debug, Clone)]
pub struct Fnv128 {
    state: u128,
}

const FNV128_OFFSET: u128 = 0x6c62_272e_07bb_0142_62b8_2175_6295_c58d;
const FNV128_PRIME: u128 = 0x0000_0000_0100_0000_0000_0000_0000_013b;

impl Fnv128 {
    /// A fresh hasher at the FNV-1a offset basis.
    #[must_use]
    pub fn new() -> Self {
        Self {
            state: FNV128_OFFSET,
        }
    }

    /// Absorbs `bytes`.
    pub fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state ^= u128::from(b);
            self.state = self.state.wrapping_mul(FNV128_PRIME);
        }
    }

    /// Absorbs a length-prefixed frame: the byte length first, then the
    /// bytes. Framing keeps concatenations unambiguous when hashing
    /// several variable-length fields (`hash("ab","c") ≠ hash("a","bc")`).
    pub fn write_frame(&mut self, bytes: &[u8]) {
        self.write(&(bytes.len() as u64).to_le_bytes());
        self.write(bytes);
    }

    /// The current 128-bit digest.
    #[must_use]
    pub fn finish(&self) -> u128 {
        self.state
    }
}

impl Default for Fnv128 {
    fn default() -> Self {
        Self::new()
    }
}

/// The 128-bit content hash of a circuit's [`canonical_bytes`].
#[must_use]
pub fn content_hash(circuit: &Circuit) -> u128 {
    let mut h = Fnv128::new();
    h.write_frame(&canonical_bytes(circuit));
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bench_format;
    use crate::data;

    #[test]
    fn textual_variants_canonicalize_identically() {
        let a = bench_format::parse("t", "INPUT(a)\nOUTPUT(y)\ny = NOT(a)\n").unwrap();
        let b = bench_format::parse(
            "t",
            "# noise\n\nINPUT( a )\nOUTPUT( y )\n\n  y  =  NOT( a )  \n",
        )
        .unwrap();
        assert_eq!(canonical_bytes(&a), canonical_bytes(&b));
        assert_eq!(content_hash(&a), content_hash(&b));
    }

    #[test]
    fn different_circuits_hash_differently() {
        let a = bench_format::parse("t", "INPUT(a)\nOUTPUT(y)\ny = NOT(a)\n").unwrap();
        let b = bench_format::parse("t", "INPUT(a)\nOUTPUT(y)\ny = BUFF(a)\n").unwrap();
        assert_ne!(content_hash(&a), content_hash(&b));
        assert_ne!(content_hash(&data::s27()), content_hash(&a));
    }

    #[test]
    fn hash_is_stable_across_calls() {
        let c = data::s27();
        assert_eq!(content_hash(&c), content_hash(&c));
    }

    #[test]
    fn fnv_vectors() {
        // FNV-1a 128 of the empty input is the offset basis.
        assert_eq!(Fnv128::new().finish(), FNV128_OFFSET);
        let mut h = Fnv128::new();
        h.write(b"a");
        let single = h.finish();
        assert_ne!(single, FNV128_OFFSET);
        // Framing disambiguates concatenations.
        let mut ab_c = Fnv128::new();
        ab_c.write_frame(b"ab");
        ab_c.write_frame(b"c");
        let mut a_bc = Fnv128::new();
        a_bc.write_frame(b"a");
        a_bc.write_frame(b"bc");
        assert_ne!(ab_c.finish(), a_bc.finish());
    }
}
