//! The paper's CMOS area model (§4 and Fig. 3).
//!
//! Areas are expressed in the integer "area units" of the paper (one unit is
//! roughly one transistor pair of a static CMOS inverter): an inverter costs
//! 1 unit, a 2-input NAND or NOR 2 units, a 2-input AND or OR 3 units (the
//! extra inverter), a 2-input XOR 4 units, a D flip-flop 10 units, and each
//! input beyond the second adds 1 unit. The reference the paper cites is
//! Geiger, Allen & Strader, *VLSI Design Techniques for Analog and Digital
//! Circuits*, McGraw-Hill 1990 (its Table 9 caption repeats the constants).

use crate::cell::{Cell, CellKind};
use crate::circuit::Circuit;

/// Integer area in the paper's units. A plain alias keeps arithmetic exact
/// across the cost models (fractions such as "0.9 of a DFF" are expressed in
/// tenths by multiplying through by the 10-unit DFF area).
pub type AreaUnits = u64;

/// Per-kind base area and fan-in scaling.
///
/// The [`AreaModel::paper`] constructor reproduces the constants of the
/// paper; custom models can be built for sensitivity studies via
/// [`AreaModel::with_base`].
///
/// # Examples
///
/// ```
/// use ppet_netlist::{AreaModel, CellKind};
///
/// let m = AreaModel::paper();
/// assert_eq!(m.base(CellKind::Not), 1);
/// assert_eq!(m.base(CellKind::Dff), 10);
/// assert_eq!(m.gate_area(CellKind::Nand, 4), 4); // 2 base + 2 extra inputs
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AreaModel {
    base: [AreaUnits; 10],
    per_extra_input: AreaUnits,
    mux2: AreaUnits,
}

impl AreaModel {
    /// The paper's model: INV=1, NAND2/NOR2=2, AND2/OR2=3, XOR2=4 (XNOR2=5),
    /// BUF=2, DFF=10, +1 per input beyond the second, 2-to-1 MUX=3.
    ///
    /// XNOR and BUF are not given explicitly in the paper; we price an XNOR
    /// as XOR + inverter and a buffer as two inverters, consistent with the
    /// static-CMOS accounting of the other gates.
    #[must_use]
    pub fn paper() -> Self {
        let mut base = [0; 10];
        base[CellKind::Input as usize] = 0;
        base[CellKind::And as usize] = 3;
        base[CellKind::Nand as usize] = 2;
        base[CellKind::Or as usize] = 3;
        base[CellKind::Nor as usize] = 2;
        base[CellKind::Xor as usize] = 4;
        base[CellKind::Xnor as usize] = 5;
        base[CellKind::Not as usize] = 1;
        base[CellKind::Buf as usize] = 2;
        base[CellKind::Dff as usize] = 10;
        Self {
            base,
            per_extra_input: 1,
            mux2: 3,
        }
    }

    /// Returns a copy of this model with the base area of `kind` replaced.
    #[must_use]
    pub fn with_base(mut self, kind: CellKind, units: AreaUnits) -> Self {
        self.base[kind as usize] = units;
        self
    }

    /// Base area of a `kind` at its minimum fan-in.
    #[must_use]
    pub fn base(&self, kind: CellKind) -> AreaUnits {
        self.base[kind as usize]
    }

    /// Area charged per input beyond the second on multi-input gates.
    #[must_use]
    pub fn per_extra_input(&self) -> AreaUnits {
        self.per_extra_input
    }

    /// Area of a 2-to-1 multiplexer (used by the A_CELL + MUX test register
    /// of the paper's Fig. 3(c)).
    #[must_use]
    pub fn mux2(&self) -> AreaUnits {
        self.mux2
    }

    /// Area of a gate of `kind` with `fanin` inputs.
    #[must_use]
    pub fn gate_area(&self, kind: CellKind, fanin: usize) -> AreaUnits {
        let base = self.base(kind);
        if kind.is_multi_input_gate() && fanin > 2 {
            base + self.per_extra_input * (fanin as AreaUnits - 2)
        } else {
            base
        }
    }

    /// Area of one concrete cell.
    #[must_use]
    pub fn cell_area(&self, cell: &Cell) -> AreaUnits {
        self.gate_area(cell.kind(), cell.fanin().len())
    }

    /// Total estimated area of a circuit — the paper's Table 9
    /// "Estimated Area" column (primary inputs are free).
    #[must_use]
    pub fn circuit_area(&self, circuit: &Circuit) -> AreaUnits {
        circuit.iter().map(|(_, c)| self.cell_area(c)).sum()
    }
}

impl Default for AreaModel {
    fn default() -> Self {
        Self::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::circuit::Circuit;

    #[test]
    fn paper_constants() {
        let m = AreaModel::paper();
        assert_eq!(m.base(CellKind::Not), 1);
        assert_eq!(m.base(CellKind::And), 3);
        assert_eq!(m.base(CellKind::Nand), 2);
        assert_eq!(m.base(CellKind::Or), 3);
        assert_eq!(m.base(CellKind::Nor), 2);
        assert_eq!(m.base(CellKind::Xor), 4);
        assert_eq!(m.base(CellKind::Dff), 10);
        assert_eq!(m.mux2(), 3);
    }

    #[test]
    fn extra_inputs_scale_area() {
        let m = AreaModel::paper();
        assert_eq!(m.gate_area(CellKind::And, 2), 3);
        assert_eq!(m.gate_area(CellKind::And, 5), 6);
        // Single-input kinds never scale.
        assert_eq!(m.gate_area(CellKind::Not, 1), 1);
        assert_eq!(m.gate_area(CellKind::Dff, 1), 10);
    }

    #[test]
    fn a_cell_arithmetic_matches_paper() {
        // Paper §2.3: A_CELL = AND2 + NOR2 + XOR2 + DFF = (3+2+4+10) = 19
        // units = 1.9 DFF; with a MUX it is 19 + 3 ≈ 2.3 DFF (the paper
        // rounds 2.2 to 2.3 counting interconnect; we keep the gate total).
        let m = AreaModel::paper();
        let a_cell = m.base(CellKind::And)
            + m.base(CellKind::Nor)
            + m.base(CellKind::Xor)
            + m.base(CellKind::Dff);
        assert_eq!(a_cell, 19);
    }

    #[test]
    fn circuit_area_sums_cells() {
        let mut c = Circuit::new("t");
        let a = c.add_input("a").unwrap();
        let b = c.add_input("b").unwrap();
        let g = c.add_cell("g", CellKind::Nand, vec![a, b]).unwrap(); // 2
        let n = c.add_cell("n", CellKind::Not, vec![g]).unwrap(); // 1
        let q = c.add_cell("q", CellKind::Dff, vec![n]).unwrap(); // 10
        c.mark_output(q).unwrap();
        assert_eq!(AreaModel::paper().circuit_area(&c), 13);
    }

    #[test]
    fn with_base_overrides() {
        let m = AreaModel::paper().with_base(CellKind::Dff, 12);
        assert_eq!(m.base(CellKind::Dff), 12);
        assert_eq!(m.base(CellKind::Not), 1);
    }
}
