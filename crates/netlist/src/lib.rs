//! Gate-level sequential circuit model for the PPET workspace.
//!
//! This crate is the foundation substrate of the DAC'96 *Merced* BIST
//! compiler reproduction: every other crate consumes the [`Circuit`] type
//! defined here. It provides
//!
//! * the circuit data model ([`Circuit`], [`Cell`], [`CellKind`],
//!   [`CellId`]/[`NetId`]) using the one-net-per-cell convention of the
//!   ISCAS89 benchmarks (each cell drives exactly one named net);
//! * an ISCAS89 `.bench` format [parser](bench_format) and [writer];
//! * the paper's CMOS [area model](area) (inverter = 1 unit, 2-input
//!   NAND/NOR = 2, 2-input AND/OR = 3, 2-input XOR = 4, D flip-flop = 10,
//!   plus 1 unit per additional input — §4 of the paper);
//! * [circuit statistics](stats) matching the columns of the paper's
//!   Table 9;
//! * structural [validation](mod@validate);
//! * embedded [benchmark data](data): the real `s27` circuit used by the
//!   paper's worked example (Figs. 2, 5, 6, 7) and the published Table 9 /
//!   Table 10 statistics rows;
//! * a [synthetic benchmark generator](synth) that produces ISCAS89-like
//!   circuits calibrated to those statistics (the real MCNC netlists are not
//!   redistributable; see `DESIGN.md` §3 for why the substitution preserves
//!   the paper's behaviour).
//!
//! # Examples
//!
//! ```
//! use ppet_netlist::{data, AreaModel, CircuitStats};
//!
//! let s27 = data::s27();
//! let stats = CircuitStats::of(&s27, &AreaModel::paper());
//! assert_eq!(stats.primary_inputs, 4);
//! assert_eq!(stats.flip_flops, 3);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod area;
pub mod bench_format;
pub mod canonical;
mod cell;
mod circuit;
pub mod data;
mod error;
pub mod stats;
pub mod synth;
pub mod validate;
pub mod writer;

pub use area::AreaModel;
pub use cell::{Cell, CellId, CellKind, NetId};
pub use circuit::{Circuit, Fanouts};
pub use error::{BuildCircuitError, ParseBenchError};
pub use stats::CircuitStats;
pub use synth::{SynthSpec, Synthesizer};
pub use validate::{validate, ValidationIssue};
