//! Cell and identifier types.

use std::fmt;

/// Identifier of a cell within a [`Circuit`](crate::Circuit).
///
/// Under the ISCAS89 one-net-per-cell convention every cell drives exactly
/// one net, so a `CellId` doubles as the identifier of the net the cell
/// drives; [`NetId`] is provided as a transparent alias for code that talks
/// about nets (the multi-pin graph model of the paper's §2.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CellId(pub(crate) u32);

impl CellId {
    /// Returns the dense index of this cell (0-based insertion order).
    #[inline]
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Creates a `CellId` from a dense index.
    ///
    /// Intended for graph code that stores per-cell data in flat vectors;
    /// an out-of-range index is caught on the next circuit access.
    #[inline]
    #[must_use]
    pub fn from_index(index: usize) -> Self {
        Self(u32::try_from(index).expect("cell index exceeds u32 range"))
    }
}

impl fmt::Display for CellId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c{}", self.0)
    }
}

/// Identifier of the net driven by the like-numbered cell.
///
/// See [`CellId`] for the convention. The alias keeps call sites honest
/// about whether they mean "the cell" or "the signal it drives".
pub type NetId = CellId;

/// The function of a [`Cell`].
///
/// Mirrors the primitive set of the ISCAS89 `.bench` format. Multi-input
/// gates accept 2 or more inputs; [`CellKind::Not`] and [`CellKind::Buf`]
/// take exactly one; [`CellKind::Dff`] takes exactly one (its `D` pin);
/// [`CellKind::Input`] takes none.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum CellKind {
    /// Primary input.
    Input,
    /// Logical AND.
    And,
    /// Logical NAND.
    Nand,
    /// Logical OR.
    Or,
    /// Logical NOR.
    Nor,
    /// Logical XOR (odd parity for >2 inputs, per ISCAS convention).
    Xor,
    /// Logical XNOR (even parity for >2 inputs).
    Xnor,
    /// Inverter.
    Not,
    /// Buffer.
    Buf,
    /// D-type flip-flop (the `R` node set of the paper's `G(V=R∪C,E)`).
    Dff,
}

impl CellKind {
    /// All kinds, in a fixed order (useful for iteration in tests/synthesis).
    pub const ALL: [CellKind; 10] = [
        CellKind::Input,
        CellKind::And,
        CellKind::Nand,
        CellKind::Or,
        CellKind::Nor,
        CellKind::Xor,
        CellKind::Xnor,
        CellKind::Not,
        CellKind::Buf,
        CellKind::Dff,
    ];

    /// The `.bench` keyword for this kind (upper-case, as written by MCNC).
    #[must_use]
    pub fn bench_keyword(self) -> &'static str {
        match self {
            CellKind::Input => "INPUT",
            CellKind::And => "AND",
            CellKind::Nand => "NAND",
            CellKind::Or => "OR",
            CellKind::Nor => "NOR",
            CellKind::Xor => "XOR",
            CellKind::Xnor => "XNOR",
            CellKind::Not => "NOT",
            CellKind::Buf => "BUFF",
            CellKind::Dff => "DFF",
        }
    }

    /// Parses a `.bench` gate keyword (case-insensitive). `BUF`/`BUFF` both
    /// map to [`CellKind::Buf`].
    #[must_use]
    pub fn from_bench_keyword(word: &str) -> Option<Self> {
        Some(match word.to_ascii_uppercase().as_str() {
            "INPUT" => CellKind::Input,
            "AND" => CellKind::And,
            "NAND" => CellKind::Nand,
            "OR" => CellKind::Or,
            "NOR" => CellKind::Nor,
            "XOR" => CellKind::Xor,
            "XNOR" => CellKind::Xnor,
            "NOT" | "INV" => CellKind::Not,
            "BUF" | "BUFF" => CellKind::Buf,
            "DFF" => CellKind::Dff,
            _ => return None,
        })
    }

    /// Inclusive range of legal fan-in counts for this kind.
    #[must_use]
    pub fn fanin_range(self) -> (usize, usize) {
        match self {
            CellKind::Input => (0, 0),
            CellKind::Not | CellKind::Buf | CellKind::Dff => (1, 1),
            _ => (2, usize::MAX),
        }
    }

    /// Whether this kind is a combinational logic gate (excludes inputs and
    /// flip-flops, includes inverters and buffers).
    #[must_use]
    pub fn is_combinational(self) -> bool {
        !matches!(self, CellKind::Input | CellKind::Dff)
    }

    /// Whether this kind is a multi-input logic gate — the paper's Table 9
    /// "No. of Gates" column (inverters and buffers are counted separately).
    #[must_use]
    pub fn is_multi_input_gate(self) -> bool {
        matches!(
            self,
            CellKind::And
                | CellKind::Nand
                | CellKind::Or
                | CellKind::Nor
                | CellKind::Xor
                | CellKind::Xnor
        )
    }
}

impl fmt::Display for CellKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.bench_keyword())
    }
}

/// One cell of a circuit: a primary input, a logic gate, or a flip-flop.
///
/// Constructed through [`Circuit::add_input`](crate::Circuit::add_input) and
/// [`Circuit::add_cell`](crate::Circuit::add_cell), which enforce fan-in
/// arity and name uniqueness.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Cell {
    pub(crate) name: String,
    pub(crate) kind: CellKind,
    pub(crate) fanin: Vec<CellId>,
}

impl Cell {
    /// The net/cell name (the left-hand side of its `.bench` line).
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The cell's function.
    #[must_use]
    pub fn kind(&self) -> CellKind {
        self.kind
    }

    /// The driving cells of this cell's input pins, in pin order.
    #[must_use]
    pub fn fanin(&self) -> &[CellId] {
        &self.fanin
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keyword_round_trip() {
        for kind in CellKind::ALL {
            assert_eq!(
                CellKind::from_bench_keyword(kind.bench_keyword()),
                Some(kind)
            );
        }
    }

    #[test]
    fn keyword_aliases() {
        assert_eq!(CellKind::from_bench_keyword("inv"), Some(CellKind::Not));
        assert_eq!(CellKind::from_bench_keyword("buf"), Some(CellKind::Buf));
        assert_eq!(CellKind::from_bench_keyword("dff"), Some(CellKind::Dff));
        assert_eq!(CellKind::from_bench_keyword("bogus"), None);
    }

    #[test]
    fn fanin_ranges() {
        assert_eq!(CellKind::Input.fanin_range(), (0, 0));
        assert_eq!(CellKind::Not.fanin_range(), (1, 1));
        assert_eq!(CellKind::Dff.fanin_range(), (1, 1));
        assert_eq!(CellKind::Nand.fanin_range().0, 2);
    }

    #[test]
    fn gate_classification() {
        assert!(CellKind::Nand.is_multi_input_gate());
        assert!(!CellKind::Not.is_multi_input_gate());
        assert!(CellKind::Not.is_combinational());
        assert!(!CellKind::Dff.is_combinational());
        assert!(!CellKind::Input.is_combinational());
    }

    #[test]
    fn cell_id_display_and_index() {
        let id = CellId::from_index(5);
        assert_eq!(id.index(), 5);
        assert_eq!(id.to_string(), "c5");
    }
}
