//! Writer emitting ISCAS89 `.bench` text from a [`Circuit`].

use std::fmt::Write as _;

use crate::cell::CellKind;
use crate::circuit::Circuit;

/// Serializes a circuit to `.bench` text.
///
/// Output order is: header comment, `INPUT` lines, `OUTPUT` lines, then one
/// definition per gate/flip-flop in cell insertion order — the layout MCNC
/// tools emit. The result round-trips through
/// [`bench_format::parse`](crate::bench_format::parse) to an equivalent
/// circuit (same cells, kinds, connectivity, and outputs).
///
/// # Examples
///
/// ```
/// use ppet_netlist::{bench_format, writer};
///
/// # fn main() -> Result<(), ppet_netlist::ParseBenchError> {
/// let c = bench_format::parse("toy", "INPUT(a)\nOUTPUT(y)\ny = NOT(a)\n")?;
/// let text = writer::to_bench(&c);
/// let back = bench_format::parse("toy", &text)?;
/// assert_eq!(back.num_cells(), c.num_cells());
/// # Ok(())
/// # }
/// ```
#[must_use]
pub fn to_bench(circuit: &Circuit) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "# {}", circuit.name());
    let _ = writeln!(
        out,
        "# {} inputs, {} outputs, {} D-type flipflops",
        circuit.num_inputs(),
        circuit.outputs().len(),
        circuit.num_flip_flops()
    );
    out.push('\n');
    for id in circuit.inputs() {
        let _ = writeln!(out, "INPUT({})", circuit.cell(id).name());
    }
    out.push('\n');
    for &id in circuit.outputs() {
        let _ = writeln!(out, "OUTPUT({})", circuit.cell(id).name());
    }
    out.push('\n');
    for (_, cell) in circuit.iter() {
        if cell.kind() == CellKind::Input {
            continue;
        }
        let args: Vec<&str> = cell
            .fanin()
            .iter()
            .map(|&f| circuit.cell(f).name())
            .collect();
        let _ = writeln!(
            out,
            "{} = {}({})",
            cell.name(),
            cell.kind().bench_keyword(),
            args.join(", ")
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bench_format::parse;
    use crate::data;

    #[test]
    fn round_trip_preserves_structure() {
        let c = data::s27();
        let text = to_bench(&c);
        let back = parse("s27", &text).unwrap();
        assert_eq!(back.num_cells(), c.num_cells());
        assert_eq!(back.num_inputs(), c.num_inputs());
        assert_eq!(back.num_flip_flops(), c.num_flip_flops());
        assert_eq!(back.outputs().len(), c.outputs().len());
        // Connectivity: every cell has the same named fan-ins.
        for (_, cell) in c.iter() {
            let b_id = back.find(cell.name()).expect("cell survives round trip");
            let b = back.cell(b_id);
            assert_eq!(b.kind(), cell.kind());
            let orig: Vec<&str> = cell.fanin().iter().map(|&f| c.cell(f).name()).collect();
            let got: Vec<&str> = b.fanin().iter().map(|&f| back.cell(f).name()).collect();
            assert_eq!(got, orig, "fan-in of {}", cell.name());
        }
    }

    #[test]
    fn header_counts_match() {
        let c = data::s27();
        let text = to_bench(&c);
        assert!(text.contains("# 4 inputs, 1 outputs, 3 D-type flipflops"));
    }
}
