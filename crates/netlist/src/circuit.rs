//! The [`Circuit`] container.

use std::collections::HashMap;
use std::fmt;

use crate::cell::{Cell, CellId, CellKind, NetId};
use crate::error::BuildCircuitError;

/// A gate-level sequential circuit.
///
/// Cells are stored densely and identified by [`CellId`]; each cell drives
/// exactly one net (ISCAS89 convention), so fan-out information is derived
/// rather than stored — see [`Circuit::fanouts`]. Primary outputs are an
/// explicit list of driven nets.
///
/// # Examples
///
/// Build the half of an SR latch by hand:
///
/// ```
/// use ppet_netlist::{Circuit, CellKind};
///
/// # fn main() -> Result<(), ppet_netlist::BuildCircuitError> {
/// let mut c = Circuit::new("latchlet");
/// let set = c.add_input("set")?;
/// let q_prev = c.add_input("q_prev")?;
/// let q = c.add_cell("q", CellKind::Nor, vec![set, q_prev])?;
/// c.mark_output(q)?;
/// assert_eq!(c.num_cells(), 3);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Circuit {
    name: String,
    cells: Vec<Cell>,
    outputs: Vec<NetId>,
    by_name: HashMap<String, CellId>,
}

impl Circuit {
    /// Creates an empty circuit with the given name.
    #[must_use]
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            cells: Vec::new(),
            outputs: Vec::new(),
            by_name: HashMap::new(),
        }
    }

    /// The circuit name (e.g. `"s27"`).
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Renames the circuit.
    pub fn set_name(&mut self, name: impl Into<String>) {
        self.name = name.into();
    }

    /// Adds a primary input.
    ///
    /// # Errors
    ///
    /// Returns [`BuildCircuitError::DuplicateName`] if a cell with this name
    /// already exists.
    pub fn add_input(&mut self, name: impl Into<String>) -> Result<CellId, BuildCircuitError> {
        self.add_cell(name, CellKind::Input, Vec::new())
    }

    /// Adds a gate or flip-flop driven by `fanin`.
    ///
    /// # Errors
    ///
    /// * [`BuildCircuitError::DuplicateName`] — the name is taken;
    /// * [`BuildCircuitError::BadFanin`] — the fan-in count is illegal for
    ///   `kind` (see [`CellKind::fanin_range`]);
    /// * [`BuildCircuitError::UnknownCell`] — a fan-in id is out of range.
    pub fn add_cell(
        &mut self,
        name: impl Into<String>,
        kind: CellKind,
        fanin: Vec<CellId>,
    ) -> Result<CellId, BuildCircuitError> {
        let name = name.into();
        if self.by_name.contains_key(&name) {
            return Err(BuildCircuitError::DuplicateName { name });
        }
        let (lo, hi) = kind.fanin_range();
        if fanin.len() < lo || fanin.len() > hi {
            return Err(BuildCircuitError::BadFanin {
                name,
                kind,
                got: fanin.len(),
            });
        }
        for &f in &fanin {
            if f.index() >= self.cells.len() && f.index() != self.cells.len() {
                // Referencing the cell being defined (self-loop) is also
                // rejected here; parsers that allow forward references
                // resolve them before calling `add_cell`.
                return Err(BuildCircuitError::UnknownCell { id: f });
            }
            if f.index() == self.cells.len() {
                return Err(BuildCircuitError::SelfLoop { name });
            }
        }
        let id = CellId(u32::try_from(self.cells.len()).expect("too many cells"));
        self.by_name.insert(name.clone(), id);
        self.cells.push(Cell { name, kind, fanin });
        Ok(id)
    }

    /// Adds a cell whose fan-in will be supplied later via
    /// [`Circuit::set_fanin`].
    ///
    /// This is the escape hatch for sequential feedback: a flip-flop's `D`
    /// driver may not exist yet when the flip-flop is created (netlist
    /// formats are declarative), so parsers, synthesizers and the retiming
    /// engine create registers first and patch their fan-in once every cell
    /// exists. Until then the cell reports an empty fan-in.
    ///
    /// # Errors
    ///
    /// Returns [`BuildCircuitError::DuplicateName`] if the name is taken.
    pub fn add_cell_deferred(
        &mut self,
        name: impl Into<String>,
        kind: CellKind,
    ) -> Result<CellId, BuildCircuitError> {
        let name = name.into();
        if self.by_name.contains_key(&name) {
            return Err(BuildCircuitError::DuplicateName { name });
        }
        Ok(self.push_raw(name, kind, Vec::new()))
    }

    /// Replaces a cell's fan-in, validating arity and that every driver
    /// exists. Unlike [`Circuit::add_cell`], the drivers may be *any* cell
    /// of the circuit — including cells created after this one, which is how
    /// register feedback loops are closed.
    ///
    /// # Errors
    ///
    /// * [`BuildCircuitError::BadFanin`] — wrong arity for the cell's kind;
    /// * [`BuildCircuitError::UnknownCell`] — a driver id is out of range.
    pub fn set_fanin(&mut self, id: CellId, fanin: Vec<CellId>) -> Result<(), BuildCircuitError> {
        if id.index() >= self.cells.len() {
            return Err(BuildCircuitError::UnknownCell { id });
        }
        let kind = self.cells[id.index()].kind;
        let (lo, hi) = kind.fanin_range();
        if fanin.len() < lo || fanin.len() > hi {
            return Err(BuildCircuitError::BadFanin {
                name: self.cells[id.index()].name.clone(),
                kind,
                got: fanin.len(),
            });
        }
        for &f in &fanin {
            if f.index() >= self.cells.len() {
                return Err(BuildCircuitError::UnknownCell { id: f });
            }
        }
        self.cells[id.index()].fanin = fanin;
        Ok(())
    }

    /// Adds a cell without arity or fan-in validation. Crate-internal:
    /// used by the parser and synthesizer to materialize register loops,
    /// whose fan-ins are patched after all cells exist.
    pub(crate) fn push_raw(&mut self, name: String, kind: CellKind, fanin: Vec<CellId>) -> CellId {
        let id = CellId(u32::try_from(self.cells.len()).expect("too many cells"));
        self.by_name.insert(name.clone(), id);
        self.cells.push(Cell { name, kind, fanin });
        id
    }

    /// Replaces a cell's fan-in without validation. Crate-internal; see
    /// [`Circuit::push_raw`].
    pub(crate) fn set_fanin_raw(&mut self, id: CellId, fanin: Vec<CellId>) {
        self.cells[id.index()].fanin = fanin;
    }

    /// Marks the net driven by `id` as a primary output. Marking the same
    /// net twice is idempotent.
    ///
    /// # Errors
    ///
    /// Returns [`BuildCircuitError::UnknownCell`] if `id` is out of range.
    pub fn mark_output(&mut self, id: NetId) -> Result<(), BuildCircuitError> {
        if id.index() >= self.cells.len() {
            return Err(BuildCircuitError::UnknownCell { id });
        }
        if !self.outputs.contains(&id) {
            self.outputs.push(id);
        }
        Ok(())
    }

    /// Number of cells (inputs + gates + flip-flops).
    #[must_use]
    pub fn num_cells(&self) -> usize {
        self.cells.len()
    }

    /// The cell with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range (ids from this circuit never are).
    #[must_use]
    pub fn cell(&self, id: CellId) -> &Cell {
        &self.cells[id.index()]
    }

    /// Looks up a cell by name.
    #[must_use]
    pub fn find(&self, name: &str) -> Option<CellId> {
        self.by_name.get(name).copied()
    }

    /// Iterates over `(id, cell)` pairs in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (CellId, &Cell)> {
        self.cells
            .iter()
            .enumerate()
            .map(|(i, c)| (CellId(i as u32), c))
    }

    /// All cell ids in insertion order.
    pub fn ids(&self) -> impl Iterator<Item = CellId> + '_ {
        (0..self.cells.len()).map(|i| CellId(i as u32))
    }

    /// The primary output nets, in declaration order.
    #[must_use]
    pub fn outputs(&self) -> &[NetId] {
        &self.outputs
    }

    /// True if `id` drives a primary output.
    #[must_use]
    pub fn is_output(&self, id: NetId) -> bool {
        self.outputs.contains(&id)
    }

    /// Ids of all primary inputs, in insertion order.
    pub fn inputs(&self) -> impl Iterator<Item = CellId> + '_ {
        self.iter()
            .filter(|(_, c)| c.kind == CellKind::Input)
            .map(|(id, _)| id)
    }

    /// Ids of all flip-flops, in insertion order.
    pub fn flip_flops(&self) -> impl Iterator<Item = CellId> + '_ {
        self.iter()
            .filter(|(_, c)| c.kind == CellKind::Dff)
            .map(|(id, _)| id)
    }

    /// Number of primary inputs.
    #[must_use]
    pub fn num_inputs(&self) -> usize {
        self.inputs().count()
    }

    /// Number of flip-flops.
    #[must_use]
    pub fn num_flip_flops(&self) -> usize {
        self.flip_flops().count()
    }

    /// Computes the fan-out table: for each cell, the cells that read its
    /// net, in pin order of discovery.
    ///
    /// A cell consuming the same net on several pins appears once per pin;
    /// use [`Fanouts::unique`] for set semantics.
    #[must_use]
    pub fn fanouts(&self) -> Fanouts {
        let mut sinks = vec![Vec::new(); self.cells.len()];
        for (id, cell) in self.iter() {
            for &f in &cell.fanin {
                sinks[f.index()].push(id);
            }
        }
        Fanouts { sinks }
    }
}

impl fmt::Display for Circuit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {} cells ({} PI, {} DFF), {} PO",
            self.name,
            self.num_cells(),
            self.num_inputs(),
            self.num_flip_flops(),
            self.outputs.len()
        )
    }
}

/// Derived fan-out table of a [`Circuit`]; see [`Circuit::fanouts`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Fanouts {
    sinks: Vec<Vec<CellId>>,
}

impl Fanouts {
    /// The sink cells of the net driven by `id` (one entry per consuming
    /// pin).
    #[must_use]
    pub fn of(&self, id: NetId) -> &[CellId] {
        &self.sinks[id.index()]
    }

    /// The distinct sink cells of the net driven by `id`.
    #[must_use]
    pub fn unique(&self, id: NetId) -> Vec<CellId> {
        let mut v = self.sinks[id.index()].clone();
        v.sort_unstable();
        v.dedup();
        v
    }

    /// Number of consuming pins on the net driven by `id`.
    #[must_use]
    pub fn degree(&self, id: NetId) -> usize {
        self.sinks[id.index()].len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Circuit {
        let mut c = Circuit::new("tiny");
        let a = c.add_input("a").unwrap();
        let b = c.add_input("b").unwrap();
        let g = c.add_cell("g", CellKind::Nand, vec![a, b]).unwrap();
        let q = c.add_cell("q", CellKind::Dff, vec![g]).unwrap();
        let h = c.add_cell("h", CellKind::Nor, vec![q, a]).unwrap();
        c.mark_output(h).unwrap();
        c
    }

    #[test]
    fn duplicate_name_rejected() {
        let mut c = Circuit::new("t");
        c.add_input("a").unwrap();
        let err = c.add_input("a").unwrap_err();
        assert!(matches!(err, BuildCircuitError::DuplicateName { .. }));
    }

    #[test]
    fn bad_fanin_rejected() {
        let mut c = Circuit::new("t");
        let a = c.add_input("a").unwrap();
        let err = c.add_cell("g", CellKind::And, vec![a]).unwrap_err();
        assert!(matches!(err, BuildCircuitError::BadFanin { got: 1, .. }));
        let err = c.add_cell("n", CellKind::Not, vec![a, a]).unwrap_err();
        assert!(matches!(err, BuildCircuitError::BadFanin { got: 2, .. }));
    }

    #[test]
    fn unknown_fanin_rejected() {
        let mut c = Circuit::new("t");
        c.add_input("a").unwrap();
        let bogus = CellId::from_index(99);
        let err = c.add_cell("n", CellKind::Not, vec![bogus]).unwrap_err();
        assert!(matches!(err, BuildCircuitError::UnknownCell { .. }));
    }

    #[test]
    fn counts_and_lookup() {
        let c = tiny();
        assert_eq!(c.num_cells(), 5);
        assert_eq!(c.num_inputs(), 2);
        assert_eq!(c.num_flip_flops(), 1);
        assert_eq!(c.find("q").map(|id| c.cell(id).kind()), Some(CellKind::Dff));
        assert!(c.find("zzz").is_none());
    }

    #[test]
    fn fanouts_cover_all_pins() {
        let c = tiny();
        let fo = c.fanouts();
        let a = c.find("a").unwrap();
        // `a` feeds gate g and gate h.
        assert_eq!(fo.degree(a), 2);
        let g = c.find("g").unwrap();
        assert_eq!(fo.of(g), &[c.find("q").unwrap()]);
        let h = c.find("h").unwrap();
        assert_eq!(fo.degree(h), 0);
        assert!(c.is_output(h));
    }

    #[test]
    fn mark_output_idempotent() {
        let mut c = tiny();
        let h = c.find("h").unwrap();
        c.mark_output(h).unwrap();
        assert_eq!(c.outputs().len(), 1);
    }

    #[test]
    fn display_mentions_shape() {
        let c = tiny();
        let s = c.to_string();
        assert!(s.contains("tiny"), "{s}");
        assert!(s.contains("2 PI"), "{s}");
    }
}
