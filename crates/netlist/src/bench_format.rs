//! Parser for the ISCAS89 `.bench` netlist format.
//!
//! The format, as distributed by MCNC and used by the paper's benchmark
//! suite, is line-oriented:
//!
//! ```text
//! # comment
//! INPUT(G0)
//! OUTPUT(G17)
//! G5 = DFF(G10)
//! G8 = AND(G14, G6)
//! ```
//!
//! Signals may be referenced before they are defined (the format is
//! declarative); the parser resolves forward references in a second pass.
//! Gate keywords are case-insensitive and `INV`/`BUF` aliases are accepted.

use std::collections::HashMap;

use crate::cell::{CellId, CellKind};
use crate::circuit::Circuit;
use crate::error::ParseBenchError;

/// Parses `.bench` text into a [`Circuit`] named `name`.
///
/// # Errors
///
/// Returns a [`ParseBenchError`] describing the first syntax error,
/// unknown gate keyword, redefinition, unresolved signal, or structural
/// violation encountered.
///
/// # Examples
///
/// ```
/// use ppet_netlist::bench_format::parse;
///
/// # fn main() -> Result<(), ppet_netlist::ParseBenchError> {
/// let c = parse(
///     "toy",
///     "INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = NAND(a, b)\n",
/// )?;
/// assert_eq!(c.num_cells(), 3);
/// assert_eq!(c.outputs().len(), 1);
/// # Ok(())
/// # }
/// ```
pub fn parse(name: &str, text: &str) -> Result<Circuit, ParseBenchError> {
    let mut defs: Vec<RawDef> = Vec::new();
    let mut output_names: Vec<String> = Vec::new();
    let mut def_lines: HashMap<String, usize> = HashMap::new();

    for (lineno, raw_line) in text.lines().enumerate() {
        let line = lineno + 1;
        let stripped = match raw_line.find('#') {
            Some(pos) => &raw_line[..pos],
            None => raw_line,
        }
        .trim();
        if stripped.is_empty() {
            continue;
        }
        if let Some(inner) = strip_directive(stripped, "INPUT") {
            let sig = inner.trim().to_string();
            if sig.is_empty() {
                return Err(ParseBenchError::Syntax {
                    line,
                    text: stripped.to_string(),
                });
            }
            record_def(&mut def_lines, &sig, line)?;
            defs.push(RawDef {
                name: sig,
                kind: CellKind::Input,
                fanin: Vec::new(),
            });
            continue;
        }
        if let Some(inner) = strip_directive(stripped, "OUTPUT") {
            let sig = inner.trim().to_string();
            if sig.is_empty() {
                return Err(ParseBenchError::Syntax {
                    line,
                    text: stripped.to_string(),
                });
            }
            output_names.push(sig);
            continue;
        }
        // `lhs = KIND(args)`
        let (lhs, rhs) = stripped
            .split_once('=')
            .ok_or_else(|| ParseBenchError::Syntax {
                line,
                text: stripped.to_string(),
            })?;
        let lhs = lhs.trim().to_string();
        let rhs = rhs.trim();
        let open = rhs.find('(').ok_or_else(|| ParseBenchError::Syntax {
            line,
            text: stripped.to_string(),
        })?;
        if !rhs.ends_with(')') {
            return Err(ParseBenchError::Syntax {
                line,
                text: stripped.to_string(),
            });
        }
        let keyword = rhs[..open].trim();
        let kind =
            CellKind::from_bench_keyword(keyword).ok_or_else(|| ParseBenchError::UnknownGate {
                line,
                keyword: keyword.to_string(),
            })?;
        if kind == CellKind::Input {
            return Err(ParseBenchError::Syntax {
                line,
                text: stripped.to_string(),
            });
        }
        let args: Vec<String> = rhs[open + 1..rhs.len() - 1]
            .split(',')
            .map(|a| a.trim().to_string())
            .filter(|a| !a.is_empty())
            .collect();
        if lhs.is_empty() || args.is_empty() {
            return Err(ParseBenchError::Syntax {
                line,
                text: stripped.to_string(),
            });
        }
        record_def(&mut def_lines, &lhs, line)?;
        defs.push(RawDef {
            name: lhs,
            kind,
            fanin: args,
        });
    }

    assemble(name, defs, &output_names)
}

struct RawDef {
    name: String,
    kind: CellKind,
    fanin: Vec<String>,
}

fn record_def(
    def_lines: &mut HashMap<String, usize>,
    name: &str,
    line: usize,
) -> Result<(), ParseBenchError> {
    if def_lines.insert(name.to_string(), line).is_some() {
        return Err(ParseBenchError::Redefined {
            line,
            name: name.to_string(),
        });
    }
    Ok(())
}

/// Matches `KEYWORD ( inner )` case-insensitively and returns `inner`.
fn strip_directive<'a>(line: &'a str, keyword: &str) -> Option<&'a str> {
    let rest = line.strip_prefix(keyword).or_else(|| {
        if line.len() >= keyword.len() && line[..keyword.len()].eq_ignore_ascii_case(keyword) {
            Some(&line[keyword.len()..])
        } else {
            None
        }
    })?;
    let rest = rest.trim_start();
    let inner = rest.strip_prefix('(')?.strip_suffix(')')?;
    Some(inner)
}

/// Orders definitions so every combinational fan-in is defined first, then
/// builds the circuit. Cycles through flip-flops are expected (sequential
/// circuits); registers are materialized immediately and their `D` fan-in is
/// patched once every cell exists.
fn assemble(
    name: &str,
    defs: Vec<RawDef>,
    output_names: &[String],
) -> Result<Circuit, ParseBenchError> {
    let index_of: HashMap<&str, usize> = defs
        .iter()
        .enumerate()
        .map(|(i, d)| (d.name.as_str(), i))
        .collect();
    // Resolve fan-in names to definition indices up front so undefined
    // signals are reported by name, and validate arity so errors carry the
    // cell's name rather than surfacing later as a panic.
    let mut fanin_idx: Vec<Vec<usize>> = Vec::with_capacity(defs.len());
    for def in &defs {
        let (lo, hi) = def.kind.fanin_range();
        if def.fanin.len() < lo || def.fanin.len() > hi {
            return Err(crate::BuildCircuitError::BadFanin {
                name: def.name.clone(),
                kind: def.kind,
                got: def.fanin.len(),
            }
            .into());
        }
        let mut row = Vec::with_capacity(def.fanin.len());
        for arg in &def.fanin {
            let &i = index_of
                .get(arg.as_str())
                .ok_or_else(|| ParseBenchError::UndefinedSignal { name: arg.clone() })?;
            row.push(i);
        }
        fanin_idx.push(row);
    }

    // Topological order over combinational dependencies only: DFFs are
    // emitted as soon as visited (their D fan-in is patched later), which is
    // sound because a DFF's output value does not combinationally depend on
    // its input.
    let n = defs.len();
    let mut order: Vec<usize> = Vec::with_capacity(n);
    let mut state = vec![0u8; n]; // 0 = unvisited, 1 = on stack, 2 = done
    for start in 0..n {
        if state[start] != 0 {
            continue;
        }
        // Iterative DFS emitting post-order.
        let mut stack: Vec<(usize, usize)> = vec![(start, 0)];
        state[start] = 1;
        while let Some(&mut (node, ref mut next)) = stack.last_mut() {
            let deps: &[usize] = if defs[node].kind == CellKind::Dff {
                &[] // break sequential cycles at registers
            } else {
                &fanin_idx[node]
            };
            if *next < deps.len() {
                let dep = deps[*next];
                *next += 1;
                if state[dep] == 0 {
                    state[dep] = 1;
                    stack.push((dep, 0));
                } else if state[dep] == 1 {
                    // A combinational cycle: legal `.bench` never has one,
                    // and the circuit model cannot represent it.
                    return Err(ParseBenchError::UndefinedSignal {
                        name: format!(
                            "{} (combinational cycle through this signal)",
                            defs[dep].name
                        ),
                    });
                }
            } else {
                state[node] = 2;
                order.push(node);
                stack.pop();
            }
        }
    }

    let mut circuit = Circuit::new(name);
    let mut cell_of_def: Vec<Option<CellId>> = vec![None; n];
    let mut patch_later: Vec<usize> = Vec::new();
    for &i in &order {
        let def = &defs[i];
        let id = if def.kind == CellKind::Dff {
            // A register's D driver may not exist yet (feedback); create the
            // cell with an empty fan-in and patch it below.
            patch_later.push(i);
            circuit.push_raw(def.name.clone(), CellKind::Dff, Vec::new())
        } else {
            let fanin: Vec<CellId> = fanin_idx[i]
                .iter()
                .map(|&d| cell_of_def[d].expect("topological order violated"))
                .collect();
            circuit.push_raw(def.name.clone(), def.kind, fanin)
        };
        cell_of_def[i] = Some(id);
    }
    for i in patch_later {
        let d = fanin_idx[i][0];
        let src = cell_of_def[d].expect("all defs materialized");
        let id = cell_of_def[i].expect("all defs materialized");
        circuit.set_fanin_raw(id, vec![src]);
    }

    for out in output_names {
        let id = circuit
            .find(out)
            .ok_or_else(|| ParseBenchError::UndefinedSignal { name: out.clone() })?;
        circuit.mark_output(id).expect("id comes from this circuit");
    }
    Ok(circuit)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_minimal_netlist() {
        let c = parse("t", "INPUT(a)\nOUTPUT(y)\ny = NOT(a)\n").unwrap();
        assert_eq!(c.num_cells(), 2);
        assert_eq!(c.cell(c.find("y").unwrap()).kind(), CellKind::Not);
    }

    #[test]
    fn forward_references_resolve() {
        let c = parse("t", "OUTPUT(y)\ny = AND(a, b)\nINPUT(a)\nINPUT(b)\n").unwrap();
        assert_eq!(c.num_cells(), 3);
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let c = parse(
            "t",
            "# header\n\nINPUT(a)\n y = BUFF(a) # trailing\nOUTPUT(y)\n",
        )
        .unwrap();
        assert_eq!(c.num_cells(), 2);
    }

    #[test]
    fn case_insensitive_keywords() {
        let c = parse("t", "input(a)\noutput(y)\ny = nand(a, a)\n");
        // NAND with duplicate pin is structurally fine (two pins, same net).
        let c = c.unwrap();
        assert_eq!(c.cell(c.find("y").unwrap()).fanin().len(), 2);
    }

    #[test]
    fn dff_feedback_loop_parses() {
        // q feeds the gate that feeds q's D pin: a 1-bit counter core.
        let c = parse("t", "INPUT(en)\nOUTPUT(q)\nq = DFF(d)\nd = XOR(q, en)\n").unwrap();
        let q = c.find("q").unwrap();
        let d = c.find("d").unwrap();
        assert_eq!(c.cell(q).fanin(), &[d]);
    }

    #[test]
    fn dff_chain_parses() {
        let c = parse("t", "INPUT(a)\nOUTPUT(q2)\nq2 = DFF(q1)\nq1 = DFF(a)\n").unwrap();
        assert_eq!(c.num_flip_flops(), 2);
    }

    #[test]
    fn register_ring_parses() {
        // A pure register ring is a valid (if degenerate) sequential
        // circuit; the model represents it directly.
        let c = parse("t", "OUTPUT(q1)\nq1 = DFF(q2)\nq2 = DFF(q1)\n").unwrap();
        let q1 = c.find("q1").unwrap();
        let q2 = c.find("q2").unwrap();
        assert_eq!(c.cell(q1).fanin(), &[q2]);
        assert_eq!(c.cell(q2).fanin(), &[q1]);
    }

    #[test]
    fn bad_arity_reports_cell_name() {
        let err = parse("t", "INPUT(a)\ny = NOT(a, a)\nOUTPUT(y)\n").unwrap_err();
        assert!(err.to_string().contains("`y`"), "{err}");
    }

    #[test]
    fn undefined_signal_reported_by_name() {
        let err = parse("t", "INPUT(a)\ny = AND(a, ghost)\nOUTPUT(y)\n").unwrap_err();
        assert!(matches!(err, ParseBenchError::UndefinedSignal { ref name } if name == "ghost"));
    }

    #[test]
    fn redefinition_rejected() {
        let err = parse("t", "INPUT(a)\nINPUT(a)\n").unwrap_err();
        assert!(matches!(err, ParseBenchError::Redefined { line: 2, .. }));
    }

    #[test]
    fn unknown_gate_rejected() {
        let err = parse("t", "INPUT(a)\ny = FROB(a, a)\n").unwrap_err();
        assert!(
            matches!(err, ParseBenchError::UnknownGate { ref keyword, .. } if keyword == "FROB")
        );
    }

    #[test]
    fn combinational_cycle_rejected() {
        let err = parse("t", "INPUT(a)\nx = AND(y, a)\ny = AND(x, a)\nOUTPUT(y)\n").unwrap_err();
        assert!(err.to_string().contains("combinational cycle"), "{err}");
    }

    #[test]
    fn syntax_error_carries_line() {
        let err = parse("t", "INPUT(a)\nwhat is this\n").unwrap_err();
        assert!(matches!(err, ParseBenchError::Syntax { line: 2, .. }));
    }

    #[test]
    fn output_of_undefined_signal_rejected() {
        let err = parse("t", "INPUT(a)\nOUTPUT(nope)\n").unwrap_err();
        assert!(matches!(err, ParseBenchError::UndefinedSignal { ref name } if name == "nope"));
    }
}
