//! The synthetic circuit builder.
//!
//! # Construction scheme
//!
//! The generator guarantees the SCC structure by layering:
//!
//! ```text
//!            +--------- feedback walks ----------+
//!            v                                   |
//!   PIs --> [ C0: early combinational layer ] ---+--> [ C1: late layer ] --> POs
//!            ^      |                 |                ^
//!            |      v                 v                |
//!          A-DFFs (on-SCC)          B-DFFs (off-SCC) --+
//! ```
//!
//! * **A registers** (the requested `dffs_on_scc`) read a cell downstream of
//!   a C0 gate that consumes their own output, so each lies on a cycle by
//!   construction; overlapping walks merge cycles into larger SCCs, like the
//!   state registers of the real benchmarks.
//! * **B registers** read C0 cells and drive only C1 cells; C1 cells drive
//!   only later C1 cells or primary outputs, so no path returns from a B
//!   register's output to any register input — B registers are provably
//!   acyclic.
//!
//! Gate kinds and fan-in widths are planned up front so the estimated area
//! under [`AreaModel::paper`](crate::AreaModel::paper) hits the target
//! exactly (see [`SynthSpec::min_area`]).

use ppet_prng::{Rng, Xoshiro256PlusPlus};

use crate::cell::{CellId, CellKind};
use crate::circuit::Circuit;
use crate::synth::spec::SynthSpec;

/// Deterministic synthetic circuit generator; see the module docs for the
/// construction scheme.
///
/// # Examples
///
/// ```
/// use ppet_netlist::{SynthSpec, Synthesizer};
///
/// let spec = SynthSpec::new("tiny").gates(12).flip_flops(3).dffs_on_scc(2).seed(7);
/// let a = Synthesizer::new(spec.clone()).build();
/// let b = Synthesizer::new(spec).build();
/// assert_eq!(a, b); // same seed, same circuit
/// ```
#[derive(Debug, Clone)]
pub struct Synthesizer {
    spec: SynthSpec,
    rng: Xoshiro256PlusPlus,
}

/// One planned combinational cell.
#[derive(Debug, Clone, Copy)]
struct PlannedCell {
    kind: CellKind,
    fanin: usize,
}

impl Synthesizer {
    /// Creates a generator for `spec`.
    #[must_use]
    pub fn new(spec: SynthSpec) -> Self {
        let rng = Xoshiro256PlusPlus::seed_from(spec.seed ^ 0x5050_4554_5f47_454e); // "PPET_GEN"
        Self { spec, rng }
    }

    /// Generates the circuit.
    #[must_use]
    pub fn build(mut self) -> Circuit {
        let spec = self.spec.clone();
        let mut c = Circuit::new(spec.name.clone());

        // --- plan combinational cells -----------------------------------
        let planned = self.plan_cells();
        let n_late = ((planned.len() as f64) * spec.late_fraction).round() as usize;
        let n_early = planned.len() - n_late;

        // --- primary inputs and registers -------------------------------
        let pis: Vec<CellId> = (0..spec.primary_inputs)
            .map(|i| c.add_input(format!("pi{i}")).expect("unique PI name"))
            .collect();
        let n_scc = spec.dffs_on_scc.min(spec.flip_flops);
        let a_dffs: Vec<CellId> = (0..n_scc)
            .map(|i| c.push_raw(format!("qa{i}"), CellKind::Dff, Vec::new()))
            .collect();
        let b_dffs: Vec<CellId> = (0..spec.flip_flops - n_scc)
            .map(|i| c.push_raw(format!("qb{i}"), CellKind::Dff, Vec::new()))
            .collect();

        let mut state = WiringState::new();

        // --- early layer (C0) --------------------------------------------
        let mut sources0: Vec<CellId> = pis.iter().chain(a_dffs.iter()).copied().collect();
        let mut c0: Vec<CellId> = Vec::with_capacity(n_early);
        for (i, p) in planned[..n_early].iter().enumerate() {
            let fanin = self.pick_fanins(p.fanin, &sources0, &c0);
            let id = c.push_raw(format!("g{i}"), p.kind, fanin.clone());
            state.register(id, &fanin);
            sources0.push(id);
            c0.push(id);
        }

        // --- late layer (C1) ---------------------------------------------
        let mut sources1: Vec<CellId> = pis
            .iter()
            .chain(b_dffs.iter())
            .chain(a_dffs.iter())
            .chain(c0.iter())
            .copied()
            .collect();
        let mut c1: Vec<CellId> = Vec::with_capacity(n_late);
        for (i, p) in planned[n_early..].iter().enumerate() {
            let fanin = self.pick_fanins(p.fanin, &sources1, &c1);
            let id = c.push_raw(format!("g{}", n_early + i), p.kind, fanin.clone());
            state.register(id, &fanin);
            sources1.push(id);
            c1.push(id);
        }

        // --- B registers: D from C0, Q into C1 ----------------------------
        for &q in &b_dffs {
            let d = if !c0.is_empty() {
                c0[self.rng.gen_index(c0.len())]
            } else if !pis.is_empty() {
                pis[self.rng.gen_index(pis.len())]
            } else if !a_dffs.is_empty() {
                a_dffs[self.rng.gen_index(a_dffs.len())]
            } else {
                q // degenerate spec: register with nothing to read
            };
            c.set_fanin_raw(q, vec![d]);
            state.add_use(d, q);
            if state.uses(q) == 0 && !c1.is_empty() {
                let target = c1[self.rng.gen_index(c1.len())];
                self.splice(&mut c, target, q, &mut state);
            }
        }

        // --- make sure every primary input is observed --------------------
        let all_comb: Vec<CellId> = c0.iter().chain(c1.iter()).copied().collect();
        for &pi in &pis {
            if state.uses(pi) == 0 && !all_comb.is_empty() {
                let target = all_comb[self.rng.gen_index(all_comb.len())];
                self.splice(&mut c, target, pi, &mut state);
            }
        }

        // --- close feedback cycles for A registers ------------------------
        // Done last: every later splice could displace a cycle-forming
        // connection, so no wiring mutation may follow this step (register
        // D-pin assignments do not disturb combinational wiring).
        self.close_feedback(&mut c, &a_dffs, &c0, &mut state);

        // --- primary outputs ----------------------------------------------
        // Dangling cells become outputs; then top up to the requested count
        // from the tail of the late layer.
        let mut n_pos = 0;
        for id in c.ids().collect::<Vec<_>>() {
            if state.uses(id) == 0 && c.cell(id).kind() != CellKind::Input {
                c.mark_output(id).expect("id is valid");
                n_pos += 1;
            }
        }
        let mut top_up: Vec<CellId> = c1.iter().rev().chain(c0.iter().rev()).copied().collect();
        while n_pos < spec.primary_outputs {
            match top_up.pop() {
                Some(id) if !c.is_output(id) => {
                    c.mark_output(id).expect("id is valid");
                    n_pos += 1;
                }
                Some(_) => {}
                None => break,
            }
        }

        c
    }

    /// Plans gate kinds and fan-in widths so the total area hits the target.
    fn plan_cells(&mut self) -> Vec<PlannedCell> {
        let spec = &self.spec;
        let g = spec.gates as i64;
        let budget = spec
            .target_area
            .map(|a| a as i64 - spec.inverters as i64 - 10 * spec.flip_flops as i64)
            .unwrap_or(2 * g);
        let n3 = (budget - 2 * g).clamp(0, g) as usize;
        let extras = (budget - 2 * g - n3 as i64).max(0) as usize;

        let mut cells: Vec<PlannedCell> = Vec::with_capacity(spec.gates + spec.inverters);
        for i in 0..spec.gates {
            let kind = if i < n3 {
                if self.rng.gen_bool(0.5) {
                    CellKind::And
                } else {
                    CellKind::Or
                }
            } else if self.rng.gen_bool(0.5) {
                CellKind::Nand
            } else {
                CellKind::Nor
            };
            cells.push(PlannedCell { kind, fanin: 2 });
        }
        // Distribute extra inputs; linear-probe past saturated gates so the
        // count is exact even when `extras` approaches capacity.
        if spec.gates > 0 {
            let mut max_fanin = spec.max_fanin;
            for _ in 0..extras {
                let mut idx = self.rng.gen_index(spec.gates);
                let mut probes = 0;
                while cells[idx].fanin >= max_fanin {
                    idx = (idx + 1) % spec.gates;
                    probes += 1;
                    if probes > spec.gates {
                        max_fanin += 1; // area target outranks the fan-in cap
                    }
                }
                cells[idx].fanin += 1;
            }
        }
        for _ in 0..spec.inverters {
            cells.push(PlannedCell {
                kind: CellKind::Not,
                fanin: 1,
            });
        }
        self.rng.shuffle(&mut cells);
        cells
    }

    /// Chooses `n` fan-ins from `sources`, preferring the locality window at
    /// the tail of `recent`. Falls back to duplicates only when the source
    /// pool is smaller than `n`.
    fn pick_fanins(&mut self, n: usize, sources: &[CellId], recent: &[CellId]) -> Vec<CellId> {
        if sources.is_empty() {
            return Vec::new(); // degenerate spec (no inputs, no registers)
        }
        let mut picked: Vec<CellId> = Vec::with_capacity(n);
        let window = self.spec.locality_window.min(recent.len());
        for _ in 0..n {
            let mut attempt = 0;
            loop {
                let candidate = if window > 0 && self.rng.gen_bool(self.spec.locality_prob) {
                    recent[recent.len() - window + self.rng.gen_index(window)]
                } else {
                    sources[self.rng.gen_index(sources.len())]
                };
                if !picked.contains(&candidate) || sources.len() < n || attempt > 16 {
                    picked.push(candidate);
                    break;
                }
                attempt += 1;
            }
        }
        picked
    }

    /// Guarantees each A register lies on a cycle: force its output into a
    /// C0 cell if unused, then wire its D pin to a cell reachable downstream
    /// of that consumer.
    fn close_feedback(
        &mut self,
        c: &mut Circuit,
        a_dffs: &[CellId],
        c0: &[CellId],
        state: &mut WiringState,
    ) {
        if a_dffs.is_empty() {
            return;
        }
        if c0.is_empty() {
            // No combinational cells: fall back to a register ring (one SCC).
            for (i, &q) in a_dffs.iter().enumerate() {
                let prev = a_dffs[(i + a_dffs.len() - 1) % a_dffs.len()];
                c.set_fanin_raw(q, vec![prev]);
                state.add_use(prev, q);
            }
            return;
        }
        // Phase A: make sure every A register is consumed by a C0 cell.
        // Splices here can displace a sibling A register's only consumer,
        // so iterate to a fixpoint (bounded; the slot-choice ranking makes
        // mutual displacement vanishingly rare).
        for _round in 0..4 {
            let mut all_consumed = true;
            for &q in a_dffs {
                let consumed = state
                    .consumers(q)
                    .iter()
                    .any(|u| c0.binary_search(u).is_ok());
                if !consumed {
                    all_consumed = false;
                    let target = c0[self.rng.gen_index(c0.len())];
                    self.splice(c, target, q, state);
                }
            }
            if all_consumed {
                break;
            }
        }
        // Phase B: close each cycle with a downstream walk. No wiring
        // mutation happens from here on.
        for &q in a_dffs {
            let existing = state
                .consumers(q)
                .iter()
                .copied()
                .find(|u| c0.binary_search(u).is_ok());
            let consumer = match existing {
                Some(u) => u,
                None => {
                    // Fixpoint failed (degenerate tiny C0): wire the register
                    // into a ring with its predecessor instead.
                    let prev = a_dffs[0];
                    c.set_fanin_raw(q, vec![prev]);
                    state.add_use(prev, q);
                    continue;
                }
            };
            // Walk downstream within C0.
            let steps = 1 + self.rng.gen_index(self.spec.walk_steps);
            let mut cur = consumer;
            for _ in 0..steps {
                let next: Vec<CellId> = state
                    .consumers(cur)
                    .iter()
                    .copied()
                    .filter(|u| c0.binary_search(u).is_ok())
                    .collect();
                match self.rng.choose(&next) {
                    Some(&u) => cur = u,
                    None => break,
                }
            }
            c.set_fanin_raw(q, vec![cur]);
            state.add_use(cur, q);
        }
    }

    /// Replaces one fan-in slot of `target` with `source`, keeping fan-in
    /// counts (and thus area) intact. Prefers displacing a driver that has
    /// other observers, so the displacement does not dangle it.
    fn splice(&mut self, c: &mut Circuit, target: CellId, source: CellId, state: &mut WiringState) {
        let fanin = c.cell(target).fanin().to_vec();
        if fanin.contains(&source) {
            return; // already wired
        }
        // Candidate slots ranked: drivers with >= 2 observers first (their
        // displacement cannot dangle or disconnect anything unique), then
        // non-register drivers, then anything. Register drivers with a
        // single observer are the feedback connections the generator must
        // not break.
        let multi_use: Vec<usize> = (0..fanin.len())
            .filter(|&i| state.uses(fanin[i]) >= 2)
            .collect();
        let non_register: Vec<usize> = (0..fanin.len())
            .filter(|&i| c.cell(fanin[i]).kind() != CellKind::Dff)
            .collect();
        let slot = if let Some(&s) = self.rng.choose(&multi_use) {
            s
        } else if let Some(&s) = self.rng.choose(&non_register) {
            s
        } else {
            self.rng.gen_index(fanin.len())
        };
        let displaced = fanin[slot];
        let mut new_fanin = fanin;
        new_fanin[slot] = source;
        c.set_fanin_raw(target, new_fanin);
        state.remove_use(displaced, target);
        state.add_use(source, target);
    }
}

/// Dynamic use-count and fan-out bookkeeping during generation.
#[derive(Debug, Clone)]
struct WiringState {
    uses: Vec<u32>,
    consumers: Vec<Vec<CellId>>,
}

impl WiringState {
    fn new() -> Self {
        Self {
            uses: Vec::new(),
            consumers: Vec::new(),
        }
    }

    fn ensure(&mut self, id: CellId) {
        let need = id.index() + 1;
        if self.uses.len() < need {
            self.uses.resize(need, 0);
            self.consumers.resize(need, Vec::new());
        }
    }

    /// Records a freshly created cell and its fan-in uses.
    fn register(&mut self, id: CellId, fanin: &[CellId]) {
        self.ensure(id);
        for &f in fanin {
            self.add_use(f, id);
        }
    }

    fn add_use(&mut self, driver: CellId, consumer: CellId) {
        self.ensure(driver);
        self.ensure(consumer);
        self.uses[driver.index()] += 1;
        self.consumers[driver.index()].push(consumer);
    }

    fn remove_use(&mut self, driver: CellId, consumer: CellId) {
        self.ensure(driver);
        self.uses[driver.index()] = self.uses[driver.index()].saturating_sub(1);
        if let Some(pos) = self.consumers[driver.index()]
            .iter()
            .position(|&c| c == consumer)
        {
            self.consumers[driver.index()].swap_remove(pos);
        }
    }

    fn uses(&self, id: CellId) -> u32 {
        self.uses.get(id.index()).copied().unwrap_or(0)
    }

    fn consumers(&self, id: CellId) -> &[CellId] {
        self.consumers
            .get(id.index())
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::area::AreaModel;
    use crate::stats::CircuitStats;
    use crate::validate::{find_combinational_cycle, validate};

    fn spec() -> SynthSpec {
        SynthSpec::new("synth-test")
            .primary_inputs(6)
            .primary_outputs(3)
            .flip_flops(8)
            .gates(60)
            .inverters(15)
            .dffs_on_scc(5)
            .target_area(300)
            .seed(42)
    }

    #[test]
    fn counts_match_spec_exactly() {
        let c = Synthesizer::new(spec()).build();
        let s = CircuitStats::of(&c, &AreaModel::paper());
        assert_eq!(s.primary_inputs, 6);
        assert_eq!(s.flip_flops, 8);
        assert_eq!(s.gates, 60);
        assert_eq!(s.inverters, 15);
        assert_eq!(s.area, 300);
        assert!(s.primary_outputs >= 3);
    }

    #[test]
    fn no_combinational_cycles() {
        for seed in 0..10 {
            let c = Synthesizer::new(spec().seed(seed)).build();
            assert_eq!(find_combinational_cycle(&c), None, "seed {seed}");
        }
    }

    #[test]
    fn structurally_clean() {
        let c = Synthesizer::new(spec()).build();
        let issues = validate(&c);
        assert!(issues.is_empty(), "{issues:?}");
    }

    #[test]
    fn deterministic_per_seed() {
        let a = Synthesizer::new(spec()).build();
        let b = Synthesizer::new(spec()).build();
        assert_eq!(a, b);
        let d = Synthesizer::new(spec().seed(43)).build();
        assert_ne!(a, d);
    }

    #[test]
    fn area_minimum_when_target_too_small() {
        let s = spec().target_area(10); // far below the structural minimum
        let c = Synthesizer::new(s.clone()).build();
        let st = CircuitStats::of(&c, &AreaModel::paper());
        assert_eq!(st.area, s.min_area());
    }

    #[test]
    fn no_registers_case_works() {
        let s = SynthSpec::new("comb")
            .primary_inputs(5)
            .flip_flops(0)
            .gates(20)
            .inverters(4)
            .seed(3);
        let c = Synthesizer::new(s).build();
        assert_eq!(c.num_flip_flops(), 0);
        assert_eq!(find_combinational_cycle(&c), None);
    }

    #[test]
    fn register_ring_fallback_when_no_gates() {
        let s = SynthSpec::new("ring")
            .primary_inputs(1)
            .flip_flops(4)
            .dffs_on_scc(4)
            .gates(0)
            .inverters(0)
            .seed(3);
        let c = Synthesizer::new(s).build();
        assert_eq!(c.num_flip_flops(), 4);
        // Every register's D is another register: a pure ring.
        for id in c.flip_flops() {
            let f = c.cell(id).fanin();
            assert_eq!(f.len(), 1);
            assert_eq!(c.cell(f[0]).kind(), CellKind::Dff);
        }
    }

    #[test]
    fn wide_fanin_respects_planned_area() {
        // Force many extra inputs into few gates.
        let s = SynthSpec::new("wide")
            .primary_inputs(10)
            .gates(5)
            .inverters(0)
            .flip_flops(0)
            .target_area(40) // 5 gates, budget 40 => n3=5, extras=25
            .seed(9);
        let c = Synthesizer::new(s).build();
        let st = CircuitStats::of(&c, &AreaModel::paper());
        assert_eq!(st.area, 40);
    }
}
