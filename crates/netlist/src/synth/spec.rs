//! The synthesis specification.

use crate::area::AreaUnits;

/// Parameters controlling synthetic circuit generation.
///
/// Counts are honoured exactly; `target_area` is hit exactly when it is at
/// least the structural minimum (`inverters + 2·gates + 10·flip_flops`),
/// otherwise the generator produces the minimum and the caller can compare
/// via [`CircuitStats`](crate::CircuitStats).
///
/// # Examples
///
/// ```
/// use ppet_netlist::{SynthSpec, Synthesizer};
///
/// let spec = SynthSpec::new("demo")
///     .primary_inputs(8)
///     .flip_flops(6)
///     .gates(40)
///     .inverters(10)
///     .dffs_on_scc(4)
///     .seed(1);
/// let circuit = Synthesizer::new(spec).build();
/// assert_eq!(circuit.num_inputs(), 8);
/// assert_eq!(circuit.num_flip_flops(), 6);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SynthSpec {
    pub(crate) name: String,
    pub(crate) primary_inputs: usize,
    pub(crate) primary_outputs: usize,
    pub(crate) flip_flops: usize,
    pub(crate) gates: usize,
    pub(crate) inverters: usize,
    pub(crate) target_area: Option<AreaUnits>,
    pub(crate) dffs_on_scc: usize,
    pub(crate) max_fanin: usize,
    pub(crate) locality_prob: f64,
    pub(crate) locality_window: usize,
    pub(crate) late_fraction: f64,
    pub(crate) walk_steps: usize,
    pub(crate) seed: u64,
}

impl SynthSpec {
    /// Creates a specification with small defaults (4 inputs, 2 outputs,
    /// no registers, 8 gates, 2 inverters).
    #[must_use]
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            primary_inputs: 4,
            primary_outputs: 2,
            flip_flops: 0,
            gates: 8,
            inverters: 2,
            target_area: None,
            dffs_on_scc: 0,
            max_fanin: 9,
            locality_prob: 0.5,
            locality_window: 24,
            late_fraction: 0.25,
            walk_steps: 6,
            seed: 0,
        }
    }

    /// Sets the number of primary inputs (≥ 1 recommended).
    #[must_use]
    pub fn primary_inputs(mut self, n: usize) -> Self {
        self.primary_inputs = n;
        self
    }

    /// Sets the minimum number of primary outputs. Dangling cells are always
    /// promoted to outputs, so the actual count can be higher.
    #[must_use]
    pub fn primary_outputs(mut self, n: usize) -> Self {
        self.primary_outputs = n;
        self
    }

    /// Sets the number of D flip-flops.
    #[must_use]
    pub fn flip_flops(mut self, n: usize) -> Self {
        self.flip_flops = n;
        self
    }

    /// Sets the number of multi-input gates.
    #[must_use]
    pub fn gates(mut self, n: usize) -> Self {
        self.gates = n;
        self
    }

    /// Sets the number of inverters.
    #[must_use]
    pub fn inverters(mut self, n: usize) -> Self {
        self.inverters = n;
        self
    }

    /// Sets the estimated-area target (paper units). `None` leaves the area
    /// at the structural minimum.
    #[must_use]
    pub fn target_area(mut self, area: AreaUnits) -> Self {
        self.target_area = Some(area);
        self
    }

    /// Sets how many flip-flops must lie on feedback cycles (nontrivial
    /// SCCs). Clamped to the flip-flop count.
    #[must_use]
    pub fn dffs_on_scc(mut self, n: usize) -> Self {
        self.dffs_on_scc = n;
        self
    }

    /// Sets the maximum gate fan-in (≥ 2). Extra-input distribution raises
    /// this automatically if the area target demands it.
    #[must_use]
    pub fn max_fanin(mut self, n: usize) -> Self {
        self.max_fanin = n.max(2);
        self
    }

    /// Sets the probability that a fan-in is drawn from the recent-cell
    /// locality window rather than uniformly (structure knob).
    #[must_use]
    pub fn locality(mut self, prob: f64, window: usize) -> Self {
        self.locality_prob = prob.clamp(0.0, 1.0);
        self.locality_window = window.max(1);
        self
    }

    /// Sets the fraction of combinational cells placed in the late
    /// (provably acyclic) layer that hosts off-SCC register fan-out.
    #[must_use]
    pub fn late_fraction(mut self, frac: f64) -> Self {
        self.late_fraction = frac.clamp(0.0, 0.9);
        self
    }

    /// Sets the maximum downstream walk length used to close register
    /// feedback cycles (longer walks yield larger SCCs).
    #[must_use]
    pub fn walk_steps(mut self, n: usize) -> Self {
        self.walk_steps = n.max(1);
        self
    }

    /// Sets the generator seed.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// The structural minimum area for these counts
    /// (`inverters + 2·gates + 10·flip_flops`).
    #[must_use]
    pub fn min_area(&self) -> AreaUnits {
        self.inverters as AreaUnits
            + 2 * self.gates as AreaUnits
            + 10 * self.flip_flops as AreaUnits
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_chain_sets_fields() {
        let s = SynthSpec::new("x")
            .primary_inputs(3)
            .primary_outputs(2)
            .flip_flops(5)
            .gates(7)
            .inverters(1)
            .target_area(99)
            .dffs_on_scc(4)
            .max_fanin(6)
            .locality(0.3, 10)
            .late_fraction(0.4)
            .walk_steps(3)
            .seed(77);
        assert_eq!(s.primary_inputs, 3);
        assert_eq!(s.flip_flops, 5);
        assert_eq!(s.target_area, Some(99));
        assert_eq!(s.seed, 77);
    }

    #[test]
    fn min_area_formula() {
        let s = SynthSpec::new("x").gates(10).inverters(4).flip_flops(2);
        assert_eq!(s.min_area(), 4 + 20 + 20);
    }

    #[test]
    fn knobs_are_clamped() {
        let s = SynthSpec::new("x")
            .max_fanin(0)
            .locality(2.0, 0)
            .late_fraction(1.5);
        assert_eq!(s.max_fanin, 2);
        assert_eq!(s.locality_prob, 1.0);
        assert_eq!(s.locality_window, 1);
        assert_eq!(s.late_fraction, 0.9);
    }
}
