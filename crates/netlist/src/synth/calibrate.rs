//! Calibration of synthetic circuits to the paper's published statistics.

use ppet_prng::SplitMix64;

use crate::circuit::Circuit;
use crate::data::table9::{self, BenchmarkRecord};
use crate::synth::builder::Synthesizer;
use crate::synth::spec::SynthSpec;

use ppet_prng::Rng as _;

/// Derives a [`SynthSpec`] from a published benchmark record.
///
/// The seed is derived deterministically from the circuit name so the same
/// synthetic circuit is produced in every process, every run; pass a
/// different `seed_salt` to obtain an independent instance with the same
/// statistics (used by the robustness ablation).
#[must_use]
pub fn calibrated_spec(record: &BenchmarkRecord, seed_salt: u64) -> SynthSpec {
    let mut h = SplitMix64::new(seed_salt);
    let mut seed = h.next_u64();
    for b in record.name.bytes() {
        seed = seed.wrapping_mul(0x100).wrapping_add(u64::from(b));
        seed ^= SplitMix64::new(seed).next_u64();
    }
    SynthSpec::new(record.name)
        .primary_inputs(record.primary_inputs)
        .primary_outputs(record.primary_outputs)
        .flip_flops(record.flip_flops)
        .gates(record.gates)
        .inverters(record.inverters)
        .target_area(record.area)
        .dffs_on_scc(record.dffs_on_scc)
        // High wiring locality approximates the clustered structure of the
        // real MCNC netlists: with the generator's default (0.5/24) the
        // partitioner cuts ~2.5x the published net counts; at 0.9/12 the
        // totals land within ~10-50% while SCC cut counts stay realistic
        // (swept in the locality probe; see DESIGN.md §3.1).
        .locality(0.9, 12)
        .seed(seed)
}

/// Builds the ISCAS89-like synthetic stand-in for the named circuit
/// (`"s641"`, `"s9234.1"`, …), or `None` if the name is not one of the 17
/// circuits of the paper's Table 9.
///
/// # Examples
///
/// ```
/// let c = ppet_netlist::synth::iscas89_like("s641").expect("known circuit");
/// assert_eq!(c.num_inputs(), 35);
/// assert_eq!(c.num_flip_flops(), 19);
/// ```
#[must_use]
pub fn iscas89_like(name: &str) -> Option<Circuit> {
    let record = table9::find(name)?;
    Some(Synthesizer::new(calibrated_spec(record, 0)).build())
}

/// Builds the whole 17-circuit suite, in Table 9 order.
#[must_use]
pub fn iscas89_suite() -> Vec<Circuit> {
    table9::TABLE9
        .iter()
        .map(|r| Synthesizer::new(calibrated_spec(r, 0)).build())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::area::AreaModel;
    use crate::stats::CircuitStats;
    use crate::validate::find_combinational_cycle;

    #[test]
    fn unknown_name_is_none() {
        assert!(iscas89_like("s0").is_none());
    }

    #[test]
    fn small_circuits_match_published_statistics() {
        for name in [
            "s510", "s420.1", "s641", "s713", "s820", "s832", "s838.1", "s1423",
        ] {
            let record = table9::find(name).unwrap();
            let c = iscas89_like(name).unwrap();
            let s = CircuitStats::of(&c, &AreaModel::paper());
            assert_eq!(s.primary_inputs, record.primary_inputs, "{name} PIs");
            assert_eq!(s.flip_flops, record.flip_flops, "{name} DFFs");
            assert_eq!(s.gates, record.gates, "{name} gates");
            assert_eq!(s.inverters, record.inverters, "{name} INVs");
            assert_eq!(s.area, record.area, "{name} area");
            assert_eq!(find_combinational_cycle(&c), None, "{name} comb cycle");
        }
    }

    #[test]
    fn salt_changes_instance_but_not_statistics() {
        let r = table9::find("s641").unwrap();
        let a = Synthesizer::new(calibrated_spec(r, 0)).build();
        let b = Synthesizer::new(calibrated_spec(r, 1)).build();
        assert_ne!(a, b);
        let model = AreaModel::paper();
        let sa = CircuitStats::of(&a, &model);
        let sb = CircuitStats::of(&b, &model);
        assert_eq!(sa.area, sb.area);
        assert_eq!(sa.gates, sb.gates);
    }
}
