//! Synthetic ISCAS89-like benchmark generation.
//!
//! The paper evaluates on the MCNC ISCAS89 netlists, which cannot be
//! redistributed with this repository. Every algorithm in the paper consumes
//! only circuit *structure* — connectivity, fan-in distribution, register
//! placement, strongly-connected-component shape — so the experiments here
//! run on synthetic circuits whose structural statistics are calibrated to
//! the published Table 9/10 numbers:
//!
//! * primary-input, flip-flop, gate and inverter counts match **exactly**;
//! * estimated area matches **exactly** whenever the published numbers are
//!   mutually consistent (they are, for all 17 circuits — see the
//!   `area_budget_is_feasible_for_generator` test in
//!   [`crate::data::table9`]);
//! * the number of flip-flops inside nontrivial SCCs matches the published
//!   "DFFs on SCC" column **exactly, by construction** (on-SCC registers are
//!   placed on generated feedback cycles; off-SCC registers are provably
//!   acyclic by the generator's layering — see `builder`).
//!
//! See `DESIGN.md` §3 for the substitution rationale.

mod builder;
mod calibrate;
mod spec;

pub use builder::Synthesizer;
pub use calibrate::{calibrated_spec, iscas89_like, iscas89_suite};
pub use spec::SynthSpec;
