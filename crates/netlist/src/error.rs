//! Error types for circuit construction and parsing.

use std::error::Error;
use std::fmt;

use crate::cell::{CellId, CellKind};

/// Errors raised while building a [`Circuit`](crate::Circuit)
/// programmatically.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum BuildCircuitError {
    /// A cell with this name already exists.
    DuplicateName {
        /// The offending name.
        name: String,
    },
    /// Fan-in count is illegal for the cell kind.
    BadFanin {
        /// The cell being added.
        name: String,
        /// The cell kind whose arity was violated.
        kind: CellKind,
        /// Number of fan-ins supplied.
        got: usize,
    },
    /// A fan-in id does not refer to an existing cell.
    UnknownCell {
        /// The unresolved id.
        id: CellId,
    },
    /// A cell listed itself as a fan-in.
    SelfLoop {
        /// The cell being added.
        name: String,
    },
}

impl fmt::Display for BuildCircuitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::DuplicateName { name } => write!(f, "duplicate cell name `{name}`"),
            Self::BadFanin { name, kind, got } => write!(
                f,
                "cell `{name}` of kind {kind} given {got} fan-ins (legal range {:?})",
                kind.fanin_range()
            ),
            Self::UnknownCell { id } => write!(f, "fan-in {id} does not exist"),
            Self::SelfLoop { name } => write!(f, "cell `{name}` lists itself as a fan-in"),
        }
    }
}

impl Error for BuildCircuitError {}

/// Errors raised while parsing ISCAS89 `.bench` text.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ParseBenchError {
    /// The line could not be recognized as input, output, or gate
    /// definition.
    Syntax {
        /// 1-based line number.
        line: usize,
        /// The offending text.
        text: String,
    },
    /// An unknown gate keyword was used.
    UnknownGate {
        /// 1-based line number.
        line: usize,
        /// The keyword.
        keyword: String,
    },
    /// A signal was referenced but never defined.
    UndefinedSignal {
        /// The signal name.
        name: String,
    },
    /// A signal was defined more than once.
    Redefined {
        /// 1-based line number of the second definition.
        line: usize,
        /// The signal name.
        name: String,
    },
    /// A structural constraint was violated when assembling the circuit.
    Build {
        /// The underlying construction error.
        source: BuildCircuitError,
    },
}

impl fmt::Display for ParseBenchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Syntax { line, text } => write!(f, "line {line}: unrecognized syntax `{text}`"),
            Self::UnknownGate { line, keyword } => {
                write!(f, "line {line}: unknown gate keyword `{keyword}`")
            }
            Self::UndefinedSignal { name } => {
                write!(f, "signal `{name}` referenced but never defined")
            }
            Self::Redefined { line, name } => {
                write!(f, "line {line}: signal `{name}` defined more than once")
            }
            Self::Build { source } => write!(f, "invalid circuit: {source}"),
        }
    }
}

impl Error for ParseBenchError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            Self::Build { source } => Some(source),
            _ => None,
        }
    }
}

impl From<BuildCircuitError> for ParseBenchError {
    fn from(source: BuildCircuitError) -> Self {
        Self::Build { source }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let e = BuildCircuitError::DuplicateName { name: "g1".into() };
        assert_eq!(e.to_string(), "duplicate cell name `g1`");
        let e = ParseBenchError::UndefinedSignal { name: "x".into() };
        assert!(e.to_string().contains("never defined"));
    }

    #[test]
    fn parse_error_wraps_build_error() {
        let b = BuildCircuitError::SelfLoop { name: "q".into() };
        let p: ParseBenchError = b.clone().into();
        assert!(p.to_string().contains("lists itself"));
        assert!(std::error::Error::source(&p).is_some());
    }
}
