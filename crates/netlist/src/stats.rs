//! Circuit statistics — the columns of the paper's Table 9.

use std::fmt;

use crate::area::{AreaModel, AreaUnits};
use crate::cell::CellKind;
use crate::circuit::Circuit;

/// Summary statistics of a circuit, matching the paper's Table 9 columns
/// (plus primary outputs, which Table 9 omits).
///
/// # Examples
///
/// ```
/// use ppet_netlist::{data, AreaModel, CircuitStats};
///
/// let stats = CircuitStats::of(&data::s27(), &AreaModel::paper());
/// assert_eq!(stats.flip_flops, 3);
/// assert_eq!(stats.inverters, 2);
/// assert_eq!(stats.gates, 8);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CircuitStats {
    /// Circuit name.
    pub name: String,
    /// Number of primary inputs ("No. of PIs").
    pub primary_inputs: usize,
    /// Number of primary outputs (not in Table 9; reported for completeness).
    pub primary_outputs: usize,
    /// Number of D flip-flops ("No. of DFFs").
    pub flip_flops: usize,
    /// Number of multi-input logic gates ("No. of Gates"; excludes
    /// inverters and buffers, which ISCAS89 statistics list separately).
    pub gates: usize,
    /// Number of inverters and buffers ("No. of INVs").
    pub inverters: usize,
    /// Estimated area in the paper's units ("Estimated Area").
    pub area: AreaUnits,
}

impl CircuitStats {
    /// Computes the statistics of `circuit` under `model`.
    #[must_use]
    pub fn of(circuit: &Circuit, model: &AreaModel) -> Self {
        let mut gates = 0;
        let mut inverters = 0;
        for (_, cell) in circuit.iter() {
            match cell.kind() {
                k if k.is_multi_input_gate() => gates += 1,
                CellKind::Not | CellKind::Buf => inverters += 1,
                _ => {}
            }
        }
        Self {
            name: circuit.name().to_string(),
            primary_inputs: circuit.num_inputs(),
            primary_outputs: circuit.outputs().len(),
            flip_flops: circuit.num_flip_flops(),
            gates,
            inverters,
            area: model.circuit_area(circuit),
        }
    }

    /// Formats the Table 9 header row.
    #[must_use]
    pub fn table_header() -> String {
        format!(
            "{:<10} {:>7} {:>7} {:>7} {:>7} {:>10}",
            "Circuit", "PIs", "DFFs", "Gates", "INVs", "Area"
        )
    }

    /// Formats this record as a Table 9 row.
    #[must_use]
    pub fn table_row(&self) -> String {
        format!(
            "{:<10} {:>7} {:>7} {:>7} {:>7} {:>10}",
            self.name, self.primary_inputs, self.flip_flops, self.gates, self.inverters, self.area
        )
    }
}

impl fmt::Display for CircuitStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {} PIs, {} POs, {} DFFs, {} gates, {} INVs, area {}",
            self.name,
            self.primary_inputs,
            self.primary_outputs,
            self.flip_flops,
            self.gates,
            self.inverters,
            self.area
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data;

    #[test]
    fn s27_statistics() {
        let stats = CircuitStats::of(&data::s27(), &AreaModel::paper());
        assert_eq!(stats.primary_inputs, 4);
        assert_eq!(stats.primary_outputs, 1);
        assert_eq!(stats.flip_flops, 3);
        assert_eq!(stats.gates, 8);
        assert_eq!(stats.inverters, 2);
        // 2 INV (2) + 2 AND?? — verified by hand below:
        //   NOT G14, NOT G17               -> 2 * 1 = 2
        //   AND G8                         -> 3
        //   OR G15, OR G16                 -> 2 * 3 = 6
        //   NAND G9, NAND G13              -> 2 * 2 = 4
        //   NOR G10, NOR G11, NOR G12      -> 3 * 2 = 6
        //   DFF G5, G6, G7                 -> 3 * 10 = 30
        assert_eq!(stats.area, 2 + 3 + 6 + 4 + 6 + 30);
    }

    #[test]
    fn table_row_aligns_with_header() {
        let stats = CircuitStats::of(&data::s27(), &AreaModel::paper());
        let header = CircuitStats::table_header();
        let row = stats.table_row();
        assert_eq!(header.len(), row.len());
        assert!(row.starts_with("s27"));
    }
}
