//! Byte-granular delta encoding against a base artifact.
//!
//! The op stream is the classic copy/insert vocabulary (the shape of
//! xdelta/gdelta, reduced to two ops):
//!
//! ```text
//! 0x00  copy    base_off: u32, len: u32     — copy len bytes of the base
//! 0x01  literal len: u32, bytes             — insert len new bytes
//! ```
//!
//! Encoding is greedy: every offset of the base is indexed by the FNV
//! hash of its [`WINDOW`]-byte window; the scan over the new data looks
//! its current window up, verifies candidates byte-for-byte, extends the
//! longest true match as far as it goes, and falls back to literal bytes
//! between matches. Byte-granular matching (rather than chunk-aligned)
//! is what makes insertions cheap: one inserted byte shifts every later
//! offset, which chunk alignment would turn into "everything differs".
//!
//! [`decode`] is bounds-checked everywhere — a corrupt delta yields
//! [`DeltaError`], never a panic or a wrong artifact (the caller also
//! CRC-checks the record and length-checks the result).

use crate::chunk::fnv1a;

/// Match window width; also the minimum useful copy length (a copy op
/// costs 9 bytes, so shorter matches are stored as literals).
pub const WINDOW: usize = 16;

/// Max base offsets remembered per window hash. Bounds worst-case
/// encoding time on pathological (highly repetitive) bases.
const MAX_CANDIDATES: usize = 8;

/// Why a delta op stream failed to decode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DeltaError {
    /// The op stream ended mid-op.
    Truncated,
    /// An op tag is not `copy`/`literal`.
    UnknownOp(u8),
    /// A copy op points outside the base.
    CopyOutOfRange,
}

impl std::fmt::Display for DeltaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DeltaError::Truncated => write!(f, "delta op stream truncated"),
            DeltaError::UnknownOp(op) => write!(f, "unknown delta op {op}"),
            DeltaError::CopyOutOfRange => write!(f, "copy op exceeds base bounds"),
        }
    }
}

/// Encodes `data` as a delta against `base`.
///
/// The result always decodes back to `data` exactly; it is only *useful*
/// (smaller than `data`) when the two share long byte runs — the caller
/// compares sizes and keeps the raw bytes otherwise.
#[must_use]
pub fn encode(base: &[u8], data: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(data.len() / 4 + 16);
    if base.len() < WINDOW || data.len() < WINDOW {
        push_literal(&mut out, data);
        return out;
    }

    // Index every base window by hash.
    let mut index: std::collections::HashMap<u64, Vec<u32>> = std::collections::HashMap::new();
    for off in 0..=base.len() - WINDOW {
        let h = fnv1a(&base[off..off + WINDOW]);
        let slots = index.entry(h).or_default();
        if slots.len() < MAX_CANDIDATES {
            slots.push(off as u32);
        }
    }

    let mut pos = 0usize;
    let mut lit_start = 0usize;
    while pos + WINDOW <= data.len() {
        let h = fnv1a(&data[pos..pos + WINDOW]);
        let mut best: Option<(usize, usize)> = None; // (base_off, len)
        if let Some(cands) = index.get(&h) {
            for &cand in cands {
                let cand = cand as usize;
                if base[cand..cand + WINDOW] != data[pos..pos + WINDOW] {
                    continue; // hash collision
                }
                let mut len = WINDOW;
                while cand + len < base.len()
                    && pos + len < data.len()
                    && base[cand + len] == data[pos + len]
                {
                    len += 1;
                }
                if best.map_or(true, |(_, b)| len > b) {
                    best = Some((cand, len));
                }
            }
        }
        match best {
            Some((off, len)) => {
                push_literal(&mut out, &data[lit_start..pos]);
                out.push(0x00);
                out.extend_from_slice(&(off as u32).to_le_bytes());
                out.extend_from_slice(&(len as u32).to_le_bytes());
                pos += len;
                lit_start = pos;
            }
            None => pos += 1,
        }
    }
    push_literal(&mut out, &data[lit_start..]);
    out
}

fn push_literal(out: &mut Vec<u8>, bytes: &[u8]) {
    if bytes.is_empty() {
        return;
    }
    out.push(0x01);
    out.extend_from_slice(&(bytes.len() as u32).to_le_bytes());
    out.extend_from_slice(bytes);
}

/// Applies a delta op stream to `base`, reproducing the encoded artifact.
///
/// # Errors
///
/// [`DeltaError`] when the op stream is truncated, carries an unknown op,
/// or copies outside the base.
pub fn decode(base: &[u8], delta: &[u8]) -> Result<Vec<u8>, DeltaError> {
    let mut out = Vec::with_capacity(delta.len());
    let mut pos = 0usize;
    while pos < delta.len() {
        let op = delta[pos];
        pos += 1;
        match op {
            0x00 => {
                let off = read_u32(delta, pos)? as usize;
                let len = read_u32(delta, pos + 4)? as usize;
                pos += 8;
                let slice = base
                    .get(off..off.checked_add(len).ok_or(DeltaError::CopyOutOfRange)?)
                    .ok_or(DeltaError::CopyOutOfRange)?;
                out.extend_from_slice(slice);
            }
            0x01 => {
                let len = read_u32(delta, pos)? as usize;
                pos += 4;
                let slice = delta
                    .get(pos..pos.checked_add(len).ok_or(DeltaError::Truncated)?)
                    .ok_or(DeltaError::Truncated)?;
                out.extend_from_slice(slice);
                pos += len;
            }
            other => return Err(DeltaError::UnknownOp(other)),
        }
    }
    Ok(out)
}

fn read_u32(delta: &[u8], at: usize) -> Result<u32, DeltaError> {
    delta
        .get(at..at + 4)
        .map(|b| u32::from_le_bytes(b.try_into().expect("4-byte slice")))
        .ok_or(DeltaError::Truncated)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn round_trip(base: &[u8], data: &[u8]) -> usize {
        let delta = encode(base, data);
        assert_eq!(decode(base, &delta).expect("decodes"), data);
        delta.len()
    }

    #[test]
    fn identical_data_collapses_to_one_copy() {
        let data: Vec<u8> = (0..2048u32).flat_map(|i| i.to_le_bytes()).collect();
        let len = round_trip(&data, &data);
        assert_eq!(len, 9, "one copy op: {len} bytes");
    }

    #[test]
    fn insertion_in_the_middle_stays_small() {
        let base: Vec<u8> = (0..2048u32).flat_map(|i| i.to_le_bytes()).collect();
        let mut data = base.clone();
        data.splice(4096..4096, b"INSERTED PAYLOAD".iter().copied());
        let len = round_trip(&base, &data);
        assert!(len < 60, "copy + literal + copy, got {len} bytes");
        assert!(len < data.len() / 10);
    }

    #[test]
    fn unrelated_data_degenerates_to_a_literal() {
        let base = vec![0xAAu8; 500];
        let data: Vec<u8> = (0..500u32).map(|i| (i % 251) as u8).collect();
        let delta = encode(&base, &data);
        assert_eq!(decode(&base, &delta).unwrap(), data);
        // Never catastrophically larger than raw.
        assert!(delta.len() <= data.len() + 5 + 13 * (data.len() / WINDOW + 1));
    }

    #[test]
    fn short_inputs_are_pure_literals() {
        assert_eq!(round_trip(b"abc", b"abc"), 8);
        assert_eq!(round_trip(&[], b"xyz"), 8);
        assert_eq!(round_trip(b"base", &[]), 0);
    }

    #[test]
    fn corrupt_deltas_error_instead_of_panicking() {
        let base = b"0123456789abcdef0123456789abcdef".to_vec();
        let good = encode(&base, &base);
        assert_eq!(decode(&base, &[0x02]), Err(DeltaError::UnknownOp(2)));
        assert_eq!(decode(&base, &good[..5]), Err(DeltaError::Truncated));
        let mut bad_copy = vec![0x00];
        bad_copy.extend_from_slice(&u32::MAX.to_le_bytes());
        bad_copy.extend_from_slice(&u32::MAX.to_le_bytes());
        assert_eq!(decode(&base, &bad_copy), Err(DeltaError::CopyOutOfRange));
    }

    proptest! {
        #[test]
        fn random_edits_round_trip(
            seedlen in 64usize..512,
            cut in 0usize..64,
            insert in proptest::collection::vec(proptest::prelude::any::<u8>(), 0..64),
        ) {
            let base: Vec<u8> = (0..seedlen as u32).flat_map(|i| i.to_le_bytes()).collect();
            let mut data = base.clone();
            let cut = cut.min(data.len());
            data.drain(..cut);
            let at = data.len() / 2;
            data.splice(at..at, insert.iter().copied());
            let delta = encode(&base, &data);
            prop_assert_eq!(decode(&base, &delta).unwrap(), data);
        }

        #[test]
        fn arbitrary_pairs_round_trip(
            base in proptest::collection::vec(proptest::prelude::any::<u8>(), 0..300),
            data in proptest::collection::vec(proptest::prelude::any::<u8>(), 0..300),
        ) {
            let delta = encode(&base, &data);
            prop_assert_eq!(decode(&base, &delta).unwrap(), data);
        }
    }
}
