//! Byte-granular delta encoding against a base artifact.
//!
//! The op stream is the classic copy/insert vocabulary (the shape of
//! xdelta/gdelta, reduced to two ops). Since format v2 every integer is
//! a LEB128 varint and the two ops share one header:
//!
//! ```text
//! byte 0: 0x02                      — format tag (v2, varint ops)
//! header: varint h                  — kind = h & 1, len = h >> 1
//!   kind 0  copy    varint base_off — copy len bytes of the base
//!   kind 1  literal len bytes       — insert len new bytes
//! ```
//!
//! A typical copy op costs 3–6 bytes where the v1 fixed-width framing
//! paid 9 — on near-duplicate manifests the op overhead roughly halves.
//! Streams whose first byte is a v1 op tag (`0x00`/`0x01`: u32 fields)
//! still decode, so logs written before the format bump stay readable.
//!
//! Encoding is greedy: every [`INDEX_STRIDE`]-th base offset is indexed
//! by the FNV hash of its [`WINDOW`]-byte window; the scan over the new
//! data looks its current window up at every byte offset, verifies
//! candidates byte-for-byte, extends the longest true match forward as
//! far as it goes — and then *backward* into the pending literal run
//! while bytes agree, reclaiming the up-to-`INDEX_STRIDE−1` bytes the
//! strided index makes a resync land late by. Byte-granular probing
//! (rather than chunk-aligned) is what makes insertions cheap: one
//! inserted byte shifts every later offset, which chunk alignment would
//! turn into "everything differs".
//!
//! [`decode`] is bounds-checked everywhere — a corrupt delta yields
//! [`DeltaError`], never a panic or a wrong artifact. The caller passes
//! the record's declared decoded length and decode fails with
//! [`DeltaError::TooLarge`] the moment an op would push the output past
//! it, so a malicious op stream of repeated max-length copies cannot
//! balloon memory before a post-hoc length check runs.

use crate::chunk::fnv1a;

/// Match window width; also the minimum useful copy length.
pub const WINDOW: usize = 16;

/// Every `INDEX_STRIDE`-th base window is indexed. Probing stays
/// byte-granular, so a match can land at any data offset; backward
/// extension recovers the bytes a strided resync misses.
pub const INDEX_STRIDE: usize = 4;

/// Max base offsets remembered per window hash. Bounds worst-case
/// encoding time on pathological (highly repetitive) bases.
const MAX_CANDIDATES: usize = 8;

/// Format tag of the varint op encoding. v1 streams start with an op
/// tag (`0x00` copy / `0x01` literal) instead and take the legacy path.
const FORMAT_VARINT: u8 = 0x02;

/// Cap on speculative output preallocation (the declared length is
/// trusted for the *bound*, not for an up-front allocation).
const MAX_PREALLOC: usize = 1 << 20;

/// Why a delta op stream failed to decode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DeltaError {
    /// The op stream ended mid-op.
    Truncated,
    /// An op tag is not `copy`/`literal`.
    UnknownOp(u8),
    /// A copy op points outside the base.
    CopyOutOfRange,
    /// The ops produce more bytes than the record's declared decoded
    /// length — a corrupt or malicious stream, rejected before the
    /// output buffer can balloon.
    TooLarge,
    /// A varint ran past 10 bytes (64-bit range exceeded).
    BadVarint,
}

impl std::fmt::Display for DeltaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DeltaError::Truncated => write!(f, "delta op stream truncated"),
            DeltaError::UnknownOp(op) => write!(f, "unknown delta op {op}"),
            DeltaError::CopyOutOfRange => write!(f, "copy op exceeds base bounds"),
            DeltaError::TooLarge => write!(f, "delta output exceeds declared length"),
            DeltaError::BadVarint => write!(f, "varint exceeds 64-bit range"),
        }
    }
}

/// Encodes `data` as a delta against `base` (format v2).
///
/// The result always decodes back to `data` exactly; it is only *useful*
/// (smaller than `data`) when the two share long byte runs — the caller
/// compares sizes and keeps the raw bytes otherwise. Empty `data`
/// encodes as the empty stream.
#[must_use]
pub fn encode(base: &[u8], data: &[u8]) -> Vec<u8> {
    encode_impl(base, data, true)
}

/// The encoder proper. `backtrack` gates leftward match extension so
/// tests can pin exactly what it buys; production always extends.
fn encode_impl(base: &[u8], data: &[u8], backtrack: bool) -> Vec<u8> {
    let mut out = Vec::with_capacity(data.len() / 4 + 16);
    if data.is_empty() {
        return out;
    }
    out.push(FORMAT_VARINT);
    if base.len() < WINDOW || data.len() < WINDOW {
        push_literal(&mut out, data);
        return out;
    }

    // Index every INDEX_STRIDE-th base window by hash.
    let mut index: std::collections::HashMap<u64, Vec<u32>> = std::collections::HashMap::new();
    for off in (0..=base.len() - WINDOW).step_by(INDEX_STRIDE) {
        let h = fnv1a(&base[off..off + WINDOW]);
        let slots = index.entry(h).or_default();
        if slots.len() < MAX_CANDIDATES {
            slots.push(off as u32);
        }
    }

    let mut pos = 0usize;
    let mut lit_start = 0usize;
    while pos + WINDOW <= data.len() {
        let h = fnv1a(&data[pos..pos + WINDOW]);
        let mut best: Option<(usize, usize)> = None; // (base_off, len)
        if let Some(cands) = index.get(&h) {
            for &cand in cands {
                let cand = cand as usize;
                if base[cand..cand + WINDOW] != data[pos..pos + WINDOW] {
                    continue; // hash collision
                }
                let mut len = WINDOW;
                while cand + len < base.len()
                    && pos + len < data.len()
                    && base[cand + len] == data[pos + len]
                {
                    len += 1;
                }
                if best.map_or(true, |(_, b)| len > b) {
                    best = Some((cand, len));
                }
            }
        }
        match best {
            Some((mut off, mut len)) => {
                if backtrack {
                    // Extend leftward into the pending literal run: the
                    // strided index finds a resync up to INDEX_STRIDE−1
                    // bytes late, and those bytes are already part of
                    // the match.
                    while off > 0 && pos > lit_start && base[off - 1] == data[pos - 1] {
                        off -= 1;
                        pos -= 1;
                        len += 1;
                    }
                }
                push_literal(&mut out, &data[lit_start..pos]);
                push_copy(&mut out, off, len);
                pos += len;
                lit_start = pos;
            }
            None => pos += 1,
        }
    }
    push_literal(&mut out, &data[lit_start..]);
    out
}

fn push_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

fn push_literal(out: &mut Vec<u8>, bytes: &[u8]) {
    if bytes.is_empty() {
        return;
    }
    push_varint(out, (bytes.len() as u64) << 1 | 1);
    out.extend_from_slice(bytes);
}

fn push_copy(out: &mut Vec<u8>, off: usize, len: usize) {
    push_varint(out, (len as u64) << 1);
    push_varint(out, off as u64);
}

/// Applies a delta op stream to `base`, reproducing the encoded
/// artifact. `expected_len` is the decoded length the enclosing record
/// declares; it bounds the output *during* decoding.
///
/// # Errors
///
/// [`DeltaError`] when the op stream is truncated, carries an unknown
/// op or over-long varint, copies outside the base, or produces more
/// than `expected_len` bytes. (Producing *fewer* bytes is left to the
/// caller's exact length check — a short stream is detectable there,
/// only overproduction has to be stopped mid-flight.)
pub fn decode(base: &[u8], delta: &[u8], expected_len: usize) -> Result<Vec<u8>, DeltaError> {
    if delta.first() == Some(&FORMAT_VARINT) {
        decode_varint_ops(base, delta, expected_len)
    } else {
        decode_legacy(base, delta, expected_len)
    }
}

fn decode_varint_ops(
    base: &[u8],
    delta: &[u8],
    expected_len: usize,
) -> Result<Vec<u8>, DeltaError> {
    let mut out = Vec::with_capacity(expected_len.min(MAX_PREALLOC));
    let mut pos = 1usize; // past the format tag
    while pos < delta.len() {
        let header = read_varint(delta, &mut pos)?;
        let len = usize::try_from(header >> 1).map_err(|_| DeltaError::TooLarge)?;
        if exceeds(out.len(), len, expected_len) {
            return Err(DeltaError::TooLarge);
        }
        if header & 1 == 0 {
            let off = usize::try_from(read_varint(delta, &mut pos)?)
                .map_err(|_| DeltaError::CopyOutOfRange)?;
            let end = off.checked_add(len).ok_or(DeltaError::CopyOutOfRange)?;
            let slice = base.get(off..end).ok_or(DeltaError::CopyOutOfRange)?;
            out.extend_from_slice(slice);
        } else {
            let end = pos.checked_add(len).ok_or(DeltaError::Truncated)?;
            let slice = delta.get(pos..end).ok_or(DeltaError::Truncated)?;
            out.extend_from_slice(slice);
            pos = end;
        }
    }
    Ok(out)
}

/// The v1 fixed-width op stream (`0x00 off:u32 len:u32` copies,
/// `0x01 len:u32` literals), kept so pre-bump logs replay.
fn decode_legacy(base: &[u8], delta: &[u8], expected_len: usize) -> Result<Vec<u8>, DeltaError> {
    let mut out = Vec::with_capacity(expected_len.min(MAX_PREALLOC));
    let mut pos = 0usize;
    while pos < delta.len() {
        let op = delta[pos];
        pos += 1;
        match op {
            0x00 => {
                let off = read_u32(delta, pos)? as usize;
                let len = read_u32(delta, pos + 4)? as usize;
                pos += 8;
                if exceeds(out.len(), len, expected_len) {
                    return Err(DeltaError::TooLarge);
                }
                let slice = base
                    .get(off..off.checked_add(len).ok_or(DeltaError::CopyOutOfRange)?)
                    .ok_or(DeltaError::CopyOutOfRange)?;
                out.extend_from_slice(slice);
            }
            0x01 => {
                let len = read_u32(delta, pos)? as usize;
                pos += 4;
                if exceeds(out.len(), len, expected_len) {
                    return Err(DeltaError::TooLarge);
                }
                let slice = delta
                    .get(pos..pos.checked_add(len).ok_or(DeltaError::Truncated)?)
                    .ok_or(DeltaError::Truncated)?;
                out.extend_from_slice(slice);
                pos += len;
            }
            other => return Err(DeltaError::UnknownOp(other)),
        }
    }
    Ok(out)
}

/// True when appending `len` more bytes to `have` would run past
/// `bound` — the mid-flight output-size gate.
fn exceeds(have: usize, len: usize, bound: usize) -> bool {
    have.checked_add(len).map_or(true, |total| total > bound)
}

fn read_varint(delta: &[u8], pos: &mut usize) -> Result<u64, DeltaError> {
    let mut value = 0u64;
    let mut shift = 0u32;
    loop {
        let byte = *delta.get(*pos).ok_or(DeltaError::Truncated)?;
        *pos += 1;
        if shift >= 64 {
            return Err(DeltaError::BadVarint);
        }
        value |= u64::from(byte & 0x7F) << shift;
        if byte & 0x80 == 0 {
            return Ok(value);
        }
        shift += 7;
    }
}

fn read_u32(delta: &[u8], at: usize) -> Result<u32, DeltaError> {
    delta
        .get(at..at + 4)
        .map(|b| u32::from_le_bytes(b.try_into().expect("4-byte slice")))
        .ok_or(DeltaError::Truncated)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn round_trip(base: &[u8], data: &[u8]) -> usize {
        let delta = encode(base, data);
        assert_eq!(decode(base, &delta, data.len()).expect("decodes"), data);
        delta.len()
    }

    #[test]
    fn identical_data_collapses_to_one_copy() {
        let data: Vec<u8> = (0..2048u32).flat_map(|i| i.to_le_bytes()).collect();
        let len = round_trip(&data, &data);
        // tag + header varint (len 8192 → 3 B) + offset varint (1 B).
        assert_eq!(len, 5, "one copy op: {len} bytes");
    }

    #[test]
    fn insertion_in_the_middle_stays_small() {
        let base: Vec<u8> = (0..2048u32).flat_map(|i| i.to_le_bytes()).collect();
        let mut data = base.clone();
        data.splice(4096..4096, b"INSERTED PAYLOAD".iter().copied());
        let len = round_trip(&base, &data);
        assert!(len < 40, "copy + literal + copy, got {len} bytes");
        assert!(len < data.len() / 10);
    }

    #[test]
    fn unrelated_data_degenerates_to_a_literal() {
        let base = vec![0xAAu8; 500];
        let data: Vec<u8> = (0..500u32).map(|i| (i % 251) as u8).collect();
        let delta = encode(&base, &data);
        assert_eq!(decode(&base, &delta, data.len()).unwrap(), data);
        // Never catastrophically larger than raw: see the proptest
        // `never_worse_than_pure_literals` for the general bound.
        assert!(delta.len() <= data.len() + 6);
    }

    #[test]
    fn short_inputs_are_pure_literals() {
        // tag + 1-byte header + bytes.
        assert_eq!(round_trip(b"abc", b"abc"), 5);
        assert_eq!(round_trip(&[], b"xyz"), 5);
        assert_eq!(round_trip(b"base", &[]), 0);
    }

    #[test]
    fn legacy_fixed_width_streams_still_decode() {
        let base = b"0123456789abcdef0123456789abcdef".to_vec();
        // v1 by hand: copy(0, 32) + literal "tail".
        let mut v1 = vec![0x00];
        v1.extend_from_slice(&0u32.to_le_bytes());
        v1.extend_from_slice(&32u32.to_le_bytes());
        v1.push(0x01);
        v1.extend_from_slice(&4u32.to_le_bytes());
        v1.extend_from_slice(b"tail");
        let mut expect = base.clone();
        expect.extend_from_slice(b"tail");
        assert_eq!(decode(&base, &v1, expect.len()).unwrap(), expect);
    }

    #[test]
    fn corrupt_deltas_error_instead_of_panicking() {
        let base: Vec<u8> = (0..2048u32).flat_map(|i| i.to_le_bytes()).collect();
        // 5 bytes: tag + 3-byte length varint + offset; cutting after
        // byte 2 leaves a continuation bit with nothing behind it.
        let good = encode(&base, &base);
        assert_eq!(good.len(), 5);
        assert_eq!(
            decode(&base, &[0x03], base.len()),
            Err(DeltaError::UnknownOp(3))
        );
        assert_eq!(
            decode(&base, &good[..3], base.len()),
            Err(DeltaError::Truncated)
        );
        // Legacy copy pointing far outside the base.
        let mut bad_copy = vec![0x00];
        bad_copy.extend_from_slice(&u32::MAX.to_le_bytes());
        bad_copy.extend_from_slice(&4u32.to_le_bytes());
        assert_eq!(
            decode(&base, &bad_copy, base.len()),
            Err(DeltaError::CopyOutOfRange)
        );
        // An unterminated varint.
        let unterminated = vec![FORMAT_VARINT, 0x80, 0x80];
        assert_eq!(
            decode(&base, &unterminated, base.len()),
            Err(DeltaError::Truncated)
        );
        // A varint that runs past 64 bits.
        let mut overlong = vec![FORMAT_VARINT];
        overlong.extend_from_slice(&[0x80; 10]);
        overlong.push(0x01);
        assert_eq!(
            decode(&base, &overlong, base.len()),
            Err(DeltaError::BadVarint)
        );
    }

    /// The regression for unbounded decoding: a tiny stream of repeated
    /// max-length copy ops must fail [`DeltaError::TooLarge`] the moment
    /// the declared length is exceeded — not after materializing
    /// gigabytes for the caller's post-hoc check to reject.
    #[test]
    fn bomb_delta_is_rejected_before_ballooning() {
        let base = vec![0x42u8; 64 << 10];
        // 40 bytes of ops declaring ~2.6 MiB of output against a record
        // that claims 100 bytes.
        let mut bomb = vec![FORMAT_VARINT];
        for _ in 0..20 {
            push_copy(&mut bomb, 0, base.len());
        }
        assert!(bomb.len() < 100, "the bomb itself is tiny");
        assert_eq!(decode(&base, &bomb, 100), Err(DeltaError::TooLarge));

        // Same attack through the legacy format.
        let mut legacy_bomb = Vec::new();
        for _ in 0..20 {
            legacy_bomb.push(0x00);
            legacy_bomb.extend_from_slice(&0u32.to_le_bytes());
            legacy_bomb.extend_from_slice(&(base.len() as u32).to_le_bytes());
        }
        assert_eq!(decode(&base, &legacy_bomb, 100), Err(DeltaError::TooLarge));

        // A literal bomb: header declares more than the record does.
        let mut lit_bomb = vec![FORMAT_VARINT];
        push_varint(&mut lit_bomb, (200u64 << 1) | 1);
        lit_bomb.extend_from_slice(&[0u8; 200]);
        assert_eq!(decode(&base, &lit_bomb, 100), Err(DeltaError::TooLarge));
    }

    /// Backward extension reclaims the literal bytes a strided-index
    /// resync pays: a point edit at an offset the stride makes the next
    /// match land late on must produce a strictly smaller delta than
    /// the forward-only encoder.
    #[test]
    fn backward_extension_shrinks_mid_window_edits() {
        let base: Vec<u8> = (0..128u32).flat_map(|i| i.to_le_bytes()).collect();
        let mut data = base.clone();
        // Edit at an INDEX_STRIDE-aligned offset: the post-edit resync
        // can only land INDEX_STRIDE bytes later, so the forward-only
        // encoder stores INDEX_STRIDE literal bytes where one suffices.
        data[256] ^= 0xFF;
        let forward_only = encode_impl(&base, &data, false);
        let with_backtrack = encode(&base, &data);
        assert_eq!(decode(&base, &forward_only, data.len()).unwrap(), data);
        assert_eq!(decode(&base, &with_backtrack, data.len()).unwrap(), data);
        assert!(
            with_backtrack.len() < forward_only.len(),
            "backtracking must win: {} vs {}",
            with_backtrack.len(),
            forward_only.len()
        );
    }

    proptest! {
        #[test]
        fn random_edits_round_trip(
            seedlen in 64usize..512,
            cut in 0usize..64,
            insert in proptest::collection::vec(proptest::prelude::any::<u8>(), 0..64),
        ) {
            let base: Vec<u8> = (0..seedlen as u32).flat_map(|i| i.to_le_bytes()).collect();
            let mut data = base.clone();
            let cut = cut.min(data.len());
            data.drain(..cut);
            let at = data.len() / 2;
            data.splice(at..at, insert.iter().copied());
            let delta = encode(&base, &data);
            prop_assert_eq!(decode(&base, &delta, data.len()).unwrap(), data);
        }

        #[test]
        fn arbitrary_pairs_round_trip(
            base in proptest::collection::vec(proptest::prelude::any::<u8>(), 0..300),
            data in proptest::collection::vec(proptest::prelude::any::<u8>(), 0..300),
        ) {
            let delta = encode(&base, &data);
            prop_assert_eq!(decode(&base, &delta, data.len()).unwrap(), data);
        }

        /// The encoded delta never exceeds the pure-literal encoding
        /// plus the per-op overhead bound: every copy op (≤ 10 B +
        /// ≤ 5 B literal-split cost) replaces ≥ WINDOW = 16 literal
        /// bytes, so `len(delta) ≤ len(data) + 6` (tag + one literal
        /// header) for any input pair.
        #[test]
        fn never_worse_than_pure_literals(
            base in proptest::collection::vec(proptest::prelude::any::<u8>(), 0..400),
            data in proptest::collection::vec(proptest::prelude::any::<u8>(), 0..400),
        ) {
            let delta = encode(&base, &data);
            prop_assert!(
                delta.len() <= data.len() + 6,
                "delta {} vs literal bound {}", delta.len(), data.len() + 6
            );
        }

        /// Chained decode (base → v1 → v2) equals direct decode of the
        /// flattened chain (base → v2): materializing through an
        /// intermediate delta is invisible in the bytes.
        #[test]
        fn chain_decode_equals_flattened_decode(
            base in proptest::collection::vec(proptest::prelude::any::<u8>(), 32..300),
            mid_edit in proptest::collection::vec(proptest::prelude::any::<u8>(), 0..48),
            final_edit in proptest::collection::vec(proptest::prelude::any::<u8>(), 0..48),
        ) {
            let mut v1 = base.clone();
            let at = v1.len() / 3;
            v1.splice(at..at, mid_edit.iter().copied());
            let mut v2 = v1.clone();
            let at = v2.len() / 2;
            v2.splice(at..at, final_edit.iter().copied());

            let d1 = encode(&base, &v1);
            let d2 = encode(&v1, &v2);
            let chained = decode(
                &decode(&base, &d1, v1.len()).unwrap(),
                &d2,
                v2.len(),
            ).unwrap();
            let flat = decode(&base, &encode(&base, &v2), v2.len()).unwrap();
            prop_assert_eq!(&chained, &v2);
            prop_assert_eq!(&flat, &v2);
            prop_assert_eq!(chained, flat);
        }
    }
}
