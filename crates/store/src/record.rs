//! The on-disk record vocabulary of the segment log.
//!
//! A segment file is a sequence of *frames*:
//!
//! ```text
//! +----------+----------+------------------+
//! | len: u32 | crc: u32 | payload (len B)  |
//! +----------+----------+------------------+
//! ```
//!
//! both integers little-endian, `crc` the CRC-32 of the payload. The
//! payload starts with a one-byte kind tag followed by the 16-byte key:
//!
//! | kind | record | payload after the key |
//! |---|---|---|
//! | `1` | [`Record::PutRaw`] | `data_len: u32`, data bytes |
//! | `2` | [`Record::PutDelta`] | `base: u128`, `logical_len: u32`, `delta_len: u32`, delta ops |
//! | `3` | [`Record::Evict`] | — |
//! | `4` | [`Record::Pin`] | — |
//! | `5` | [`Record::Unpin`] | — |
//!
//! Recovery replays frames in order; the index is whatever the replay
//! leaves live. A frame that fails its CRC, declares an impossible
//! length, or carries an unknown kind is *quarantined* (counted and
//! skipped — or truncated when it is the torn tail of the final segment).

/// Bytes of frame header preceding every payload (`len` + `crc`).
pub const FRAME_HEADER: u64 = 8;

/// Upper bound a frame may declare for its payload; anything larger is
/// treated as corruption (protects recovery from a trashed length field).
pub const MAX_PAYLOAD: u32 = 1 << 28;

/// One logical record in the append-only log.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Record {
    /// A full artifact stored verbatim.
    PutRaw {
        /// Content-address of the artifact.
        key: u128,
        /// The artifact bytes.
        data: Vec<u8>,
    },
    /// An artifact stored as a delta against a raw base artifact.
    PutDelta {
        /// Content-address of the artifact.
        key: u128,
        /// Key of the raw base artifact the delta decodes against.
        base: u128,
        /// Decoded artifact length (recorded so stats and budget checks
        /// never need to decode).
        logical_len: u32,
        /// The delta op stream ([`crate::delta`] format).
        delta: Vec<u8>,
    },
    /// Tombstone: the key is no longer live.
    Evict {
        /// Key being removed.
        key: u128,
    },
    /// The key is pinned: the eviction policy must never remove it.
    Pin {
        /// Key being pinned.
        key: u128,
    },
    /// The key is no longer pinned.
    Unpin {
        /// Key being unpinned.
        key: u128,
    },
}

/// Why a payload failed to decode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RecordError {
    /// The payload was shorter than its fixed fields require.
    Truncated,
    /// The kind byte is not in the vocabulary.
    UnknownKind(u8),
    /// An embedded length disagrees with the payload size.
    LengthMismatch,
}

impl std::fmt::Display for RecordError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RecordError::Truncated => write!(f, "payload truncated"),
            RecordError::UnknownKind(k) => write!(f, "unknown record kind {k}"),
            RecordError::LengthMismatch => write!(f, "embedded length disagrees with payload"),
        }
    }
}

impl Record {
    /// The record's key.
    #[must_use]
    pub fn key(&self) -> u128 {
        match self {
            Record::PutRaw { key, .. }
            | Record::PutDelta { key, .. }
            | Record::Evict { key }
            | Record::Pin { key }
            | Record::Unpin { key } => *key,
        }
    }

    /// Serializes the payload (frame header excluded — the segment log
    /// adds `len`/`crc` when appending).
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(32);
        match self {
            Record::PutRaw { key, data } => {
                out.push(1);
                out.extend_from_slice(&key.to_le_bytes());
                out.extend_from_slice(&(data.len() as u32).to_le_bytes());
                out.extend_from_slice(data);
            }
            Record::PutDelta {
                key,
                base,
                logical_len,
                delta,
            } => {
                out.push(2);
                out.extend_from_slice(&key.to_le_bytes());
                out.extend_from_slice(&base.to_le_bytes());
                out.extend_from_slice(&logical_len.to_le_bytes());
                out.extend_from_slice(&(delta.len() as u32).to_le_bytes());
                out.extend_from_slice(delta);
            }
            Record::Evict { key } => {
                out.push(3);
                out.extend_from_slice(&key.to_le_bytes());
            }
            Record::Pin { key } => {
                out.push(4);
                out.extend_from_slice(&key.to_le_bytes());
            }
            Record::Unpin { key } => {
                out.push(5);
                out.extend_from_slice(&key.to_le_bytes());
            }
        }
        out
    }

    /// Decodes a payload produced by [`Record::encode`].
    ///
    /// # Errors
    ///
    /// [`RecordError`] when the payload is truncated, carries an unknown
    /// kind, or its embedded lengths disagree with the payload size.
    pub fn decode(payload: &[u8]) -> Result<Record, RecordError> {
        let kind = *payload.first().ok_or(RecordError::Truncated)?;
        let key = read_u128(payload, 1)?;
        let rest = 17usize;
        match kind {
            1 => {
                let data_len = read_u32(payload, rest)? as usize;
                let data = payload.get(rest + 4..).ok_or(RecordError::Truncated)?;
                if data.len() != data_len {
                    return Err(RecordError::LengthMismatch);
                }
                Ok(Record::PutRaw {
                    key,
                    data: data.to_vec(),
                })
            }
            2 => {
                let base = read_u128(payload, rest)?;
                let logical_len = read_u32(payload, rest + 16)?;
                let delta_len = read_u32(payload, rest + 20)? as usize;
                let delta = payload.get(rest + 24..).ok_or(RecordError::Truncated)?;
                if delta.len() != delta_len {
                    return Err(RecordError::LengthMismatch);
                }
                Ok(Record::PutDelta {
                    key,
                    base,
                    logical_len,
                    delta: delta.to_vec(),
                })
            }
            3..=5 => {
                if payload.len() != rest {
                    return Err(RecordError::LengthMismatch);
                }
                Ok(match kind {
                    3 => Record::Evict { key },
                    4 => Record::Pin { key },
                    _ => Record::Unpin { key },
                })
            }
            other => Err(RecordError::UnknownKind(other)),
        }
    }
}

fn read_u32(payload: &[u8], at: usize) -> Result<u32, RecordError> {
    payload
        .get(at..at + 4)
        .map(|b| u32::from_le_bytes(b.try_into().expect("4-byte slice")))
        .ok_or(RecordError::Truncated)
}

fn read_u128(payload: &[u8], at: usize) -> Result<u128, RecordError> {
    payload
        .get(at..at + 16)
        .map(|b| u128::from_le_bytes(b.try_into().expect("16-byte slice")))
        .ok_or(RecordError::Truncated)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn samples() -> Vec<Record> {
        vec![
            Record::PutRaw {
                key: 0xDEAD_BEEF,
                data: b"artifact bytes".to_vec(),
            },
            Record::PutRaw {
                key: 7,
                data: Vec::new(),
            },
            Record::PutDelta {
                key: u128::MAX,
                base: 42,
                logical_len: 1_000_000,
                delta: vec![0, 1, 2, 3],
            },
            Record::Evict { key: 9 },
            Record::Pin { key: 1 },
            Record::Unpin { key: 1 },
        ]
    }

    #[test]
    fn encode_decode_round_trips() {
        for record in samples() {
            let payload = record.encode();
            assert_eq!(Record::decode(&payload).unwrap(), record);
        }
    }

    #[test]
    fn truncation_is_detected_at_every_length() {
        for record in samples() {
            let payload = record.encode();
            for cut in 0..payload.len() {
                assert!(
                    Record::decode(&payload[..cut]).is_err(),
                    "{record:?} cut at {cut} must not decode"
                );
            }
        }
    }

    #[test]
    fn unknown_kind_and_trailing_garbage_rejected() {
        let mut payload = Record::Evict { key: 3 }.encode();
        payload[0] = 99;
        assert_eq!(Record::decode(&payload), Err(RecordError::UnknownKind(99)));

        let mut payload = Record::Evict { key: 3 }.encode();
        payload.push(0);
        assert_eq!(Record::decode(&payload), Err(RecordError::LengthMismatch));
    }
}
