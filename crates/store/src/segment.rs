//! The append-only segment log and its crash-safe recovery path.
//!
//! A store directory holds numbered segment files (`seg-00000000.log`,
//! `seg-00000001.log`, …). Records append to the highest-numbered
//! segment; when it exceeds the configured size the log *rolls*: the
//! active file is fsynced and a new segment starts. Appends themselves
//! are buffered writes without fsync — a `kill -9` of the process cannot
//! lose them (the OS flushes the page cache), only a machine crash can,
//! and [`SegmentLog::flush`] is the explicit durability point for that.
//!
//! # Recovery state machine (per segment, frames scanned in order)
//!
//! 1. **clean frame** — header complete, declared length plausible,
//!    payload present, CRC matches, record decodes → replay it.
//! 2. **torn tail** — header or payload runs past end-of-file. In the
//!    *final* segment this is the expected `kill -9` shape: the file is
//!    truncated at the frame start (quarantining the torn record) and the
//!    log continues appending there. In an earlier segment the rest of
//!    that segment is quarantined as one unit (lengths can no longer be
//!    trusted) and scanning moves to the next segment.
//! 3. **corrupt frame** — header and payload are fully present but the
//!    CRC or record decoding fails. The frame boundary is still trusted
//!    (the declared length was self-consistent), so the single record is
//!    quarantined and scanning resumes at the next frame.
//! 4. **implausible length** — a declared payload length above
//!    [`MAX_PAYLOAD`]. Treated like a torn tail: nothing after it can be
//!    framed.

use std::fs::{File, OpenOptions};
use std::io::{Read as _, Seek as _, SeekFrom, Write as _};
use std::path::{Path, PathBuf};

use crate::crc::crc32;
use crate::record::{Record, FRAME_HEADER, MAX_PAYLOAD};

/// Where one record's frame lives on disk.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Location {
    /// Segment number (`seg-<n>.log`).
    pub segment: u32,
    /// Byte offset of the frame header within the segment.
    pub offset: u64,
    /// Payload length (frame is `FRAME_HEADER + payload_len` bytes).
    pub payload_len: u32,
}

impl Location {
    /// Total on-disk footprint of the frame.
    #[must_use]
    pub fn frame_len(&self) -> u64 {
        FRAME_HEADER + u64::from(self.payload_len)
    }
}

/// The records that survived replay, in log order, with their locations.
pub type Replay = Vec<(Location, Record)>;

/// What recovery observed while replaying the log.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryStats {
    /// Valid records replayed into the index.
    pub recovered: u64,
    /// Torn or corrupt records dropped (truncated tails count once).
    pub quarantined: u64,
    /// Whether the final segment was truncated to drop a torn tail.
    pub truncated_tail: bool,
}

/// The append-only log over one directory.
#[derive(Debug)]
pub struct SegmentLog {
    dir: PathBuf,
    active: File,
    active_id: u32,
    active_len: u64,
    segment_bytes: u64,
}

fn segment_path(dir: &Path, id: u32) -> PathBuf {
    dir.join(format!("seg-{id:08}.log"))
}

fn list_segments(dir: &Path) -> std::io::Result<Vec<u32>> {
    let mut ids = Vec::new();
    for entry in std::fs::read_dir(dir)? {
        let name = entry?.file_name();
        let name = name.to_string_lossy();
        if let Some(id) = name
            .strip_prefix("seg-")
            .and_then(|rest| rest.strip_suffix(".log"))
            .and_then(|digits| digits.parse::<u32>().ok())
        {
            ids.push(id);
        }
    }
    ids.sort_unstable();
    Ok(ids)
}

impl SegmentLog {
    /// Opens (creating if needed) the log in `dir`, replaying every
    /// segment through the recovery state machine. Returns the log
    /// positioned for appending, the surviving records in log order with
    /// their locations, and the recovery tally.
    ///
    /// # Errors
    ///
    /// I/O errors from directory creation, listing, reads, or the torn
    /// tail truncation. Corrupt *content* never errors — it quarantines.
    pub fn open(dir: &Path, segment_bytes: u64) -> std::io::Result<(Self, Replay, RecoveryStats)> {
        std::fs::create_dir_all(dir)?;
        let ids = list_segments(dir)?;
        let mut records = Vec::new();
        let mut stats = RecoveryStats::default();

        for (pos, &id) in ids.iter().enumerate() {
            let is_last = pos + 1 == ids.len();
            let path = segment_path(dir, id);
            let bytes = std::fs::read(&path)?;
            let keep = Self::scan_segment(id, &bytes, &mut records, &mut stats);
            if is_last && keep < bytes.len() as u64 {
                // Torn tail: drop it so the next append starts at a clean
                // frame boundary.
                let file = OpenOptions::new().write(true).open(&path)?;
                file.set_len(keep)?;
                file.sync_all()?;
                stats.truncated_tail = true;
            }
        }

        let active_id = ids.last().copied().unwrap_or(0);
        let path = segment_path(dir, active_id);
        let mut active = OpenOptions::new().create(true).append(true).open(&path)?;
        let active_len = active.seek(SeekFrom::End(0))?;
        Ok((
            Self {
                dir: dir.to_path_buf(),
                active,
                active_id,
                active_len,
                segment_bytes,
            },
            records,
            stats,
        ))
    }

    /// Scans one segment's bytes, pushing valid records and tallying
    /// quarantines. Returns the byte length of the trusted prefix (only
    /// meaningful for the final segment, where the caller truncates).
    fn scan_segment(
        id: u32,
        bytes: &[u8],
        records: &mut Vec<(Location, Record)>,
        stats: &mut RecoveryStats,
    ) -> u64 {
        let mut pos = 0usize;
        loop {
            let remaining = bytes.len() - pos;
            if remaining == 0 {
                return pos as u64;
            }
            if remaining < FRAME_HEADER as usize {
                // Torn mid-header.
                stats.quarantined += 1;
                return pos as u64;
            }
            let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().expect("4 bytes"));
            let crc = u32::from_le_bytes(bytes[pos + 4..pos + 8].try_into().expect("4 bytes"));
            if len > MAX_PAYLOAD {
                // Trashed length field: nothing after this can be framed.
                stats.quarantined += 1;
                return pos as u64;
            }
            let frame_end = pos + FRAME_HEADER as usize + len as usize;
            if frame_end > bytes.len() {
                // Torn mid-payload.
                stats.quarantined += 1;
                return pos as u64;
            }
            let payload = &bytes[pos + FRAME_HEADER as usize..frame_end];
            if crc32(payload) != crc {
                // Content corrupt, boundary trusted: skip this record only.
                stats.quarantined += 1;
                pos = frame_end;
                continue;
            }
            match Record::decode(payload) {
                Ok(record) => {
                    records.push((
                        Location {
                            segment: id,
                            offset: pos as u64,
                            payload_len: len,
                        },
                        record,
                    ));
                    stats.recovered += 1;
                }
                Err(_) => stats.quarantined += 1,
            }
            pos = frame_end;
        }
    }

    /// Appends one record, rolling to a new fsynced segment when the
    /// active one is full. Returns where the frame landed.
    ///
    /// # Errors
    ///
    /// I/O errors from the write or the roll.
    pub fn append(&mut self, record: &Record) -> std::io::Result<Location> {
        let payload = record.encode();
        if self.active_len >= self.segment_bytes && self.active_len > 0 {
            self.roll()?;
        }
        let location = Location {
            segment: self.active_id,
            offset: self.active_len,
            payload_len: payload.len() as u32,
        };
        let mut frame = Vec::with_capacity(FRAME_HEADER as usize + payload.len());
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&crc32(&payload).to_le_bytes());
        frame.extend_from_slice(&payload);
        self.active.write_all(&frame)?;
        self.active_len += frame.len() as u64;
        Ok(location)
    }

    fn roll(&mut self) -> std::io::Result<()> {
        self.active.sync_all()?;
        self.active_id += 1;
        let path = segment_path(&self.dir, self.active_id);
        self.active = OpenOptions::new().create(true).append(true).open(&path)?;
        self.active_len = 0;
        Ok(())
    }

    /// Fsyncs the active segment — the explicit durability point.
    ///
    /// # Errors
    ///
    /// The underlying `fsync` failure.
    pub fn flush(&mut self) -> std::io::Result<()> {
        self.active.sync_all()
    }

    /// Reads and re-verifies one record. The CRC is checked again on
    /// every read, so corruption that happened *after* recovery (bit rot,
    /// a hostile edit) is still caught.
    ///
    /// # Errors
    ///
    /// `InvalidData` for CRC/decoding failures, plus ordinary I/O errors.
    pub fn read(&self, location: Location) -> std::io::Result<Record> {
        let path = segment_path(&self.dir, location.segment);
        let mut file = File::open(path)?;
        file.seek(SeekFrom::Start(location.offset))?;
        let mut header = [0u8; FRAME_HEADER as usize];
        file.read_exact(&mut header)?;
        let len = u32::from_le_bytes(header[0..4].try_into().expect("4 bytes"));
        let crc = u32::from_le_bytes(header[4..8].try_into().expect("4 bytes"));
        if len != location.payload_len {
            return Err(corrupt("frame length changed since indexing"));
        }
        let mut payload = vec![0u8; len as usize];
        file.read_exact(&mut payload)?;
        if crc32(&payload) != crc {
            return Err(corrupt("payload CRC mismatch"));
        }
        Record::decode(&payload).map_err(|e| corrupt(&e.to_string()))
    }

    /// Total bytes across all segment files.
    ///
    /// # Errors
    ///
    /// Directory listing / metadata I/O errors.
    pub fn file_bytes(&self) -> std::io::Result<u64> {
        let mut total = 0;
        for id in list_segments(&self.dir)? {
            total += std::fs::metadata(segment_path(&self.dir, id))?.len();
        }
        Ok(total)
    }

    /// Rewrites the log to contain exactly `records`, in order, in fresh
    /// segments, then deletes the old ones. Crash-safe: new segments are
    /// fully written and fsynced before any old segment is removed, and
    /// replay order makes re-put records win, so a crash at any point
    /// recovers either the old log, the merged view, or the compacted log
    /// — never a partial artifact.
    ///
    /// Returns the new locations, parallel to `records`.
    ///
    /// # Errors
    ///
    /// I/O errors from writes, fsyncs, or removals.
    pub fn compact(&mut self, records: &[Record]) -> std::io::Result<Vec<Location>> {
        let old_ids = list_segments(&self.dir)?;
        // Continue numbering after the current active segment so replay
        // order puts compacted copies last (they win).
        self.roll()?;
        let mut locations = Vec::with_capacity(records.len());
        for record in records {
            locations.push(self.append(record)?);
        }
        self.flush()?;
        for id in old_ids {
            if id != self.active_id && locations.iter().all(|l| l.segment != id) {
                std::fs::remove_file(segment_path(&self.dir, id))?;
            }
        }
        Ok(locations)
    }
}

fn corrupt(message: &str) -> std::io::Error {
    std::io::Error::new(std::io::ErrorKind::InvalidData, message)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("ppet-store-seg-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn put(key: u128, payload: &[u8]) -> Record {
        Record::PutRaw {
            key,
            data: payload.to_vec(),
        }
    }

    #[test]
    fn append_read_reopen_round_trip() {
        let dir = tmpdir("round");
        let (mut log, records, stats) = SegmentLog::open(&dir, 1 << 20).unwrap();
        assert!(records.is_empty());
        assert_eq!(stats, RecoveryStats::default());

        let a = log.append(&put(1, b"alpha")).unwrap();
        let b = log.append(&put(2, b"beta")).unwrap();
        log.flush().unwrap();
        assert_eq!(log.read(a).unwrap(), put(1, b"alpha"));
        assert_eq!(log.read(b).unwrap(), put(2, b"beta"));

        drop(log);
        let (_log, records, stats) = SegmentLog::open(&dir, 1 << 20).unwrap();
        assert_eq!(records.len(), 2);
        assert_eq!(stats.recovered, 2);
        assert_eq!(stats.quarantined, 0);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn log_rolls_into_new_segments() {
        let dir = tmpdir("roll");
        let (mut log, _, _) = SegmentLog::open(&dir, 64).unwrap();
        let mut locations = Vec::new();
        for i in 0..10u128 {
            locations.push(log.append(&put(i, &[i as u8; 40])).unwrap());
        }
        assert!(
            locations.iter().any(|l| l.segment > 0),
            "64-byte segments must roll"
        );
        for (i, l) in locations.iter().enumerate() {
            assert_eq!(log.read(*l).unwrap(), put(i as u128, &[i as u8; 40]));
        }
        drop(log);
        let (_log, records, stats) = SegmentLog::open(&dir, 64).unwrap();
        assert_eq!(records.len(), 10);
        assert_eq!(stats.recovered, 10);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_tail_is_truncated_and_quarantined() {
        let dir = tmpdir("torn");
        let (mut log, _, _) = SegmentLog::open(&dir, 1 << 20).unwrap();
        log.append(&put(1, b"keep me")).unwrap();
        let whole = log.append(&put(2, b"tear me apart")).unwrap();
        log.flush().unwrap();
        drop(log);

        let path = segment_path(&dir, 0);
        let full = std::fs::metadata(&path).unwrap().len();
        // Tear mid-payload of the final record.
        let f = OpenOptions::new().write(true).open(&path).unwrap();
        f.set_len(full - 4).unwrap();
        drop(f);

        let (mut log, records, stats) = SegmentLog::open(&dir, 1 << 20).unwrap();
        assert_eq!(records.len(), 1);
        assert_eq!(records[0].1, put(1, b"keep me"));
        assert_eq!(stats.recovered, 1);
        assert_eq!(stats.quarantined, 1);
        assert!(stats.truncated_tail);
        assert_eq!(std::fs::metadata(&path).unwrap().len(), whole.offset);

        // The log keeps working at the truncated boundary.
        let c = log.append(&put(3, b"after recovery")).unwrap();
        assert_eq!(c.offset, whole.offset);
        assert_eq!(log.read(c).unwrap(), put(3, b"after recovery"));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn mid_log_bitflip_quarantines_one_record() {
        let dir = tmpdir("flip");
        let (mut log, _, _) = SegmentLog::open(&dir, 1 << 20).unwrap();
        log.append(&put(1, b"first")).unwrap();
        let victim = log.append(&put(2, b"second")).unwrap();
        log.append(&put(3, b"third")).unwrap();
        log.flush().unwrap();
        drop(log);

        let path = segment_path(&dir, 0);
        let mut bytes = std::fs::read(&path).unwrap();
        let flip = (victim.offset + FRAME_HEADER + 2) as usize;
        bytes[flip] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();

        let (_log, records, stats) = SegmentLog::open(&dir, 1 << 20).unwrap();
        let keys: Vec<u128> = records.iter().map(|(_, r)| r.key()).collect();
        assert_eq!(keys, vec![1, 3], "middle record skipped, not fatal");
        assert_eq!(stats.recovered, 2);
        assert_eq!(stats.quarantined, 1);
        assert!(!stats.truncated_tail);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn read_reverifies_crc() {
        let dir = tmpdir("reread");
        let (mut log, _, _) = SegmentLog::open(&dir, 1 << 20).unwrap();
        let loc = log.append(&put(1, b"will rot")).unwrap();
        log.flush().unwrap();

        let path = segment_path(&dir, 0);
        let mut bytes = std::fs::read(&path).unwrap();
        let at = (loc.offset + FRAME_HEADER + 1) as usize;
        bytes[at] ^= 0x01;
        std::fs::write(&path, &bytes).unwrap();

        let err = log.read(loc).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn compact_drops_old_segments_and_preserves_records() {
        let dir = tmpdir("compact");
        let (mut log, _, _) = SegmentLog::open(&dir, 128).unwrap();
        for i in 0..20u128 {
            log.append(&put(i, &[i as u8; 50])).unwrap();
        }
        let before = log.file_bytes().unwrap();

        // Keep only the even keys.
        let live: Vec<Record> = (0..20u128)
            .filter(|i| i % 2 == 0)
            .map(|i| put(i, &[i as u8; 50]))
            .collect();
        let locations = log.compact(&live).unwrap();
        assert!(log.file_bytes().unwrap() < before);
        for (record, loc) in live.iter().zip(&locations) {
            assert_eq!(&log.read(*loc).unwrap(), record);
        }

        drop(log);
        let (_log, records, stats) = SegmentLog::open(&dir, 128).unwrap();
        assert_eq!(records.len(), live.len());
        assert_eq!(stats.quarantined, 0);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
