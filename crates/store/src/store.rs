//! The store proper: index, similarity dedup, budget eviction, recovery.
//!
//! One [`Store`] owns a [`SegmentLog`] plus
//! the in-memory state recovery rebuilds from it: the key index, the
//! similarity clusterer ([`ppet_dedup::Clusterer`]) for delta-base
//! selection, delta base reference counts, LRU ticks, and byte
//! accounting. All mutation happens under one mutex — the store is
//! shared behind an `Arc` by the compile service and its workers.
//!
//! # Decision rule: delta vs raw
//!
//! An incoming artifact is sketched into super-features
//! ([`ppet_dedup::feature`]); the clusterer's candidates — live
//! artifacts sharing ≥ 1 super-feature — are ranked by shared-feature
//! count, then cluster-representative status, then smaller key, and the
//! best *eligible* one is the delta-base candidate. Eligible means the
//! resulting chain respects both gates:
//!
//! * **depth** — at most [`StoreConfig::max_chain_depth`] delta hops
//!   before a raw record (depth 0 = raw, depth 1 = classic single
//!   delta);
//! * **decode cost** — the total bytes materialized to decode the new
//!   artifact (raw base + every intermediate + the artifact itself) may
//!   not exceed [`StoreConfig::decode_budget_factor`] × the artifact's
//!   own length. The same budget is enforced again at read time from
//!   the actual records, so a corrupt chain cannot run away.
//!
//! The artifact is stored as base-ref + delta iff the encoded delta
//! frame is strictly smaller than the raw frame would be; otherwise
//! raw. Because eligible bases may themselves be deltas, chains of up
//! to `max_chain_depth` frames arise naturally.
//!
//! Every clusterer answer is a pure function of the live member set —
//! never of insertion order — so an index rebuilt by log replay
//! reproduces the same clusters, the same representatives, and hence
//! the same base choices.
//!
//! # Eviction and pinning
//!
//! When live bytes exceed the budget, the least-recently-used unpinned
//! entry that no live delta references is evicted (a tombstone is
//! appended; the frame becomes dead). A base still referenced by deltas
//! is never evicted directly: if only such bases remain, the policy
//! *rewrites on evict* — each dependent delta is re-stored raw, then the
//! base goes. Pinned entries are never evicted; if pinned entries alone
//! exceed the budget, the store runs over budget rather than break the
//! pin contract. Dead bytes are reclaimed by compaction
//! ([`Store::gc`]), which also runs automatically once dead bytes exceed
//! live bytes plus one segment.

use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::Mutex;

use ppet_dedup::{super_features, Clusterer, SUPER_FEATURES};
use ppet_trace::{Counter, Gauge, Metrics};

use crate::delta;
use crate::record::Record;
use crate::segment::{Location, SegmentLog};

/// Hard ceiling on base-link walks: any chain longer than this is
/// treated as corrupt (a cycle or an impossible depth), never followed
/// further. Far above any configurable `max_chain_depth`.
const MAX_CHAIN_STEPS: u32 = 16;

/// Tunables for one store.
#[derive(Debug, Clone)]
pub struct StoreConfig {
    /// Live-byte budget; `None` disables eviction.
    pub budget: Option<u64>,
    /// Segment roll threshold.
    pub segment_bytes: u64,
    /// Maximum delta hops between an artifact and its raw ancestor.
    /// `0` disables delta storage entirely; `1` restores the classic
    /// "deltas never chain" rule; the default `2` lets a delta base
    /// itself be a delta.
    pub max_chain_depth: u8,
    /// Read-amplification ceiling: decoding an artifact may materialize
    /// at most this many times the artifact's own length across its
    /// whole chain. Enforced when choosing a base *and* when reading.
    pub decode_budget_factor: u32,
}

impl Default for StoreConfig {
    fn default() -> Self {
        Self {
            budget: None,
            segment_bytes: 4 << 20,
            max_chain_depth: 2,
            decode_budget_factor: 8,
        }
    }
}

impl StoreConfig {
    /// Sets the live-byte budget.
    #[must_use]
    pub fn with_budget(mut self, budget: u64) -> Self {
        self.budget = Some(budget);
        self
    }

    /// Sets the segment roll threshold.
    #[must_use]
    pub fn with_segment_bytes(mut self, bytes: u64) -> Self {
        self.segment_bytes = bytes.max(1);
        self
    }

    /// Sets the maximum delta chain depth.
    #[must_use]
    pub fn with_chain_depth(mut self, depth: u8) -> Self {
        self.max_chain_depth = depth;
        self
    }

    /// Sets the decode-cost budget factor (clamped to ≥ 1).
    #[must_use]
    pub fn with_decode_budget_factor(mut self, factor: u32) -> Self {
        self.decode_budget_factor = factor.max(1);
        self
    }
}

/// What [`Store::put`] did with the artifact.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PutOutcome {
    /// Stored as a full artifact.
    InsertedRaw {
        /// On-disk frame bytes.
        stored_bytes: u64,
    },
    /// Stored as a delta against a similar base.
    InsertedDelta {
        /// On-disk frame bytes (the delta, not the artifact).
        stored_bytes: u64,
        /// The base artifact's key.
        base: u128,
    },
    /// The key was already live — content-addressed stores are
    /// write-once per key, so the bytes were not rewritten (the entry's
    /// LRU position was refreshed).
    AlreadyPresent,
}

/// Point-in-time store statistics (index state plus counter values).
#[derive(Debug, Clone, PartialEq)]
pub struct StoreStats {
    /// Live artifacts.
    pub entries: usize,
    /// Live pinned artifacts.
    pub pinned: usize,
    /// Live artifacts stored as deltas.
    pub delta_entries: usize,
    /// On-disk bytes of live frames.
    pub live_bytes: u64,
    /// Decoded bytes the live artifacts represent.
    pub logical_bytes: u64,
    /// Total segment file bytes (live + dead awaiting compaction).
    pub file_bytes: u64,
    /// Configured budget.
    pub budget: Option<u64>,
    /// Similarity clusters over the live artifacts (singletons count).
    pub clusters: usize,
    /// Distinct super-feature values in the clusterer's table.
    pub sf_table: usize,
    /// Live entries per chain depth: `chain_depths[d]` artifacts sit
    /// `d` delta hops from their raw ancestor. Empty when the store is.
    pub chain_depths: Vec<u64>,
    /// Reads answered from the store.
    pub hits: u64,
    /// Reads that found no live entry.
    pub misses: u64,
    /// Entries evicted by the budget policy.
    pub evictions: u64,
    /// Valid records replayed at open.
    pub recovered: u64,
    /// Torn/corrupt records dropped (at open or on read).
    pub quarantined: u64,
    /// Delta stored bytes over delta logical bytes (1.0 when no deltas).
    pub delta_ratio: f64,
}

impl std::fmt::Display for StoreStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "entries        {} ({} pinned, {} delta)",
            self.entries, self.pinned, self.delta_entries
        )?;
        writeln!(
            f,
            "live_bytes     {} (logical {}, files {})",
            self.live_bytes, self.logical_bytes, self.file_bytes
        )?;
        match self.budget {
            Some(b) => writeln!(f, "budget         {b}")?,
            None => writeln!(f, "budget         unlimited")?,
        }
        writeln!(
            f,
            "clusters       {} (sf table {})",
            self.clusters, self.sf_table
        )?;
        write!(f, "chain_depth   ")?;
        if self.chain_depths.is_empty() {
            write!(f, " -")?;
        }
        for (depth, n) in self.chain_depths.iter().enumerate() {
            write!(f, " {depth}:{n}")?;
        }
        writeln!(f)?;
        writeln!(f, "delta_ratio    {:.3}", self.delta_ratio)?;
        writeln!(f, "hits/misses    {}/{}", self.hits, self.misses)?;
        writeln!(f, "evictions      {}", self.evictions)?;
        write!(
            f,
            "recovered      {} (quarantined {})",
            self.recovered, self.quarantined
        )
    }
}

/// Result of one [`Store::verify`] sweep.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct VerifyReport {
    /// Entries read and decoded successfully.
    pub ok: usize,
    /// Entries that failed, with the failure description.
    pub corrupt: Vec<(u128, String)>,
}

impl VerifyReport {
    /// Whether every live entry verified.
    #[must_use]
    pub fn pass(&self) -> bool {
        self.corrupt.is_empty()
    }
}

/// Result of one compaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GcOutcome {
    /// Segment-file bytes before compaction.
    pub before_bytes: u64,
    /// Segment-file bytes after compaction.
    pub after_bytes: u64,
    /// Live entries carried over.
    pub live_entries: usize,
}

#[derive(Debug, Clone)]
struct Entry {
    loc: Location,
    /// `Some(base)` for delta entries; `None` for raw.
    base: Option<u128>,
    logical_len: u32,
    pinned: bool,
    tick: u64,
}

#[derive(Debug)]
struct Inner {
    log: SegmentLog,
    index: HashMap<u128, Entry>,
    /// Similarity clusters over every live artifact; answers the
    /// delta-base candidate query. Rebuilt from decoded content at open,
    /// kept incrementally in sync afterwards.
    clusterer: Clusterer,
    /// Live delta count per base key.
    refs: HashMap<u128, u32>,
    live_bytes: u64,
    file_bytes: u64,
    delta_stored: u64,
    delta_logical: u64,
    tick: u64,
}

/// The persistent content-addressed artifact store.
#[derive(Debug)]
pub struct Store {
    inner: Mutex<Inner>,
    dir: PathBuf,
    config: StoreConfig,
    hits: Counter,
    misses: Counter,
    evictions: Counter,
    recovered: Counter,
    quarantined: Counter,
    delta_ratio: Gauge,
    chain_depth_gauge: Gauge,
    live_bytes_gauge: Gauge,
    entries_gauge: Gauge,
}

impl Store {
    /// Opens the store in `dir` with a private metrics registry.
    ///
    /// # Errors
    ///
    /// I/O errors from the segment log (corrupt content never errors —
    /// it is quarantined and counted).
    pub fn open(dir: impl AsRef<Path>, config: StoreConfig) -> std::io::Result<Self> {
        Self::open_with_metrics(dir, config, &Metrics::new())
    }

    /// Opens the store, registering its `store.*` counters and gauges in
    /// `metrics` (the compile service passes its own registry so the
    /// counters surface on `/metrics`).
    ///
    /// # Errors
    ///
    /// I/O errors from the segment log.
    pub fn open_with_metrics(
        dir: impl AsRef<Path>,
        config: StoreConfig,
        metrics: &Metrics,
    ) -> std::io::Result<Self> {
        let dir = dir.as_ref().to_path_buf();
        let (log, records, recovery) = SegmentLog::open(&dir, config.segment_bytes)?;

        let mut inner = Inner {
            log,
            index: HashMap::new(),
            clusterer: Clusterer::new(),
            refs: HashMap::new(),
            live_bytes: 0,
            file_bytes: 0,
            delta_stored: 0,
            delta_logical: 0,
            tick: 0,
        };

        let mut replay_quarantined = 0u64;
        for (loc, record) in records {
            inner.replay(loc, record);
        }
        // Counted from disk, not from replay: quarantined mid-log frames
        // still occupy file bytes.
        inner.file_bytes = inner.log.file_bytes()?;
        // Deltas whose base did not survive (quarantined, or the victim
        // of a corrupt eviction interleaving) are unreadable; so is
        // anything chained on top of them — drop to the fixpoint.
        loop {
            let orphans: Vec<u128> = inner
                .index
                .iter()
                .filter(|(_, e)| e.base.is_some_and(|b| !inner.index.contains_key(&b)))
                .map(|(k, _)| *k)
                .collect();
            if orphans.is_empty() {
                break;
            }
            for key in orphans {
                inner.remove_entry(key);
                replay_quarantined += 1;
            }
        }
        // Rebuild the similarity index from decoded content. Key order
        // is irrelevant — the clusterer is insertion-order independent —
        // but iterate sorted so failures quarantine deterministically.
        let mut keys: Vec<u128> = inner.index.keys().copied().collect();
        keys.sort_unstable();
        for key in keys {
            if !inner.index.contains_key(&key) {
                continue; // removed as a dependent of an earlier failure
            }
            match inner.read_artifact(key, config.decode_budget_factor) {
                Ok(data) => inner.clusterer.insert(key, super_features(&data)),
                Err(_) => {
                    replay_quarantined += inner.remove_transitive(key).len() as u64;
                }
            }
        }

        let store = Self {
            inner: Mutex::new(inner),
            dir,
            config,
            hits: metrics.counter("store.hits"),
            misses: metrics.counter("store.misses"),
            evictions: metrics.counter("store.evictions"),
            recovered: metrics.counter("store.recovered"),
            quarantined: metrics.counter("store.quarantined"),
            delta_ratio: metrics.gauge("store.delta_ratio"),
            chain_depth_gauge: metrics.gauge("store.chain_depth"),
            live_bytes_gauge: metrics.gauge("store.live_bytes"),
            entries_gauge: metrics.gauge("store.entries"),
        };
        store.recovered.add(recovery.recovered);
        store
            .quarantined
            .add(recovery.quarantined + replay_quarantined);
        {
            let mut inner = store.inner.lock().unwrap();
            store.enforce_budget(&mut inner)?;
            store.publish_gauges(&inner);
        }
        Ok(store)
    }

    /// The directory this store lives in.
    #[must_use]
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Stores `data` under `key`. Content-addressed keys are write-once:
    /// a live key is refreshed (LRU), not rewritten.
    ///
    /// # Errors
    ///
    /// I/O errors from the append or from budget enforcement.
    pub fn put(&self, key: u128, data: &[u8]) -> std::io::Result<PutOutcome> {
        self.put_inner(key, data, false)
    }

    /// Stores `data` under `key` and pins it: the eviction policy will
    /// never remove it. Pinning an already-live key just sets the pin.
    ///
    /// # Errors
    ///
    /// I/O errors from the append or from budget enforcement.
    pub fn put_pinned(&self, key: u128, data: &[u8]) -> std::io::Result<PutOutcome> {
        self.put_inner(key, data, true)
    }

    fn put_inner(&self, key: u128, data: &[u8], pin: bool) -> std::io::Result<PutOutcome> {
        let mut inner = self.inner.lock().unwrap();
        inner.tick += 1;
        let tick = inner.tick;
        if let Some(entry) = inner.index.get_mut(&key) {
            entry.tick = tick;
            let was_pinned = entry.pinned;
            entry.pinned = entry.pinned || pin;
            if pin && !was_pinned {
                inner.append(&Record::Pin { key })?;
            }
            return Ok(PutOutcome::AlreadyPresent);
        }

        // Similarity: the clusterer's best eligible candidate.
        let sketch = super_features(data);
        let candidate = self.best_base(&inner, key, &sketch, data.len());
        let mut outcome = None;
        if let Some(base_key) = candidate {
            if let Ok(base_data) = inner.read_artifact(base_key, self.config.decode_budget_factor) {
                let encoded = delta::encode(&base_data, data);
                // The decision rule: delta wins iff its frame is strictly
                // smaller than the raw frame (both share FRAME_HEADER, so
                // compare payloads: delta carries 24 extra header bytes).
                if encoded.len() + 24 < data.len() {
                    let record = Record::PutDelta {
                        key,
                        base: base_key,
                        logical_len: data.len() as u32,
                        delta: encoded,
                    };
                    let loc = inner.append(&record)?;
                    inner.live_bytes += loc.frame_len();
                    inner.delta_stored += loc.frame_len();
                    inner.delta_logical += data.len() as u64;
                    *inner.refs.entry(base_key).or_insert(0) += 1;
                    inner.index.insert(
                        key,
                        Entry {
                            loc,
                            base: Some(base_key),
                            logical_len: data.len() as u32,
                            pinned: pin,
                            tick,
                        },
                    );
                    outcome = Some(PutOutcome::InsertedDelta {
                        stored_bytes: loc.frame_len(),
                        base: base_key,
                    });
                }
            }
        }
        if outcome.is_none() {
            let record = Record::PutRaw {
                key,
                data: data.to_vec(),
            };
            let loc = inner.append(&record)?;
            inner.live_bytes += loc.frame_len();
            inner.index.insert(
                key,
                Entry {
                    loc,
                    base: None,
                    logical_len: data.len() as u32,
                    pinned: pin,
                    tick,
                },
            );
            outcome = Some(PutOutcome::InsertedRaw {
                stored_bytes: loc.frame_len(),
            });
        }
        // Raw or delta, the artifact joins the similarity index so it
        // can serve as a base for what arrives next.
        inner.clusterer.insert(key, sketch);
        if pin {
            inner.append(&Record::Pin { key })?;
        }
        self.enforce_budget(&mut inner)?;
        self.maybe_compact(&mut inner)?;
        self.publish_gauges(&inner);
        Ok(outcome.expect("outcome set above"))
    }

    /// Ranks the clusterer's candidates and returns the best one that
    /// passes the chain-depth and decode-budget gates.
    ///
    /// Rank order: most shared super-features, then cluster
    /// representatives (the member future variants most resemble), then
    /// the smaller key — every criterion is a pure function of the live
    /// member set, so replay reproduces the choice exactly.
    fn best_base(
        &self,
        inner: &Inner,
        key: u128,
        sketch: &[u64; SUPER_FEATURES],
        data_len: usize,
    ) -> Option<u128> {
        if self.config.max_chain_depth == 0 {
            return None;
        }
        let max_depth = u32::from(self.config.max_chain_depth);
        let budget =
            u64::from(self.config.decode_budget_factor).saturating_mul(data_len.max(1) as u64);
        inner
            .clusterer
            .candidates(sketch)
            .into_iter()
            .filter(|&(k, _)| k != key)
            // Depth gate: chaining on this base stays within max_depth.
            .filter(|&(k, _)| inner.chain_depth(k) < max_depth)
            // Decode-cost gate: materializing the base's whole chain
            // plus the new artifact fits the read budget.
            .filter(|&(k, _)| {
                inner.chain_total_logical(k).saturating_add(data_len as u64) <= budget
            })
            .max_by_key(|&(k, shared)| {
                (
                    shared,
                    inner.clusterer.is_representative(k),
                    std::cmp::Reverse(k),
                )
            })
            .map(|(k, _)| k)
    }

    /// Fetches the artifact stored under `key`. Corrupt records are
    /// quarantined (removed, tombstoned, counted) and reported as a miss
    /// — the caller recomputes and re-puts.
    pub fn get(&self, key: u128) -> Option<Vec<u8>> {
        let mut inner = self.inner.lock().unwrap();
        if !inner.index.contains_key(&key) {
            self.misses.inc();
            return None;
        }
        match inner.read_artifact(key, self.config.decode_budget_factor) {
            Ok(data) => {
                inner.tick += 1;
                let tick = inner.tick;
                if let Some(entry) = inner.index.get_mut(&key) {
                    entry.tick = tick;
                }
                self.hits.inc();
                Some(data)
            }
            Err(_) => {
                self.quarantine_locked(&mut inner, key);
                self.publish_gauges(&inner);
                self.misses.inc();
                None
            }
        }
    }

    /// Whether `key` is live (no counters, no LRU touch).
    #[must_use]
    pub fn contains(&self, key: u128) -> bool {
        self.inner.lock().unwrap().index.contains_key(&key)
    }

    /// Live keys, ascending.
    #[must_use]
    pub fn keys(&self) -> Vec<u128> {
        let inner = self.inner.lock().unwrap();
        let mut keys: Vec<u128> = inner.index.keys().copied().collect();
        keys.sort_unstable();
        keys
    }

    /// Pins `key` (never evicted). No-op if the key is not live.
    ///
    /// # Errors
    ///
    /// I/O errors appending the pin record.
    pub fn pin(&self, key: u128) -> std::io::Result<bool> {
        let mut inner = self.inner.lock().unwrap();
        let Some(entry) = inner.index.get_mut(&key) else {
            return Ok(false);
        };
        if !entry.pinned {
            entry.pinned = true;
            inner.append(&Record::Pin { key })?;
        }
        Ok(true)
    }

    /// Unpins `key`. No-op if the key is not live.
    ///
    /// # Errors
    ///
    /// I/O errors appending the unpin record or enforcing the budget.
    pub fn unpin(&self, key: u128) -> std::io::Result<bool> {
        let mut inner = self.inner.lock().unwrap();
        let Some(entry) = inner.index.get_mut(&key) else {
            return Ok(false);
        };
        if entry.pinned {
            entry.pinned = false;
            inner.append(&Record::Unpin { key })?;
            self.enforce_budget(&mut inner)?;
            self.publish_gauges(&inner);
        }
        Ok(true)
    }

    /// Drops `key` from the store because a *caller-level* integrity
    /// check failed (e.g. the compile service could not re-verify a
    /// stored manifest). Counted under `store.quarantined`.
    pub fn quarantine(&self, key: u128) {
        let mut inner = self.inner.lock().unwrap();
        if inner.index.contains_key(&key) {
            self.quarantine_locked(&mut inner, key);
            self.publish_gauges(&inner);
        }
    }

    /// Fsyncs the log — the explicit durability point.
    ///
    /// # Errors
    ///
    /// The underlying fsync failure.
    pub fn flush(&self) -> std::io::Result<()> {
        self.inner.lock().unwrap().log.flush()
    }

    /// Reads and decodes every live entry, without touching LRU state or
    /// hit/miss counters. Corrupt entries are reported, not removed (use
    /// [`Store::get`]/[`Store::quarantine`] to act on them).
    #[must_use]
    pub fn verify(&self) -> VerifyReport {
        let inner = self.inner.lock().unwrap();
        let mut report = VerifyReport::default();
        let mut keys: Vec<u128> = inner.index.keys().copied().collect();
        keys.sort_unstable();
        for key in keys {
            match inner.read_artifact(key, self.config.decode_budget_factor) {
                Ok(data) => {
                    let expected = inner.index[&key].logical_len as usize;
                    if data.len() == expected {
                        report.ok += 1;
                    } else {
                        report.corrupt.push((
                            key,
                            format!("decoded {} bytes, expected {expected}", data.len()),
                        ));
                    }
                }
                Err(e) => report.corrupt.push((key, e.to_string())),
            }
        }
        report
    }

    /// Compacts the log: live records are rewritten into fresh segments
    /// and dead bytes are reclaimed.
    ///
    /// # Errors
    ///
    /// I/O errors from the rewrite.
    pub fn gc(&self) -> std::io::Result<GcOutcome> {
        let mut inner = self.inner.lock().unwrap();
        let outcome = self.gc_locked(&mut inner)?;
        self.publish_gauges(&inner);
        Ok(outcome)
    }

    fn gc_locked(&self, inner: &mut Inner) -> std::io::Result<GcOutcome> {
        let before_bytes = inner.log.file_bytes()?;
        // Shallow entries first so a half-compacted log never holds a
        // delta whose base only exists in a to-be-deleted segment... it
        // would anyway (old segments survive until the new ones are
        // fsynced), but the ordering also keeps the replay post-pass
        // trivially satisfied at any chain depth.
        let mut keys: Vec<u128> = inner.index.keys().copied().collect();
        keys.sort_unstable_by_key(|&k| (inner.chain_depth(k), k));
        let mut records = Vec::with_capacity(keys.len());
        for &key in &keys {
            records.push(inner.log.read(inner.index[&key].loc)?);
        }
        for &key in &keys {
            if inner.index[&key].pinned {
                records.push(Record::Pin { key });
            }
        }
        let locations = inner.log.compact(&records)?;
        let mut live = 0u64;
        for (key, loc) in keys.iter().zip(&locations) {
            inner.index.get_mut(key).expect("live key").loc = *loc;
            live += loc.frame_len();
        }
        inner.live_bytes = live;
        inner.file_bytes = inner.log.file_bytes()?;
        Ok(GcOutcome {
            before_bytes,
            after_bytes: inner.file_bytes,
            live_entries: keys.len(),
        })
    }

    /// Point-in-time statistics.
    #[must_use]
    pub fn stats(&self) -> StoreStats {
        let inner = self.inner.lock().unwrap();
        let logical: u64 = inner.index.values().map(|e| u64::from(e.logical_len)).sum();
        StoreStats {
            entries: inner.index.len(),
            pinned: inner.index.values().filter(|e| e.pinned).count(),
            delta_entries: inner.index.values().filter(|e| e.base.is_some()).count(),
            live_bytes: inner.live_bytes,
            logical_bytes: logical,
            file_bytes: inner.file_bytes,
            budget: self.config.budget,
            clusters: inner.clusterer.cluster_count(),
            sf_table: inner.clusterer.sf_table_len(),
            chain_depths: inner.chain_depth_histogram(),
            hits: self.hits.get(),
            misses: self.misses.get(),
            evictions: self.evictions.get(),
            recovered: self.recovered.get(),
            quarantined: self.quarantined.get(),
            delta_ratio: ratio(inner.delta_stored, inner.delta_logical),
        }
    }

    /// Removes `key` and every delta that (transitively) depends on it —
    /// none of them can decode without it. Tombstones are appended
    /// best-effort so the quarantine survives restart.
    fn quarantine_locked(&self, inner: &mut Inner, key: u128) {
        for k in inner.remove_transitive(key) {
            let _ = inner.append(&Record::Evict { key: k });
            self.quarantined.inc();
        }
    }

    /// Evicts least-recently-used unpinned entries until live bytes fit
    /// the budget. Bases with live delta references are rewritten on
    /// evict: dependents are re-stored raw first.
    fn enforce_budget(&self, inner: &mut Inner) -> std::io::Result<()> {
        let Some(budget) = self.config.budget else {
            return Ok(());
        };
        while inner.live_bytes > budget {
            // Preferred victim: LRU among unpinned entries nothing
            // references.
            let victim = inner
                .index
                .iter()
                .filter(|(k, e)| !e.pinned && inner.refs.get(k).copied().unwrap_or(0) == 0)
                .min_by_key(|(k, e)| (e.tick, **k))
                .map(|(k, _)| *k);
            let victim = match victim {
                Some(v) => v,
                None => {
                    // Only referenced bases (or nothing) left unpinned:
                    // rewrite the LRU base's dependents raw, then retry.
                    let Some(base) = inner
                        .index
                        .iter()
                        .filter(|(_, e)| !e.pinned)
                        .min_by_key(|(k, e)| (e.tick, **k))
                        .map(|(k, _)| *k)
                    else {
                        break; // everything live is pinned
                    };
                    self.rewrite_dependents_raw(inner, base)?;
                    continue;
                }
            };
            let removed = inner.remove_entry(victim);
            debug_assert!(removed);
            inner.append(&Record::Evict { key: victim })?;
            self.evictions.inc();
        }
        Ok(())
    }

    /// Re-stores every delta that references `base` as a raw record,
    /// dropping the reference count to zero so `base` becomes evictable.
    /// Grand-dependents are untouched: a rewritten dependent keeps its
    /// key and decoded content, so deltas chained on it still resolve.
    fn rewrite_dependents_raw(&self, inner: &mut Inner, base: u128) -> std::io::Result<()> {
        let dependents: Vec<u128> = inner
            .index
            .iter()
            .filter(|(_, e)| e.base == Some(base))
            .map(|(k, _)| *k)
            .collect();
        for key in dependents {
            let data = inner.read_artifact(key, self.config.decode_budget_factor)?;
            let entry = inner.index.get(&key).expect("dependent is live").clone();
            let loc = inner.append(&Record::PutRaw { key, data })?;
            inner.live_bytes = inner.live_bytes - entry.loc.frame_len() + loc.frame_len();
            inner.delta_stored -= entry.loc.frame_len();
            inner.delta_logical -= u64::from(entry.logical_len);
            if let Some(n) = inner.refs.get_mut(&base) {
                *n = n.saturating_sub(1);
            }
            let e = inner.index.get_mut(&key).expect("dependent is live");
            e.loc = loc;
            e.base = None;
            // The clusterer keeps its sketch: decoded content is
            // unchanged, only the storage form moved.
        }
        inner.refs.remove(&base);
        Ok(())
    }

    /// Auto-compaction: reclaim disk once dead bytes exceed live bytes
    /// plus one segment (so small stores never churn).
    fn maybe_compact(&self, inner: &mut Inner) -> std::io::Result<()> {
        let dead = inner.file_bytes.saturating_sub(inner.live_bytes);
        if dead > inner.live_bytes + self.config.segment_bytes {
            self.gc_locked(inner)?;
        }
        Ok(())
    }

    fn publish_gauges(&self, inner: &Inner) {
        self.delta_ratio
            .set(ratio(inner.delta_stored, inner.delta_logical));
        let max_depth = inner
            .index
            .keys()
            .map(|&k| inner.chain_depth(k))
            .max()
            .unwrap_or(0);
        self.chain_depth_gauge.set(f64::from(max_depth));
        self.live_bytes_gauge.set(inner.live_bytes as f64);
        self.entries_gauge.set(inner.index.len() as f64);
    }
}

fn ratio(stored: u64, logical: u64) -> f64 {
    if logical == 0 {
        1.0
    } else {
        stored as f64 / logical as f64
    }
}

impl Inner {
    fn append(&mut self, record: &Record) -> std::io::Result<Location> {
        let loc = self.log.append(record)?;
        self.file_bytes += loc.frame_len();
        Ok(loc)
    }

    /// Reads the decoded bytes of a live entry, re-verifying CRCs along
    /// the way and resolving delta chains base-ward. Two runaway guards:
    /// a hard step ceiling ([`MAX_CHAIN_STEPS`]) against cyclic links,
    /// and the decode-cost budget — the chain may materialize at most
    /// `budget_factor` × the artifact's declared length, enforced from
    /// the records actually read, before any oversized buffer exists.
    fn read_artifact(&self, key: u128, budget_factor: u32) -> std::io::Result<Vec<u8>> {
        let corrupt = |msg: &str| std::io::Error::new(std::io::ErrorKind::InvalidData, msg);
        let entry = self
            .index
            .get(&key)
            .ok_or_else(|| std::io::Error::new(std::io::ErrorKind::NotFound, "not live"))?;
        let budget =
            u64::from(budget_factor.max(1)).saturating_mul(u64::from(entry.logical_len).max(1));

        // Walk base-ward, collecting each hop's delta, until raw.
        let mut chain: Vec<(u32, Vec<u8>)> = Vec::new();
        let mut cursor = key;
        let base_data = loop {
            if chain.len() as u32 > MAX_CHAIN_STEPS {
                return Err(corrupt("delta chain too long (corrupt base links)"));
            }
            let e = self
                .index
                .get(&cursor)
                .ok_or_else(|| corrupt("delta base not live"))?;
            match self.log.read(e.loc)? {
                Record::PutRaw { key: k, data } if k == cursor => break data,
                Record::PutDelta {
                    key: k,
                    base,
                    logical_len,
                    delta,
                } if k == cursor => {
                    chain.push((logical_len, delta));
                    cursor = base;
                }
                _ => return Err(corrupt("frame key changed since indexing")),
            }
        };

        // Apply deltas raw-base-outward, metering decoded bytes.
        let mut decoded_total = base_data.len() as u64;
        let mut data = base_data;
        for (logical_len, delta_bytes) in chain.into_iter().rev() {
            decoded_total = decoded_total.saturating_add(u64::from(logical_len));
            if decoded_total > budget {
                return Err(corrupt("delta chain exceeds decode budget"));
            }
            data = delta::decode(&data, &delta_bytes, logical_len as usize)
                .map_err(|e| corrupt(&e.to_string()))?;
            if data.len() != logical_len as usize {
                return Err(corrupt("decoded length disagrees with record"));
            }
        }
        Ok(data)
    }

    /// Delta hops between `key` and its raw ancestor (0 for raw entries
    /// and for untracked keys). Walks the live index; cycles are cut at
    /// [`MAX_CHAIN_STEPS`].
    fn chain_depth(&self, key: u128) -> u32 {
        let mut depth = 0u32;
        let mut cursor = self.index.get(&key);
        while let Some(entry) = cursor {
            match entry.base {
                Some(base) if depth < MAX_CHAIN_STEPS => {
                    depth += 1;
                    cursor = self.index.get(&base);
                }
                _ => break,
            }
        }
        depth
    }

    /// Total bytes materialized to decode `key`: its own logical length
    /// plus every link down to (and including) the raw ancestor.
    fn chain_total_logical(&self, key: u128) -> u64 {
        let mut total = 0u64;
        let mut steps = 0u32;
        let mut cursor = self.index.get(&key);
        while let Some(entry) = cursor {
            total = total.saturating_add(u64::from(entry.logical_len));
            match entry.base {
                Some(base) if steps < MAX_CHAIN_STEPS => {
                    steps += 1;
                    cursor = self.index.get(&base);
                }
                _ => break,
            }
        }
        total
    }

    /// Live-entry counts per chain depth; `histogram[d]` = entries at
    /// depth `d`. Empty for an empty store.
    fn chain_depth_histogram(&self) -> Vec<u64> {
        let mut histogram = Vec::new();
        for &key in self.index.keys() {
            let depth = self.chain_depth(key) as usize;
            if histogram.len() <= depth {
                histogram.resize(depth + 1, 0);
            }
            histogram[depth] += 1;
        }
        histogram
    }

    /// Removes `key` and every (transitive) dependent delta from the
    /// in-memory state. Returns the keys actually removed, dependents
    /// in BFS order after the root.
    fn remove_transitive(&mut self, key: u128) -> Vec<u128> {
        let mut doomed = vec![key];
        let mut at = 0;
        while at < doomed.len() {
            let parent = doomed[at];
            at += 1;
            let mut dependents: Vec<u128> = self
                .index
                .iter()
                .filter(|(_, e)| e.base == Some(parent))
                .map(|(k, _)| *k)
                .collect();
            dependents.sort_unstable();
            for d in dependents {
                if !doomed.contains(&d) {
                    doomed.push(d);
                }
            }
        }
        doomed.retain(|&k| self.remove_entry(k));
        doomed
    }

    /// Replays one recovered record into the index (log order).
    fn replay(&mut self, loc: Location, record: Record) {
        self.tick += 1;
        let tick = self.tick;
        match record {
            Record::PutRaw { key, data } => {
                // A repeated put for a live key is an internal rewrite
                // (rewrite-on-evict / compaction): the pin state carries
                // over, even though the pin record precedes this frame.
                let pinned = self.index.get(&key).is_some_and(|e| e.pinned);
                self.displace(key);
                self.live_bytes += loc.frame_len();
                self.index.insert(
                    key,
                    Entry {
                        loc,
                        base: None,
                        logical_len: data.len() as u32,
                        pinned,
                        tick,
                    },
                );
            }
            Record::PutDelta {
                key,
                base,
                logical_len,
                ..
            } => {
                let pinned = self.index.get(&key).is_some_and(|e| e.pinned);
                self.displace(key);
                self.live_bytes += loc.frame_len();
                self.delta_stored += loc.frame_len();
                self.delta_logical += u64::from(logical_len);
                *self.refs.entry(base).or_insert(0) += 1;
                self.index.insert(
                    key,
                    Entry {
                        loc,
                        base: Some(base),
                        logical_len,
                        pinned,
                        tick,
                    },
                );
            }
            Record::Evict { key } => {
                self.displace(key);
            }
            Record::Pin { key } => {
                if let Some(entry) = self.index.get_mut(&key) {
                    entry.pinned = true;
                }
            }
            Record::Unpin { key } => {
                if let Some(entry) = self.index.get_mut(&key) {
                    entry.pinned = false;
                }
            }
        }
    }

    /// Removes any live entry for `key` (replay-time overwrite/evict).
    fn displace(&mut self, key: u128) {
        self.remove_entry(key);
    }

    /// Removes `key` from every in-memory structure. Returns whether it
    /// was live. (The on-disk frame becomes dead bytes.)
    fn remove_entry(&mut self, key: u128) -> bool {
        let Some(entry) = self.index.remove(&key) else {
            return false;
        };
        self.live_bytes = self.live_bytes.saturating_sub(entry.loc.frame_len());
        if let Some(base) = entry.base {
            self.delta_stored = self.delta_stored.saturating_sub(entry.loc.frame_len());
            self.delta_logical = self
                .delta_logical
                .saturating_sub(u64::from(entry.logical_len));
            if let Some(n) = self.refs.get_mut(&base) {
                *n = n.saturating_sub(1);
                if *n == 0 {
                    self.refs.remove(&base);
                }
            }
        }
        // Tolerates untracked keys: during replay the clusterer is
        // still empty (it is rebuilt from decoded content afterwards).
        self.clusterer.remove(key);
        true
    }
}
