//! The store proper: index, similarity dedup, budget eviction, recovery.
//!
//! One [`Store`] owns a [`SegmentLog`] plus
//! the in-memory state recovery rebuilds from it: the key index, the
//! chunk-signature index for similarity matching, delta base reference
//! counts, LRU ticks, and byte accounting. All mutation happens under one
//! mutex — the store is shared behind an `Arc` by the compile service and
//! its workers.
//!
//! # Decision rule: delta vs raw
//!
//! An incoming artifact is chunk-signed ([`crate::chunk`]); the *raw*
//! stored artifact sharing the most chunk hashes (at least
//! [`StoreConfig::min_overlap_chunks`]) is the delta-base candidate. The
//! artifact is stored as base-ref + delta iff the encoded delta frame is
//! strictly smaller than the raw frame would be; otherwise raw. Deltas
//! never chain: a delta's base is always a raw artifact, so every read
//! resolves in at most two frames.
//!
//! # Eviction and pinning
//!
//! When live bytes exceed the budget, the least-recently-used unpinned
//! entry that no live delta references is evicted (a tombstone is
//! appended; the frame becomes dead). A base still referenced by deltas
//! is never evicted directly: if only such bases remain, the policy
//! *rewrites on evict* — each dependent delta is re-stored raw, then the
//! base goes. Pinned entries are never evicted; if pinned entries alone
//! exceed the budget, the store runs over budget rather than break the
//! pin contract. Dead bytes are reclaimed by compaction
//! ([`Store::gc`]), which also runs automatically once dead bytes exceed
//! live bytes plus one segment.

use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::Mutex;

use ppet_trace::{Counter, Gauge, Metrics};

use crate::chunk;
use crate::delta;
use crate::record::Record;
use crate::segment::{Location, SegmentLog};

/// Tunables for one store.
#[derive(Debug, Clone)]
pub struct StoreConfig {
    /// Live-byte budget; `None` disables eviction.
    pub budget: Option<u64>,
    /// Segment roll threshold.
    pub segment_bytes: u64,
    /// Minimum chunk-signature overlap before an artifact is considered
    /// as a delta base.
    pub min_overlap_chunks: usize,
}

impl Default for StoreConfig {
    fn default() -> Self {
        Self {
            budget: None,
            segment_bytes: 4 << 20,
            min_overlap_chunks: 1,
        }
    }
}

impl StoreConfig {
    /// Sets the live-byte budget.
    #[must_use]
    pub fn with_budget(mut self, budget: u64) -> Self {
        self.budget = Some(budget);
        self
    }

    /// Sets the segment roll threshold.
    #[must_use]
    pub fn with_segment_bytes(mut self, bytes: u64) -> Self {
        self.segment_bytes = bytes.max(1);
        self
    }
}

/// What [`Store::put`] did with the artifact.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PutOutcome {
    /// Stored as a full artifact.
    InsertedRaw {
        /// On-disk frame bytes.
        stored_bytes: u64,
    },
    /// Stored as a delta against a similar base.
    InsertedDelta {
        /// On-disk frame bytes (the delta, not the artifact).
        stored_bytes: u64,
        /// The base artifact's key.
        base: u128,
    },
    /// The key was already live — content-addressed stores are
    /// write-once per key, so the bytes were not rewritten (the entry's
    /// LRU position was refreshed).
    AlreadyPresent,
}

/// Point-in-time store statistics (index state plus counter values).
#[derive(Debug, Clone, PartialEq)]
pub struct StoreStats {
    /// Live artifacts.
    pub entries: usize,
    /// Live pinned artifacts.
    pub pinned: usize,
    /// Live artifacts stored as deltas.
    pub delta_entries: usize,
    /// On-disk bytes of live frames.
    pub live_bytes: u64,
    /// Decoded bytes the live artifacts represent.
    pub logical_bytes: u64,
    /// Total segment file bytes (live + dead awaiting compaction).
    pub file_bytes: u64,
    /// Configured budget.
    pub budget: Option<u64>,
    /// Reads answered from the store.
    pub hits: u64,
    /// Reads that found no live entry.
    pub misses: u64,
    /// Entries evicted by the budget policy.
    pub evictions: u64,
    /// Valid records replayed at open.
    pub recovered: u64,
    /// Torn/corrupt records dropped (at open or on read).
    pub quarantined: u64,
    /// Delta stored bytes over delta logical bytes (1.0 when no deltas).
    pub delta_ratio: f64,
}

impl std::fmt::Display for StoreStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "entries        {} ({} pinned, {} delta)",
            self.entries, self.pinned, self.delta_entries
        )?;
        writeln!(
            f,
            "live_bytes     {} (logical {}, files {})",
            self.live_bytes, self.logical_bytes, self.file_bytes
        )?;
        match self.budget {
            Some(b) => writeln!(f, "budget         {b}")?,
            None => writeln!(f, "budget         unlimited")?,
        }
        writeln!(f, "delta_ratio    {:.3}", self.delta_ratio)?;
        writeln!(f, "hits/misses    {}/{}", self.hits, self.misses)?;
        writeln!(f, "evictions      {}", self.evictions)?;
        write!(
            f,
            "recovered      {} (quarantined {})",
            self.recovered, self.quarantined
        )
    }
}

/// Result of one [`Store::verify`] sweep.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct VerifyReport {
    /// Entries read and decoded successfully.
    pub ok: usize,
    /// Entries that failed, with the failure description.
    pub corrupt: Vec<(u128, String)>,
}

impl VerifyReport {
    /// Whether every live entry verified.
    #[must_use]
    pub fn pass(&self) -> bool {
        self.corrupt.is_empty()
    }
}

/// Result of one compaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GcOutcome {
    /// Segment-file bytes before compaction.
    pub before_bytes: u64,
    /// Segment-file bytes after compaction.
    pub after_bytes: u64,
    /// Live entries carried over.
    pub live_entries: usize,
}

#[derive(Debug, Clone)]
struct Entry {
    loc: Location,
    /// `Some(base)` for delta entries; `None` for raw.
    base: Option<u128>,
    logical_len: u32,
    pinned: bool,
    tick: u64,
}

#[derive(Debug)]
struct Inner {
    log: SegmentLog,
    index: HashMap<u128, Entry>,
    /// Chunk signatures of raw entries (delta-base candidates).
    signatures: HashMap<u128, Vec<u64>>,
    /// Inverted chunk index: chunk hash → (raw key, occurrences of the
    /// hash in that key's signature). Carrying the count lets
    /// [`Store::best_base`] score candidates by the exact multiset
    /// intersection `Σ min(probe_count, base_count)` — the same quantity
    /// [`chunk::overlap`] computes — without touching the full
    /// signatures.
    chunk_index: HashMap<u64, Vec<(u128, u32)>>,
    /// Live delta count per base key.
    refs: HashMap<u128, u32>,
    live_bytes: u64,
    file_bytes: u64,
    delta_stored: u64,
    delta_logical: u64,
    tick: u64,
}

/// The persistent content-addressed artifact store.
#[derive(Debug)]
pub struct Store {
    inner: Mutex<Inner>,
    dir: PathBuf,
    config: StoreConfig,
    hits: Counter,
    misses: Counter,
    evictions: Counter,
    recovered: Counter,
    quarantined: Counter,
    delta_ratio: Gauge,
    live_bytes_gauge: Gauge,
    entries_gauge: Gauge,
}

impl Store {
    /// Opens the store in `dir` with a private metrics registry.
    ///
    /// # Errors
    ///
    /// I/O errors from the segment log (corrupt content never errors —
    /// it is quarantined and counted).
    pub fn open(dir: impl AsRef<Path>, config: StoreConfig) -> std::io::Result<Self> {
        Self::open_with_metrics(dir, config, &Metrics::new())
    }

    /// Opens the store, registering its `store.*` counters and gauges in
    /// `metrics` (the compile service passes its own registry so the
    /// counters surface on `/metrics`).
    ///
    /// # Errors
    ///
    /// I/O errors from the segment log.
    pub fn open_with_metrics(
        dir: impl AsRef<Path>,
        config: StoreConfig,
        metrics: &Metrics,
    ) -> std::io::Result<Self> {
        let dir = dir.as_ref().to_path_buf();
        let (log, records, recovery) = SegmentLog::open(&dir, config.segment_bytes)?;

        let mut inner = Inner {
            log,
            index: HashMap::new(),
            signatures: HashMap::new(),
            chunk_index: HashMap::new(),
            refs: HashMap::new(),
            live_bytes: 0,
            file_bytes: 0,
            delta_stored: 0,
            delta_logical: 0,
            tick: 0,
        };

        let mut replay_quarantined = 0u64;
        for (loc, record) in records {
            inner.replay(loc, record);
        }
        // Counted from disk, not from replay: quarantined mid-log frames
        // still occupy file bytes.
        inner.file_bytes = inner.log.file_bytes()?;
        // Deltas whose base did not survive (quarantined, or the victim
        // of a corrupt eviction interleaving) are unreadable: drop them.
        let orphans: Vec<u128> = inner
            .index
            .iter()
            .filter(|(_, e)| {
                e.base
                    .is_some_and(|b| !inner.index.get(&b).is_some_and(|base| base.base.is_none()))
            })
            .map(|(k, _)| *k)
            .collect();
        for key in orphans {
            inner.remove_entry(key);
            replay_quarantined += 1;
        }

        let store = Self {
            inner: Mutex::new(inner),
            dir,
            config,
            hits: metrics.counter("store.hits"),
            misses: metrics.counter("store.misses"),
            evictions: metrics.counter("store.evictions"),
            recovered: metrics.counter("store.recovered"),
            quarantined: metrics.counter("store.quarantined"),
            delta_ratio: metrics.gauge("store.delta_ratio"),
            live_bytes_gauge: metrics.gauge("store.live_bytes"),
            entries_gauge: metrics.gauge("store.entries"),
        };
        store.recovered.add(recovery.recovered);
        store
            .quarantined
            .add(recovery.quarantined + replay_quarantined);
        {
            let mut inner = store.inner.lock().unwrap();
            store.enforce_budget(&mut inner)?;
            store.publish_gauges(&inner);
        }
        Ok(store)
    }

    /// The directory this store lives in.
    #[must_use]
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Stores `data` under `key`. Content-addressed keys are write-once:
    /// a live key is refreshed (LRU), not rewritten.
    ///
    /// # Errors
    ///
    /// I/O errors from the append or from budget enforcement.
    pub fn put(&self, key: u128, data: &[u8]) -> std::io::Result<PutOutcome> {
        self.put_inner(key, data, false)
    }

    /// Stores `data` under `key` and pins it: the eviction policy will
    /// never remove it. Pinning an already-live key just sets the pin.
    ///
    /// # Errors
    ///
    /// I/O errors from the append or from budget enforcement.
    pub fn put_pinned(&self, key: u128, data: &[u8]) -> std::io::Result<PutOutcome> {
        self.put_inner(key, data, true)
    }

    fn put_inner(&self, key: u128, data: &[u8], pin: bool) -> std::io::Result<PutOutcome> {
        let mut inner = self.inner.lock().unwrap();
        inner.tick += 1;
        let tick = inner.tick;
        if let Some(entry) = inner.index.get_mut(&key) {
            entry.tick = tick;
            let was_pinned = entry.pinned;
            entry.pinned = entry.pinned || pin;
            if pin && !was_pinned {
                inner.append(&Record::Pin { key })?;
            }
            return Ok(PutOutcome::AlreadyPresent);
        }

        // Similarity: the raw entry sharing the most chunk hashes.
        let sig = chunk::signature(data);
        let candidate = self.best_base(&inner, key, &sig);
        let mut outcome = None;
        if let Some(base_key) = candidate {
            if let Ok(base_data) = self.read_artifact(&inner, base_key) {
                let encoded = delta::encode(&base_data, data);
                // The decision rule: delta wins iff its frame is strictly
                // smaller than the raw frame (both share FRAME_HEADER, so
                // compare payloads: delta carries 24 extra header bytes).
                if encoded.len() + 24 < data.len() {
                    let record = Record::PutDelta {
                        key,
                        base: base_key,
                        logical_len: data.len() as u32,
                        delta: encoded,
                    };
                    let loc = inner.append(&record)?;
                    inner.live_bytes += loc.frame_len();
                    inner.delta_stored += loc.frame_len();
                    inner.delta_logical += data.len() as u64;
                    *inner.refs.entry(base_key).or_insert(0) += 1;
                    inner.index.insert(
                        key,
                        Entry {
                            loc,
                            base: Some(base_key),
                            logical_len: data.len() as u32,
                            pinned: pin,
                            tick,
                        },
                    );
                    outcome = Some(PutOutcome::InsertedDelta {
                        stored_bytes: loc.frame_len(),
                        base: base_key,
                    });
                }
            }
        }
        if outcome.is_none() {
            let record = Record::PutRaw {
                key,
                data: data.to_vec(),
            };
            let loc = inner.append(&record)?;
            inner.live_bytes += loc.frame_len();
            inner.index.insert(
                key,
                Entry {
                    loc,
                    base: None,
                    logical_len: data.len() as u32,
                    pinned: pin,
                    tick,
                },
            );
            inner.add_signature(key, sig);
            outcome = Some(PutOutcome::InsertedRaw {
                stored_bytes: loc.frame_len(),
            });
        }
        if pin {
            inner.append(&Record::Pin { key })?;
        }
        self.enforce_budget(&mut inner)?;
        self.maybe_compact(&mut inner)?;
        self.publish_gauges(&inner);
        Ok(outcome.expect("outcome set above"))
    }

    fn best_base(&self, inner: &Inner, key: u128, sig: &[u64]) -> Option<u128> {
        // Score = exact multiset intersection with each candidate's
        // signature: Σ over distinct hashes of min(probe count, base
        // count). Iterating the probe's *distinct* hashes (not raw
        // occurrences) and clamping by both sides is what makes repeated
        // chunks count once per shared copy — a base that is one chunk
        // repeated 100 times shares at most min(probe, 100) chunks with
        // the probe, not probe×100.
        let mut probe_counts: HashMap<u64, u32> = HashMap::with_capacity(sig.len());
        for &h in sig {
            *probe_counts.entry(h).or_insert(0) += 1;
        }
        let mut tally: HashMap<u128, usize> = HashMap::new();
        for (h, &probe_n) in &probe_counts {
            if let Some(bases) = inner.chunk_index.get(h) {
                for &(k, base_n) in bases {
                    if k != key {
                        *tally.entry(k).or_insert(0) += probe_n.min(base_n) as usize;
                    }
                }
            }
        }
        tally
            .into_iter()
            .filter(|(_, n)| *n >= self.config.min_overlap_chunks.max(1))
            // Deterministic tie-break on the key.
            .max_by_key(|(k, n)| (*n, *k))
            .map(|(k, _)| k)
    }

    /// Fetches the artifact stored under `key`. Corrupt records are
    /// quarantined (removed, tombstoned, counted) and reported as a miss
    /// — the caller recomputes and re-puts.
    pub fn get(&self, key: u128) -> Option<Vec<u8>> {
        let mut inner = self.inner.lock().unwrap();
        if !inner.index.contains_key(&key) {
            self.misses.inc();
            return None;
        }
        match self.read_artifact(&inner, key) {
            Ok(data) => {
                inner.tick += 1;
                let tick = inner.tick;
                if let Some(entry) = inner.index.get_mut(&key) {
                    entry.tick = tick;
                }
                self.hits.inc();
                Some(data)
            }
            Err(_) => {
                self.quarantine_locked(&mut inner, key);
                self.publish_gauges(&inner);
                self.misses.inc();
                None
            }
        }
    }

    /// Whether `key` is live (no counters, no LRU touch).
    #[must_use]
    pub fn contains(&self, key: u128) -> bool {
        self.inner.lock().unwrap().index.contains_key(&key)
    }

    /// Live keys, ascending.
    #[must_use]
    pub fn keys(&self) -> Vec<u128> {
        let inner = self.inner.lock().unwrap();
        let mut keys: Vec<u128> = inner.index.keys().copied().collect();
        keys.sort_unstable();
        keys
    }

    /// Pins `key` (never evicted). No-op if the key is not live.
    ///
    /// # Errors
    ///
    /// I/O errors appending the pin record.
    pub fn pin(&self, key: u128) -> std::io::Result<bool> {
        let mut inner = self.inner.lock().unwrap();
        let Some(entry) = inner.index.get_mut(&key) else {
            return Ok(false);
        };
        if !entry.pinned {
            entry.pinned = true;
            inner.append(&Record::Pin { key })?;
        }
        Ok(true)
    }

    /// Unpins `key`. No-op if the key is not live.
    ///
    /// # Errors
    ///
    /// I/O errors appending the unpin record or enforcing the budget.
    pub fn unpin(&self, key: u128) -> std::io::Result<bool> {
        let mut inner = self.inner.lock().unwrap();
        let Some(entry) = inner.index.get_mut(&key) else {
            return Ok(false);
        };
        if entry.pinned {
            entry.pinned = false;
            inner.append(&Record::Unpin { key })?;
            self.enforce_budget(&mut inner)?;
            self.publish_gauges(&inner);
        }
        Ok(true)
    }

    /// Drops `key` from the store because a *caller-level* integrity
    /// check failed (e.g. the compile service could not re-verify a
    /// stored manifest). Counted under `store.quarantined`.
    pub fn quarantine(&self, key: u128) {
        let mut inner = self.inner.lock().unwrap();
        if inner.index.contains_key(&key) {
            self.quarantine_locked(&mut inner, key);
            self.publish_gauges(&inner);
        }
    }

    /// Fsyncs the log — the explicit durability point.
    ///
    /// # Errors
    ///
    /// The underlying fsync failure.
    pub fn flush(&self) -> std::io::Result<()> {
        self.inner.lock().unwrap().log.flush()
    }

    /// Reads and decodes every live entry, without touching LRU state or
    /// hit/miss counters. Corrupt entries are reported, not removed (use
    /// [`Store::get`]/[`Store::quarantine`] to act on them).
    #[must_use]
    pub fn verify(&self) -> VerifyReport {
        let inner = self.inner.lock().unwrap();
        let mut report = VerifyReport::default();
        let mut keys: Vec<u128> = inner.index.keys().copied().collect();
        keys.sort_unstable();
        for key in keys {
            match self.read_artifact(&inner, key) {
                Ok(data) => {
                    let expected = inner.index[&key].logical_len as usize;
                    if data.len() == expected {
                        report.ok += 1;
                    } else {
                        report.corrupt.push((
                            key,
                            format!("decoded {} bytes, expected {expected}", data.len()),
                        ));
                    }
                }
                Err(e) => report.corrupt.push((key, e.to_string())),
            }
        }
        report
    }

    /// Compacts the log: live records are rewritten into fresh segments
    /// and dead bytes are reclaimed.
    ///
    /// # Errors
    ///
    /// I/O errors from the rewrite.
    pub fn gc(&self) -> std::io::Result<GcOutcome> {
        let mut inner = self.inner.lock().unwrap();
        let outcome = self.gc_locked(&mut inner)?;
        self.publish_gauges(&inner);
        Ok(outcome)
    }

    fn gc_locked(&self, inner: &mut Inner) -> std::io::Result<GcOutcome> {
        let before_bytes = inner.log.file_bytes()?;
        // Bases first so a half-compacted log never holds a delta whose
        // base only exists in a to-be-deleted segment... it would anyway
        // (old segments survive until the new ones are fsynced), but the
        // ordering also keeps the replay post-pass trivially satisfied.
        let mut keys: Vec<u128> = inner.index.keys().copied().collect();
        keys.sort_unstable_by_key(|k| (inner.index[k].base.is_some(), *k));
        let mut records = Vec::with_capacity(keys.len());
        for &key in &keys {
            records.push(inner.log.read(inner.index[&key].loc)?);
        }
        for &key in &keys {
            if inner.index[&key].pinned {
                records.push(Record::Pin { key });
            }
        }
        let locations = inner.log.compact(&records)?;
        let mut live = 0u64;
        for (key, loc) in keys.iter().zip(&locations) {
            inner.index.get_mut(key).expect("live key").loc = *loc;
            live += loc.frame_len();
        }
        inner.live_bytes = live;
        inner.file_bytes = inner.log.file_bytes()?;
        Ok(GcOutcome {
            before_bytes,
            after_bytes: inner.file_bytes,
            live_entries: keys.len(),
        })
    }

    /// Point-in-time statistics.
    #[must_use]
    pub fn stats(&self) -> StoreStats {
        let inner = self.inner.lock().unwrap();
        let logical: u64 = inner.index.values().map(|e| u64::from(e.logical_len)).sum();
        StoreStats {
            entries: inner.index.len(),
            pinned: inner.index.values().filter(|e| e.pinned).count(),
            delta_entries: inner.index.values().filter(|e| e.base.is_some()).count(),
            live_bytes: inner.live_bytes,
            logical_bytes: logical,
            file_bytes: inner.file_bytes,
            budget: self.config.budget,
            hits: self.hits.get(),
            misses: self.misses.get(),
            evictions: self.evictions.get(),
            recovered: self.recovered.get(),
            quarantined: self.quarantined.get(),
            delta_ratio: ratio(inner.delta_stored, inner.delta_logical),
        }
    }

    /// Reads the decoded bytes of a live entry (raw directly, delta via
    /// its base), re-verifying CRCs along the way.
    fn read_artifact(&self, inner: &Inner, key: u128) -> std::io::Result<Vec<u8>> {
        let entry = inner
            .index
            .get(&key)
            .ok_or_else(|| std::io::Error::new(std::io::ErrorKind::NotFound, "not live"))?;
        match inner.log.read(entry.loc)? {
            Record::PutRaw { key: k, data } if k == key => Ok(data),
            Record::PutDelta {
                key: k,
                base,
                logical_len,
                delta,
            } if k == key => {
                let base_entry = inner.index.get(&base).ok_or_else(|| {
                    std::io::Error::new(std::io::ErrorKind::InvalidData, "delta base not live")
                })?;
                let base_data = match inner.log.read(base_entry.loc)? {
                    Record::PutRaw { data, .. } => data,
                    _ => {
                        return Err(std::io::Error::new(
                            std::io::ErrorKind::InvalidData,
                            "delta base is not a raw record",
                        ))
                    }
                };
                let data = delta::decode(&base_data, &delta).map_err(|e| {
                    std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string())
                })?;
                if data.len() != logical_len as usize {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::InvalidData,
                        "decoded length disagrees with record",
                    ));
                }
                Ok(data)
            }
            _ => Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                "frame key changed since indexing",
            )),
        }
    }

    /// Removes `key` and (if it was a delta base) every dependent delta —
    /// none of them can decode without it. Tombstones are appended
    /// best-effort so the quarantine survives restart.
    fn quarantine_locked(&self, inner: &mut Inner, key: u128) {
        let mut doomed = vec![key];
        if inner.refs.get(&key).copied().unwrap_or(0) > 0 {
            doomed.extend(
                inner
                    .index
                    .iter()
                    .filter(|(_, e)| e.base == Some(key))
                    .map(|(k, _)| *k),
            );
        }
        for k in doomed {
            if inner.remove_entry(k) {
                let _ = inner.append(&Record::Evict { key: k });
                self.quarantined.inc();
            }
        }
    }

    /// Evicts least-recently-used unpinned entries until live bytes fit
    /// the budget. Bases with live delta references are rewritten on
    /// evict: dependents are re-stored raw first.
    fn enforce_budget(&self, inner: &mut Inner) -> std::io::Result<()> {
        let Some(budget) = self.config.budget else {
            return Ok(());
        };
        while inner.live_bytes > budget {
            // Preferred victim: LRU among unpinned entries nothing
            // references.
            let victim = inner
                .index
                .iter()
                .filter(|(k, e)| !e.pinned && inner.refs.get(k).copied().unwrap_or(0) == 0)
                .min_by_key(|(k, e)| (e.tick, **k))
                .map(|(k, _)| *k);
            let victim = match victim {
                Some(v) => v,
                None => {
                    // Only referenced bases (or nothing) left unpinned:
                    // rewrite the LRU base's dependents raw, then retry.
                    let Some(base) = inner
                        .index
                        .iter()
                        .filter(|(_, e)| !e.pinned)
                        .min_by_key(|(k, e)| (e.tick, **k))
                        .map(|(k, _)| *k)
                    else {
                        break; // everything live is pinned
                    };
                    self.rewrite_dependents_raw(inner, base)?;
                    continue;
                }
            };
            let removed = inner.remove_entry(victim);
            debug_assert!(removed);
            inner.append(&Record::Evict { key: victim })?;
            self.evictions.inc();
        }
        Ok(())
    }

    /// Re-stores every delta that references `base` as a raw record,
    /// dropping the reference count to zero so `base` becomes evictable.
    fn rewrite_dependents_raw(&self, inner: &mut Inner, base: u128) -> std::io::Result<()> {
        let dependents: Vec<u128> = inner
            .index
            .iter()
            .filter(|(_, e)| e.base == Some(base))
            .map(|(k, _)| *k)
            .collect();
        for key in dependents {
            let data = self.read_artifact(inner, key)?;
            let entry = inner.index.get(&key).expect("dependent is live").clone();
            let loc = inner.append(&Record::PutRaw {
                key,
                data: data.clone(),
            })?;
            inner.live_bytes = inner.live_bytes - entry.loc.frame_len() + loc.frame_len();
            inner.delta_stored -= entry.loc.frame_len();
            inner.delta_logical -= u64::from(entry.logical_len);
            if let Some(n) = inner.refs.get_mut(&base) {
                *n = n.saturating_sub(1);
            }
            let e = inner.index.get_mut(&key).expect("dependent is live");
            e.loc = loc;
            e.base = None;
            inner.add_signature(key, chunk::signature(&data));
        }
        inner.refs.remove(&base);
        Ok(())
    }

    /// Auto-compaction: reclaim disk once dead bytes exceed live bytes
    /// plus one segment (so small stores never churn).
    fn maybe_compact(&self, inner: &mut Inner) -> std::io::Result<()> {
        let dead = inner.file_bytes.saturating_sub(inner.live_bytes);
        if dead > inner.live_bytes + self.config.segment_bytes {
            self.gc_locked(inner)?;
        }
        Ok(())
    }

    fn publish_gauges(&self, inner: &Inner) {
        self.delta_ratio
            .set(ratio(inner.delta_stored, inner.delta_logical));
        self.live_bytes_gauge.set(inner.live_bytes as f64);
        self.entries_gauge.set(inner.index.len() as f64);
    }
}

fn ratio(stored: u64, logical: u64) -> f64 {
    if logical == 0 {
        1.0
    } else {
        stored as f64 / logical as f64
    }
}

impl Inner {
    fn append(&mut self, record: &Record) -> std::io::Result<Location> {
        let loc = self.log.append(record)?;
        self.file_bytes += loc.frame_len();
        Ok(loc)
    }

    /// Replays one recovered record into the index (log order).
    fn replay(&mut self, loc: Location, record: Record) {
        self.tick += 1;
        let tick = self.tick;
        match record {
            Record::PutRaw { key, data } => {
                // A repeated put for a live key is an internal rewrite
                // (rewrite-on-evict / compaction): the pin state carries
                // over, even though the pin record precedes this frame.
                let pinned = self.index.get(&key).is_some_and(|e| e.pinned);
                self.displace(key);
                self.live_bytes += loc.frame_len();
                self.index.insert(
                    key,
                    Entry {
                        loc,
                        base: None,
                        logical_len: data.len() as u32,
                        pinned,
                        tick,
                    },
                );
                self.add_signature(key, chunk::signature(&data));
            }
            Record::PutDelta {
                key,
                base,
                logical_len,
                ..
            } => {
                let pinned = self.index.get(&key).is_some_and(|e| e.pinned);
                self.displace(key);
                self.live_bytes += loc.frame_len();
                self.delta_stored += loc.frame_len();
                self.delta_logical += u64::from(logical_len);
                *self.refs.entry(base).or_insert(0) += 1;
                self.index.insert(
                    key,
                    Entry {
                        loc,
                        base: Some(base),
                        logical_len,
                        pinned,
                        tick,
                    },
                );
            }
            Record::Evict { key } => {
                self.displace(key);
            }
            Record::Pin { key } => {
                if let Some(entry) = self.index.get_mut(&key) {
                    entry.pinned = true;
                }
            }
            Record::Unpin { key } => {
                if let Some(entry) = self.index.get_mut(&key) {
                    entry.pinned = false;
                }
            }
        }
    }

    /// Removes any live entry for `key` (replay-time overwrite/evict).
    fn displace(&mut self, key: u128) {
        self.remove_entry(key);
    }

    /// Removes `key` from every in-memory structure. Returns whether it
    /// was live. (The on-disk frame becomes dead bytes.)
    fn remove_entry(&mut self, key: u128) -> bool {
        let Some(entry) = self.index.remove(&key) else {
            return false;
        };
        self.live_bytes = self.live_bytes.saturating_sub(entry.loc.frame_len());
        match entry.base {
            Some(base) => {
                self.delta_stored = self.delta_stored.saturating_sub(entry.loc.frame_len());
                self.delta_logical = self
                    .delta_logical
                    .saturating_sub(u64::from(entry.logical_len));
                if let Some(n) = self.refs.get_mut(&base) {
                    *n = n.saturating_sub(1);
                    if *n == 0 {
                        self.refs.remove(&base);
                    }
                }
            }
            None => self.drop_signature(key),
        }
        true
    }

    fn add_signature(&mut self, key: u128, sig: Vec<u64>) {
        let mut counts: HashMap<u64, u32> = HashMap::with_capacity(sig.len());
        for &h in &sig {
            *counts.entry(h).or_insert(0) += 1;
        }
        for (h, n) in counts {
            self.chunk_index.entry(h).or_default().push((key, n));
        }
        self.signatures.insert(key, sig);
    }

    fn drop_signature(&mut self, key: u128) {
        if let Some(sig) = self.signatures.remove(&key) {
            for h in sig {
                if let Some(keys) = self.chunk_index.get_mut(&h) {
                    keys.retain(|&(k, _)| k != key);
                    if keys.is_empty() {
                        self.chunk_index.remove(&h);
                    }
                }
            }
        }
    }
}
