//! Chunk signatures for similarity matching.
//!
//! Similar artifacts (manifests of near-identical netlists, re-audited
//! golden entries) share most of their bytes. To find the best delta base
//! without comparing against every stored artifact, each raw artifact
//! gets a *signature*: the FNV-1a hash of every fixed-size chunk. Two
//! artifacts with many common chunks are likely near-duplicates, and the
//! stored artifact sharing the most chunk hashes with an incoming one is
//! the delta-base candidate (the SBC "similarity-based chunking" idea,
//! reduced to fixed windows — alignment shifts are handled later by the
//! byte-granular delta encoder, so the signature only has to *rank*
//! candidates, not find exact matches).

/// Fixed chunk width the signature hashes over.
pub const CHUNK_SIZE: usize = 64;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// FNV-1a of one byte slice.
#[must_use]
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = FNV_OFFSET;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash
}

/// The chunk signature of `data`: one hash per [`CHUNK_SIZE`] window,
/// including the (possibly short) tail chunk. Empty data has an empty
/// signature.
#[must_use]
pub fn signature(data: &[u8]) -> Vec<u64> {
    data.chunks(CHUNK_SIZE).map(fnv1a).collect()
}

/// How many chunk hashes `probe` shares with `base` (multiset
/// intersection size). Both inputs may be unsorted.
#[must_use]
pub fn overlap(probe: &[u64], base: &[u64]) -> usize {
    let mut counts = std::collections::HashMap::with_capacity(base.len());
    for &h in base {
        *counts.entry(h).or_insert(0usize) += 1;
    }
    let mut shared = 0;
    for h in probe {
        if let Some(n) = counts.get_mut(h) {
            if *n > 0 {
                *n -= 1;
                shared += 1;
            }
        }
    }
    shared
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_data_overlaps_fully() {
        let data: Vec<u8> = (0..=255u8).cycle().take(1000).collect();
        let sig = signature(&data);
        assert_eq!(sig.len(), data.len().div_ceil(CHUNK_SIZE));
        assert_eq!(overlap(&sig, &sig), sig.len());
    }

    #[test]
    fn disjoint_data_overlaps_nowhere() {
        let a: Vec<u8> = std::iter::repeat_n(b'a', 512).collect();
        let b: Vec<u8> = std::iter::repeat_n(b'b', 512).collect();
        // All-'a' chunks repeat, so the signature is a multiset of one
        // hash; overlap with all-'b' must still be zero.
        assert_eq!(overlap(&signature(&a), &signature(&b)), 0);
    }

    #[test]
    fn near_duplicates_overlap_mostly() {
        let base: Vec<u8> = (0..4096u32).flat_map(|i| i.to_le_bytes()).collect();
        let mut edited = base.clone();
        edited[100] ^= 0xFF; // one chunk differs
        let (s1, s2) = (signature(&base), signature(&edited));
        assert_eq!(overlap(&s1, &s2), s1.len() - 1);
    }

    #[test]
    fn empty_signature_is_empty() {
        assert!(signature(&[]).is_empty());
        assert_eq!(overlap(&[], &[1, 2, 3]), 0);
    }
}
