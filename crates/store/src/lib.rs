//! `ppet-store` — persistent content-addressed artifact store for the
//! Merced compile pipeline.
//!
//! The compile service (`ppet-serve`) caches finished run manifests by
//! content address; this crate gives that cache a disk: restart the
//! service and previously compiled artifacts are served without
//! recompiling. The design is a single-writer embedded store, std-only,
//! built from five small layers:
//!
//! * [`crc`] — table-driven CRC-32 guarding every record.
//! * [`record`] — the on-disk record vocabulary (put raw / put delta /
//!   evict / pin / unpin) and its framing.
//! * [`segment`] — the append-only segment log: rolling files, fsync
//!   discipline, and the crash-recovery state machine that truncates torn
//!   tails and quarantines corrupt frames instead of refusing to open.
//! * [`chunk`] + [`delta`] — FNV hashing primitives and byte-granular
//!   delta encoding (varint copy/literal ops, bounded decode), so
//!   near-duplicate artifacts (manifests of similar netlists) cost a
//!   fraction of their raw size. Similarity *detection* lives in
//!   `ppet-dedup`: super-feature sketches clustered incrementally, which
//!   the store delegates delta-base selection to.
//! * [`store`] — the [`Store`] itself: the recovered index, the
//!   delta-vs-raw decision rule with bounded-depth chains and a
//!   decode-cost budget, byte-budget LRU eviction with pinning and
//!   delta-chain awareness, compaction, and `store.*` metrics.
//!
//! # Durability contract
//!
//! Appends go through the OS page cache; a *process* crash (`kill -9`)
//! loses nothing already written. fsync happens on segment roll, on
//! [`Store::flush`], and before compaction deletes old segments — so a
//! *machine* crash loses at most the tail written since the last of
//! those, and recovery truncates any torn frame it left behind. Corrupt
//! or torn records are never served: they are quarantined, counted, and
//! the caller recomputes.
//!
//! # Example
//!
//! ```
//! use ppet_store::{Store, StoreConfig};
//!
//! let dir = std::env::temp_dir().join(format!("ppet-store-doc-{}", std::process::id()));
//! let store = Store::open(&dir, StoreConfig::default())?;
//! store.put(42, b"compiled manifest bytes")?;
//! assert_eq!(store.get(42).as_deref(), Some(&b"compiled manifest bytes"[..]));
//! drop(store);
//!
//! // Reopen: the artifact survived.
//! let store = Store::open(&dir, StoreConfig::default())?;
//! assert_eq!(store.get(42).as_deref(), Some(&b"compiled manifest bytes"[..]));
//! # std::fs::remove_dir_all(&dir)?;
//! # Ok::<(), std::io::Error>(())
//! ```

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod chunk;
pub mod crc;
pub mod delta;
pub mod record;
pub mod segment;
pub mod store;

pub use record::{Record, RecordError, FRAME_HEADER, MAX_PAYLOAD};
pub use segment::{Location, RecoveryStats, SegmentLog};
pub use store::{GcOutcome, PutOutcome, Store, StoreConfig, StoreStats, VerifyReport};
