//! CRC-32 (IEEE 802.3 polynomial), table-driven.
//!
//! Every record in the segment log carries a CRC over its payload; the
//! checksum is verified both during recovery replay and on every read, so
//! silent disk corruption surfaces as a quarantined record instead of a
//! wrong artifact. The table is built at compile time — no lazy statics,
//! no dependencies.

/// The reflected IEEE polynomial (the one used by zip, PNG, Ethernet).
const POLY: u32 = 0xEDB8_8320;

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ POLY
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

static TABLE: [u32; 256] = build_table();

/// CRC-32 of `bytes` (IEEE, reflected, `0xFFFFFFFF` init and final xor).
#[must_use]
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &b in bytes {
        crc = (crc >> 8) ^ TABLE[((crc ^ u32::from(b)) & 0xFF) as usize];
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_known_vectors() {
        // The canonical check value for CRC-32/ISO-HDLC.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
    }

    #[test]
    fn detects_single_bit_flips() {
        let data = b"the record payload".to_vec();
        let clean = crc32(&data);
        for i in 0..data.len() {
            for bit in 0..8 {
                let mut corrupt = data.clone();
                corrupt[i] ^= 1 << bit;
                assert_ne!(crc32(&corrupt), clean, "flip at byte {i} bit {bit}");
            }
        }
    }
}
