//! Torn-write recovery: a segment truncated at *every* byte offset of
//! its final record must open cleanly with the exact prefix intact, and
//! the `recovered`/`quarantined` counters must tell the truth.

use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};

use ppet_store::{Record, SegmentLog, Store, StoreConfig};
use proptest::prelude::*;

static DIR_SEQ: AtomicUsize = AtomicUsize::new(0);

fn fresh_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "ppet-store-recovery-{tag}-{}-{}",
        std::process::id(),
        DIR_SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Writes `payloads` as raw records into one segment and returns the
/// segment file path plus each record's frame extent `(start, end)`.
fn write_log(dir: &PathBuf, payloads: &[Vec<u8>]) -> (PathBuf, Vec<(u64, u64)>) {
    let (mut log, existing, stats) = SegmentLog::open(dir, 64 << 20).expect("open");
    assert!(existing.is_empty());
    assert_eq!(stats.recovered, 0);
    let mut extents = Vec::new();
    for (i, data) in payloads.iter().enumerate() {
        let loc = log
            .append(&Record::PutRaw {
                key: i as u128 + 1,
                data: data.clone(),
            })
            .expect("append");
        extents.push((loc.offset, loc.offset + loc.frame_len()));
    }
    log.flush().expect("flush");
    let seg = std::fs::read_dir(dir)
        .expect("dir")
        .map(|e| e.expect("entry").path())
        .find(|p| p.extension().is_some_and(|e| e == "log"))
        .expect("one segment file");
    (seg, extents)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Exhaustively truncate the final record at every byte offset.
    #[test]
    fn truncation_at_every_offset_recovers_exact_prefix(
        payloads in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 0..96),
            1..5,
        ),
    ) {
        let dir = fresh_dir("torn");
        let (seg, extents) = write_log(&dir, &payloads);
        let pristine = std::fs::read(&seg).expect("read segment");
        let (last_start, last_end) = *extents.last().expect("at least one record");
        prop_assert_eq!(last_end, pristine.len() as u64);

        for cut in last_start..=last_end {
            std::fs::write(&seg, &pristine[..cut as usize]).expect("truncate");

            let store = Store::open(&dir, StoreConfig::default()).expect("reopen");
            let stats = store.stats();
            let intact = if cut == last_end { payloads.len() } else { payloads.len() - 1 };
            prop_assert_eq!(stats.entries, intact, "cut at {}", cut);
            prop_assert_eq!(stats.recovered, intact as u64, "cut at {}", cut);
            // Exactly one record was torn — unless the cut landed on the
            // frame boundary (clean end) and nothing was lost.
            let torn = u64::from(cut != last_start && cut != last_end);
            prop_assert_eq!(stats.quarantined, torn, "cut at {}", cut);
            // The surviving prefix is byte-identical.
            for (i, data) in payloads.iter().take(intact).enumerate() {
                let got = store.get(i as u128 + 1);
                prop_assert_eq!(got.as_deref(), Some(&data[..]));
            }
            prop_assert!(intact == payloads.len() || store.get(payloads.len() as u128).is_none());
            drop(store);
            // A store opened after recovery must be appendable: the torn
            // tail was physically truncated, not just skipped.
            let store = Store::open(&dir, StoreConfig::default()).expect("re-reopen");
            store.put(0xFFFF, b"post-recovery append").expect("append after recovery");
            let got = store.get(0xFFFF);
            prop_assert_eq!(got.as_deref(), Some(&b"post-recovery append"[..]));
        }
        std::fs::remove_dir_all(&dir).expect("cleanup");
    }
}

/// A bit flip in a mid-log record quarantines that record only; later
/// records (and an append afterwards) survive.
#[test]
fn mid_log_corruption_quarantines_one_record() {
    let dir = fresh_dir("bitflip");
    let payloads: Vec<Vec<u8>> = (0..4u8).map(|i| vec![i; 80]).collect();
    let (seg, extents) = write_log(&dir, &payloads);
    let mut bytes = std::fs::read(&seg).expect("read");
    // Flip one payload byte of record #2 (index 1).
    let (start, _) = extents[1];
    bytes[start as usize + 8] ^= 0x40;
    std::fs::write(&seg, &bytes).expect("write back");

    let store = Store::open(&dir, StoreConfig::default()).expect("open");
    let stats = store.stats();
    assert_eq!(stats.entries, 3);
    assert_eq!(stats.recovered, 3);
    assert_eq!(stats.quarantined, 1);
    assert!(store.get(2).is_none());
    for key in [1u128, 3, 4] {
        assert_eq!(
            store.get(key).as_deref(),
            Some(&payloads[key as usize - 1][..])
        );
    }
    std::fs::remove_dir_all(&dir).expect("cleanup");
}

/// A delta whose base record was quarantined cannot decode; recovery
/// must quarantine the orphan too instead of serving garbage.
#[test]
fn orphaned_delta_is_quarantined_on_open() {
    let dir = fresh_dir("orphan");
    let base: Vec<u8> = (0..1200u32).flat_map(|i| i.to_le_bytes()).collect();
    let mut similar = base.clone();
    similar.extend_from_slice(b"tail edit");
    {
        let store = Store::open(&dir, StoreConfig::default()).expect("open");
        store.put(1, &base).expect("put base");
        let outcome = store.put(2, &similar).expect("put similar");
        assert!(
            matches!(
                outcome,
                ppet_store::PutOutcome::InsertedDelta { base: 1, .. }
            ),
            "expected a delta against key 1, got {outcome:?}"
        );
        store.flush().expect("flush");
    }
    // Corrupt the base record on disk.
    let seg = std::fs::read_dir(&dir)
        .expect("dir")
        .map(|e| e.expect("entry").path())
        .find(|p| p.extension().is_some_and(|e| e == "log"))
        .expect("segment");
    let mut bytes = std::fs::read(&seg).expect("read");
    bytes[16] ^= 0x01; // payload byte of the first (base) frame
    std::fs::write(&seg, &bytes).expect("write back");

    let store = Store::open(&dir, StoreConfig::default()).expect("reopen");
    let stats = store.stats();
    assert_eq!(stats.entries, 0, "base corrupt, delta orphaned");
    assert_eq!(stats.quarantined, 2);
    assert!(store.get(1).is_none());
    assert!(store.get(2).is_none());
    std::fs::remove_dir_all(&dir).expect("cleanup");
}

/// Corrupting the raw root of a depth-2 chain orphans the whole chain:
/// the mid delta loses its base and the leaf loses its (transitively)
/// — recovery quarantines all three instead of serving garbage.
#[test]
fn orphaned_depth2_chain_is_quarantined_on_open() {
    let dir = fresh_dir("orphan2");
    // The depth-2 trio from tests/dedup.rs: splice then tail-append.
    let mut f0 = Vec::with_capacity(16384);
    let mut state = 11u64.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    for _ in 0..2048 {
        state = state
            .wrapping_mul(6_364_136_223_846_793_005)
            .wrapping_add(1_442_695_040_888_963_407);
        f0.extend_from_slice(&state.to_le_bytes());
    }
    let mut splice = Vec::with_capacity(1024);
    let mut state = 12u64.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    for _ in 0..128 {
        state = state
            .wrapping_mul(6_364_136_223_846_793_005)
            .wrapping_add(1_442_695_040_888_963_407);
        splice.extend_from_slice(&state.to_le_bytes());
    }
    let mut f1 = f0.clone();
    f1.splice(8192..9216, splice);
    let mut f2 = f1.clone();
    f2.extend_from_slice(b"short tail edit for the leaf variant");
    {
        let store = Store::open(&dir, StoreConfig::default()).expect("open");
        store.put(1, &f0).expect("put root");
        let o1 = store.put(2, &f1).expect("put mid");
        assert!(matches!(
            o1,
            ppet_store::PutOutcome::InsertedDelta { base: 1, .. }
        ));
        let o2 = store.put(3, &f2).expect("put leaf");
        assert!(
            matches!(o2, ppet_store::PutOutcome::InsertedDelta { base: 2, .. }),
            "expected a depth-2 chain, got {o2:?}"
        );
        store.flush().expect("flush");
    }
    // Corrupt the root's frame on disk.
    let seg = std::fs::read_dir(&dir)
        .expect("dir")
        .map(|e| e.expect("entry").path())
        .find(|p| p.extension().is_some_and(|e| e == "log"))
        .expect("segment");
    let mut bytes = std::fs::read(&seg).expect("read");
    bytes[16] ^= 0x01; // payload byte of the first (root) frame
    std::fs::write(&seg, &bytes).expect("write back");

    let store = Store::open(&dir, StoreConfig::default()).expect("reopen");
    let stats = store.stats();
    assert_eq!(stats.entries, 0, "root corrupt, whole chain orphaned");
    assert_eq!(stats.quarantined, 3);
    for key in [1u128, 2, 3] {
        assert!(store.get(key).is_none());
    }
    std::fs::remove_dir_all(&dir).expect("cleanup");
}

/// Pins and unpins survive restart.
#[test]
fn pin_state_survives_restart() {
    let dir = fresh_dir("pins");
    {
        let store = Store::open(&dir, StoreConfig::default()).expect("open");
        store.put_pinned(1, b"golden").expect("put pinned");
        store.put(2, b"scratch").expect("put");
        store.pin(2).expect("pin");
        store.unpin(2).expect("unpin");
        store.flush().expect("flush");
    }
    let store = Store::open(&dir, StoreConfig::default()).expect("reopen");
    let stats = store.stats();
    assert_eq!(stats.entries, 2);
    assert_eq!(stats.pinned, 1);
    std::fs::remove_dir_all(&dir).expect("cleanup");
}
